#!/usr/bin/env python
"""Quickstart: compute a (2+ε)-approximate minimum weight vertex cover.

Builds a random weighted graph, runs the paper's MPC algorithm, and walks
through everything the result object carries: the cover, the duality
certificate, and the per-phase MPC cost records.

Run:  python examples/quickstart.py
"""

from repro import minimum_weight_vertex_cover
from repro.graphs import gnp_average_degree, uniform_weights


def main() -> None:
    # 1. A graph: 5,000 vertices, average degree 48, weights U[1, 10].
    graph = gnp_average_degree(5_000, 48.0, seed=1)
    graph = graph.with_weights(uniform_weights(graph.n, 1.0, 10.0, seed=2))
    print(f"input: {graph}")

    # 2. Run Algorithm 2 (vectorized engine, ε = 0.1).
    result = minimum_weight_vertex_cover(graph, eps=0.1, seed=3)

    # 3. The solution: a boolean mask / id list over the vertices.
    print(f"\ncover: {result.cover_size()} vertices, weight {result.cover_weight:.1f}")
    print(f"valid cover: {result.verify(graph)}")

    # 4. The certificate: checkable evidence of solution quality.  By weak
    #    LP duality the final duals give OPT >= dual_value / load_factor,
    #    so the certified ratio bounds the true approximation ratio.
    cert = result.certificate
    print(f"\ndual value  : {cert.dual_value:.1f}")
    print(f"load factor : {cert.load_factor:.4f}  (1.0 = exactly feasible duals)")
    print(f"OPT is at least {cert.opt_lower_bound:.1f}")
    print(f"certified ratio <= {cert.certified_ratio:.3f}  (guarantee: {2 + 30 * 0.1:.1f})")

    # 5. The MPC cost: phases (the paper's O(log log d̄)) and rounds.
    print(f"\ncompressed phases: {result.num_phases}")
    print(f"total MPC rounds : {result.mpc_rounds}")
    for p in result.phases:
        print(
            f"  phase {p.phase_index}: d̄={p.avg_degree:7.1f}  "
            f"|V^high|={p.num_high:5d}  machines={p.num_machines:2d}  "
            f"iterations={p.iterations}  newly frozen={p.newly_frozen:5d}  "
            f"edges left={p.nonfrozen_edges_after}"
        )
    print(
        f"  final phase: {result.final_edges} edges solved centrally "
        f"in {result.final_iterations} iterations"
    )


if __name__ == "__main__":
    main()
