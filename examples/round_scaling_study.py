#!/usr/bin/env python
"""Study: how the round count scales — the paper's headline in miniature.

Sweeps the average degree over two orders of magnitude and prints, side by
side:

* Algorithm 2's compressed phases and total MPC rounds (O(log log d̄));
* the per-phase degree-decay exponent (d̄ -> d̄^c, the loglog mechanism);
* the pre-paper baseline's rounds (Algorithm 1, one LOCAL iteration per
  round — Θ(log Δ / ε));

then repeats the comparison at a smaller ε, where the baseline's 1/ε cost
makes the compression win outright in absolute rounds.

Run:  python examples/round_scaling_study.py
"""

import math

from repro import minimum_weight_vertex_cover
from repro.analysis import render_table
from repro.baselines import local_round_by_round
from repro.graphs import gnp_average_degree, uniform_weights


def sweep(eps: float, n: int = 8_000) -> list[dict]:
    rows = []
    for d in (8.0, 32.0, 128.0, 512.0):
        g = gnp_average_degree(n, d, seed=int(d))
        g = g.with_weights(uniform_weights(g.n, seed=int(d) + 1))
        ours = minimum_weight_vertex_cover(g, eps=eps, seed=30)
        base = local_round_by_round(g, eps=eps, seed=30)
        decay = float("nan")
        if ours.phases:
            p0 = ours.phases[0]
            if p0.avg_degree > 3 and p0.avg_degree_after > 1:
                decay = math.log(p0.avg_degree_after) / math.log(p0.avg_degree)
        rows.append(
            {
                "avg_degree": d,
                "loglog_d": round(math.log(math.log(d)), 3),
                "phases": ours.num_phases,
                "our_rounds": ours.mpc_rounds,
                "decay_exponent": decay,
                "baseline_rounds": base.mpc_rounds,
                "weight_vs_baseline": round(ours.cover_weight / base.cover_weight, 4),
            }
        )
    return rows


def main() -> None:
    for eps in (0.1, 0.05):
        rows = sweep(eps)
        print(render_table(rows, title=f"round scaling at ε = {eps} (n = 8000)"))
        print()
    print(
        "reading: phases stay flat while the baseline grows with log Δ and\n"
        "1/ε; each phase maps d̄ -> d̄^c with c ≈ 0.5-0.6 — the double-\n"
        "exponential decay behind Theorem 1.1's O(log log d̄)."
    )


if __name__ == "__main__":
    main()
