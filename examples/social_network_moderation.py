#!/usr/bin/env python
"""Scenario: content moderation on a social network.

Every edge is an interaction channel that must be monitored by at least one
of its endpoints ("one of the two accounts needs a moderator assigned") —
exactly a vertex cover.  Accounts differ wildly in *moderation cost*
(language coverage, legal exposure, appeal volume — spanning orders of
magnitude, and uncorrelated with how connected the account is), so
minimizing the cardinality of the moderated set (the unweighted objective)
routinely buys expensive accounts when a cheap neighbor would do.

This example builds a power-law interaction graph with 4-decade
log-uniform costs, then compares:

* the paper's weighted MPC algorithm,
* the unweighted (GGK+18-style) MPC algorithm, which ignores costs,
* the sequential Bar-Yehuda–Even 2-approximation (quality reference),
* the greedy cost-effectiveness heuristic.

Run:  python examples/social_network_moderation.py
"""

from repro import minimum_weight_vertex_cover
from repro.analysis import render_table
from repro.baselines import (
    greedy_vertex_cover,
    pricing_vertex_cover,
    unweighted_mpc_vertex_cover,
)
from repro.graphs import adversarial_spread_weights, power_law


def main() -> None:
    # A 20k-account network with a heavy-tailed interaction distribution;
    # moderation costs are log-uniform over four orders of magnitude.
    graph = power_law(20_000, exponent=2.3, min_degree=2, seed=10)
    graph = graph.with_weights(
        adversarial_spread_weights(graph.n, orders_of_magnitude=4.0, seed=11)
    )
    print(f"interaction graph: {graph}")
    print(f"max account degree: {graph.max_degree}")
    print(f"cost spread: {graph.weights.max() / graph.weights.min():.0f}x\n")

    ours = minimum_weight_vertex_cover(graph, eps=0.05, seed=12)
    ggk = unweighted_mpc_vertex_cover(graph, eps=0.05, seed=12)
    seq = pricing_vertex_cover(graph, order="heavy_first")
    grd = greedy_vertex_cover(graph)

    rows = [
        {
            "method": "weighted MPC (this paper)",
            "accounts": ours.cover_size(),
            "total_cost": ours.cover_weight,
            "mpc_rounds": ours.mpc_rounds,
            "cost_vs_ours": 1.0,
        },
        {
            "method": "unweighted MPC (GGK-style)",
            "accounts": ggk.cover_size,
            "total_cost": ggk.true_weight,
            "mpc_rounds": ggk.mpc_rounds,
            "cost_vs_ours": ggk.true_weight / ours.cover_weight,
        },
        {
            "method": "sequential pricing (BYE81)",
            "accounts": int(seq.in_cover.sum()),
            "total_cost": seq.cover_weight,
            "mpc_rounds": "n/a (sequential)",
            "cost_vs_ours": seq.cover_weight / ours.cover_weight,
        },
        {
            "method": "greedy cost-effectiveness",
            "accounts": int(grd.in_cover.sum()),
            "total_cost": grd.cover_weight,
            "mpc_rounds": "n/a (sequential)",
            "cost_vs_ours": grd.cover_weight / ours.cover_weight,
        },
    ]
    print(render_table(rows, title="moderation staffing cost by method"))

    cert = ours.certificate
    print(
        f"\ncertificate: any staffing plan costs ≥ {cert.opt_lower_bound:.0f}; "
        f"ours costs {cert.cover_weight:.0f} "
        f"(≤ {cert.certified_ratio:.2f}× optimal, guaranteed)"
    )
    assert ours.verify(graph)


if __name__ == "__main__":
    main()
