#!/usr/bin/env python
"""Scenario: resolving resource conflicts in a datacenter schedule.

Jobs holding overlapping time windows on the same resource conflict; a
conflict is resolved when at least one of the two jobs is migrated off the
contended resource.  Choosing a *minimum-migration-cost* set of jobs that
touches every conflict is a minimum weight vertex cover on the conflict
graph — the workload the paper's introduction gestures at (cluster
scheduling at MapReduce scale).

The conflict graph is built from synthetic job windows (Poisson arrivals,
heavy-tailed durations, skewed resource popularity), with migration cost =
job memory footprint.  The example runs both execution engines and shows
the model-cost accounting the cluster engine certifies.

Run:  python examples/datacenter_conflict_scheduling.py
"""

import numpy as np

from repro import minimum_weight_vertex_cover
from repro.analysis import render_table
from repro.graphs import WeightedGraph


def build_conflict_graph(
    num_jobs: int, num_resources: int, seed: int
) -> WeightedGraph:
    """Synthesize job windows and return the conflict graph.

    Jobs pick a resource (Zipf-skewed), an arrival time, and a duration;
    two jobs on the same resource with overlapping [start, end) windows
    conflict.  Migration cost is the job's memory footprint (log-normal).
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_resources + 1, dtype=np.float64)
    pop = 1.0 / ranks
    pop /= pop.sum()
    resource = rng.choice(num_resources, size=num_jobs, p=pop)
    start = rng.uniform(0.0, 1000.0, size=num_jobs)
    duration = rng.pareto(2.5, size=num_jobs) * 5.0 + 0.5
    end = start + duration
    cost = rng.lognormal(mean=1.0, sigma=0.8, size=num_jobs) + 0.5

    edges_u, edges_v = [], []
    for r in range(num_resources):
        jobs = np.nonzero(resource == r)[0]
        if jobs.size < 2:
            continue
        order = jobs[np.argsort(start[jobs])]
        # sweep: each job conflicts with the still-running jobs before it
        active: list[int] = []
        for j in order:
            active = [k for k in active if end[k] > start[j]]
            for k in active:
                edges_u.append(k)
                edges_v.append(j)
            active.append(int(j))
    return WeightedGraph(num_jobs, np.array(edges_u or [0])[: len(edges_u)],
                         np.array(edges_v or [0])[: len(edges_v)], cost)


def main() -> None:
    graph = build_conflict_graph(num_jobs=12_000, num_resources=60, seed=20)
    print(f"conflict graph: {graph}")
    print(f"conflicts to resolve: {graph.m}\n")

    vec = minimum_weight_vertex_cover(graph, eps=0.1, seed=21, engine="vectorized")
    print(
        f"migrate {vec.cover_size()} jobs, total cost {vec.cover_weight:.1f} "
        f"(certified ≤ {vec.certificate.certified_ratio:.2f}× optimal)"
    )

    # The cluster engine replays the same decisions as a real MPC protocol
    # with enforced memory/communication limits, certifying the model costs.
    clus = minimum_weight_vertex_cover(graph, eps=0.1, seed=21, engine="cluster")
    assert np.array_equal(vec.in_cover, clus.in_cover), "engines must agree"

    rows = [
        {"quantity": "MPC rounds (predicted, vectorized)", "value": vec.mpc_rounds},
        {"quantity": "MPC rounds (measured, cluster)", "value": clus.mpc_rounds},
        {"quantity": "compressed phases", "value": clus.num_phases},
        {"quantity": "final-phase edges (single machine)", "value": clus.final_edges},
    ]
    print()
    print(render_table(rows, title="model-cost accounting (both engines)"))

    per_phase = [
        {
            "phase": p.phase_index,
            "avg_degree": round(p.avg_degree, 2),
            "machines": p.num_machines,
            "iterations": p.iterations,
            "max_machine_edges": p.max_machine_edges,
            "rounds": p.rounds,
        }
        for p in clus.phases
    ]
    if per_phase:
        print()
        print(render_table(per_phase, title="per-phase breakdown (cluster engine)"))


if __name__ == "__main__":
    main()
