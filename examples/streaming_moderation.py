#!/usr/bin/env python
"""Scenario: live content moderation under interaction churn.

The static moderation scenario (``social_network_moderation.py``) staffs a
moderated set once.  Real interaction graphs never hold still: new
account pairs start talking (edge inserts), stale channels expire (edge
deletes), and moderation costs drift as accounts change language mix or
legal exposure (weight changes).  Re-solving the full MPC instance on
every change would burn the cluster for updates that touch a handful of
accounts.

This example keeps a *certified* moderated set live through a churn
stream with :mod:`repro.dynamic`:

* every update batch is absorbed by local repair — uncovered interaction
  channels are patched with the pricing rule, touched accounts are
  greedily released if redundant;
* the duality certificate is tracked continuously, so at any moment we
  can state "the staffed cost is within this factor of optimal";
* only when the certificate drifts past the policy bound (or the periodic
  refresh fires) does a full re-solve run — through the batch service,
  so a previously seen graph state would come straight from cache.

Run:  python examples/streaming_moderation.py
"""

from repro.dynamic import ResolvePolicy, run_stream
from repro.graphs import adversarial_spread_weights, power_law
from repro.graphs.streams import hub_churn_stream


def main() -> None:
    # A 5k-account interaction graph with heavy-tailed degrees and
    # 3-decade log-uniform moderation costs.
    graph = power_law(5_000, exponent=2.3, min_degree=2, seed=10)
    graph = graph.with_weights(
        adversarial_spread_weights(graph.n, orders_of_magnitude=3.0, seed=11)
    )
    print(f"interaction graph: {graph}")

    # Churn concentrates on celebrity accounts (hub churn): 4000 events —
    # new channels, expiries, and cost updates.
    updates = hub_churn_stream(graph, 4_000, seed=12, p_reweight=0.3,
                               p_insert=0.36, p_delete=0.34)
    print(f"update stream: {len(updates)} events (hub-biased churn)\n")

    policy = ResolvePolicy(max_drift=0.1, max_batches_between=16)
    summary = run_stream(
        graph, updates, batch_size=100, policy=policy, eps=0.1, seed=13
    )

    resolved = [r for r in summary.records if r.resolved]
    print(f"batches processed:      {summary.num_batches}")
    print(f"full re-solves:         {summary.num_resolves} "
          f"(vs {summary.num_batches + 1} if re-solving every batch)")
    for r in resolved:
        print(f"  - after batch {r.batch_index:3d}: {r.resolve_reason}")
    worst = max(r.report.certificate.certified_ratio for r in summary.records)
    print(f"worst certified ratio:  {worst:.3f} (never exposed an uncertified set)")
    print(f"final moderated cost:   {summary.final_cover_weight:.1f}")
    print(f"final certified ratio:  {summary.final_certified_ratio:.3f}")
    print(f"cover verified:         {summary.final_is_cover}")
    print(f"wall time:              {summary.elapsed_s:.2f}s "
          f"({summary.num_updates / summary.elapsed_s:,.0f} updates/s)")


if __name__ == "__main__":
    main()
