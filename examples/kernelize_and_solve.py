#!/usr/bin/env python
"""Production pipeline: kernelize, solve per component, certify with two bounds.

A sparse real-world-ish instance (preferential-attachment tree — lots
of pendant structure) is shrunk with the optimality-preserving reductions
before the MPC solver sees it:

1. split into connected components;
2. weighted leaf rule (exchange argument) forces obvious cover vertices;
3. Nemhauser–Trotter LP persistency decides everything outside the
   half-integral kernel;
4. the MPC algorithm solves each kernel;
5. the solution is certified with *two* independent lower bounds — the
   algorithm's dual value and the rounded-matching bound.

Run:  python examples/kernelize_and_solve.py
"""

import numpy as np

from repro import minimum_weight_vertex_cover
from repro.analysis import render_table
from repro.core.matching import combined_lower_bound, extract_matching, matching_lower_bound
from repro.core.preprocess import leaf_reduction, solve_with_preprocessing
from repro.graphs import exponential_weights, preferential_attachment


def main() -> None:
    graph = preferential_attachment(15_000, attachments=1, seed=50)
    graph = graph.with_weights(exponential_weights(graph.n, seed=51))
    print(f"input: {graph}\n")

    # How much does the leaf rule alone decide?
    red = leaf_reduction(graph)
    print(
        f"leaf reduction: {red.num_forced} vertices forced into the cover, "
        f"{int(red.removed.sum())} removed, kernel = {int(red.kernel_mask.sum())} vertices"
    )

    # Full pipeline vs the raw solver.
    raw = minimum_weight_vertex_cover(graph, eps=0.1, seed=52)
    pipe_cover = solve_with_preprocessing(
        graph,
        lambda sub: minimum_weight_vertex_cover(sub, eps=0.1, seed=52).in_cover,
        use_leaf_reduction=True,
        use_nt_reduction=False,  # LP persistency: enable for mid-size inputs
    )
    pipe_weight = float(graph.weights[pipe_cover].sum())

    # Two independent lower bounds on OPT.
    dual_lb = raw.certificate.opt_lower_bound
    matching = extract_matching(graph, raw.x)
    match_lb = matching_lower_bound(graph, matching)
    best_lb = combined_lower_bound(graph, raw.x)

    rows = [
        {
            "method": "raw MPC solver",
            "cover_weight": raw.cover_weight,
            "ratio_vs_best_LB": raw.cover_weight / best_lb,
        },
        {
            "method": "kernelized pipeline",
            "cover_weight": pipe_weight,
            "ratio_vs_best_LB": pipe_weight / best_lb,
        },
    ]
    print()
    print(render_table(rows, title="solution quality"))

    print()
    print(
        render_table(
            [
                {"bound": "dual value / load factor", "value": dual_lb},
                {"bound": f"rounded matching ({int(matching.sum())} edges)", "value": match_lb},
                {"bound": "combined (max)", "value": best_lb},
            ],
            title="independent lower bounds on OPT",
        )
    )

    assert graph.is_vertex_cover(pipe_cover)
    assert np.isfinite(pipe_weight)


if __name__ == "__main__":
    main()
