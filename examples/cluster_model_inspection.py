#!/usr/bin/env python
"""Inspecting the MPC model: capacities, communication, and failure modes.

The cluster engine is a real message-passing protocol running on the
:mod:`repro.mpc` simulator; this example pries the lid off:

1. runs a workload and prints the cluster's communication metrics
   (words moved, per-round maxima, memory high-water vs the S limit);
2. shows a *model violation*: squeezing machine memory below what Lemma 4.1
   needs makes the run fail loudly (capacity enforcement, not silent
   corruption);
3. shows failure injection: killing a worker mid-protocol surfaces
   ``DeadMachineError`` (the algorithm, like the paper's, assumes reliable
   machines — the simulator makes that assumption checkable).

Run:  python examples/cluster_model_inspection.py
"""

from repro import MPCParameters, minimum_weight_vertex_cover
from repro.analysis import render_table
from repro.graphs import gnp_average_degree, uniform_weights
from repro.mpc import DeadMachineError, MPCError


def main() -> None:
    graph = gnp_average_degree(600, 24.0, seed=40)
    graph = graph.with_weights(uniform_weights(graph.n, seed=41))
    params = MPCParameters(eps=0.1)

    # --- 1. a healthy run, with the cluster's own metrics ---------------
    res = minimum_weight_vertex_cover(
        graph, params=params, seed=42, engine="cluster"
    )
    capacity = params.machine_capacity_words(graph.n)
    print(f"workload: {graph}; machine capacity S = {capacity} words")
    print(f"solved in {res.mpc_rounds} rounds, {res.num_phases} phases\n")

    rows = [{"metric": k, "value": v} for k, v in res.cluster_metrics.items()]
    rows.append({"metric": "capacity S (words)", "value": capacity})
    print(render_table(rows, title="measured cluster metrics (full run)"))
    print(
        "\nnote: max_sent/max_received/memory all sit below S — the run is a\n"
        "machine-checked witness that the algorithm fits the MPC model.\n"
    )

    res2 = minimum_weight_vertex_cover(graph, params=params, seed=42, engine="cluster")
    print(f"re-run reproduces: rounds={res2.mpc_rounds} cover_weight={res2.cover_weight:.1f}\n")

    # --- 2. capacity squeeze: the model rejects an infeasible S ---------
    tiny = MPCParameters(eps=0.1, memory_factor=0.05)
    try:
        minimum_weight_vertex_cover(graph, params=tiny, seed=43, engine="cluster")
    except MPCError as exc:
        print(f"capacity squeeze -> {type(exc).__name__}: {exc}\n")

    # --- 3. failure injection: machine death surfaces -------------------
    try:
        minimum_weight_vertex_cover(
            graph, params=params, seed=44, engine="cluster", kill_schedule={3: [1]}
        )
    except DeadMachineError as exc:
        print(f"killed worker 1 before round 3 -> {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
