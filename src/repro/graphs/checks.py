"""Structural invariant checks for :class:`~repro.graphs.graph.WeightedGraph`.

Used by tests (including the hypothesis suites) and available to users as a
debugging aid.  :func:`validate_graph` re-derives every invariant the rest of
the package relies on; it is intentionally independent of the construction
code in :mod:`repro.graphs.graph` so that a bug there cannot hide itself.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["validate_graph", "GraphInvariantError"]


class GraphInvariantError(AssertionError):
    """Raised when a graph violates a structural invariant."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise GraphInvariantError(message)


def validate_graph(graph: WeightedGraph) -> None:
    """Raise :class:`GraphInvariantError` unless all invariants hold.

    Checked invariants:

    I1. endpoint arrays have equal length and dtype int64;
    I2. every endpoint lies in ``[0, n)``;
    I3. canonical orientation ``u < v`` for every edge (hence no self-loops);
    I4. edges strictly lexicographically sorted (hence no duplicates);
    I5. weights positive, finite, length ``n``;
    I6. degrees equal an independent recount;
    I7. CSR adjacency is consistent: ``indptr`` monotone with total ``2m``,
        per-slot (head, tail, edge-id) triples match the edge arrays.
    """
    n, m = graph.n, graph.m
    u, v = graph.edges_u, graph.edges_v

    _require(u.shape == (m,) and v.shape == (m,), "I1: endpoint shape mismatch")
    _require(u.dtype == np.int64 and v.dtype == np.int64, "I1: endpoint dtype must be int64")
    if m:
        _require(int(u.min()) >= 0 and int(v.max()) < n, "I2: endpoint out of range")
        _require(bool((u < v).all()), "I3: edges must satisfy u < v")
        if m > 1:
            lex = (u[:-1] < u[1:]) | ((u[:-1] == u[1:]) & (v[:-1] < v[1:]))
            _require(bool(lex.all()), "I4: edges must be strictly sorted")

    w = graph.weights
    _require(w.shape == (n,), "I5: weight length mismatch")
    if n:
        _require(bool(np.isfinite(w).all()) and bool((w > 0).all()), "I5: weights must be finite and > 0")

    recount = np.zeros(n, dtype=np.int64)
    for arr in (u, v):
        np.add.at(recount, arr, 1)
    _require(bool(np.array_equal(recount, graph.degrees)), "I6: degree mismatch")

    indptr = graph.indptr
    adj_v = graph.adj_vertices
    adj_e = graph.adj_edges
    _require(indptr.shape == (n + 1,), "I7: indptr shape")
    _require(int(indptr[0]) == 0 and int(indptr[-1]) == 2 * m, "I7: indptr bounds")
    _require(bool((np.diff(indptr) == graph.degrees).all()), "I7: indptr vs degrees")
    for head in range(n):
        lo, hi = int(indptr[head]), int(indptr[head + 1])
        for slot in range(lo, hi):
            eid = int(adj_e[slot])
            tail = int(adj_v[slot])
            a, b = int(u[eid]), int(v[eid])
            _require(
                (a == head and b == tail) or (b == head and a == tail),
                f"I7: adjacency slot {slot} of vertex {head} disagrees with edge {eid}",
            )
