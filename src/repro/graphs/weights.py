"""Vertex-weight models.

The weighted vertex cover problem only diverges from the cardinality case
when weights are heterogeneous; these generators produce the regimes the
paper's techniques target:

* :func:`uniform_weights` / :func:`constant_weights` — mild or no spread;
  sanity baselines where weighted and unweighted behaviour coincide.
* :func:`exponential_weights` — moderate spread.
* :func:`adversarial_spread_weights` — log-uniform over many orders of
  magnitude.  This is the regime where the classic ``x_e = 1/n``
  initialization needs ``O(log(Wn))`` iterations (Proposition 3.4 discussion)
  and the paper's degree-scaled initialization keeps ``O(log Δ)``.
* :func:`degree_correlated_weights` — weight grows with degree, making
  high-degree vertices expensive; stresses the primal-dual freeze order.
* :func:`planted_cover_weights` — cheap planted cover, expensive remainder;
  paired with :func:`repro.graphs.generators.planted_cover`.

All return strictly positive float64 arrays and are deterministic per seed.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, spawn_rng, PURPOSE_WEIGHTS
from repro.utils.validation import check_positive

__all__ = [
    "constant_weights",
    "uniform_weights",
    "exponential_weights",
    "adversarial_spread_weights",
    "degree_correlated_weights",
    "planted_cover_weights",
    "WEIGHT_MODELS",
    "make_weights",
]


def _rng(seed: SeedLike) -> np.random.Generator:
    return spawn_rng(seed, PURPOSE_WEIGHTS)


def constant_weights(n: int, value: float = 1.0, *, seed: SeedLike = None) -> np.ndarray:
    """All weights equal to ``value`` (> 0); the unweighted special case."""
    check_positive("value", value)
    return np.full(int(n), float(value), dtype=np.float64)


def uniform_weights(
    n: int, low: float = 1.0, high: float = 10.0, *, seed: SeedLike = None
) -> np.ndarray:
    """Weights uniform on ``[low, high]`` with ``0 < low <= high``."""
    check_positive("low", low)
    if high < low:
        raise ValueError(f"need low <= high, got {low} > {high}")
    return _rng(seed).uniform(low, high, size=int(n))


def exponential_weights(n: int, scale: float = 1.0, *, seed: SeedLike = None) -> np.ndarray:
    """Weights ``1 + Exp(scale)`` — positive with a moderate right tail."""
    check_positive("scale", scale)
    return 1.0 + _rng(seed).exponential(scale, size=int(n))


def adversarial_spread_weights(
    n: int, orders_of_magnitude: float = 9.0, *, seed: SeedLike = None
) -> np.ndarray:
    """Log-uniform weights spanning ``orders_of_magnitude`` decades.

    ``w = 10^{U[0, orders_of_magnitude]}``; with the default 9 decades the
    weight ratio ``W = max w / min w`` reaches ``1e9``, the regime where the
    uniform dual initialization pays ``O(log(Wn))`` iterations.
    """
    check_positive("orders_of_magnitude", orders_of_magnitude)
    return 10.0 ** _rng(seed).uniform(0.0, float(orders_of_magnitude), size=int(n))


def degree_correlated_weights(
    graph: WeightedGraph, alpha: float = 1.0, noise: float = 0.25, *, seed: SeedLike = None
) -> np.ndarray:
    """Weights ``(1 + deg(v))^alpha * (1 + U[0, noise])``.

    With ``alpha = 1`` a vertex's weight tracks its coverage value, removing
    the easy win of buying hubs cheaply; the primal-dual schedule must then
    genuinely balance weight against degree.
    """
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    base = (1.0 + graph.degrees.astype(np.float64)) ** float(alpha)
    jitter = 1.0 + _rng(seed).uniform(0.0, float(noise), size=graph.n)
    return base * jitter


def planted_cover_weights(
    n: int, cover_size: int, cheap: float = 1.0, expensive: float = 100.0, *, seed: SeedLike = None
) -> np.ndarray:
    """Cheap weights on the planted cover ``0..cover_size-1``, expensive
    elsewhere, with ±10% jitter to break ties."""
    check_positive("cheap", cheap)
    check_positive("expensive", expensive)
    k = int(cover_size)
    if not (0 <= k <= n):
        raise ValueError(f"cover_size must lie in [0, {n}]")
    w = np.full(int(n), float(expensive), dtype=np.float64)
    w[:k] = float(cheap)
    return w * (1.0 + 0.1 * _rng(seed).uniform(-1.0, 1.0, size=int(n)))


#: Registry used by the experiment harness; values are
#: ``f(graph, seed) -> weights`` closures over default parameters.
WEIGHT_MODELS = {
    "constant": lambda g, seed=None: constant_weights(g.n, seed=seed),
    "uniform": lambda g, seed=None: uniform_weights(g.n, seed=seed),
    "exponential": lambda g, seed=None: exponential_weights(g.n, seed=seed),
    "adversarial": lambda g, seed=None: adversarial_spread_weights(g.n, seed=seed),
    "degree_correlated": lambda g, seed=None: degree_correlated_weights(g, seed=seed),
}


def make_weights(model: str, graph: WeightedGraph, *, seed: SeedLike = None) -> np.ndarray:
    """Look up ``model`` in :data:`WEIGHT_MODELS` and generate weights."""
    try:
        fn = WEIGHT_MODELS[model]
    except KeyError:
        raise ValueError(f"unknown weight model {model!r}; known: {sorted(WEIGHT_MODELS)}") from None
    return fn(graph, seed=seed)
