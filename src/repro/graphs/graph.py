"""Vertex-weighted undirected graphs in CSR form.

:class:`WeightedGraph` is the substrate shared by every algorithm in this
package.  Design constraints, in order:

1. **Vectorized aggregation.**  The primal-dual algorithms repeatedly need
   per-vertex sums of per-edge quantities (the dual loads ``y_v = Σ_{e∋v} x_e``)
   over graphs with millions of edges.  Edges are therefore stored as two
   parallel ``int64`` endpoint arrays in canonical form (``u < v``, sorted,
   duplicate-free), and :meth:`incident_sums` reduces any per-edge vector with
   two ``bincount`` passes — no Python-level loops.
2. **Cheap induced subgraphs.**  Round compression partitions vertices across
   machines and works on induced subgraphs; :meth:`induced_subgraph` is a
   masked slice plus a relabel, returning the mapping back to parent ids.
3. **Immutability.**  Graphs are frozen after construction; algorithms carry
   their mutable state (edge duals, frozen flags) in separate arrays indexed
   by the graph's edge ids.  This keeps coupled runs (experiment E6) honest:
   both algorithms see the exact same structure.

The CSR adjacency (``indptr``/``adj_vertices``/``adj_edges``) is built lazily
on first neighbor query, since the vectorized engines never need it.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.utils.validation import ensure_float_array, ensure_int_array

__all__ = ["WeightedGraph", "canonical_edges"]


def canonical_edges(
    edges_u: np.ndarray, edges_v: np.ndarray, *, n: int, allow_duplicates: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Return edges in canonical form: ``u < v``, lexicographically sorted,
    duplicates merged.

    Self-loops are rejected (a self-loop forces its vertex into every cover
    and is better handled by preprocessing).  Endpoints outside ``[0, n)``
    are rejected.

    Parameters
    ----------
    edges_u, edges_v:
        Endpoint arrays of equal length.
    n:
        Number of vertices; endpoints must lie in ``[0, n)``.
    allow_duplicates:
        When ``False``, duplicate edges raise instead of merging.
    """
    u = ensure_int_array("edges_u", edges_u)
    v = ensure_int_array("edges_v", edges_v)
    if u.shape != v.shape:
        raise ValueError(f"endpoint arrays differ in length: {u.shape} vs {v.shape}")
    if u.size == 0:
        return u, v
    if (u == v).any():
        bad = int(u[(u == v)][0])
        raise ValueError(f"self-loop at vertex {bad} is not allowed")
    lo_ok = (u >= 0) & (v >= 0)
    hi_ok = (u < n) & (v < n)
    if not (lo_ok & hi_ok).all():
        raise ValueError(f"edge endpoints must lie in [0, {n})")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    # Sort lexicographically by (lo, hi); a single key `lo * n + hi` would
    # overflow for large n, so use lexsort.
    order = np.lexsort((hi, lo))
    lo, hi = lo[order], hi[order]
    keep = np.ones(lo.size, dtype=bool)
    keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
    if not keep.all():
        if not allow_duplicates:
            raise ValueError("duplicate edges present and allow_duplicates=False")
        lo, hi = lo[keep], hi[keep]
    return lo, hi


class WeightedGraph:
    """An immutable, vertex-weighted, undirected simple graph.

    Parameters
    ----------
    n:
        Number of vertices, labeled ``0 .. n-1``.
    edges_u, edges_v:
        Endpoint arrays (any orientation/order; canonicalized on
        construction, duplicates merged).
    weights:
        Positive vertex weights, shape ``(n,)``.  Defaults to all ones
        (the unweighted special case).

    Notes
    -----
    The edge with index ``e`` is ``(edges_u[e], edges_v[e])`` with
    ``edges_u[e] < edges_v[e]``, and the edge order is lexicographic; this
    canonical edge id is stable and shared across all algorithm state arrays.
    """

    __slots__ = (
        "_n",
        "_edges_u",
        "_edges_v",
        "_weights",
        "_degrees",
        "_indptr",
        "_adj_vertices",
        "_adj_edges",
        "_digest",
    )

    def __init__(
        self,
        n: int,
        edges_u: Iterable[int],
        edges_v: Iterable[int],
        weights: Optional[Iterable[float]] = None,
    ):
        n = int(n)
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self._n = n
        u, v = canonical_edges(np.asarray(list(edges_u) if not isinstance(edges_u, np.ndarray) else edges_u),
                               np.asarray(list(edges_v) if not isinstance(edges_v, np.ndarray) else edges_v),
                               n=n)
        self._edges_u = u
        self._edges_v = v
        if weights is None:
            w = np.ones(n, dtype=np.float64)
        else:
            w = ensure_float_array("weights", weights)
            if w.shape[0] != n:
                raise ValueError(f"weights has length {w.shape[0]}, expected {n}")
            if n and not (w > 0).all():
                raise ValueError("vertex weights must be strictly positive")
        w.setflags(write=False)
        u.setflags(write=False)
        v.setflags(write=False)
        self._weights = w
        deg = np.bincount(u, minlength=n) + np.bincount(v, minlength=n)
        deg = deg.astype(np.int64)
        deg.setflags(write=False)
        self._degrees = deg
        self._indptr = None
        self._adj_vertices = None
        self._adj_edges = None
        self._digest = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return int(self._edges_u.size)

    @property
    def edges_u(self) -> np.ndarray:
        """Smaller endpoint of each edge (read-only, shape ``(m,)``)."""
        return self._edges_u

    @property
    def edges_v(self) -> np.ndarray:
        """Larger endpoint of each edge (read-only, shape ``(m,)``)."""
        return self._edges_v

    @property
    def weights(self) -> np.ndarray:
        """Vertex weights (read-only, shape ``(n,)``)."""
        return self._weights

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degrees (read-only, shape ``(n,)``)."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Maximum degree Δ (0 for edgeless graphs)."""
        return int(self._degrees.max()) if self._n else 0

    @property
    def average_degree(self) -> float:
        """Average degree ``d = 2m/n`` (the quantity in Theorem 1.1).

        Returns 0.0 for the empty graph.
        """
        return 2.0 * self.m / self._n if self._n else 0.0

    @property
    def total_weight(self) -> float:
        """Sum of all vertex weights."""
        return float(self._weights.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedGraph(n={self._n}, m={self.m}, avg_deg={self.average_degree:.2f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._edges_u, other._edges_u)
            and np.array_equal(self._edges_v, other._edges_v)
            and np.array_equal(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash((self._n, self.m, self._edges_u.tobytes(), self._weights.tobytes()))

    def content_digest(self) -> str:
        """Stable hex digest of the graph's full content.

        Hashes ``(n, edges_u, edges_v, weights)`` in canonical form, so any
        two graphs built from the same edge set — regardless of the input
        edge ordering, endpoint orientation, or duplicates — share one
        digest.  This is the cache/identity key of the batch solving
        service: ``g.content_digest() == h.content_digest()`` iff
        ``g == h``, up to SHA-256 collisions.

        Computed lazily and memoized (the graph is immutable).
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(b"repro-graph-v1")
            h.update(np.int64(self._n).tobytes())
            h.update(np.int64(self.m).tobytes())
            h.update(np.ascontiguousarray(self._edges_u, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self._edges_v, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self._weights, dtype=np.float64).tobytes())
            self._digest = h.hexdigest()
        return self._digest

    # ------------------------------------------------------------------ #
    # pickling (process-pool transport)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        """Pickle only the defining content.

        The lazy CSR adjacency (up to ``4m`` extra int64 words) and the
        derived degree array are dropped from the payload so graphs ship
        cheaply across :class:`~concurrent.futures.ProcessPoolExecutor`
        boundaries; they are rebuilt on demand on the other side.
        """
        return {
            "n": self._n,
            "edges_u": np.asarray(self._edges_u),
            "edges_v": np.asarray(self._edges_v),
            "weights": np.asarray(self._weights),
            "digest": self._digest,
        }

    def __setstate__(self, state):
        # The payload comes from __getstate__, whose arrays are already
        # canonical — restore directly rather than paying the O(m log m)
        # canonicalization in __init__ on every unpickle.
        n = int(state["n"])
        u = np.ascontiguousarray(state["edges_u"], dtype=np.int64)
        v = np.ascontiguousarray(state["edges_v"], dtype=np.int64)
        w = np.ascontiguousarray(state["weights"], dtype=np.float64)
        deg = (np.bincount(u, minlength=n) + np.bincount(v, minlength=n)).astype(np.int64)
        for arr in (u, v, w, deg):
            arr.setflags(write=False)
        self._n = n
        self._edges_u = u
        self._edges_v = v
        self._weights = w
        self._degrees = deg
        self._indptr = None
        self._adj_vertices = None
        self._adj_edges = None
        self._digest = state.get("digest")

    # ------------------------------------------------------------------ #
    # vectorized primitives
    # ------------------------------------------------------------------ #
    def incident_sums(self, edge_values: np.ndarray) -> np.ndarray:
        """Per-vertex sums of a per-edge quantity.

        Computes ``out[v] = Σ_{e ∋ v} edge_values[e]`` with two bincount
        passes; this is the dual-load primitive ``y_v`` of Algorithm 1.

        Parameters
        ----------
        edge_values:
            Array of shape ``(m,)``.

        Returns
        -------
        numpy.ndarray of shape ``(n,)``, dtype float64.
        """
        x = np.asarray(edge_values, dtype=np.float64)
        if x.shape != (self.m,):
            raise ValueError(f"edge_values must have shape ({self.m},), got {x.shape}")
        return (
            np.bincount(self._edges_u, weights=x, minlength=self._n)
            + np.bincount(self._edges_v, weights=x, minlength=self._n)
        )

    def incident_counts(self, edge_mask: np.ndarray) -> np.ndarray:
        """Per-vertex counts of incident edges selected by a boolean mask.

        ``out[v] = |{e ∋ v : edge_mask[e]}|``; the residual-degree primitive
        of Algorithm 2 Line (2k).
        """
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError(f"edge_mask must have shape ({self.m},), got {mask.shape}")
        u = self._edges_u[mask]
        v = self._edges_v[mask]
        return (np.bincount(u, minlength=self._n) + np.bincount(v, minlength=self._n)).astype(
            np.int64
        )

    def endpoint_values(self, vertex_values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Gather a per-vertex array at both endpoints of every edge.

        Returns ``(vals[edges_u], vals[edges_v])``, each of shape ``(m,)``.
        """
        vals = np.asarray(vertex_values)
        if vals.shape[0] != self._n:
            raise ValueError(f"vertex_values must have length {self._n}, got {vals.shape}")
        return vals[self._edges_u], vals[self._edges_v]

    def is_vertex_cover(self, in_cover: np.ndarray) -> bool:
        """True iff every edge has at least one endpoint in the cover mask."""
        c = np.asarray(in_cover, dtype=bool)
        if c.shape != (self._n,):
            raise ValueError(f"in_cover must have shape ({self._n},), got {c.shape}")
        if self.m == 0:
            return True
        return bool((c[self._edges_u] | c[self._edges_v]).all())

    def cover_weight(self, in_cover: np.ndarray) -> float:
        """Total weight of the vertices selected by ``in_cover``."""
        c = np.asarray(in_cover, dtype=bool)
        if c.shape != (self._n,):
            raise ValueError(f"in_cover must have shape ({self._n},), got {c.shape}")
        return float(self._weights[c].sum())

    def uncovered_edges(self, in_cover: np.ndarray) -> np.ndarray:
        """Edge ids not covered by the mask (empty iff it is a vertex cover)."""
        c = np.asarray(in_cover, dtype=bool)
        return np.nonzero(~(c[self._edges_u] | c[self._edges_v]))[0]

    # ------------------------------------------------------------------ #
    # CSR adjacency (lazy)
    # ------------------------------------------------------------------ #
    def _build_csr(self) -> None:
        if self._indptr is not None:
            return
        n, m = self._n, self.m
        # Each edge contributes two adjacency slots: (u -> v) and (v -> u).
        heads = np.concatenate([self._edges_u, self._edges_v])
        tails = np.concatenate([self._edges_v, self._edges_u])
        eids = np.concatenate([np.arange(m, dtype=np.int64)] * 2) if m else np.empty(0, np.int64)
        order = np.argsort(heads, kind="stable")
        heads, tails, eids = heads[order], tails[order], eids[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(heads, minlength=n), out=indptr[1:])
        for arr in (indptr, tails, eids):
            arr.setflags(write=False)
        self._indptr = indptr
        self._adj_vertices = tails
        self._adj_edges = eids

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer, shape ``(n+1,)``."""
        self._build_csr()
        return self._indptr

    @property
    def adj_vertices(self) -> np.ndarray:
        """CSR neighbor list, shape ``(2m,)``."""
        self._build_csr()
        return self._adj_vertices

    @property
    def adj_edges(self) -> np.ndarray:
        """Edge id of each CSR adjacency slot, shape ``(2m,)``."""
        self._build_csr()
        return self._adj_edges

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor vertex ids of ``v`` (read-only view)."""
        self._build_csr()
        if not (0 <= v < self._n):
            raise IndexError(f"vertex {v} out of range [0, {self._n})")
        return self._adj_vertices[self._indptr[v] : self._indptr[v + 1]]

    def incident_edge_ids(self, v: int) -> np.ndarray:
        """Edge ids incident to ``v`` (read-only view)."""
        self._build_csr()
        if not (0 <= v < self._n):
            raise IndexError(f"vertex {v} out of range [0, {self._n})")
        return self._adj_edges[self._indptr[v] : self._indptr[v + 1]]

    # ------------------------------------------------------------------ #
    # derived graphs
    # ------------------------------------------------------------------ #
    def with_weights(self, weights: np.ndarray) -> "WeightedGraph":
        """A structurally identical graph with different vertex weights."""
        return WeightedGraph(self._n, self._edges_u, self._edges_v, weights)

    def induced_subgraph(
        self, vertices: np.ndarray
    ) -> Tuple["WeightedGraph", np.ndarray, np.ndarray]:
        """The subgraph induced by a vertex subset.

        Parameters
        ----------
        vertices:
            Either a boolean mask of shape ``(n,)`` or an array of vertex ids.

        Returns
        -------
        (sub, vertex_ids, edge_ids):
            ``sub`` is the induced :class:`WeightedGraph` with vertices
            relabeled ``0..k-1``; ``vertex_ids[i]`` is the parent id of
            subgraph vertex ``i``; ``edge_ids[j]`` is the parent edge id of
            subgraph edge ``j``.
        """
        vertices = np.asarray(vertices)
        if vertices.dtype == bool:
            if vertices.shape != (self._n,):
                raise ValueError(f"mask must have shape ({self._n},)")
            mask = vertices
            ids = np.nonzero(mask)[0].astype(np.int64)
        else:
            ids = np.unique(ensure_int_array("vertices", vertices))
            if ids.size and (ids[0] < 0 or ids[-1] >= self._n):
                raise ValueError(f"vertex ids must lie in [0, {self._n})")
            mask = np.zeros(self._n, dtype=bool)
            mask[ids] = True
        relabel = np.full(self._n, -1, dtype=np.int64)
        relabel[ids] = np.arange(ids.size, dtype=np.int64)
        keep = mask[self._edges_u] & mask[self._edges_v]
        edge_ids = np.nonzero(keep)[0].astype(np.int64)
        sub = WeightedGraph(
            ids.size,
            relabel[self._edges_u[edge_ids]],
            relabel[self._edges_v[edge_ids]],
            self._weights[ids],
        )
        return sub, ids, edge_ids

    def edge_subgraph(self, edge_mask: np.ndarray) -> "WeightedGraph":
        """Same vertex set, edges restricted to ``edge_mask`` (no relabel)."""
        mask = np.asarray(edge_mask, dtype=bool)
        if mask.shape != (self.m,):
            raise ValueError(f"edge_mask must have shape ({self.m},)")
        return WeightedGraph(self._n, self._edges_u[mask], self._edges_v[mask], self._weights)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edge_list(
        cls, n: int, edges: Iterable[Tuple[int, int]], weights=None
    ) -> "WeightedGraph":
        """Build from an iterable of ``(u, v)`` pairs."""
        pairs = list(edges)
        if pairs:
            arr = np.asarray(pairs, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("edges must be (u, v) pairs")
            return cls(n, arr[:, 0], arr[:, 1], weights)
        return cls(n, np.empty(0, np.int64), np.empty(0, np.int64), weights)

    @classmethod
    def empty(cls, n: int, weights=None) -> "WeightedGraph":
        """Edgeless graph on ``n`` vertices."""
        return cls(n, np.empty(0, np.int64), np.empty(0, np.int64), weights)

    def edge_list(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array (canonical order)."""
        return np.stack([self._edges_u, self._edges_v], axis=1)
