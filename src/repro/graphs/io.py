"""Graph serialization.

Two formats:

* **NPZ** (binary, lossless, fast) — the native format for benchmark
  workload caching: endpoint arrays + weights in one compressed file.
* **Text edge list** (interoperable) — ``n`` and per-vertex weights in a
  header, one ``u v`` pair per line; loadable by standard tooling.
  Paths ending in ``.gz`` are transparently gzip-compressed on save and
  decompressed on load, and the edge body is parsed in fixed-size chunks,
  so loading an f-GB edge list needs the output arrays plus O(chunk)
  transient memory — never the whole text at once.
"""

from __future__ import annotations

import gzip
import io
import os
import tempfile
from typing import IO, Union

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = [
    "save_npz",
    "load_npz",
    "save_edgelist",
    "load_edgelist",
    "fsync_directory",
    "write_bytes_atomic",
]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 1

#: Edges parsed per chunk by :func:`load_edgelist` — bounds transient
#: parsing memory independently of file size.
EDGELIST_CHUNK = 1 << 16


def _open_text(path: PathLike, mode: str) -> IO[str]:
    """Open a text file, gzip-wrapped iff the path ends in ``.gz``."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def fsync_directory(directory: PathLike) -> None:
    """fsync a directory so freshly renamed/created entries survive power loss.

    POSIX durability of a rename (or of a new file's existence) requires
    flushing the *directory*, not just the file data.  Best-effort: some
    filesystems refuse to open directories, which is reported by silently
    skipping (the data fsync still happened).
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def write_bytes_atomic(path: PathLike, data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    Readers never observe a half-written file: either the old content (or
    absence) survives, or the complete new content does.  With ``fsync``
    the payload is flushed before the rename and the parent directory is
    flushed after it, so the replacement also survives power loss — the
    write discipline every durable artifact in
    :mod:`repro.dynamic.checkpoint` relies on.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=os.path.basename(path) + ".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_npz(graph: WeightedGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in compressed NPZ form.

    The file appears atomically: a crash mid-save leaves either the old
    file or none, never a truncated archive.
    """
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        version=np.int64(_FORMAT_VERSION),
        n=np.int64(graph.n),
        edges_u=graph.edges_u,
        edges_v=graph.edges_v,
        weights=graph.weights,
    )
    write_bytes_atomic(path, buf.getvalue(), fsync=False)


def load_npz(path: PathLike) -> WeightedGraph:
    """Read a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {version}")
        return WeightedGraph(int(data["n"]), data["edges_u"], data["edges_v"], data["weights"])


def save_edgelist(graph: WeightedGraph, path: PathLike) -> None:
    """Write a human-readable edge list.

    Format::

        # mwvc-edgelist v1
        n <num_vertices> m <num_edges>
        w <w_0> <w_1> ... <w_{n-1}>
        <u> <v>
        ...

    A ``.gz`` suffix selects gzip compression.
    """
    with _open_text(path, "w") as fh:
        fh.write("# mwvc-edgelist v1\n")
        fh.write(f"n {graph.n} m {graph.m}\n")
        fh.write("w " + " ".join(repr(float(w)) for w in graph.weights) + "\n")
        for u, v in zip(graph.edges_u, graph.edges_v):
            fh.write(f"{int(u)} {int(v)}\n")


def load_edgelist(
    path: PathLike, *, chunk_edges: int = EDGELIST_CHUNK
) -> WeightedGraph:
    """Read a graph previously written by :func:`save_edgelist`.

    Handles plain and gzip-compressed (``.gz``) files.  The edge body is
    parsed ``chunk_edges`` lines at a time into the preallocated endpoint
    arrays, keeping transient memory constant per chunk regardless of file
    size.
    """
    if chunk_edges < 1:
        raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
    with _open_text(path, "r") as fh:
        header = fh.readline().strip()
        if header != "# mwvc-edgelist v1":
            raise ValueError(f"unrecognized edgelist header: {header!r}")
        sizes = fh.readline().split()
        if len(sizes) != 4 or sizes[0] != "n" or sizes[2] != "m":
            raise ValueError(f"malformed size line: {sizes!r}")
        n, m = int(sizes[1]), int(sizes[3])
        wline = fh.readline().split()
        if not wline or wline[0] != "w":
            raise ValueError("missing weight line")
        weights = np.asarray([float(x) for x in wline[1:]], dtype=np.float64)
        if weights.size != n:
            raise ValueError(f"expected {n} weights, found {weights.size}")
        us = np.empty(m, dtype=np.int64)
        vs = np.empty(m, dtype=np.int64)
        done = 0
        while done < m:
            want = min(chunk_edges, m - done)
            chunk = []
            for _ in range(want):
                parts = fh.readline().split()
                if len(parts) != 2:
                    raise ValueError(f"malformed edge line {done + len(chunk)}: {parts!r}")
                chunk.append(parts)
            block = np.asarray(chunk, dtype=np.int64)
            us[done : done + want] = block[:, 0]
            vs[done : done + want] = block[:, 1]
            done += want
    return WeightedGraph(n, us, vs, weights)
