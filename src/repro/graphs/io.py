"""Graph serialization.

Two formats:

* **NPZ** (binary, lossless, fast) — the native format for benchmark
  workload caching: endpoint arrays + weights in one compressed file.
* **Text edge list** (interoperable) — ``n`` and per-vertex weights in a
  header, one ``u v`` pair per line; loadable by standard tooling.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["save_npz", "load_npz", "save_edgelist", "load_edgelist"]

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 1


def save_npz(graph: WeightedGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in compressed NPZ form."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n=np.int64(graph.n),
        edges_u=graph.edges_u,
        edges_v=graph.edges_v,
        weights=graph.weights,
    )


def load_npz(path: PathLike) -> WeightedGraph:
    """Read a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph file version {version}")
        return WeightedGraph(int(data["n"]), data["edges_u"], data["edges_v"], data["weights"])


def save_edgelist(graph: WeightedGraph, path: PathLike) -> None:
    """Write a human-readable edge list.

    Format::

        # mwvc-edgelist v1
        n <num_vertices> m <num_edges>
        w <w_0> <w_1> ... <w_{n-1}>
        <u> <v>
        ...
    """
    with open(path, "w", encoding="ascii") as fh:
        fh.write("# mwvc-edgelist v1\n")
        fh.write(f"n {graph.n} m {graph.m}\n")
        fh.write("w " + " ".join(repr(float(w)) for w in graph.weights) + "\n")
        for u, v in zip(graph.edges_u, graph.edges_v):
            fh.write(f"{int(u)} {int(v)}\n")


def load_edgelist(path: PathLike) -> WeightedGraph:
    """Read a graph previously written by :func:`save_edgelist`."""
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip()
        if header != "# mwvc-edgelist v1":
            raise ValueError(f"unrecognized edgelist header: {header!r}")
        sizes = fh.readline().split()
        if len(sizes) != 4 or sizes[0] != "n" or sizes[2] != "m":
            raise ValueError(f"malformed size line: {sizes!r}")
        n, m = int(sizes[1]), int(sizes[3])
        wline = fh.readline().split()
        if not wline or wline[0] != "w":
            raise ValueError("missing weight line")
        weights = np.asarray([float(x) for x in wline[1:]], dtype=np.float64)
        if weights.size != n:
            raise ValueError(f"expected {n} weights, found {weights.size}")
        us = np.empty(m, dtype=np.int64)
        vs = np.empty(m, dtype=np.int64)
        for i in range(m):
            parts = fh.readline().split()
            if len(parts) != 2:
                raise ValueError(f"malformed edge line {i}: {parts!r}")
            us[i], vs[i] = int(parts[0]), int(parts[1])
    return WeightedGraph(n, us, vs, weights)
