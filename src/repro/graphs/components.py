"""Connected components and per-component decomposition.

Vertex cover decomposes exactly over connected components, so the
preprocessing pipeline (:mod:`repro.core.preprocess`) splits the input,
solves each component independently (possibly with different solvers by
size), and stitches the covers back together.  Component labeling delegates
to :func:`scipy.sparse.csgraph.connected_components` over the CSR adjacency.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components as _cc

from repro.graphs.graph import WeightedGraph

__all__ = ["component_labels", "split_components", "largest_component"]


def component_labels(graph: WeightedGraph) -> Tuple[int, np.ndarray]:
    """Label vertices by connected component.

    Returns ``(num_components, labels)`` with ``labels[v] ∈ [0,
    num_components)``.  Isolated vertices form singleton components.
    """
    n = graph.n
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    if graph.m == 0:
        return n, np.arange(n, dtype=np.int64)
    data = np.ones(graph.m, dtype=np.int8)
    adj = sp.csr_matrix((data, (graph.edges_u, graph.edges_v)), shape=(n, n))
    count, labels = _cc(adj, directed=False)
    return int(count), labels.astype(np.int64)


def split_components(
    graph: WeightedGraph, *, skip_isolated: bool = True
) -> List[Tuple[WeightedGraph, np.ndarray, np.ndarray]]:
    """Split into per-component induced subgraphs.

    Returns a list of ``(subgraph, vertex_ids, edge_ids)`` triples (the
    mapping convention of :meth:`WeightedGraph.induced_subgraph`), ordered
    by decreasing component size.  Isolated vertices are skipped by default
    — they never belong to any cover.
    """
    count, labels = component_labels(graph)
    out: List[Tuple[WeightedGraph, np.ndarray, np.ndarray]] = []
    if count == 0:
        return out
    sizes = np.bincount(labels, minlength=count)
    for comp in np.argsort(-sizes):
        ids = np.nonzero(labels == comp)[0]
        if skip_isolated and ids.size == 1 and graph.degrees[ids[0]] == 0:
            continue
        out.append(graph.induced_subgraph(ids))
    return out


def largest_component(graph: WeightedGraph) -> Tuple[WeightedGraph, np.ndarray, np.ndarray]:
    """The largest connected component (ties broken by lowest label)."""
    if graph.n == 0:
        raise ValueError("empty graph has no components")
    count, labels = component_labels(graph)
    sizes = np.bincount(labels, minlength=count)
    comp = int(np.argmax(sizes))
    return graph.induced_subgraph(np.nonzero(labels == comp)[0])
