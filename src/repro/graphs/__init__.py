"""Graph substrate: weighted graphs, generators, weight models, IO, checks."""

from repro.graphs.graph import WeightedGraph, canonical_edges
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle,
    disjoint_edges,
    double_star,
    gnm,
    gnp,
    gnp_average_degree,
    grid_2d,
    planted_cover,
    power_law,
    random_tree,
    star,
)
from repro.graphs.weights import (
    WEIGHT_MODELS,
    adversarial_spread_weights,
    constant_weights,
    degree_correlated_weights,
    exponential_weights,
    make_weights,
    planted_cover_weights,
    uniform_weights,
)
from repro.graphs.generators_extra import (
    hypercube,
    preferential_attachment,
    random_geometric,
    stochastic_block_model,
)
from repro.graphs.components import component_labels, largest_component, split_components
from repro.graphs.io import load_edgelist, load_npz, save_edgelist, save_npz
from repro.graphs.checks import GraphInvariantError, validate_graph
from repro.graphs.streams import (
    CHURN_MODELS,
    hub_churn_stream,
    make_update_stream,
    sliding_window_stream,
    uniform_churn_stream,
)
from repro.graphs.updates import (
    EdgeDelete,
    EdgeInsert,
    GraphUpdate,
    WeightChange,
    load_update_stream,
    save_update_stream,
)

__all__ = [
    "WeightedGraph",
    "canonical_edges",
    # generators
    "gnp",
    "gnm",
    "gnp_average_degree",
    "power_law",
    "star",
    "double_star",
    "complete_graph",
    "complete_bipartite",
    "grid_2d",
    "cycle",
    "random_tree",
    "disjoint_edges",
    "planted_cover",
    "stochastic_block_model",
    "random_geometric",
    "hypercube",
    "preferential_attachment",
    # update events + streams
    "EdgeInsert",
    "EdgeDelete",
    "WeightChange",
    "GraphUpdate",
    "load_update_stream",
    "save_update_stream",
    "CHURN_MODELS",
    "make_update_stream",
    "uniform_churn_stream",
    "hub_churn_stream",
    "sliding_window_stream",
    # components
    "component_labels",
    "split_components",
    "largest_component",
    # weights
    "WEIGHT_MODELS",
    "make_weights",
    "constant_weights",
    "uniform_weights",
    "exponential_weights",
    "adversarial_spread_weights",
    "degree_correlated_weights",
    "planted_cover_weights",
    # io
    "save_npz",
    "load_npz",
    "save_edgelist",
    "load_edgelist",
    # checks
    "validate_graph",
    "GraphInvariantError",
]
