"""Additional graph families: community, geometric, and growth models.

These extend the core generator set with the workload classes common in
MPC systems papers:

* :func:`stochastic_block_model` — planted communities (dense inside,
  sparse across); covers must pay for intra-community density.
* :func:`random_geometric` — points in the unit square joined within a
  radius; high clustering, grid-like locality (KD-tree accelerated).
* :func:`hypercube` — the d-dimensional Boolean hypercube; regular,
  bipartite, diameter d.
* :func:`preferential_attachment` — Barabási–Albert growth; power-law tail
  with guaranteed connectivity (unlike the configuration model).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, spawn_rng, PURPOSE_TOPOLOGY

__all__ = [
    "stochastic_block_model",
    "random_geometric",
    "hypercube",
    "preferential_attachment",
]


def stochastic_block_model(
    block_sizes,
    p_in: float,
    p_out: float,
    *,
    seed: SeedLike = None,
) -> WeightedGraph:
    """Planted-partition graph: blocks with internal density ``p_in`` and
    cross density ``p_out``.

    Vertices are labeled block by block in the given order.  Edge counts
    per block pair are drawn binomially and the edges sampled uniformly,
    so the construction is exact SBM without materializing all pairs.
    """
    sizes = [int(s) for s in block_sizes]
    if any(s < 0 for s in sizes):
        raise ValueError("block sizes must be >= 0")
    for name, p in (("p_in", p_in), ("p_out", p_out)):
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"{name} must lie in [0, 1]")
    n = sum(sizes)
    rng = spawn_rng(seed, PURPOSE_TOPOLOGY)
    starts = np.cumsum([0] + sizes)
    us, vs = [], []
    for i in range(len(sizes)):
        for j in range(i, len(sizes)):
            if i == j:
                pairs = sizes[i] * (sizes[i] - 1) // 2
                p = p_in
            else:
                pairs = sizes[i] * sizes[j]
                p = p_out
            if pairs == 0 or p == 0.0:
                continue
            count = int(rng.binomial(pairs, p))
            if count == 0:
                continue
            # Rejection-light sampling of distinct pairs within the block
            # pair; duplicates collapse in canonicalization, so oversample.
            a = rng.integers(starts[i], starts[i + 1], size=2 * count + 8)
            if i == j:
                b = rng.integers(starts[i], starts[i + 1], size=2 * count + 8)
                ok = a != b
                a, b = a[ok][:count], b[ok][:count]
            else:
                b = rng.integers(starts[j], starts[j + 1], size=2 * count + 8)[: a.size]
                a, b = a[:count], b[:count]
            us.append(a)
            vs.append(b)
    if not us:
        return WeightedGraph.empty(n)
    return WeightedGraph(n, np.concatenate(us), np.concatenate(vs))


def random_geometric(n: int, radius: float, *, seed: SeedLike = None) -> WeightedGraph:
    """Random geometric graph in the unit square (KD-tree neighbor query)."""
    n = int(n)
    if n < 0:
        raise ValueError("n must be >= 0")
    if radius < 0:
        raise ValueError("radius must be >= 0")
    if n == 0:
        return WeightedGraph.empty(0)
    rng = spawn_rng(seed, PURPOSE_TOPOLOGY)
    points = rng.random((n, 2))
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=float(radius), output_type="ndarray")
    if pairs.size == 0:
        return WeightedGraph.empty(n)
    return WeightedGraph(n, pairs[:, 0], pairs[:, 1])


def hypercube(dimension: int) -> WeightedGraph:
    """The ``d``-dimensional Boolean hypercube ``Q_d`` (n = 2^d)."""
    d = int(dimension)
    if d < 0:
        raise ValueError("dimension must be >= 0")
    n = 1 << d
    if d == 0:
        return WeightedGraph.empty(1)
    ids = np.arange(n, dtype=np.int64)
    us, vs = [], []
    for bit in range(d):
        mask = 1 << bit
        lower = ids[(ids & mask) == 0]
        us.append(lower)
        vs.append(lower | mask)
    return WeightedGraph(n, np.concatenate(us), np.concatenate(vs))


def preferential_attachment(
    n: int, attachments: int = 2, *, seed: SeedLike = None
) -> WeightedGraph:
    """Barabási–Albert growth: each new vertex attaches to ``attachments``
    existing vertices chosen proportionally to degree.

    Implemented with the repeated-endpoints trick: sampling uniformly from
    the flat list of all edge endpoints is exactly degree-proportional.
    Starts from a star on ``attachments + 1`` vertices.
    """
    n = int(n)
    k = int(attachments)
    if k < 1:
        raise ValueError("attachments must be >= 1")
    if n < k + 1:
        raise ValueError(f"need n >= attachments + 1 = {k + 1}")
    rng = spawn_rng(seed, PURPOSE_TOPOLOGY)
    us: list[int] = []
    vs: list[int] = []
    endpoint_pool: list[int] = []
    for leaf in range(1, k + 1):
        us.append(0)
        vs.append(leaf)
        endpoint_pool.extend((0, leaf))
    for new in range(k + 1, n):
        targets: set[int] = set()
        while len(targets) < k:
            pick = endpoint_pool[int(rng.integers(0, len(endpoint_pool)))]
            targets.add(pick)
        for tgt in sorted(targets):
            us.append(tgt)
            vs.append(new)
            endpoint_pool.extend((tgt, new))
    return WeightedGraph(n, np.asarray(us), np.asarray(vs))
