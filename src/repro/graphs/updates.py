"""Graph update events and their JSON-lines wire format.

A dynamic workload is a stream of three event kinds:

* ``{"op": "insert", "u": 3, "v": 7}``      — add edge ``{3, 7}``;
* ``{"op": "delete", "u": 3, "v": 7}``      — remove edge ``{3, 7}``;
* ``{"op": "reweight", "v": 3, "weight": 2.5}`` — set ``w(3) = 2.5``.

The vertex set is fixed for the lifetime of a stream (vertex churn is
modeled as weight changes plus edge churn around the vertex); endpoints are
unordered, so ``insert 3 7`` and ``insert 7 3`` denote the same event.

Events are plain frozen dataclasses — :data:`GraphUpdate` is their union —
so streams can be built programmatically (see :mod:`repro.graphs.streams`),
serialized one JSON object per line, and replayed through
:class:`repro.dynamic.DynamicGraph`.  Blank lines and ``#`` comments are
skipped on load, mirroring the batch-manifest format.

This module lives in the graph substrate layer (events *are* graph
mutations) and imports nothing from the rest of the package, so both
:mod:`repro.graphs.streams` and the :mod:`repro.dynamic` subsystem can
depend on it without entangling the two packages.
"""

from __future__ import annotations

import gzip
import json
import math
import os
from dataclasses import dataclass
from typing import IO, Iterable, List, Union

__all__ = [
    "EdgeInsert",
    "EdgeDelete",
    "WeightChange",
    "GraphUpdate",
    "update_to_json",
    "update_from_json",
    "save_update_stream",
    "save_update_stream_segments",
    "load_update_stream",
]

PathLike = Union[str, "os.PathLike[str]"]


@dataclass(frozen=True)
class EdgeInsert:
    """Add the undirected edge ``{u, v}`` (no-op if already present)."""

    u: int
    v: int


@dataclass(frozen=True)
class EdgeDelete:
    """Remove the undirected edge ``{u, v}`` (no-op if absent)."""

    u: int
    v: int


@dataclass(frozen=True)
class WeightChange:
    """Set vertex ``v``'s weight to ``weight`` (must stay positive)."""

    v: int
    weight: float


GraphUpdate = Union[EdgeInsert, EdgeDelete, WeightChange]


def update_to_json(update: GraphUpdate) -> dict:
    """One update as its wire-format JSON object."""
    if isinstance(update, EdgeInsert):
        return {"op": "insert", "u": int(update.u), "v": int(update.v)}
    if isinstance(update, EdgeDelete):
        return {"op": "delete", "u": int(update.u), "v": int(update.v)}
    if isinstance(update, WeightChange):
        return {"op": "reweight", "v": int(update.v), "weight": float(update.weight)}
    raise TypeError(f"not a graph update: {type(update).__name__}")


def update_from_json(spec: dict) -> GraphUpdate:
    """Parse one wire-format JSON object into an update event."""
    if not isinstance(spec, dict):
        raise ValueError(f"update record must be a JSON object, got {type(spec).__name__}")
    op = spec.get("op")
    if op in ("insert", "delete"):
        extra = set(spec) - {"op", "u", "v"}
        if extra:
            raise ValueError(f"unknown keys {sorted(extra)} for op {op!r}")
        try:
            u, v = int(spec["u"]), int(spec["v"])
        except KeyError as exc:
            raise ValueError(f"op {op!r} needs keys 'u' and 'v'") from exc
        return EdgeInsert(u, v) if op == "insert" else EdgeDelete(u, v)
    if op == "reweight":
        extra = set(spec) - {"op", "v", "weight"}
        if extra:
            raise ValueError(f"unknown keys {sorted(extra)} for op 'reweight'")
        try:
            v, w = int(spec["v"]), float(spec["weight"])
        except KeyError as exc:
            raise ValueError("op 'reweight' needs keys 'v' and 'weight'") from exc
        if not math.isfinite(w) or w <= 0:
            raise ValueError(f"reweight weight must be finite and > 0, got {w}")
        return WeightChange(v, w)
    raise ValueError(f"unknown op {op!r}; expected 'insert', 'delete' or 'reweight'")


def save_update_stream(updates: Iterable[GraphUpdate], path: PathLike) -> None:
    """Write a stream as JSON lines (gzip-compressed iff ``path`` ends ``.gz``)."""
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "wt", encoding="utf-8") as fh:
        for upd in updates:
            fh.write(json.dumps(update_to_json(upd)))
            fh.write("\n")


def save_update_stream_segments(
    updates: Iterable[GraphUpdate],
    directory: PathLike,
    *,
    segment_size: int = 10_000,
    compress: bool = False,
) -> List[str]:
    """Write a stream as numbered JSON-lines segment files in ``directory``.

    Segments are named ``part-00000.jsonl`` (``.jsonl.gz`` with
    ``compress``) and hold ``segment_size`` events each; the lexicographic
    filename order is the stream order, which is how
    :class:`repro.dynamic.ingest.DirectorySource` reads them back.
    Returns the written paths.
    """
    if segment_size < 1:
        raise ValueError(f"segment_size must be >= 1, got {segment_size}")
    os.makedirs(os.fspath(directory), exist_ok=True)
    suffix = ".jsonl.gz" if compress else ".jsonl"
    paths: List[str] = []
    chunk: List[GraphUpdate] = []

    def flush():
        if not chunk:
            return
        path = os.path.join(
            os.fspath(directory), f"part-{len(paths):05d}{suffix}"
        )
        save_update_stream(chunk, path)
        paths.append(path)
        chunk.clear()

    for upd in updates:
        chunk.append(upd)
        if len(chunk) >= segment_size:
            flush()
    flush()
    return paths


def load_update_stream(source: Union[PathLike, IO[str], Iterable[str]]) -> List[GraphUpdate]:
    """Parse a JSON-lines update stream.

    ``source`` is a path (``.gz`` transparently decompressed), an open text
    stream, or any iterable of lines.  A malformed line raises
    ``ValueError`` naming its line number — an update stream is input data,
    so it fails loudly up front rather than mid-replay.
    """
    if isinstance(source, (str, bytes, os.PathLike)):
        opener = gzip.open if str(source).endswith(".gz") else open
        with opener(source, "rt", encoding="utf-8") as fh:
            return load_update_stream(list(fh))
    updates: List[GraphUpdate] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            updates.append(update_from_json(json.loads(line)))
        except ValueError as exc:
            raise ValueError(f"update stream line {lineno}: {exc}") from exc
    return updates
