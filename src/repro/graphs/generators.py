"""Seeded random-graph generators.

These provide the workloads for the experiment suite (DESIGN.md §5):
Erdős–Rényi graphs for the density sweeps, configuration-model power-law
graphs for heavy-tailed degree stress, and structured families (stars,
cliques, bipartite, grids, trees) whose optima are known in closed form and
therefore pin down approximation ratios exactly in tests.

All generators take ``seed`` (int / SeedSequence / None) and are
deterministic for a given seed.  They return bare topology; vertex weights
come separately from :mod:`repro.graphs.weights` so that topology and weight
randomness can be varied independently (important for the E2 grid).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, spawn_rng, PURPOSE_TOPOLOGY

__all__ = [
    "gnp",
    "gnm",
    "gnp_average_degree",
    "power_law",
    "star",
    "double_star",
    "complete_graph",
    "complete_bipartite",
    "grid_2d",
    "random_tree",
    "planted_cover",
    "disjoint_edges",
    "cycle",
]


def _rng(seed: SeedLike) -> np.random.Generator:
    return spawn_rng(seed, PURPOSE_TOPOLOGY)


def gnm(n: int, m: int, *, seed: SeedLike = None) -> WeightedGraph:
    """Uniform random graph with exactly ``m`` distinct edges (G(n, m)).

    Sampling is rejection-free for sparse graphs: draw 64-bit edge codes,
    deduplicate, repeat until ``m`` distinct non-loop pairs are collected.
    Requires ``m <= n(n-1)/2``.
    """
    n = int(n)
    m = int(m)
    if n < 0:
        raise ValueError("n must be >= 0")
    max_m = n * (n - 1) // 2
    if m < 0 or m > max_m:
        raise ValueError(f"m must lie in [0, {max_m}] for n={n}, got {m}")
    rng = _rng(seed)
    if m == 0:
        return WeightedGraph.empty(n)
    if m > max_m // 2:
        # Dense regime: enumerate all pairs and choose. Only feasible because
        # dense graphs here are small.
        iu, iv = np.triu_indices(n, k=1)
        pick = rng.choice(iu.size, size=m, replace=False)
        return WeightedGraph(n, iu[pick], iv[pick])
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < m:
        need = m - chosen.size
        u = rng.integers(0, n, size=2 * need + 16, dtype=np.int64)
        v = rng.integers(0, n, size=2 * need + 16, dtype=np.int64)
        ok = u != v
        u, v = u[ok], v[ok]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        codes = lo * np.int64(n) + hi
        chosen = np.unique(np.concatenate([chosen, codes]))
        if chosen.size > m:
            # unique() sorted the codes; drop a uniformly random subset to
            # keep exactly m (permute to avoid biasing toward small codes).
            chosen = rng.permutation(chosen)[:m]
    u = chosen // n
    v = chosen % n
    return WeightedGraph(n, u, v)


def gnp(n: int, p: float, *, seed: SeedLike = None) -> WeightedGraph:
    """Erdős–Rényi G(n, p): each pair independently an edge with prob. ``p``.

    Implemented by drawing ``Binomial(n(n-1)/2, p)`` for the edge count and
    delegating to :func:`gnm`; this is exactly the G(n,p) distribution and
    avoids materializing all pairs.
    """
    n = int(n)
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"p must be in [0,1], got {p}")
    rng = _rng(seed)
    max_m = n * (n - 1) // 2
    m = int(rng.binomial(max_m, p)) if max_m > 0 and p > 0 else 0
    # gnm must see an independent stream; derive a sub-seed from this rng.
    sub = int(rng.integers(0, 2**63 - 1))
    return gnm(n, m, seed=sub)


def gnp_average_degree(n: int, avg_degree: float, *, seed: SeedLike = None) -> WeightedGraph:
    """G(n, p) parameterized by target average degree ``d = p(n-1)``."""
    n = int(n)
    if n <= 1:
        return WeightedGraph.empty(max(n, 0))
    if avg_degree < 0 or avg_degree > n - 1:
        raise ValueError(f"avg_degree must lie in [0, {n - 1}], got {avg_degree}")
    return gnp(n, float(avg_degree) / (n - 1), seed=seed)


def power_law(
    n: int,
    exponent: float = 2.5,
    *,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed: SeedLike = None,
) -> WeightedGraph:
    """Configuration-model graph with power-law degree distribution.

    Degrees are drawn from ``P(k) ∝ k^{-exponent}`` on
    ``[min_degree, max_degree]`` (default cap ``√n``, the standard choice
    that keeps the simple-graph rejection rate low), stubs are paired
    uniformly, then self-loops and multi-edges are discarded ("erased
    configuration model").  The realized degree sequence is therefore close
    to, not exactly, the drawn one — the standard trade-off.
    """
    n = int(n)
    if n < 2:
        return WeightedGraph.empty(max(n, 0))
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    if max_degree is None:
        max_degree = max(min_degree, int(np.sqrt(n)))
    if not (1 <= min_degree <= max_degree <= n - 1):
        raise ValueError(
            f"need 1 <= min_degree <= max_degree <= n-1; got {min_degree}, {max_degree}"
        )
    rng = _rng(seed)
    ks = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    probs = ks ** (-float(exponent))
    probs /= probs.sum()
    degrees = rng.choice(ks.astype(np.int64), size=n, p=probs)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    u = stubs[0::2]
    v = stubs[1::2]
    keep = u != v
    return WeightedGraph(n, u[keep], v[keep])


def star(n: int) -> WeightedGraph:
    """Star ``K_{1,n-1}``: vertex 0 is the hub.  OPT(unweighted) = 1."""
    n = int(n)
    if n < 1:
        raise ValueError("star needs n >= 1")
    leaves = np.arange(1, n, dtype=np.int64)
    return WeightedGraph(n, np.zeros(n - 1, dtype=np.int64), leaves)


def double_star(k: int) -> WeightedGraph:
    """Two hubs (0, 1) joined by an edge, each with ``k`` private leaves.

    OPT(unweighted) = 2 (the hubs); a classic greedy-trap instance.
    """
    k = int(k)
    if k < 0:
        raise ValueError("k must be >= 0")
    n = 2 + 2 * k
    us = [0] + [0] * k + [1] * k
    vs = [1] + list(range(2, 2 + k)) + list(range(2 + k, 2 + 2 * k))
    return WeightedGraph.from_edge_list(n, zip(us, vs))


def complete_graph(n: int) -> WeightedGraph:
    """Clique ``K_n``.  OPT(unweighted) = n - 1."""
    n = int(n)
    iu, iv = np.triu_indices(n, k=1)
    return WeightedGraph(n, iu.astype(np.int64), iv.astype(np.int64))


def complete_bipartite(a: int, b: int) -> WeightedGraph:
    """``K_{a,b}`` with left part ``0..a-1``.  OPT(unweighted) = min(a, b)."""
    a, b = int(a), int(b)
    if a < 0 or b < 0:
        raise ValueError("part sizes must be >= 0")
    left = np.repeat(np.arange(a, dtype=np.int64), b)
    right = np.tile(np.arange(a, a + b, dtype=np.int64), a)
    return WeightedGraph(a + b, left, right)


def grid_2d(rows: int, cols: int) -> WeightedGraph:
    """``rows x cols`` grid graph (4-neighborhood)."""
    rows, cols = int(rows), int(cols)
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_u = idx[:, :-1].ravel()
    horiz_v = idx[:, 1:].ravel()
    vert_u = idx[:-1, :].ravel()
    vert_v = idx[1:, :].ravel()
    return WeightedGraph(
        rows * cols, np.concatenate([horiz_u, vert_u]), np.concatenate([horiz_v, vert_v])
    )


def cycle(n: int) -> WeightedGraph:
    """Cycle ``C_n`` (n >= 3).  OPT(unweighted) = ceil(n/2)."""
    n = int(n)
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    return WeightedGraph(n, u, v)


def random_tree(n: int, *, seed: SeedLike = None) -> WeightedGraph:
    """Uniform random labeled tree via a random Prüfer-like attachment.

    Each vertex ``i >= 1`` attaches to a uniform vertex in ``[0, i)``
    (random recursive tree — not uniform over all labeled trees, but a
    standard sparse benchmark family with Θ(log n) expected height).
    """
    n = int(n)
    if n < 1:
        raise ValueError("tree needs n >= 1")
    if n == 1:
        return WeightedGraph.empty(1)
    rng = _rng(seed)
    children = np.arange(1, n, dtype=np.int64)
    parents = (rng.random(n - 1) * children).astype(np.int64)
    return WeightedGraph(n, parents, children)


def disjoint_edges(k: int) -> WeightedGraph:
    """Perfect matching on ``2k`` vertices.  OPT(unweighted) = k."""
    k = int(k)
    if k < 0:
        raise ValueError("k must be >= 0")
    u = np.arange(0, 2 * k, 2, dtype=np.int64)
    return WeightedGraph(2 * k, u, u + 1)


def planted_cover(
    n: int,
    cover_size: int,
    avg_degree: float,
    *,
    seed: SeedLike = None,
) -> WeightedGraph:
    """Graph whose edges all touch a planted vertex set ``0..cover_size-1``.

    Every edge has at least one endpoint in the planted set, so the planted
    set is a vertex cover; with weights that make it cheap (see
    :func:`repro.graphs.weights.planted_cover_weights`) it is near-optimal,
    giving instances with a known reference solution at any scale.
    """
    n = int(n)
    k = int(cover_size)
    if not (1 <= k <= n):
        raise ValueError(f"cover_size must lie in [1, {n}]")
    target_m = int(avg_degree * n / 2)
    rng = _rng(seed)
    if target_m == 0:
        return WeightedGraph.empty(n)
    u = rng.integers(0, k, size=2 * target_m, dtype=np.int64)
    v = rng.integers(0, n, size=2 * target_m, dtype=np.int64)
    keep = u != v
    u, v = u[keep][:target_m], v[keep][:target_m]
    return WeightedGraph(n, u, v)
