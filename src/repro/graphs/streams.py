"""Synthetic update-stream generators for dynamic workloads.

Three churn models, mirroring the traffic shapes a production cover service
sees (``repro stream --churn ...``):

* **uniform** — inserts/deletes/reweights land on uniformly random
  endpoints; the memoryless baseline.
* **hub** — churn concentrates on high-degree vertices (degree-biased
  endpoint sampling from the *initial* graph), modeling celebrity accounts
  and hot services whose neighborhoods never sit still.
* **sliding_window** — edges arrive, live for a fixed-size window, and
  expire FIFO, modeling interaction logs with retention; after warm-up
  every insert is paired with the expiry of the oldest windowed edge.

Every generator keeps a faithful mirror of the evolving edge set, so the
emitted stream is *coherent*: deletes always name a present edge, inserts
an absent one, and reweights stay strictly positive.  Streams are ordinary
lists of :data:`repro.dynamic.updates.GraphUpdate` events — serialize with
:func:`repro.dynamic.updates.save_update_stream`.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.updates import EdgeDelete, EdgeInsert, GraphUpdate, WeightChange

__all__ = [
    "CHURN_MODELS",
    "make_update_stream",
    "uniform_churn_stream",
    "hub_churn_stream",
    "sliding_window_stream",
]

CHURN_MODELS = ("uniform", "hub", "sliding_window")

#: Rejection-sampling budget for "an absent pair"; graphs this package
#: targets are sparse, so hitting it means the caller churns a near-clique.
_MAX_TRIES = 10_000


class _EdgeMirror:
    """Incremental mirror of the evolving edge set with O(1) sampling."""

    def __init__(self, graph: WeightedGraph):
        self.pairs: List[Tuple[int, int]] = [
            (int(u), int(v)) for u, v in zip(graph.edges_u, graph.edges_v)
        ]
        self.index = {pair: i for i, pair in enumerate(self.pairs)}

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        return pair in self.index

    def __len__(self) -> int:
        return len(self.pairs)

    def add(self, pair: Tuple[int, int]) -> None:
        self.index[pair] = len(self.pairs)
        self.pairs.append(pair)

    def remove(self, pair: Tuple[int, int]) -> None:
        i = self.index.pop(pair)
        last = self.pairs.pop()
        if i < len(self.pairs):
            self.pairs[i] = last
            self.index[last] = i

    def sample(self, rng: np.random.Generator) -> Tuple[int, int]:
        return self.pairs[int(rng.integers(len(self.pairs)))]


def _sample_absent_pair(
    rng: np.random.Generator,
    n: int,
    present: _EdgeMirror,
    *,
    endpoint_p: Optional[np.ndarray] = None,
) -> Tuple[int, int]:
    """A uniformly (or endpoint-biased) random pair not currently an edge."""
    if n < 2:
        raise ValueError("need at least 2 vertices to insert edges")
    for _ in range(_MAX_TRIES):
        if endpoint_p is not None:
            u = int(rng.choice(n, p=endpoint_p))
        else:
            u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        pair = (u, v) if u < v else (v, u)
        if pair not in present:
            return pair
    raise ValueError(
        f"could not sample an absent edge after {_MAX_TRIES} tries "
        f"(graph too dense: n={n}, m={len(present)})"
    )


def _reweight_event(
    rng: np.random.Generator, weights: np.ndarray, *, scale: float
) -> WeightChange:
    """Multiplicative jitter of a random vertex weight (mirror updated)."""
    v = int(rng.integers(weights.size))
    factor = float(scale ** rng.uniform(-1.0, 1.0))
    new_w = max(float(weights[v]) * factor, 1e-12)
    weights[v] = new_w
    return WeightChange(v, new_w)


def uniform_churn_stream(
    graph: WeightedGraph,
    num_updates: int,
    *,
    seed: int = 0,
    p_insert: float = 0.4,
    p_delete: float = 0.4,
    p_reweight: float = 0.2,
    weight_scale: float = 2.0,
) -> List[GraphUpdate]:
    """Memoryless churn: each event is an insert / delete / reweight draw.

    ``p_insert + p_delete + p_reweight`` must sum to 1.  A delete drawn on
    an edgeless state degrades to an insert, so the stream is always
    coherent.  ``weight_scale`` bounds the multiplicative jitter of
    reweights (each is a factor in ``[1/scale, scale]``).
    """
    return _churn(
        graph,
        num_updates,
        seed=seed,
        p_insert=p_insert,
        p_delete=p_delete,
        p_reweight=p_reweight,
        weight_scale=weight_scale,
        endpoint_p=None,
    )


def hub_churn_stream(
    graph: WeightedGraph,
    num_updates: int,
    *,
    seed: int = 0,
    p_insert: float = 0.4,
    p_delete: float = 0.4,
    p_reweight: float = 0.2,
    weight_scale: float = 2.0,
) -> List[GraphUpdate]:
    """Churn biased toward high-degree vertices of the *initial* graph.

    Inserted edges pick one endpoint with probability proportional to
    ``degree + 1``; deletions sample uniformly among present edges (which
    are themselves hub-heavy under this insertion bias), so hot
    neighborhoods see most of the action — the stress case for local
    repair, since the same vertices are touched over and over.
    """
    deg = graph.degrees.astype(np.float64) + 1.0
    endpoint_p = deg / deg.sum() if graph.n else None
    return _churn(
        graph,
        num_updates,
        seed=seed,
        p_insert=p_insert,
        p_delete=p_delete,
        p_reweight=p_reweight,
        weight_scale=weight_scale,
        endpoint_p=endpoint_p,
    )


def _churn(
    graph: WeightedGraph,
    num_updates: int,
    *,
    seed: int,
    p_insert: float,
    p_delete: float,
    p_reweight: float,
    weight_scale: float,
    endpoint_p: Optional[np.ndarray],
) -> List[GraphUpdate]:
    if num_updates < 0:
        raise ValueError(f"num_updates must be >= 0, got {num_updates}")
    total = p_insert + p_delete + p_reweight
    if not np.isclose(total, 1.0):
        raise ValueError(f"event probabilities must sum to 1, got {total}")
    if weight_scale < 1.0:
        raise ValueError(f"weight_scale must be >= 1, got {weight_scale}")
    rng = np.random.default_rng(seed)
    mirror = _EdgeMirror(graph)
    weights = np.array(graph.weights, dtype=np.float64)
    out: List[GraphUpdate] = []
    for _ in range(num_updates):
        r = float(rng.random())
        if r < p_reweight and graph.n:
            out.append(_reweight_event(rng, weights, scale=weight_scale))
            continue
        delete = r < p_reweight + p_delete and len(mirror) > 0
        if delete:
            pair = mirror.sample(rng)
            mirror.remove(pair)
            out.append(EdgeDelete(*pair))
        else:
            pair = _sample_absent_pair(rng, graph.n, mirror, endpoint_p=endpoint_p)
            mirror.add(pair)
            out.append(EdgeInsert(*pair))
    return out


def sliding_window_stream(
    graph: WeightedGraph,
    num_updates: int,
    *,
    seed: int = 0,
    window: Optional[int] = None,
    p_reweight: float = 0.0,
    weight_scale: float = 2.0,
) -> List[GraphUpdate]:
    """FIFO edge arrivals with expiry: the retention-log churn model.

    Fresh random edges arrive one per event; once more than ``window`` of
    them are live (default: ``max(1, m/4)`` of the initial graph), each
    arrival is preceded by the expiry of the oldest windowed edge — so the
    steady state alternates delete/insert and the structural delta keeps
    cycling through the same size.  Initial edges never expire (they are
    the retained backbone).  With ``p_reweight > 0`` reweight events are
    interleaved at that rate.
    """
    if num_updates < 0:
        raise ValueError(f"num_updates must be >= 0, got {num_updates}")
    if not 0.0 <= p_reweight < 1.0:
        raise ValueError(f"p_reweight must be in [0, 1), got {p_reweight}")
    if window is not None and window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window is None:
        window = max(1, graph.m // 4)
    rng = np.random.default_rng(seed)
    mirror = _EdgeMirror(graph)
    weights = np.array(graph.weights, dtype=np.float64)
    live: deque = deque()
    out: List[GraphUpdate] = []
    while len(out) < num_updates:
        if p_reweight and float(rng.random()) < p_reweight and graph.n:
            out.append(_reweight_event(rng, weights, scale=weight_scale))
            continue
        if len(live) >= window:
            pair = live.popleft()
            mirror.remove(pair)
            out.append(EdgeDelete(*pair))
            if len(out) >= num_updates:
                break
        pair = _sample_absent_pair(rng, graph.n, mirror)
        mirror.add(pair)
        live.append(pair)
        out.append(EdgeInsert(*pair))
    return out


def make_update_stream(
    model: str,
    graph: WeightedGraph,
    num_updates: int,
    *,
    seed: int = 0,
    **kwargs,
) -> List[GraphUpdate]:
    """Dispatch to a churn model by name (the CLI's ``--churn`` hook)."""
    if model == "uniform":
        return uniform_churn_stream(graph, num_updates, seed=seed, **kwargs)
    if model == "hub":
        return hub_churn_stream(graph, num_updates, seed=seed, **kwargs)
    if model == "sliding_window":
        return sliding_window_stream(graph, num_updates, seed=seed, **kwargs)
    raise ValueError(f"unknown churn model {model!r}; known: {CHURN_MODELS}")
