"""Integral matchings from the algorithm's fractional duals.

The vertex cover LP's dual is fractional matching (Figure 1 of the paper);
the algorithm's ``{x_e}`` is therefore *almost* a matching.  This module
rounds it to an integral one and turns it into a second, independent lower
bound on OPT:

    any cover takes ≥ 1 endpoint of every matching edge, and matching
    edges are disjoint, so  ``OPT ≥ Σ_{(u,v) ∈ M} min(w(u), w(v))``.

The two bounds (dual value vs matching bound) are incomparable in general;
:func:`combined_lower_bound` takes the max.  The rounding is greedy in
decreasing dual order, which concentrates the integral matching on the
edges the algorithm priced highest.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, spawn_rng, PURPOSE_BASELINE

__all__ = [
    "extract_matching",
    "greedy_maximal_matching",
    "matching_lower_bound",
    "is_matching",
    "combined_lower_bound",
]


def is_matching(graph: WeightedGraph, edge_mask: np.ndarray) -> bool:
    """True iff the selected edges are pairwise vertex-disjoint."""
    mask = np.asarray(edge_mask, dtype=bool)
    if mask.shape != (graph.m,):
        raise ValueError(f"edge_mask must have shape ({graph.m},)")
    counts = graph.incident_counts(mask)
    return bool((counts <= 1).all())


def extract_matching(graph: WeightedGraph, x: np.ndarray) -> np.ndarray:
    """Greedy rounding of a fractional matching to an integral one.

    Scans edges in decreasing ``x_e`` (ties by edge id for determinism) and
    keeps every edge whose endpoints are still unmatched.  The result is a
    *maximal* matching on the support of ``x`` plus remaining edges.

    Returns a boolean edge mask.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (graph.m,):
        raise ValueError(f"x must have shape ({graph.m},)")
    order = np.lexsort((np.arange(graph.m), -x))
    matched = np.zeros(graph.n, dtype=bool)
    chosen = np.zeros(graph.m, dtype=bool)
    eu, ev = graph.edges_u, graph.edges_v
    for e in order:
        u, v = int(eu[e]), int(ev[e])
        if not matched[u] and not matched[v]:
            chosen[e] = True
            matched[u] = True
            matched[v] = True
    return chosen


def greedy_maximal_matching(
    graph: WeightedGraph, *, seed: SeedLike = None
) -> np.ndarray:
    """Maximal matching by a (seeded) random edge scan.

    The classical LOCAL building block [II86]; used here as the matching
    reference that does not look at the duals.
    """
    rng = spawn_rng(seed, PURPOSE_BASELINE)
    order = rng.permutation(graph.m)
    matched = np.zeros(graph.n, dtype=bool)
    chosen = np.zeros(graph.m, dtype=bool)
    eu, ev = graph.edges_u, graph.edges_v
    for e in order:
        u, v = int(eu[e]), int(ev[e])
        if not matched[u] and not matched[v]:
            chosen[e] = True
            matched[u] = True
            matched[v] = True
    return chosen


def matching_lower_bound(
    graph: WeightedGraph,
    edge_mask: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
) -> float:
    """``Σ_{(u,v) ∈ M} min(w(u), w(v))`` — a sound lower bound on OPT.

    Raises if ``edge_mask`` is not a matching (the bound would be unsound).
    """
    if not is_matching(graph, edge_mask):
        raise ValueError("edge_mask is not a matching; the bound would be unsound")
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)
    mask = np.asarray(edge_mask, dtype=bool)
    wu = w[graph.edges_u[mask]]
    wv = w[graph.edges_v[mask]]
    return float(np.minimum(wu, wv).sum())


def combined_lower_bound(graph: WeightedGraph, x: np.ndarray) -> float:
    """Best of the dual value and the rounded-matching bound.

    The dual value must be discounted by its worst constraint violation to
    stay sound (see :mod:`repro.core.certificates`); the matching bound is
    sound as-is.
    """
    from repro.core.certificates import fractional_matching_violation

    x = np.asarray(x, dtype=np.float64)
    load = fractional_matching_violation(graph, x)
    dual_bound = float(x.sum()) / max(1.0, load)
    matching = extract_matching(graph, x)
    return max(dual_bound, matching_lower_bound(graph, matching))
