"""Algorithm parameters for the MPC MWVC algorithm (Algorithm 2).

The paper fixes several constants for the purpose of its asymptotic, w.h.p.
analysis: machines ``m = √d̄``, iterations per phase
``I = log m / (10·log 15)``, switch-over at average degree ``log^30 n``, and
estimator bias ``2 · 15^t · m^{-0.2}``.  At any graph size a laptop can hold,
those constants degenerate: ``log^30 n`` exceeds every feasible degree (so
the phase loop would never run), ``I < 1`` (so no iterations would be
simulated), and the bias exceeds the freezing threshold (so every vertex
would freeze at t = 0).

:class:`MPCParameters` therefore exposes each constant as a parameter with
two presets:

* :meth:`MPCParameters.paper` — the verbatim formulas (kept so unit tests can
  pin them, and so the degeneracy itself is documented by executable code);
* :meth:`MPCParameters.practical` — identical *structure* with constants
  usable at experimental scale, chosen to preserve the paper's own targets
  (see DESIGN.md §4): per-phase degree decay ``(1-ε)^I = d^{-1/20}``, stop
  when the remaining edges fit in a single machine's ``Θ(n)`` memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.utils.validation import check_fraction, check_positive

__all__ = ["MPCParameters"]

_LOG15 = math.log(15.0)


@dataclass(frozen=True)
class MPCParameters:
    """Tunable constants of Algorithm 2.

    Attributes
    ----------
    eps:
        Accuracy parameter ε ∈ (0, 1/4).  Thresholds are drawn from
        ``[1-4ε, 1-2ε]``; active duals grow by ``1/(1-ε)`` per iteration;
        the approximation guarantee is ``2 + O(ε)``.  (The paper states
        ε < 1/2 for the round analysis, but the approximation proof —
        Proposition 3.3's ``2/(1-4ε)`` factor — and a positive threshold
        interval both require ε < 1/4, so that is enforced here.)
    high_degree_exponent:
        The ``V^high`` cutoff is ``d̄ ^ high_degree_exponent`` (paper: 0.95).
    machine_rule:
        ``"sqrt_degree"`` — ``m = max(min_machines, ⌈√d̄⌉)`` (paper: ``√d̄``).
    min_machines:
        Lower bound on the number of machines per phase (practical floor so
        that sampling actually happens; the paper's regime has ``m`` huge).
    iteration_rule:
        ``"paper"``: ``I = ⌊log m / (10·log 15)⌋`` (degenerates to 0 at
        laptop scale); ``"practical"``: ``I = max(1, ⌈log d̄ /
        (20·log(1/(1-ε)))⌉)``, which preserves the paper's per-phase decay
        target ``(1-ε)^I = d̄^{-1/20}``.
    iterations_override:
        Fixed per-phase iteration count; overrides ``iteration_rule``.
    stop_rule:
        ``"paper"``: run phases while ``d̄ > log^30 n``; ``"practical"``: run
        phases while the number of nonfrozen edges exceeds the single-machine
        capacity ``S``.
    memory_factor:
        Machine memory is ``S = memory_factor · n`` words (the Θ̃(n) of the
        near-linear regime).
    bias_coeff, bias_growth, bias_machine_exponent:
        Estimator bias ``bias(t) = bias_coeff · bias_growth^t ·
        m^{bias_machine_exponent} · w'(v)`` (paper: ``2 · 15^t · m^{-0.2}``,
        made dimensionally consistent with Corollary 4.12 by the ``w'(v)``
        factor — see DESIGN.md §2).  The practical default is unbiased
        (coeff 0), the GGK+18 style estimator.
    max_phases:
        Hard cap on compressed phases (safety net; the practical stop rule
        terminates long before this on all tested inputs).
    stall_phases:
        Fall through to the final centralized phase after this many
        consecutive phases without reducing the nonfrozen edge count
        (robustness guard for adversarially tiny inputs).
    """

    eps: float = 0.1
    high_degree_exponent: float = 0.95
    machine_rule: str = "sqrt_degree"
    min_machines: int = 2
    iteration_rule: str = "practical"
    iterations_override: int | None = None
    stop_rule: str = "practical"
    memory_factor: float = 16.0
    bias_coeff: float = 0.0
    bias_growth: float = 1.0
    bias_machine_exponent: float = -0.2
    max_phases: int = 64
    stall_phases: int = 3

    def __post_init__(self):
        check_fraction("eps", self.eps, low=0.0, high=0.25)
        check_fraction("high_degree_exponent", self.high_degree_exponent, low=0.0, high=1.0)
        check_positive("memory_factor", self.memory_factor)
        if self.machine_rule != "sqrt_degree":
            raise ValueError(f"unknown machine_rule {self.machine_rule!r}")
        if self.iteration_rule not in ("paper", "practical"):
            raise ValueError(f"unknown iteration_rule {self.iteration_rule!r}")
        if self.stop_rule not in ("paper", "practical"):
            raise ValueError(f"unknown stop_rule {self.stop_rule!r}")
        if self.min_machines < 1:
            raise ValueError("min_machines must be >= 1")
        if self.iterations_override is not None and self.iterations_override < 0:
            raise ValueError("iterations_override must be >= 0")
        if self.max_phases < 1:
            raise ValueError("max_phases must be >= 1")
        if self.stall_phases < 1:
            raise ValueError("stall_phases must be >= 1")
        if self.bias_coeff < 0:
            raise ValueError("bias_coeff must be >= 0")
        if self.bias_growth <= 0:
            raise ValueError("bias_growth must be > 0")

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls, eps: float = 0.1) -> "MPCParameters":
        """The paper's verbatim constants (degenerate at laptop scale)."""
        return cls(
            eps=eps,
            iteration_rule="paper",
            stop_rule="paper",
            bias_coeff=2.0,
            bias_growth=15.0,
            bias_machine_exponent=-0.2,
            min_machines=1,
        )

    @classmethod
    def practical(cls, eps: float = 0.1, **overrides) -> "MPCParameters":
        """Laptop-scale preset preserving the paper's structural targets."""
        return cls(eps=eps, **overrides)

    def with_(self, **overrides) -> "MPCParameters":
        """Copy with selected fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    # derived quantities (shared by both execution engines)
    # ------------------------------------------------------------------ #
    def num_machines(self, avg_degree: float) -> int:
        """Machines for a phase: ``m = max(min_machines, ⌈√d̄⌉)``."""
        if avg_degree < 0:
            raise ValueError("avg_degree must be >= 0")
        return max(self.min_machines, int(math.ceil(math.sqrt(max(avg_degree, 1.0)))))

    def iterations_per_phase(self, avg_degree: float, num_machines: int) -> int:
        """Compressed LOCAL iterations ``I`` for a phase."""
        if self.iterations_override is not None:
            return int(self.iterations_override)
        if self.iteration_rule == "paper":
            # I = log m / (10 log 15); floors to 0 for any feasible m.
            return max(0, int(math.log(max(num_machines, 2)) / (10.0 * _LOG15)))
        # practical: (1-eps)^I = d^{-1/20}, i.e. the paper's per-phase decay
        # target with the union-bound safety factor removed.
        d = max(avg_degree, 2.0)
        denom = 20.0 * math.log(1.0 / (1.0 - self.eps))
        return max(1, int(math.ceil(math.log(d) / denom)))

    def high_degree_cutoff(self, avg_degree: float) -> float:
        """Degree threshold for ``V^high``: ``d̄ ^ high_degree_exponent``."""
        return max(avg_degree, 0.0) ** self.high_degree_exponent

    def machine_capacity_words(self, n: int) -> int:
        """Per-machine memory ``S = memory_factor · n`` words."""
        return max(1, int(self.memory_factor * n))

    def final_phase_edge_capacity(self, n: int) -> int:
        """Largest residual edge count the final centralized phase accepts.

        The final phase gathers every nonfrozen edge to one machine (3 words
        per edge in flight, plus the solver's own per-edge state), so the
        practical switch-over happens at ``S / 8`` edges — guaranteeing the
        gather and the solve both fit within the ``S``-word limits.
        """
        return max(1, self.machine_capacity_words(n) // 8)

    def should_continue(self, *, n: int, nonfrozen_edges: int, avg_degree: float) -> bool:
        """Whether the phase loop continues (Line 2 condition)."""
        if self.stop_rule == "paper":
            return avg_degree > math.log(max(n, 3)) ** 30
        return nonfrozen_edges > self.final_phase_edge_capacity(n)

    def bias(self, t: int, num_machines: int) -> float:
        """Estimator bias multiplier on ``w'(v)`` at local iteration ``t``."""
        if self.bias_coeff == 0.0:
            return 0.0
        return (
            self.bias_coeff
            * self.bias_growth ** int(t)
            * float(num_machines) ** self.bias_machine_exponent
        )

    def threshold_interval(self) -> tuple[float, float]:
        """Support of the random thresholds: ``[1-4ε, 1-2ε]``."""
        return (1.0 - 4.0 * self.eps, 1.0 - 2.0 * self.eps)

    def growth_factor(self) -> float:
        """Per-iteration dual growth ``1/(1-ε)``."""
        return 1.0 / (1.0 - self.eps)
