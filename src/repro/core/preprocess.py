"""Kernelization and the full solving pipeline.

Production vertex-cover codes never hand the raw graph to the expensive
solver; they shrink it first with optimality-preserving reductions.  This
module implements the two classical ones for the *weighted* problem and a
pipeline that composes them with any solver in the package:

* **Leaf reduction** (exchange argument): for a degree-1 vertex ``v`` with
  neighbor ``u`` and ``w(u) ≤ w(v)``, some optimal cover contains ``u`` —
  replacing ``v`` by ``u`` in any cover keeps it feasible and no more
  expensive.  Force ``u`` in, delete its edges, repeat to fixpoint.
* **Nemhauser–Trotter (LP) reduction**: solve the LP relaxation; by the NT
  theorem there is an optimal integral cover containing every vertex with
  ``z_v = 1`` and avoiding every vertex with ``z_v = 0``; only the
  half-integral kernel needs search.  (Persistency holds for *some*
  optimum; approximation guarantees of the kernel solver carry through
  because LP(kernel) + forced weight lower-bounds OPT.)

:func:`solve_with_preprocessing` chains: component split -> leaf reduction
-> optional NT reduction -> per-component solver -> stitch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.baselines.lp import lp_relaxation
from repro.graphs.components import split_components
from repro.graphs.graph import WeightedGraph

__all__ = [
    "ReductionResult",
    "leaf_reduction",
    "nemhauser_trotter_reduction",
    "solve_with_preprocessing",
]


@dataclass
class ReductionResult:
    """Outcome of a reduction pass.

    Attributes
    ----------
    forced_in:
        Vertices some optimal cover contains (safe to take).
    removed:
        Vertices proven removable (their edges are covered by
        ``forced_in``, or they are excluded by persistency).
    kernel_mask:
        Vertices still undecided; the kernel is the induced subgraph on
        them.
    """

    forced_in: np.ndarray
    removed: np.ndarray
    kernel_mask: np.ndarray

    @property
    def num_forced(self) -> int:
        return int(self.forced_in.sum())


def leaf_reduction(graph: WeightedGraph) -> ReductionResult:
    """Iterated weighted leaf rule (see module docstring).

    Runs the rule to fixpoint.  Complexity ``O((n + m) · passes)`` with
    vectorized passes; the pass count is bounded by the graph's depth of
    nested pendant structure (small in practice).
    """
    n = graph.n
    forced = np.zeros(n, dtype=bool)
    covered_edge = np.zeros(graph.m, dtype=bool)
    eu, ev = graph.edges_u, graph.edges_v
    w = graph.weights

    while True:
        live = ~covered_edge
        deg = graph.incident_counts(live)
        # Find live leaf edges: exactly one endpoint has degree 1 (or both).
        lu = eu[live]
        lv = ev[live]
        leaf_u = deg[lu] == 1
        leaf_v = deg[lv] == 1
        # For an edge with a leaf endpoint, the *other* endpoint is forced
        # when its weight is <= the leaf's.
        force_v = leaf_u & (w[lv] <= w[lu]) & ~forced[lv]
        force_u = leaf_v & (w[lu] <= w[lv]) & ~forced[lu]
        newly = np.unique(np.concatenate([lv[force_v], lu[force_u]]))
        newly = newly[~forced[newly]]
        if newly.size == 0:
            break
        forced[newly] = True
        covered_edge |= forced[eu] | forced[ev]

    removed = np.zeros(n, dtype=bool)
    live = ~covered_edge
    deg = graph.incident_counts(live)
    removed = (~forced) & (deg == 0) & (graph.degrees > 0)
    kernel = (~forced) & (deg > 0)
    return ReductionResult(forced_in=forced, removed=removed, kernel_mask=kernel)


def nemhauser_trotter_reduction(graph: WeightedGraph) -> ReductionResult:
    """LP-persistency reduction (see module docstring).

    Vertices with ``z_v ≥ 1 - tol`` are forced in; vertices with
    ``z_v ≤ tol`` are removed; the half-integral remainder is the kernel.
    """
    tol = 1e-6
    lp = lp_relaxation(graph)
    if not lp.ok:
        raise RuntimeError(f"LP solver failed with status {lp.status}")
    forced = lp.z >= 1.0 - tol
    removed = lp.z <= tol
    kernel = ~(forced | removed)
    # Sanity: an edge between two removed vertices would be uncoverable.
    fu, fv = graph.endpoint_values(removed)
    if bool((fu & fv).any()):  # pragma: no cover - would indicate LP bug
        raise AssertionError("NT reduction left an edge between excluded vertices")
    return ReductionResult(forced_in=forced, removed=removed, kernel_mask=kernel)


def solve_with_preprocessing(
    graph: WeightedGraph,
    solver: Callable[[WeightedGraph], np.ndarray],
    *,
    use_leaf_reduction: bool = True,
    use_nt_reduction: bool = False,
    min_component_size: int = 2,
) -> np.ndarray:
    """Full pipeline: components -> reductions -> solver -> stitched cover.

    Parameters
    ----------
    solver:
        ``f(subgraph) -> boolean cover mask`` applied to each kernel
        component (e.g. ``lambda g: minimum_weight_vertex_cover(g,
        seed=0).in_cover`` or ``lambda g: exact_mwvc(g).in_cover``).
    use_leaf_reduction, use_nt_reduction:
        Which reductions to run (NT costs an LP solve per component; off by
        default).
    min_component_size:
        Components below this size are solved exactly by enumeration
        (size ≤ 2 means single edges: take the cheaper endpoint).

    Returns
    -------
    Boolean cover mask over the *input* graph, guaranteed feasible.
    """
    n = graph.n
    cover = np.zeros(n, dtype=bool)
    for sub, vids, _ in split_components(graph):
        local = np.zeros(sub.n, dtype=bool)
        work = sub
        work_ids = np.arange(sub.n)

        if use_leaf_reduction and work.m:
            red = leaf_reduction(work)
            local[work_ids[red.forced_in]] = True
            if red.kernel_mask.any():
                work, kernel_ids, _ = work.induced_subgraph(red.kernel_mask)
                work_ids = work_ids[kernel_ids]
            else:
                work = None

        if work is not None and use_nt_reduction and work.m:
            red = nemhauser_trotter_reduction(work)
            local[work_ids[red.forced_in]] = True
            if red.kernel_mask.any():
                work, kernel_ids, _ = work.induced_subgraph(red.kernel_mask)
                work_ids = work_ids[kernel_ids]
            else:
                work = None

        if work is not None and work.m:
            if work.n <= min_component_size:
                # A component this small is a single edge: cheaper endpoint.
                u, v = int(work.edges_u[0]), int(work.edges_v[0])
                pick = u if work.weights[u] <= work.weights[v] else v
                local[work_ids[pick]] = True
            else:
                mask = np.asarray(solver(work), dtype=bool)
                if mask.shape != (work.n,):
                    raise ValueError("solver returned a mask of the wrong shape")
                local[work_ids[mask]] = True

        cover[vids[local]] = True

    uncovered = graph.uncovered_edges(cover)
    if uncovered.size:  # pragma: no cover - reductions are safe by theorem
        raise AssertionError(f"pipeline produced a non-cover ({uncovered.size} edges)")
    return cover
