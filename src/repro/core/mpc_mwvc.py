"""Algorithm 2: MPC simulation for minimum weight vertex cover.

:func:`minimum_weight_vertex_cover` is the package's headline entry point.
It executes the phase loop of Algorithm 2 — plan (Lines 2a–2f), simulate
(2g–2i), fold back (2h–2k) — until the residual problem fits a single
machine, then finishes with the centralized Algorithm 1 (Line 3) and returns
the frozen vertices together with the dual certificate.

Two engines execute the phases:

* ``engine="vectorized"`` — NumPy whole-graph arrays; MPC round costs are
  *predicted* from :mod:`repro.core.accounting`.  This is the engine for
  experiments at scale.
* ``engine="cluster"`` — explicit message passing on a
  :class:`repro.mpc.Cluster` with capacity enforcement; round costs are
  *measured*.  This is the engine that proves the algorithm really is a
  valid MPC protocol; it matches the vectorized engine decision-for-decision
  (same seeds, same plans, same freezes).

Example
-------
>>> from repro.graphs import gnp_average_degree, uniform_weights
>>> g = gnp_average_degree(2000, 32.0, seed=1)
>>> g = g.with_weights(uniform_weights(g.n, seed=2))
>>> res = minimum_weight_vertex_cover(g, eps=0.1, seed=3)
>>> bool(res.verify(g))
True
>>> res.certificate.certified_ratio < 3.0
True
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core import accounting
from repro.core.centralized import run_centralized
from repro.core.certificates import certify_cover
from repro.core.params import MPCParameters
from repro.core.phase_kernel import (
    GlobalState,
    PhaseOutcome,
    PhasePlan,
    apply_outcome,
    plan_phase,
    simulate_phase_vectorized,
)
from repro.core.result import MWVCResult, PhaseRecord
from repro.graphs.graph import WeightedGraph
from repro.utils.rng import (
    PURPOSE_PARTITION,
    PURPOSE_THRESHOLDS,
    RngFactory,
    SeedLike,
)

__all__ = ["minimum_weight_vertex_cover", "VectorizedEngine"]

#: Phase-index offset for the final centralized phase's threshold stream
#: (keeps it disjoint from any compressed phase's stream).
_FINAL_PHASE_STREAM = 1_000_000


class VectorizedEngine:
    """Array-based phase executor with analytic round accounting."""

    name = "vectorized"

    def __init__(
        self,
        graph: WeightedGraph,
        weights: np.ndarray,
        params: MPCParameters,
        num_workers: int,
        capacity: int | None,
    ):
        self.graph = graph
        self.weights = weights
        self.params = params
        self.num_workers = int(num_workers)
        self.capacity = capacity
        self.rounds = 0
        self.phase_cost_breakdown: List[dict] = []

    def sync_state(self, wprime, resid_degree, frozen) -> None:
        """No distributed state to mirror in the vectorized engine."""

    def run_phase(self, plan: PhasePlan, *, trace: bool = False) -> PhaseOutcome:
        outcome = simulate_phase_vectorized(plan, self.params, trace=trace)
        cost = accounting.phase_cost(
            n=self.graph.n,
            n_high=plan.num_high,
            num_workers=self.num_workers,
            num_sim_machines=plan.num_machines,
            capacity=self.capacity,
        )
        self.rounds += cost.total
        self.phase_cost_breakdown.append(cost.as_dict())
        return outcome

    def finalize(self, remaining_edges: int, frozen_mask: np.ndarray) -> None:
        """Charge the final mask broadcast + gather + solve rounds."""
        self.rounds += accounting.final_phase_cost(
            num_workers=self.num_workers,
            remaining_edges=remaining_edges,
            n=self.graph.n,
            capacity=self.capacity,
        )

    def collect(self, state: GlobalState) -> None:  # pragma: no cover - interface symmetry
        """No distributed state to collect in the vectorized engine."""


def _make_engine(
    engine: str,
    graph: WeightedGraph,
    weights: np.ndarray,
    params: MPCParameters,
    num_workers: int,
    capacity: int | None,
    kill_schedule,
):
    if engine == "vectorized":
        if kill_schedule:
            raise ValueError("kill_schedule requires engine='cluster'")
        return VectorizedEngine(graph, weights, params, num_workers, capacity)
    if engine == "cluster":
        from repro.core.engine_cluster import ClusterEngine

        return ClusterEngine(
            graph, weights, params, num_workers, capacity, kill_schedule=kill_schedule
        )
    raise ValueError(f"unknown engine {engine!r}; expected 'vectorized' or 'cluster'")


def minimum_weight_vertex_cover(
    graph: WeightedGraph,
    *,
    eps: float = 0.1,
    params: Optional[MPCParameters] = None,
    seed: SeedLike = None,
    engine: str = "vectorized",
    collect_trace: bool = False,
    validate: bool = True,
    kill_schedule=None,
) -> MWVCResult:
    """Compute a (2+O(ε))-approximate minimum weight vertex cover in MPC.

    Parameters
    ----------
    graph:
        Input :class:`~repro.graphs.WeightedGraph` (weights strictly
        positive).
    eps:
        Accuracy parameter ε ∈ (0, 1/4); ignored if ``params`` is given.
    params:
        Full :class:`~repro.core.params.MPCParameters`; overrides ``eps``.
    seed:
        Root seed; runs with equal seeds (and either engine) make identical
        freezing decisions.
    engine:
        ``"vectorized"`` (default) or ``"cluster"`` (model-faithful message
        passing with capacity enforcement).
    collect_trace:
        Attach per-phase ``(plan, outcome)`` pairs, including per-iteration
        estimator traces, to the result (experiments E4/E6).
    validate:
        Run internal invariant checks after every phase.
    kill_schedule:
        Cluster engine only: ``{round_index: [machine_ids]}`` failure
        injection.

    Returns
    -------
    MWVCResult
        Cover, duals, certificate, per-phase records, and MPC round count.
    """
    if params is None:
        params = MPCParameters(eps=eps)
    n = graph.n
    weights = graph.weights
    state = GlobalState.initial(graph, weights)
    factory = RngFactory(seed)

    capacity = params.machine_capacity_words(n) if n else None
    initial_machines = params.num_machines(graph.average_degree)
    num_workers = accounting.cluster_width(
        n=n, m_edges=graph.m, initial_machines=initial_machines, capacity=capacity
    )
    eng = _make_engine(engine, graph, weights, params, num_workers, capacity, kill_schedule)

    phases: List[PhaseRecord] = []
    traces: List[Tuple[PhasePlan, PhaseOutcome]] = []
    stall = 0
    stalled = False
    edges_before = state.nonfrozen_edge_count(graph)
    phase_index = 0

    while params.should_continue(
        n=n, nonfrozen_edges=edges_before, avg_degree=state.average_residual_degree(graph)
    ):
        if phase_index >= params.max_phases:
            stalled = True
            break
        partition_seed = int(
            factory.for_purpose(PURPOSE_PARTITION, phase_index).integers(2**63)
        )
        threshold_seed = int(
            factory.for_purpose(PURPOSE_THRESHOLDS, phase_index).integers(2**63)
        )
        plan = plan_phase(
            graph,
            state,
            params,
            phase_index=phase_index,
            partition_seed=partition_seed,
            threshold_seed=threshold_seed,
            max_machines=num_workers,
        )
        rounds_before = eng.rounds
        eng.sync_state(state.wprime, state.resid_degree, state.frozen)
        outcome = eng.run_phase(plan, trace=collect_trace)
        newly = apply_outcome(graph, weights, state, plan, outcome, validate=validate)
        edges_after = state.nonfrozen_edge_count(graph)
        phases.append(
            PhaseRecord(
                phase_index=phase_index,
                avg_degree=plan.avg_degree,
                cutoff=plan.cutoff,
                num_high=plan.num_high,
                num_inactive=plan.num_inactive,
                num_machines=plan.num_machines,
                iterations=plan.iterations,
                num_edges_high=plan.num_edges_high,
                num_local_edges=int(outcome.machine_edge_counts.sum()),
                max_machine_edges=int(outcome.machine_edge_counts.max(initial=0)),
                newly_frozen=newly,
                nonfrozen_edges_after=edges_after,
                avg_degree_after=state.average_residual_degree(graph),
                rounds=eng.rounds - rounds_before,
            )
        )
        if collect_trace:
            traces.append((plan, outcome))
        stall = stall + 1 if edges_after >= edges_before else 0
        edges_before = edges_after
        phase_index += 1
        if stall >= params.stall_phases:
            stalled = True
            break

    # ------------------------------------------------------------------ #
    # Line 3: final centralized phase on the nonfrozen induced subgraph.
    # ------------------------------------------------------------------ #
    final_edges = edges_before
    final_iterations = 0
    nonfrozen_ids = np.nonzero(~state.frozen)[0]
    if final_edges > 0 and nonfrozen_ids.size:
        eng.finalize(final_edges, state.frozen)
        sub, vids, eids = graph.induced_subgraph(nonfrozen_ids)
        final_seed = int(
            factory.for_purpose(PURPOSE_THRESHOLDS, _FINAL_PHASE_STREAM).integers(2**63)
        )
        res = run_centralized(
            sub,
            eps=params.eps,
            weights=state.wprime[vids],
            init="degree_scaled",
            seed=final_seed,
        )
        state.frozen[vids[res.in_cover]] = True
        state.x_final[eids] = res.x
        final_iterations = res.iterations

    in_cover = state.frozen.copy()
    x = state.x_final.copy()
    cert = certify_cover(graph, in_cover, x, weights=weights)
    if validate and not cert.is_cover:
        uncovered = graph.uncovered_edges(in_cover)
        raise AssertionError(
            f"algorithm returned a non-cover ({uncovered.size} uncovered edges) — internal bug"
        )

    cluster = getattr(eng, "cluster", None)
    return MWVCResult(
        in_cover=in_cover,
        x=x,
        cover_weight=cert.cover_weight,
        dual_value=cert.dual_value,
        certificate=cert,
        phases=phases,
        num_phases=len(phases),
        mpc_rounds=eng.rounds,
        final_iterations=final_iterations,
        final_edges=final_edges,
        engine=eng.name,
        params=params,
        stalled=stalled,
        traces=traces if collect_trace else None,
        cluster_metrics=cluster.metrics.summary() if cluster is not None else None,
    )
