"""Cover post-processing: redundancy pruning.

Primal–dual covers are not inclusion-minimal: when both endpoints of an
edge freeze in the same iteration, either one alone may already suffice.
:func:`prune_redundant_vertices` removes vertices greedily (most expensive
first) as long as the set remains a cover.  The result is inclusion-minimal
and never heavier; the approximation guarantee is untouched (the pruned
cover is a subset of the guaranteed one).

This is deliberately *not* part of Algorithm 2 — the paper's output is the
frozen set, and the reproduction keeps it that way.  Pruning is offered as
the optional quality pass a production deployment would bolt on (measured
in the E9 ablation bench).

In MPC terms the pass costs O(1) rounds per sweep: each vertex needs one
bit per incident edge ("is my counterpart in the cover?"), which is one
exchange over the edge set; the greedy order can be replaced by a random
priority order to stay symmetric.  The implementation here is the
sequential greedy (the strongest variant) since it is evaluated for
solution quality, not round complexity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["prune_redundant_vertices", "is_minimal_cover"]


def prune_redundant_vertices(
    graph: WeightedGraph,
    in_cover: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    candidates: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Greedily drop cover vertices whose removal keeps the cover valid.

    Vertices are visited in decreasing ``w(v)/deg(v)`` — the least
    cost-effective cover members go first (isolated vertices, with no
    coverage at all, lead; ties by id for determinism).  A vertex is
    droppable iff every incident edge's other endpoint is also in the
    (current) cover.

    Returns a new boolean mask; the input is not modified.

    Parameters
    ----------
    candidates:
        Optional restriction of the sweep: a boolean mask of shape
        ``(n,)`` or an array of vertex ids.  Only candidate vertices are
        considered for removal (non-candidates keep their state), making
        the pass O(candidate neighborhood) — the hot-path mode of
        incremental repair, where only the vertices touched by an update
        batch can have become redundant.  ``None`` sweeps every vertex.

    Raises
    ------
    ValueError
        If ``in_cover`` is not a vertex cover to begin with.
    """
    cover = np.asarray(in_cover, dtype=bool).copy()
    if cover.shape != (graph.n,):
        raise ValueError(f"in_cover must have shape ({graph.n},)")
    if not graph.is_vertex_cover(cover):
        raise ValueError("in_cover is not a vertex cover; nothing to prune")
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)

    # needed[v] = number of incident edges only covered by v.
    eu, ev = graph.edges_u, graph.edges_v
    only_u = cover[eu] & ~cover[ev]
    only_v = cover[ev] & ~cover[eu]
    needed = np.bincount(eu[only_u], minlength=graph.n) + np.bincount(
        ev[only_v], minlength=graph.n
    )

    if candidates is None:
        sweep = np.arange(graph.n, dtype=np.int64)
    else:
        cand = np.asarray(candidates)
        if cand.dtype == bool:
            if cand.shape != (graph.n,):
                raise ValueError(f"candidates mask must have shape ({graph.n},)")
            sweep = np.nonzero(cand)[0].astype(np.int64)
        else:
            sweep = np.unique(cand.astype(np.int64)) if cand.size else np.empty(0, np.int64)
            if sweep.size and (sweep[0] < 0 or sweep[-1] >= graph.n):
                raise ValueError(f"candidate ids must lie in [0, {graph.n})")

    with np.errstate(divide="ignore"):
        effectiveness = np.where(graph.degrees > 0, w / np.maximum(graph.degrees, 1), np.inf)
    order = sweep[np.lexsort((sweep, -effectiveness[sweep]))]
    indptr = graph.indptr
    adj_v = graph.adj_vertices
    for v in order:
        if not cover[v] or needed[v] > 0:
            continue
        cover[v] = False
        # Every incident edge is now solely covered by its other endpoint.
        for slot in range(int(indptr[v]), int(indptr[v + 1])):
            needed[adj_v[slot]] += 1
    return cover


def is_minimal_cover(graph: WeightedGraph, in_cover: np.ndarray) -> bool:
    """True iff ``in_cover`` is a vertex cover with no removable vertex."""
    cover = np.asarray(in_cover, dtype=bool)
    if not graph.is_vertex_cover(cover):
        return False
    eu, ev = graph.edges_u, graph.edges_v
    only_u = cover[eu] & ~cover[ev]
    only_v = cover[ev] & ~cover[eu]
    needed = np.bincount(eu[only_u], minlength=graph.n) + np.bincount(
        ev[only_v], minlength=graph.n
    )
    # A cover vertex with needed == 0 could be dropped.  Isolated cover
    # vertices (degree 0) are trivially droppable too.
    droppable = cover & (needed == 0)
    return not bool(droppable.any())
