"""Verification and approximation certificates via weak LP duality.

The primal–dual structure of the algorithm yields a *checkable certificate*
with every solution:

* the returned vertex set must cover all edges (checked exactly);
* the final duals ``{x_e}`` form a near-feasible fractional matching: for
  every vertex, ``Σ_{e∋v} x_e ≤ load_factor · w(v)`` where the measured
  ``load_factor`` is ``1 + O(ε)`` (Theorem 4.7 shows ``≤ 1 + 6ε`` w.h.p.);
* by weak duality (Lemma 3.2), ``Σ_e x_e / load_factor ≤ OPT``, so

      certified_ratio = w(C) · load_factor / Σ_e x_e  ≥  w(C) / OPT

  is a *sound upper bound* on the true approximation ratio, computable at
  any scale without knowing OPT.

Experiment E2 reports certified ratios next to exact ratios (small
instances) and LP-relaxation ratios (medium instances).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["CoverCertificate", "certify_cover", "fractional_matching_violation"]


@dataclass(frozen=True)
class CoverCertificate:
    """Certificate accompanying a vertex-cover solution.

    Attributes
    ----------
    is_cover:
        Whether every edge has a chosen endpoint (hard requirement).
    cover_weight:
        ``w(C)``.
    dual_value:
        ``Σ_e x_e``.
    load_factor:
        ``max(1, max_v Σ_{e∋v} x_e / w(v))`` — 1 means the duals are an
        exactly feasible fractional matching.
    opt_lower_bound:
        ``dual_value / load_factor ≤ OPT``.
    certified_ratio:
        ``cover_weight / opt_lower_bound`` — a sound upper bound on the
        solution's true approximation ratio (``inf`` when the dual value is
        zero, e.g. on edgeless graphs, where ``cover_weight`` is 0 too and
        the solution is trivially optimal).
    """

    is_cover: bool
    cover_weight: float
    dual_value: float
    load_factor: float
    opt_lower_bound: float
    certified_ratio: float

    def to_dict(self) -> dict:
        """Exact JSON-friendly form; inverse of :meth:`from_dict`.

        This is the wire format shared by ``repro stream`` records and the
        write-ahead log — one schema, so the two cannot drift.
        """
        return {
            "is_cover": bool(self.is_cover),
            "cover_weight": float(self.cover_weight),
            "dual_value": float(self.dual_value),
            "load_factor": float(self.load_factor),
            "opt_lower_bound": float(self.opt_lower_bound),
            "certified_ratio": float(self.certified_ratio),
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "CoverCertificate":
        """Rebuild a certificate from its :meth:`to_dict` form."""
        if not isinstance(spec, dict):
            raise ValueError(
                f"certificate record must be a dict, got {type(spec).__name__}"
            )
        missing = {f for f in cls.__dataclass_fields__} - set(spec)
        if missing:
            raise ValueError(f"certificate record missing keys {sorted(missing)}")
        return cls(
            is_cover=bool(spec["is_cover"]),
            cover_weight=float(spec["cover_weight"]),
            dual_value=float(spec["dual_value"]),
            load_factor=float(spec["load_factor"]),
            opt_lower_bound=float(spec["opt_lower_bound"]),
            certified_ratio=float(spec["certified_ratio"]),
        )

    def summary(self) -> dict:
        return self.to_dict()


def fractional_matching_violation(
    graph: WeightedGraph, x: np.ndarray, *, weights: np.ndarray | None = None
) -> float:
    """Worst relative dual-constraint violation of ``x``.

    Returns ``max_v (Σ_{e∋v} x_e) / w(v)``; values ``≤ 1`` mean ``x`` is a
    feasible fractional matching (Observation 3.1).  Returns 0.0 for graphs
    with no vertices.
    """
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)
    if graph.n == 0:
        return 0.0
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (graph.m,):
        raise ValueError(f"x must have shape ({graph.m},), got {x.shape}")
    if x.size and float(x.min()) < 0:
        raise ValueError("duals must be nonnegative")
    loads = graph.incident_sums(x)
    return float((loads / w).max())


def certify_cover(
    graph: WeightedGraph,
    in_cover: np.ndarray,
    x: np.ndarray,
    *,
    weights: np.ndarray | None = None,
) -> CoverCertificate:
    """Build the duality certificate for a solution ``(in_cover, x)``."""
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)
    is_cover = graph.is_vertex_cover(in_cover)
    cover_weight = float(w[np.asarray(in_cover, dtype=bool)].sum())
    dual_value = float(np.asarray(x, dtype=np.float64).sum())
    load = fractional_matching_violation(graph, x, weights=w)
    load_factor = max(1.0, load)
    if dual_value > 0:
        lower = dual_value / load_factor
        ratio = cover_weight / lower
    else:
        lower = 0.0
        ratio = 1.0 if cover_weight == 0.0 else float("inf")
    return CoverCertificate(
        is_cover=is_cover,
        cover_weight=cover_weight,
        dual_value=dual_value,
        load_factor=load_factor,
        opt_lower_bound=lower,
        certified_ratio=ratio,
    )
