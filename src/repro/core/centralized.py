"""Algorithm 1: the generic centralized primal–dual MWVC algorithm.

This is the LOCAL-model algorithm that Algorithm 2 round-compresses, and it
doubles as (a) the final phase of the MPC algorithm (Line 3), (b) the
O(log n)-round baseline of experiment E7 (one LOCAL iteration per MPC round),
and (c) the reference run of the coupling experiment E6.

Semantics (paper lines):

2. initialize a valid fractional matching ``{x_{e,0}}``;
3. thresholds ``T_{v,t} ∈ [1-4ε, 1-2ε]``;
4. while an active edge exists, iterate ``t``:
   (a) freeze every active vertex with ``y_{v,t} = Σ_{e∋v} x_{e,t} ≥ T_{v,t}·w(v)``
       (frozen vertices enter the cover; their incident edges freeze);
   (b) multiply every active edge's dual by ``1/(1-ε)``;
   (c) frozen edges keep their dual;
5. return the frozen vertices.

The loop is fully vectorized: one ``incident_sums`` (two bincounts) plus a
few masked array ops per iteration.

Termination: an edge active for ``k`` iterations has
``x_e ≥ x_{e,0}/(1-ε)^k``; once that exceeds ``w(u)`` the endpoint must have
frozen — contradiction.  So the loop ends within
``log_{1/(1-ε)}(max_v w(v) / min_e x_{e,0}) + 2`` iterations; the
implementation computes this bound and raises if it is ever exceeded (which
would indicate a bug, not an input problem).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.initialization import INIT_SCHEMES, degree_scaled_init
from repro.core.thresholds import ThresholdSampler
from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fraction

__all__ = ["CentralizedResult", "run_centralized", "termination_bound"]


@dataclass
class CentralizedResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    in_cover:
        Boolean mask of frozen vertices — the returned vertex cover.
    x:
        Final dual variables (a valid fractional matching), shape ``(m,)``.
    iterations:
        Number of while-loop iterations executed.
    freeze_iteration:
        Per-vertex iteration at which it froze; ``-1`` if never frozen.
    dual_value:
        ``Σ_e x_e`` — a lower bound on OPT by weak duality (Lemma 3.2).
    trace_y:
        When tracing: list of per-iteration dual-load vectors ``y_{·,t}``
        (the value *checked* at iteration ``t``, before freezing).
    trace_active:
        When tracing: list of per-iteration active-vertex masks (state at
        the *start* of iteration ``t``).
    """

    in_cover: np.ndarray
    x: np.ndarray
    iterations: int
    freeze_iteration: np.ndarray
    dual_value: float
    trace_y: List[np.ndarray] = field(default_factory=list)
    trace_active: List[np.ndarray] = field(default_factory=list)

    def cover_weight(self, graph: WeightedGraph) -> float:
        """Total weight of the returned cover."""
        return graph.cover_weight(self.in_cover)


def termination_bound(x0: np.ndarray, weights: np.ndarray, eps: float) -> int:
    """Upper bound on Algorithm 1 iterations for initialization ``x0``.

    ``log_{1/(1-ε)}(max w / min x0) + 2``; for the degree-scaled
    initialization this is the ``O(log Δ)`` of Proposition 3.4, for the
    uniform initialization it is ``O(log(W n))``.
    """
    if x0.size == 0:
        return 0
    ratio = float(weights.max()) / float(x0.min())
    return int(math.ceil(math.log(max(ratio, 1.0)) / math.log(1.0 / (1.0 - eps)))) + 2


def run_centralized(
    graph: WeightedGraph,
    *,
    eps: float = 0.1,
    weights: Optional[np.ndarray] = None,
    init: Union[str, np.ndarray] = "degree_scaled",
    thresholds: Optional[ThresholdSampler] = None,
    seed: SeedLike = None,
    max_iterations: Optional[int] = None,
    trace: bool = False,
) -> CentralizedResult:
    """Run Algorithm 1 on ``graph``.

    Parameters
    ----------
    graph:
        Input graph; ``weights`` overrides its vertex weights (Algorithm 2
        passes residual weights here).
    eps:
        Accuracy parameter ε ∈ (0, 1/4).
    init:
        Either a scheme name (see
        :data:`repro.core.initialization.INIT_SCHEMES`) or an explicit valid
        initial dual vector of shape ``(m,)``.
    thresholds:
        Threshold sampler; default: a fresh sampler from ``seed``.  Passing
        the sampler explicitly is how the coupling experiment forces the
        centralized and MPC runs to see identical draws.
    max_iterations:
        Early stop after this many iterations (used by the coupled phase
        comparison, which only runs ``I`` iterations).  Default: run to
        termination.
    trace:
        Record ``y`` and active-mask per iteration (memory ``O(iters · n)``).

    Returns
    -------
    CentralizedResult
    """
    check_fraction("eps", eps, low=0.0, high=0.25)
    n, m = graph.n, graph.m
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},)")
    if n and not (w > 0).all():
        raise ValueError("weights must be strictly positive")

    if isinstance(init, str):
        if init not in INIT_SCHEMES:
            raise ValueError(f"unknown init scheme {init!r}")
        x0 = INIT_SCHEMES[init](graph, weights=w)
    else:
        x0 = np.asarray(init, dtype=np.float64)
        if x0.shape != (m,):
            raise ValueError(f"init vector must have shape ({m},)")
        if m and not (x0 > 0).all():
            raise ValueError("initial duals must be strictly positive (paper Line 2)")

    sampler = thresholds if thresholds is not None else ThresholdSampler(seed, n, eps)
    if sampler.num_vertices != n:
        raise ValueError(
            f"threshold sampler covers {sampler.num_vertices} vertices, graph has {n}"
        )

    guard = termination_bound(x0, w, eps)
    limit = guard if max_iterations is None else min(max_iterations, guard)

    x = x0.copy()
    active_v = np.ones(n, dtype=bool)
    freeze_iteration = np.full(n, -1, dtype=np.int64)
    eu, ev = graph.edges_u, graph.edges_v
    active_e = np.ones(m, dtype=bool)
    growth = 1.0 / (1.0 - eps)

    result = CentralizedResult(
        in_cover=np.zeros(n, dtype=bool),
        x=x,
        iterations=0,
        freeze_iteration=freeze_iteration,
        dual_value=0.0,
    )

    t = 0
    while active_e.any():
        if t >= limit:
            if max_iterations is not None and t >= max_iterations:
                break
            raise RuntimeError(
                f"Algorithm 1 exceeded its termination bound of {guard} iterations; "
                "this indicates an invalid initialization or an internal bug"
            )
        y = graph.incident_sums(x)
        if trace:
            result.trace_y.append(y)
            result.trace_active.append(active_v.copy())
        T = sampler.column(t)
        newly = active_v & (y >= T * w)
        freeze_iteration[newly] = t
        active_v &= ~newly
        active_e &= active_v[eu] & active_v[ev]
        x[active_e] *= growth
        t += 1

    result.in_cover = freeze_iteration >= 0
    result.x = x
    result.iterations = t
    result.freeze_iteration = freeze_iteration
    result.dual_value = float(x.sum())
    return result
