"""The paper's asymptotic formulas, evaluated symbolically.

Laptop-scale executions (experiment E1) show the *mechanism* of Theorem 4.5
— per-phase decay ``d̄ → d̄^c`` — but the phase count itself saturates at 2
because feasible degrees are tiny on a doubly-logarithmic scale.  This
module evaluates the paper's own recursion at any scale, so the predicted
``O(log log d)`` growth curve can be tabulated next to the measured points:

* Theorem 4.5's degree recursion: ``d_{i+1} = 4·d_i^{1-2γ}`` with
  ``γ = log(1/(1-ε)) / (40·log 15)``, iterated until ``d_k ≤ log^30 n``;
* the phase-count bound stated in the proof:
  ``k ≤ log(log d / (30·log log n)) / log(1/(1-γ))``;
* Proposition 3.4's iteration bound ``log_{1/(1-ε)} Δ`` for Algorithm 1.

Everything works in ``log d`` space (degrees like ``10^100`` are perfectly
representable as exponents), making the doubly-logarithmic growth visible.

A reproduction finding worth stating explicitly: the recursion
``d_{i+1} = 4·d_i^{1-2γ}`` has fixed point ``4^{1/(2γ)}`` — about
``e^714`` at ε = 0.1 — and only sinks below the ``log^30 n`` switch-over
when ``30·log log n`` exceeds that, i.e. when ``n > 10^(10^10)``.  That is
the quantitative content of the theorem's "for sufficiently large n": the
paper's constants only produce a terminating phase schedule at scales
beyond physical inputs, which is exactly why this reproduction runs the
*structure* with practical constants (DESIGN.md §2) and checks the paper's
formulas symbolically here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "paper_gamma",
    "paper_phase_recursion",
    "paper_phase_count_bound",
    "centralized_iteration_bound",
    "AsymptoticPrediction",
    "predict",
]

_LOG15 = math.log(15.0)


def paper_gamma(eps: float) -> float:
    """γ = log(1/(1-ε)) / (40·log 15) — the decay constant of Theorem 4.5."""
    check_fraction("eps", eps, low=0.0, high=0.25)
    return math.log(1.0 / (1.0 - eps)) / (40.0 * _LOG15)


def paper_phase_recursion(
    log_d: float, log_n: float, eps: float, *, max_phases: int = 10_000
) -> List[float]:
    """Iterate Theorem 4.5's recursion in log-space.

    ``log d_{i+1} = log 4 + (1 - 2γ)·log d_i`` until
    ``log d_k ≤ 30·log log n``.  Returns the trajectory
    ``[log d_0, log d_1, ..., log d_k]`` (natural logs).

    Parameters
    ----------
    log_d:
        ``log d`` of the input average degree (e.g. ``math.log(1e50)``).
    log_n:
        ``log n`` of the input vertex count; the stop threshold is
        ``log^30 n``, i.e. ``30·log log n`` in log-space.
    """
    check_positive("log_d", log_d)
    check_positive("log_n", log_n)
    gamma = paper_gamma(eps)
    stop = 30.0 * math.log(max(log_n, math.e))
    traj = [log_d]
    while traj[-1] > stop:
        if len(traj) > max_phases:
            raise RuntimeError("phase recursion failed to converge (eps too small?)")
        traj.append(math.log(4.0) + (1.0 - 2.0 * gamma) * traj[-1])
        if traj[-1] >= traj[-2]:
            # Below the fixed point log4/(2γ) the recursion stops contracting;
            # the paper's "for sufficiently large n" kicks in here.
            break
    return traj


def paper_phase_count_bound(log_d: float, log_n: float, eps: float) -> float:
    """The closed-form bound from the proof of Theorem 4.5:
    ``k ≤ log( log d / (30·log log n) ) / log(1/(1-γ))`` (0 when the input
    already satisfies the stop condition)."""
    gamma = paper_gamma(eps)
    stop = 30.0 * math.log(max(log_n, math.e))
    if log_d <= stop:
        return 0.0
    return math.log(log_d / stop) / math.log(1.0 / (1.0 - gamma))


def centralized_iteration_bound(max_degree: float, eps: float) -> float:
    """Proposition 3.4: ``log_{1/(1-ε)} Δ`` LOCAL iterations."""
    check_positive("max_degree", max_degree)
    return math.log(max(max_degree, 1.0)) / math.log(1.0 / (1.0 - eps))


@dataclass(frozen=True)
class AsymptoticPrediction:
    """Predicted costs for one (n, d) point under the paper's constants."""

    log10_n: float
    log10_d: float
    phases_recursion: int
    phases_closed_form: float
    local_iterations: float

    def as_dict(self) -> dict:
        return {
            "log10_n": self.log10_n,
            "log10_d": self.log10_d,
            "paper_phases (recursion)": self.phases_recursion,
            "paper_phases (closed form)": self.phases_closed_form,
            "baseline_local_iters": self.local_iterations,
        }


def predict(log10_n: float, log10_d: float, eps: float = 0.1) -> AsymptoticPrediction:
    """Evaluate the paper's formulas at ``n = 10^log10_n, d = 10^log10_d``.

    ``phases_recursion`` iterates the actual recursion;
    ``phases_closed_form`` is the proof's bound; ``local_iterations`` is the
    pre-compression baseline (Proposition 3.4 with Δ ≈ d).
    """
    if log10_d > log10_n:
        raise ValueError("average degree cannot exceed n")
    ln = math.log(10.0)
    log_n = log10_n * ln
    log_d = log10_d * ln
    traj = paper_phase_recursion(log_d, log_n, eps)
    return AsymptoticPrediction(
        log10_n=log10_n,
        log10_d=log10_d,
        phases_recursion=len(traj) - 1,
        phases_closed_form=paper_phase_count_bound(log_d, log_n, eps),
        local_iterations=centralized_iteration_bound(math.exp(log_d), eps)
        if log_d < 700.0
        else log_d / math.log(1.0 / (1.0 - eps)),
    )
