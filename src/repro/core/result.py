"""Result types for the MPC MWVC algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.certificates import CoverCertificate
from repro.core.params import MPCParameters
from repro.core.phase_kernel import PhaseOutcome, PhasePlan
from repro.graphs.graph import WeightedGraph

__all__ = ["PhaseRecord", "MWVCResult"]


@dataclass(frozen=True)
class PhaseRecord:
    """Observables of one compressed phase (one row of experiments E1/E3/E4)."""

    phase_index: int
    avg_degree: float
    cutoff: float
    num_high: int
    num_inactive: int
    num_machines: int
    iterations: int
    num_edges_high: int
    num_local_edges: int
    max_machine_edges: int
    newly_frozen: int
    nonfrozen_edges_after: int
    avg_degree_after: float
    rounds: int

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class MWVCResult:
    """Solution + model costs + certificate for one MWVC run.

    Attributes
    ----------
    in_cover:
        Boolean vertex mask — the (2+O(ε))-approximate cover.
    x:
        Final edge duals (near-feasible fractional matching).
    cover_weight, dual_value:
        ``w(C)`` and ``Σ_e x_e``.
    certificate:
        Duality certificate (validity + certified approximation ratio).
    phases:
        Per-phase records (empty when the input was small enough to go
        straight to the final centralized phase).
    num_phases:
        Number of compressed phases executed.
    mpc_rounds:
        Total MPC rounds, including the final phase (measured on the
        cluster engine, predicted identically on the vectorized engine).
    final_iterations:
        Iterations of the concluding centralized run (Line 3).
    final_edges:
        Residual edge count handed to the final phase.
    engine:
        ``"vectorized"`` or ``"cluster"``.
    params:
        The parameter set used.
    stalled:
        True if the phase loop exited via the stall guard rather than the
        stop rule (never observed on the benchmark families; kept honest).
    traces:
        Optional per-phase ``(plan, outcome)`` pairs (``collect_trace=True``)
        feeding the coupling experiment E6 and the orientation diagnostics.
    cluster_metrics:
        Cluster-engine runs only: the measured communication summary
        (rounds, total words, per-round maxima, memory high-water).
    """

    in_cover: np.ndarray
    x: np.ndarray
    cover_weight: float
    dual_value: float
    certificate: CoverCertificate
    phases: List[PhaseRecord]
    num_phases: int
    mpc_rounds: int
    final_iterations: int
    final_edges: int
    engine: str
    params: MPCParameters
    stalled: bool = False
    traces: Optional[List[Tuple[PhasePlan, PhaseOutcome]]] = None
    cluster_metrics: Optional[dict] = None

    def cover_ids(self) -> np.ndarray:
        """Vertex ids in the cover."""
        return np.nonzero(self.in_cover)[0]

    def cover_size(self) -> int:
        """Number of vertices in the cover."""
        return int(self.in_cover.sum())

    def verify(self, graph: WeightedGraph) -> bool:
        """Re-check cover validity against the graph."""
        return graph.is_vertex_cover(self.in_cover)

    def summary(self) -> dict:
        """Scalar summary for tables."""
        return {
            "cover_weight": self.cover_weight,
            "cover_size": self.cover_size(),
            "dual_value": self.dual_value,
            "certified_ratio": self.certificate.certified_ratio,
            "num_phases": self.num_phases,
            "mpc_rounds": self.mpc_rounds,
            "final_iterations": self.final_iterations,
            "final_edges": self.final_edges,
            "engine": self.engine,
            "stalled": self.stalled,
        }
