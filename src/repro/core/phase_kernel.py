"""One compressed phase of Algorithm 2: planning, simulation, state update.

The orchestrator (:mod:`repro.core.mpc_mwvc`) runs Algorithm 2 as a loop of
phases.  Each phase is split into three stages so that the two execution
engines can share everything except the communication layer:

1. :func:`plan_phase` — the coordinator-side computation of Lines (2a)–(2f):
   average degree, the ``V^high`` / ``V^inactive`` split, residual weights,
   initial duals, machine count, iteration count, and the random partition.
   Pure function of the global state and two integer seeds; both engines
   call it identically.
2. ``simulate`` — Lines (2g)–(2i): the per-machine local simulation plus the
   edge-weight finalization and safety freeze.  The vectorized form lives
   here (:func:`simulate_phase_vectorized`); the message-passing form lives
   in :mod:`repro.core.engine_cluster`.  Both must produce bit-identical
   :class:`PhaseOutcome` for the same :class:`PhasePlan` (this holds because
   every floating-point reduction is per-vertex over that vertex's local
   edges in global-edge-id order in both engines).
3. :func:`apply_outcome` — Lines (2h aftermath)–(2k): fold the outcome into
   the global state (frozen flags, finalized duals, residual degrees and
   weights).

Vectorization note: the "for each machine in parallel" loop of Line (2g) is
computed as single whole-graph array operations.  This is sound because the
local simulation on machine ``i`` touches only edges with both endpoints on
machine ``i`` and only vertices assigned to machine ``i`` — the union over
machines is a disjoint union, so one masked pass over all local edges is the
same computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.params import MPCParameters
from repro.core.thresholds import ThresholdSampler
from repro.graphs.graph import WeightedGraph
from repro.mpc.partition import random_assignment

__all__ = ["PhasePlan", "PhaseOutcome", "GlobalState", "plan_phase", "simulate_phase_vectorized", "apply_outcome"]

#: Relative tolerance below which a residual weight counts as depleted.
_DEPLETED_RTOL = 1e-12


@dataclass
class GlobalState:
    """Mutable cross-phase state of Algorithm 2.

    Invariants (checked by :func:`apply_outcome` when ``validate=True``):

    * ``x_final[e] == 0`` for every nonfrozen edge — so residual weights are
      simply ``w - incident_sums(x_final)``;
    * ``wprime >= 0`` (up to float tolerance) for every nonfrozen vertex;
    * ``resid_degree[v]`` equals the number of nonfrozen edges at ``v``.
    """

    frozen: np.ndarray
    x_final: np.ndarray
    resid_degree: np.ndarray
    wprime: np.ndarray

    @classmethod
    def initial(cls, graph: WeightedGraph, weights: np.ndarray) -> "GlobalState":
        return cls(
            frozen=np.zeros(graph.n, dtype=bool),
            x_final=np.zeros(graph.m, dtype=np.float64),
            resid_degree=graph.degrees.astype(np.int64).copy(),
            wprime=weights.astype(np.float64).copy(),
        )

    def nonfrozen_edge_mask(self, graph: WeightedGraph) -> np.ndarray:
        fu, fv = graph.endpoint_values(self.frozen)
        return ~(fu | fv)

    def nonfrozen_edge_count(self, graph: WeightedGraph) -> int:
        return int(self.nonfrozen_edge_mask(graph).sum())

    def average_residual_degree(self, graph: WeightedGraph) -> float:
        """``d̄ = (1/n) Σ_{v nonfrozen} d(v)`` — denominator always ``n``
        (paper footnote 4)."""
        if graph.n == 0:
            return 0.0
        return float(self.resid_degree[~self.frozen].sum()) / graph.n


@dataclass
class PhasePlan:
    """Everything Lines (2a)–(2f) decide, frozen for the simulation stage."""

    phase_index: int
    n: int
    avg_degree: float
    cutoff: float
    high_ids: np.ndarray
    num_inactive: int
    num_machines: int
    iterations: int
    partition_seed: int
    threshold_seed: int
    assignment: np.ndarray
    wprime_high: np.ndarray
    edges_high: np.ndarray
    hu: np.ndarray
    hv: np.ndarray
    x0: np.ndarray

    @property
    def num_high(self) -> int:
        return int(self.high_ids.size)

    @property
    def num_edges_high(self) -> int:
        return int(self.edges_high.size)


@dataclass
class PhaseOutcome:
    """Results of Lines (2g)–(2i) for one phase.

    Attributes
    ----------
    freeze_iter:
        Per-``V^high``-vertex local freeze iteration in ``[0, I]``; ``I``
        means the vertex survived the local simulation.
    x_high:
        Line (2h) dual for every edge of ``E[V^high]``:
        ``x0 / (1-ε)^{t'}`` with ``t' = min(freeze_iter[u], freeze_iter[v])``.
    y_mpc:
        Line (2i) dual load ``Σ_{e∋v, e∈E[V^high]} x_high`` per high vertex.
    safety_frozen:
        High vertices frozen by the Line (2i) check
        (active after the simulation and ``y_mpc ≥ w'``).
    machine_edge_counts:
        ``|E[V_i]|`` per simulation machine — the Lemma 4.1 observable.
    trace_ytilde, trace_active:
        Per-iteration estimator values and active masks (coupling
        experiment E6); populated only when tracing.
    """

    freeze_iter: np.ndarray
    x_high: np.ndarray
    y_mpc: np.ndarray
    safety_frozen: np.ndarray
    machine_edge_counts: np.ndarray
    trace_ytilde: List[np.ndarray] = field(default_factory=list)
    trace_active: List[np.ndarray] = field(default_factory=list)

    def frozen_mask(self, iterations: int) -> np.ndarray:
        """High vertices frozen this phase (local sim or safety check)."""
        return (self.freeze_iter < iterations) | self.safety_frozen


def plan_phase(
    graph: WeightedGraph,
    state: GlobalState,
    params: MPCParameters,
    *,
    phase_index: int,
    partition_seed: int,
    threshold_seed: int,
    max_machines: Optional[int] = None,
) -> PhasePlan:
    """Lines (2a)–(2f): compute the phase plan from the global state.

    Deterministic given the two integer seeds; identical in both engines.
    """
    n = graph.n
    avg_degree = state.average_residual_degree(graph)
    cutoff = params.high_degree_cutoff(avg_degree)
    nonfrozen = ~state.frozen
    is_high = nonfrozen & (state.resid_degree >= cutoff)
    high_ids = np.nonzero(is_high)[0].astype(np.int64)
    num_inactive = int(nonfrozen.sum()) - int(high_ids.size)

    m_machines = params.num_machines(avg_degree)
    if max_machines is not None:
        m_machines = max(1, min(m_machines, int(max_machines)))
    iterations = params.iterations_per_phase(avg_degree, m_machines)

    assignment = random_assignment(
        np.random.default_rng(partition_seed), high_ids.size, m_machines
    )

    # Line (2c): initial duals on E[V^high] from residual weights and
    # *residual* degrees (Remark 4.2 — d(v) counts nonfrozen neighbors, not
    # neighbors inside V^high).
    eu, ev = graph.edges_u, graph.edges_v
    ehigh_mask = is_high[eu] & is_high[ev]
    edges_high = np.nonzero(ehigh_mask)[0].astype(np.int64)
    pos = np.full(n, -1, dtype=np.int64)
    pos[high_ids] = np.arange(high_ids.size, dtype=np.int64)
    hu = pos[eu[edges_high]]
    hv = pos[ev[edges_high]]

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(
            state.resid_degree > 0, state.wprime / np.maximum(state.resid_degree, 1), np.inf
        )
    x0 = np.minimum(ratio[eu[edges_high]], ratio[ev[edges_high]])

    return PhasePlan(
        phase_index=phase_index,
        n=n,
        avg_degree=avg_degree,
        cutoff=cutoff,
        high_ids=high_ids,
        num_inactive=num_inactive,
        num_machines=m_machines,
        iterations=iterations,
        partition_seed=int(partition_seed),
        threshold_seed=int(threshold_seed),
        assignment=assignment,
        wprime_high=state.wprime[high_ids].copy(),
        edges_high=edges_high,
        hu=hu,
        hv=hv,
        x0=x0,
    )


def simulate_phase_vectorized(
    plan: PhasePlan, params: MPCParameters, *, trace: bool = False
) -> PhaseOutcome:
    """Lines (2g)–(2i), all machines at once (see module docstring).

    The per-iteration loop matches Algorithm 2 Line (2g) exactly:
    at iteration ``t`` the estimator uses the *current* duals
    ``x^MPC_{e,t}`` of **all** local edges (frozen edges contribute their
    frozen value), freezing happens against threshold column ``t``, then
    still-active local edges grow by ``1/(1-ε)``.
    """
    n_high = plan.num_high
    I = plan.iterations
    m = plan.num_machines
    growth = params.growth_factor()

    au = plan.assignment[plan.hu] if plan.num_edges_high else np.empty(0, np.int64)
    av = plan.assignment[plan.hv] if plan.num_edges_high else np.empty(0, np.int64)
    is_local = au == av
    lu = plan.hu[is_local]
    lv = plan.hv[is_local]
    x_loc = plan.x0[is_local].copy()
    owner = au[is_local]
    machine_edge_counts = np.bincount(owner, minlength=m).astype(np.int64)

    sampler = ThresholdSampler(plan.threshold_seed, n_high, params.eps)
    freeze_iter = np.full(n_high, I, dtype=np.int64)
    active_v = np.ones(n_high, dtype=bool)
    outcome_trace_y: List[np.ndarray] = []
    outcome_trace_active: List[np.ndarray] = []

    for t in range(I):
        sums = np.bincount(lu, weights=x_loc, minlength=n_high) + np.bincount(
            lv, weights=x_loc, minlength=n_high
        )
        ytilde = params.bias(t, m) * plan.wprime_high + m * sums
        if trace:
            outcome_trace_y.append(ytilde)
            outcome_trace_active.append(active_v.copy())
        thresholds = sampler.column(t)
        newly = active_v & (ytilde >= thresholds * plan.wprime_high)
        freeze_iter[newly] = t
        active_v &= ~newly
        active_e = active_v[lu] & active_v[lv]
        x_loc[active_e] *= growth

    # Line (2h): finalize duals for every E[V^high] edge, local or cross.
    tprime = (
        np.minimum(freeze_iter[plan.hu], freeze_iter[plan.hv])
        if plan.num_edges_high
        else np.empty(0, np.int64)
    )
    x_high = plan.x0 * growth ** tprime.astype(np.float64)

    # Line (2i): safety freeze against the true (non-sampled) dual load.
    y_mpc = np.bincount(plan.hu, weights=x_high, minlength=n_high) + np.bincount(
        plan.hv, weights=x_high, minlength=n_high
    )
    safety_frozen = active_v & (y_mpc >= plan.wprime_high)

    return PhaseOutcome(
        freeze_iter=freeze_iter,
        x_high=x_high,
        y_mpc=y_mpc,
        safety_frozen=safety_frozen,
        machine_edge_counts=machine_edge_counts,
        trace_ytilde=outcome_trace_y,
        trace_active=outcome_trace_active,
    )


def apply_outcome(
    graph: WeightedGraph,
    weights: np.ndarray,
    state: GlobalState,
    plan: PhasePlan,
    outcome: PhaseOutcome,
    *,
    validate: bool = True,
) -> int:
    """Fold a phase outcome into the global state (Lines 2h-finalize .. 2k).

    Returns the number of vertices newly frozen this phase.

    Steps:

    * freeze the high vertices the outcome marked (local sim + safety);
    * finalize ``x_final`` for the now-frozen ``E[V^high]`` edges at their
      Line (2h) value;
    * edges of ``E[V^inactive; V^high]`` frozen by this phase keep
      ``x_final = 0`` (Line 2j) — already the array default;
    * recompute residual degrees (Line 2k) and residual weights (Line 2b of
      the next phase, done eagerly so the loop condition sees fresh state);
    * depleted-weight guard: any nonfrozen vertex whose residual weight has
      been driven to (numerical) zero is frozen defensively — its dual
      constraint is tight, so including it is exactly what Algorithm 1 would
      eventually do, and it removes zero-initial-dual edges that would stall
      the final centralized phase.
    """
    frozen_local = outcome.frozen_mask(plan.iterations)
    newly = plan.high_ids[frozen_local]
    state.frozen[newly] = True

    if plan.num_edges_high:
        edge_frozen_now = frozen_local[plan.hu] | frozen_local[plan.hv]
        ids = plan.edges_high[edge_frozen_now]
        state.x_final[ids] = outcome.x_high[edge_frozen_now]

    # Depleted-weight guard (see docstring).
    loads = graph.incident_sums(state.x_final)
    wprime = weights - loads
    depleted = (~state.frozen) & (wprime <= _DEPLETED_RTOL * weights)
    if depleted.any():
        state.frozen[depleted] = True
        # Their nonfrozen incident edges freeze at dual 0 — nothing to write.

    edge_nonfrozen = state.nonfrozen_edge_mask(graph)
    state.resid_degree = graph.incident_counts(edge_nonfrozen)
    state.wprime = np.maximum(wprime, 0.0)

    if validate:
        nz = state.x_final[edge_nonfrozen]
        if nz.size and float(np.abs(nz).max()) != 0.0:
            raise AssertionError("invariant violated: nonfrozen edge has nonzero final dual")
        # Frozen vertices may legitimately carry loads up to (1+6ε)·w
        # (Theorem 4.7); only *nonfrozen* vertices must keep w' >= 0.
        bad = (~state.frozen) & (wprime < -1e-9 * np.maximum(weights, 1.0))
        if bool(bad.any()):
            worst = float(wprime[~state.frozen].min())
            raise AssertionError(
                f"invariant violated: residual weight went negative ({worst:.3e}); "
                "the Line (2i) safety freeze should prevent this"
            )

    return int(frozen_local.sum()) + int(depleted.sum())
