"""MPC round-cost model shared by both execution engines.

The cluster engine (:mod:`repro.core.engine_cluster`) executes Algorithm 2
with explicit messages on a :class:`repro.mpc.Cluster` and therefore *measures*
its round count.  The vectorized engine computes identical results without
messages and must *predict* the same round count.  Both draw the per-step
fan-outs and round counts from this module, with the cluster engine passing
the prescribed fan-outs into the collectives, so the two engines agree by
construction (verified by experiment E11 and the engine-equality tests).

Protocol of one compressed phase (coordinator = machine 0, workers 1..W):

====  ==========================================================  =========
step  communication                                               rounds
====  ==========================================================  =========
A     broadcast phase state (w', residual degrees, nonfrozen       tree
      mask, seeds, scalars) — ``3n + O(1)`` words
B     route E[V^high] edges to their simulation machines           1
      (local simulation happens inside this round's compute)
C     gather per-vertex freeze iterations to coordinator           tree
D     broadcast combined freeze iterations — ``n_high`` words      tree
E     aggregate dual loads ``y^MPC`` (dense ``n``)                 tree
F     broadcast post-safety frozen mask — ``n`` words              tree
G     aggregate stacked [frozen dual sums; nonfrozen degree        tree
      counts] (dense ``2n``)
====  ==========================================================  =========

The final centralized phase gathers the ≤ ``S/8`` residual edges to the
coordinator (tree) and solves locally (one compute round).

Tree shapes replicate :mod:`repro.mpc.primitives` exactly:
*broadcast* grows the holder set by ``holders · fanout`` new targets per
round; *fan-in* (aggregate / gather) shrinks the participant count by
``⌈count / fanout⌉`` per round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

__all__ = [
    "fanout_for",
    "broadcast_round_count",
    "fanin_round_count",
    "PhaseCost",
    "phase_cost",
    "final_phase_cost",
    "cluster_width",
    "STATE_WORDS_PER_VERTEX",
    "HOME_WORDS_PER_EDGE",
    "SCALAR_STATE_WORDS",
]

#: Words per vertex in the phase-state broadcast: residual weight (float),
#: residual degree (int), nonfrozen flag (int).
STATE_WORDS_PER_VERTEX = 3

#: Scalar payload accompanying the state broadcast: seeds, machine count,
#: iteration count, cutoff — plus the dictionary key strings, which the
#: word-accounting model charges too (≈14 words).  Sized with headroom so
#: the prescribed broadcast fan-out never overshoots capacity, even on
#: tiny graphs where the fixed overhead is a visible fraction of S.
SCALAR_STATE_WORDS = 24

#: Words per edge in a worker's persistent home storage: endpoints, edge id,
#: finalized dual.
HOME_WORDS_PER_EDGE = 4


def fanout_for(capacity_words: int | None, item_words: int) -> int:
    """Tree fan-out for items of ``item_words`` under capacity ``S``.

    Mirrors :func:`repro.mpc.primitives.tree_fanout`, minus the cluster
    handle: ``max(2, S // item)`` (unbounded capacity => fan out to 1024,
    an arbitrary 'everything in one round' stand-in that both engines share).
    """
    if capacity_words is None:
        return 1024
    if item_words <= 0:
        return 1024
    return max(2, capacity_words // max(1, item_words))


def broadcast_round_count(num_targets: int, fanout: int) -> int:
    """Rounds for a broadcast tree reaching ``num_targets`` non-source machines."""
    if num_targets <= 0:
        return 0
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    holders, pending, rounds = 1, num_targets, 0
    while pending > 0:
        sent = min(pending, holders * fanout)
        pending -= sent
        holders += sent
        rounds += 1
    return rounds


def fanin_round_count(num_participants: int, fanout: int) -> int:
    """Rounds for a fan-in tree (aggregate/gather) over ``num_participants``."""
    if num_participants <= 1:
        return 0
    if fanout < 2:
        raise ValueError("fan-in fanout must be >= 2")
    count, rounds = num_participants, 0
    while count > 1:
        count = math.ceil(count / fanout)
        rounds += 1
    return rounds


@dataclass(frozen=True)
class PhaseCost:
    """Round breakdown of one compressed phase (steps A..G above)."""

    broadcast_state: int
    route_edges: int
    gather_freeze: int
    broadcast_freeze: int
    aggregate_loads: int
    broadcast_frozen_mask: int
    aggregate_state_updates: int

    @property
    def total(self) -> int:
        return (
            self.broadcast_state
            + self.route_edges
            + self.gather_freeze
            + self.broadcast_freeze
            + self.aggregate_loads
            + self.broadcast_frozen_mask
            + self.aggregate_state_updates
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "broadcast_state": self.broadcast_state,
            "route_edges": self.route_edges,
            "gather_freeze": self.gather_freeze,
            "broadcast_freeze": self.broadcast_freeze,
            "aggregate_loads": self.aggregate_loads,
            "broadcast_frozen_mask": self.broadcast_frozen_mask,
            "aggregate_state_updates": self.aggregate_state_updates,
            "total": self.total,
        }


def phase_fanouts(n: int, n_high: int, num_sim_machines: int, capacity: int | None) -> Dict[str, int]:
    """Prescribed fan-outs for each tree step of a phase."""
    return {
        "state": fanout_for(capacity, STATE_WORDS_PER_VERTEX * n + SCALAR_STATE_WORDS),
        "freeze_up": fanout_for(capacity, 2 * max(1, n_high)),
        "freeze_down": fanout_for(capacity, max(1, n_high)),
        "loads": fanout_for(capacity, max(1, n)),
        "mask": fanout_for(capacity, max(1, n)),
        "updates": fanout_for(capacity, 2 * max(1, n)),
    }


def phase_cost(
    *, n: int, n_high: int, num_workers: int, num_sim_machines: int, capacity: int | None
) -> PhaseCost:
    """Predicted MPC rounds for one compressed phase.

    Parameters
    ----------
    n:
        Number of vertices in the input graph.
    n_high:
        ``|V^high|`` this phase.
    num_workers:
        Total worker machines ``W`` (home storage holders).
    num_sim_machines:
        Machines participating in the local simulation this phase
        (``min(m, W)``).
    capacity:
        Per-machine capacity ``S`` in words.
    """
    f = phase_fanouts(n, n_high, num_sim_machines, capacity)
    return PhaseCost(
        broadcast_state=broadcast_round_count(num_workers, f["state"]),
        route_edges=1,
        gather_freeze=fanin_round_count(num_sim_machines + 1, f["freeze_up"]),
        broadcast_freeze=broadcast_round_count(num_workers, f["freeze_down"]),
        aggregate_loads=fanin_round_count(num_workers + 1, f["loads"]),
        broadcast_frozen_mask=broadcast_round_count(num_workers, f["mask"]),
        aggregate_state_updates=fanin_round_count(num_workers + 1, f["updates"]),
    )


def final_phase_cost(
    *, num_workers: int, remaining_edges: int, n: int, capacity: int | None
) -> int:
    """Predicted rounds for the final centralized phase.

    One broadcast tree distributing the up-to-date frozen mask (``n`` words,
    so workers know which home edges are still alive), one gather tree
    moving ``3 · remaining_edges`` words to the coordinator, plus one
    compute round for the local solve.
    """
    mask_fanout = fanout_for(capacity, max(1, n))
    gather_fanout = fanout_for(capacity, 3 * max(1, remaining_edges))
    return (
        broadcast_round_count(num_workers, mask_fanout)
        + fanin_round_count(num_workers + 1, gather_fanout)
        + 1
    )


def cluster_width(*, n: int, m_edges: int, initial_machines: int, capacity: int | None) -> int:
    """Number of worker machines ``W`` for a cluster run.

    Three lower bounds: at least 2 workers (so trees are non-trivial), at
    least the phase-0 simulation width, and enough machines that each
    worker's persistent home storage (``HOME_WORDS_PER_EDGE`` words/edge)
    occupies at most a quarter of its capacity — leaving room for the phase
    state and the received induced subgraph.
    """
    if capacity is None:
        return max(2, initial_machines)
    budget = max(1, capacity // 4)
    needed = math.ceil(HOME_WORDS_PER_EDGE * max(1, m_edges) / budget)
    return max(2, initial_machines, needed)
