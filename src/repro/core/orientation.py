"""Orientation-based progress diagnostics (§3.2, Observation 4.3, Lemma 4.4).

The paper measures the per-phase progress of Algorithm 2 by *orienting* every
edge of ``E[V^high]`` toward the endpoint with the larger ``w'(v)/d(v)``
ratio: each out-edge of ``u`` then starts with dual exactly ``w'(u)/d(u)``,
so a vertex surviving the safety freeze (Line 2i) can keep at most
``d(u)·(1-ε)^I`` *active* out-edges (Observation 4.3), and the number of
edges surviving a whole phase is at most ``2·n·d̄·(1-ε)^I`` (Lemma 4.4).

These are the two claims experiment E4 verifies.  This module computes the
measured quantities from a phase's ``(plan, outcome)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import MPCParameters
from repro.core.phase_kernel import PhaseOutcome, PhasePlan

__all__ = ["OrientationReport", "orient_edges", "orientation_report"]


def orient_edges(plan: PhasePlan, resid_degree_high: np.ndarray) -> np.ndarray:
    """Orientation of every ``E[V^high]`` edge in a plan.

    Returns a boolean array over ``plan.edges_high``: ``True`` when the edge
    is directed ``hu → hv`` (i.e. ``hu`` is the tail — the endpoint with the
    smaller ratio ``w'(v)/d(v)``, whose ratio equals the edge's initial
    dual).  Ties break toward ``hu`` (the paper allows arbitrary breaking).

    Parameters
    ----------
    resid_degree_high:
        Residual degrees ``d(v)`` of the high vertices at phase start
        (Remark 4.2: these are *not* degrees within ``V^high``), aligned
        with ``plan.high_ids``.
    """
    if plan.num_edges_high == 0:
        return np.empty(0, dtype=bool)
    d_high = np.asarray(resid_degree_high, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(d_high > 0, plan.wprime_high / np.maximum(d_high, 1.0), np.inf)
    return ratio[plan.hu] <= ratio[plan.hv]


@dataclass(frozen=True)
class OrientationReport:
    """Measured vs claimed per-phase progress (one E4 row)."""

    phase_index: int
    iterations: int
    eps: float
    num_high: int
    num_edges_high: int
    max_active_out_degree: float
    max_out_degree_bound_ratio: float
    surviving_edges: int
    lemma44_bound: float
    lemma44_ratio: float

    def as_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def orientation_report(
    plan: PhasePlan,
    outcome: PhaseOutcome,
    params: MPCParameters,
    *,
    resid_degree_high: np.ndarray,
) -> OrientationReport:
    """Check Observation 4.3 and Lemma 4.4 on a completed phase.

    Parameters
    ----------
    plan, outcome:
        A phase's plan and outcome (``collect_trace=True`` runs keep them).
    params:
        The parameters used for the run (for ε).
    resid_degree_high:
        Residual degrees ``d(v)`` of the high vertices *at the start of the
        phase* (the orchestrator's ``state.resid_degree[plan.high_ids]``
        before :func:`~repro.core.phase_kernel.apply_outcome`; the analysis
        harness records them).

    Returns
    -------
    OrientationReport
        ``max_out_degree_bound_ratio`` is
        ``max_v d_out_active(v) / (d(v)·(1-ε)^I)`` — Observation 4.3 claims
        ``≤ 1``; ``lemma44_ratio`` is ``surviving_edges / (2·n·d̄·(1-ε)^I)``
        — Lemma 4.4 claims ``≤ 1`` w.h.p.
    """
    I = plan.iterations
    eps = params.eps
    shrink = (1.0 - eps) ** I
    d_high = np.asarray(resid_degree_high, dtype=np.float64)
    if d_high.shape != (plan.num_high,):
        raise ValueError("resid_degree_high must align with plan.high_ids")

    frozen_local = outcome.frozen_mask(I)
    active = ~frozen_local

    if plan.num_edges_high:
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(d_high > 0, plan.wprime_high / np.maximum(d_high, 1.0), np.inf)
        tail_is_u = ratio[plan.hu] <= ratio[plan.hv]
        tails = np.where(tail_is_u, plan.hu, plan.hv)
        heads = np.where(tail_is_u, plan.hv, plan.hu)
        both_active = active[tails] & active[heads]
        out_active = np.bincount(tails[both_active], minlength=plan.num_high).astype(np.float64)
        denom = np.maximum(d_high * shrink, 1e-300)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(active & (d_high > 0), out_active / denom, 0.0)
        max_out = float(out_active[active].max(initial=0.0))
        max_ratio = float(ratios.max(initial=0.0))
        surviving = int(both_active.sum())
    else:
        max_out = 0.0
        max_ratio = 0.0
        surviving = 0

    nd = plan.n * plan.avg_degree
    bound = 2.0 * nd * shrink
    lemma_ratio = surviving / bound if bound > 0 else 0.0

    return OrientationReport(
        phase_index=plan.phase_index,
        iterations=I,
        eps=eps,
        num_high=plan.num_high,
        num_edges_high=plan.num_edges_high,
        max_active_out_degree=max_out,
        max_out_degree_bound_ratio=max_ratio,
        surviving_edges=surviving,
        lemma44_bound=bound,
        lemma44_ratio=lemma_ratio,
    )
