"""Dual-variable initializations (Algorithm 1 Line 2 / Algorithm 2 Line 2c).

Three schemes, all producing a *valid* fractional matching
(``Σ_{e∋v} x_{e,0} ≤ w(v)`` for every vertex — Observation 3.1's base case):

* :func:`degree_scaled_init` — the paper's
  ``x_(u,v),0 = min(w(u)/d(u), w(v)/d(v))`` (Proposition 3.4).  The dual
  starts within a factor ``Δ`` of tight everywhere, so the centralized
  algorithm terminates in ``O(log Δ)`` iterations *independently of the
  weight magnitudes*.
* :func:`uniform_init` — the classic ``x_e = min_v w(v) / n``.  Valid, but
  the iteration count grows with the weight spread: ``O(log(W n))`` where
  ``W = max w / min w`` (the paper's argument for rejecting it).
* :func:`max_degree_scaled_init` — ``min(w(u), w(v)) / Δ``, the variant the
  paper discusses and rejects in §3.2: same LOCAL bound as degree-scaled,
  but it only supports ``O(log log Δ)`` (max-degree) rather than
  ``O(log log d̄)`` (average-degree) MPC round complexity, because the
  progress argument loses the per-vertex out-degree control.

Experiments E5 and E9 measure these differences.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = [
    "degree_scaled_init",
    "uniform_init",
    "max_degree_scaled_init",
    "INIT_SCHEMES",
    "make_init",
]


def _resolve(
    graph: WeightedGraph, weights: Optional[np.ndarray], degrees: Optional[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)
    d = graph.degrees if degrees is None else np.asarray(degrees, dtype=np.int64)
    if w.shape != (graph.n,):
        raise ValueError(f"weights must have shape ({graph.n},)")
    if d.shape != (graph.n,):
        raise ValueError(f"degrees must have shape ({graph.n},)")
    return w, d


def degree_scaled_init(
    graph: WeightedGraph,
    *,
    weights: Optional[np.ndarray] = None,
    degrees: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Paper initialization ``x_(u,v) = min(w(u)/d(u), w(v)/d(v))``.

    ``weights`` / ``degrees`` default to the graph's own; Algorithm 2 passes
    *residual* weights and *residual* degrees (Remark 4.2: ``d(v)`` counts
    nonfrozen neighbors in ``V^high ∪ V^inactive``, not neighbors in
    ``V^high``), so both are injectable.

    Validity: ``Σ_{e∋v} x_e ≤ d(v) · w(v)/d(v) = w(v)``.  This holds as well
    with injected degrees as long as ``degrees[v]`` upper-bounds the number
    of edges incident to ``v`` in the edge set being initialized.
    """
    w, d = _resolve(graph, weights, degrees)
    with np.errstate(divide="ignore"):
        ratio = np.where(d > 0, w / np.maximum(d, 1), np.inf)
    ru, rv = graph.endpoint_values(ratio)
    return np.minimum(ru, rv)


def uniform_init(
    graph: WeightedGraph,
    *,
    weights: Optional[np.ndarray] = None,
    degrees: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Classic initialization ``x_e = min_v w(v) / n`` (constant).

    The paper's ``1/n`` assumes weights rescaled to ``w(v) ≥ 1``; dividing
    by ``n`` after scaling by ``min w`` is the weight-scale-free equivalent.
    Validity: ``Σ_{e∋v} x_e ≤ d(v)·min(w)/n < min(w) ≤ w(v)``.
    """
    w, _ = _resolve(graph, weights, degrees)
    if graph.m == 0:
        return np.empty(0, dtype=np.float64)
    base = float(w.min()) / max(graph.n, 1)
    return np.full(graph.m, base, dtype=np.float64)


def max_degree_scaled_init(
    graph: WeightedGraph,
    *,
    weights: Optional[np.ndarray] = None,
    degrees: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Rejected variant ``x_(u,v) = min(w(u), w(v)) / Δ`` (§3.2 discussion).

    Validity: ``Σ_{e∋v} x_e ≤ d(v)·w(v)/Δ ≤ w(v)``.
    """
    w, d = _resolve(graph, weights, degrees)
    if graph.m == 0:
        return np.empty(0, dtype=np.float64)
    delta = int(d.max())
    if delta == 0:
        return np.empty(0, dtype=np.float64)
    wu, wv = graph.endpoint_values(w)
    return np.minimum(wu, wv) / float(delta)


INIT_SCHEMES = {
    "degree_scaled": degree_scaled_init,
    "uniform": uniform_init,
    "max_degree_scaled": max_degree_scaled_init,
}


def make_init(scheme: str, graph: WeightedGraph, **kwargs) -> np.ndarray:
    """Look up an initialization scheme by name and apply it."""
    try:
        fn = INIT_SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown init scheme {scheme!r}; known: {sorted(INIT_SCHEMES)}"
        ) from None
    return fn(graph, **kwargs)
