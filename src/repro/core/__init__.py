"""The paper's contribution: centralized primal–dual + MPC round compression."""

from repro.core.accounting import (
    PhaseCost,
    broadcast_round_count,
    cluster_width,
    fanin_round_count,
    fanout_for,
    final_phase_cost,
    phase_cost,
)
from repro.core.asymptotics import (
    AsymptoticPrediction,
    centralized_iteration_bound,
    paper_gamma,
    paper_phase_count_bound,
    paper_phase_recursion,
    predict,
)
from repro.core.centralized import CentralizedResult, run_centralized, termination_bound
from repro.core.certificates import (
    CoverCertificate,
    certify_cover,
    fractional_matching_violation,
)
from repro.core.initialization import (
    INIT_SCHEMES,
    degree_scaled_init,
    make_init,
    max_degree_scaled_init,
    uniform_init,
)
from repro.core.mpc_mwvc import VectorizedEngine, minimum_weight_vertex_cover
from repro.core.orientation import OrientationReport, orient_edges, orientation_report
from repro.core.params import MPCParameters
from repro.core.phase_kernel import (
    GlobalState,
    PhaseOutcome,
    PhasePlan,
    apply_outcome,
    plan_phase,
    simulate_phase_vectorized,
)
from repro.core.matching import (
    combined_lower_bound,
    extract_matching,
    greedy_maximal_matching,
    is_matching,
    matching_lower_bound,
)
from repro.core.postprocess import is_minimal_cover, prune_redundant_vertices
from repro.core.preprocess import (
    ReductionResult,
    leaf_reduction,
    nemhauser_trotter_reduction,
    solve_with_preprocessing,
)
from repro.core.result import MWVCResult, PhaseRecord
from repro.core.thresholds import ThresholdSampler

__all__ = [
    "minimum_weight_vertex_cover",
    "MWVCResult",
    "PhaseRecord",
    "MPCParameters",
    "run_centralized",
    "CentralizedResult",
    "termination_bound",
    "ThresholdSampler",
    "INIT_SCHEMES",
    "make_init",
    "degree_scaled_init",
    "uniform_init",
    "max_degree_scaled_init",
    "certify_cover",
    "CoverCertificate",
    "fractional_matching_violation",
    "GlobalState",
    "PhasePlan",
    "PhaseOutcome",
    "plan_phase",
    "simulate_phase_vectorized",
    "apply_outcome",
    "VectorizedEngine",
    "orientation_report",
    "orient_edges",
    "OrientationReport",
    "PhaseCost",
    "phase_cost",
    "final_phase_cost",
    "cluster_width",
    "fanout_for",
    "broadcast_round_count",
    "fanin_round_count",
    "extract_matching",
    "greedy_maximal_matching",
    "matching_lower_bound",
    "is_matching",
    "combined_lower_bound",
    "leaf_reduction",
    "nemhauser_trotter_reduction",
    "solve_with_preprocessing",
    "ReductionResult",
    "prune_redundant_vertices",
    "is_minimal_cover",
    "predict",
    "AsymptoticPrediction",
    "paper_gamma",
    "paper_phase_recursion",
    "paper_phase_count_bound",
    "centralized_iteration_bound",
]
