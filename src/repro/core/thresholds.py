"""Random freezing thresholds ``T_{v,t}`` (Algorithm 1 Line 3 / Algorithm 2 Line 2d).

The thresholds are independent uniform draws from ``[1-4ε, 1-2ε]``, one per
(vertex, iteration) pair.  Their role (from [GGK+18]): a *fixed* threshold
would let an adversarial estimate error flip a freeze decision with
probability 1; a random threshold makes a vertex "bad" only when the
threshold happens to land inside the (small) error window, which occurs with
probability ``error / (2ε·w'(v))`` (Lemma 4.8).

:class:`ThresholdSampler` materializes columns lazily and deterministically:
``column(t)`` depends only on ``(seed, t)``, so the centralized run, the
vectorized engine, and the cluster engine — and machines *within* the cluster
engine, which regenerate thresholds from the shared seed instead of shipping
them (the paper notes thresholds need not be stored) — all see identical
draws.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_seed_sequence, spawn_rng
from repro.utils.validation import check_fraction

__all__ = ["ThresholdSampler"]


class ThresholdSampler:
    """Deterministic lazy matrix of thresholds ``T[v, t] ~ U[1-4ε, 1-2ε]``.

    Parameters
    ----------
    seed:
        Stream root; equal seeds yield equal threshold matrices.
    num_vertices:
        Number of rows (vertices being simulated).
    eps:
        Accuracy parameter; determines the support ``[1-4ε, 1-2ε]``.
    """

    def __init__(self, seed: SeedLike, num_vertices: int, eps: float):
        check_fraction("eps", eps, low=0.0, high=0.25)
        if num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        self._seed = as_seed_sequence(seed)
        self.num_vertices = int(num_vertices)
        self.eps = float(eps)
        self.low = 1.0 - 4.0 * self.eps
        self.high = 1.0 - 2.0 * self.eps
        self._cache: dict[int, np.ndarray] = {}

    def column(self, t: int) -> np.ndarray:
        """Thresholds for iteration ``t`` (shape ``(num_vertices,)``).

        Columns are cached; repeated calls return the same array object.
        """
        t = int(t)
        if t < 0:
            raise ValueError("iteration index must be >= 0")
        if t not in self._cache:
            rng = spawn_rng(self._seed, t)
            col = rng.uniform(self.low, self.high, size=self.num_vertices)
            col.setflags(write=False)
            self._cache[t] = col
        return self._cache[t]

    def matrix(self, num_iterations: int) -> np.ndarray:
        """Dense ``(num_vertices, num_iterations)`` threshold matrix."""
        if num_iterations < 0:
            raise ValueError("num_iterations must be >= 0")
        if self.num_vertices == 0 or num_iterations == 0:
            return np.empty((self.num_vertices, num_iterations))
        return np.stack([self.column(t) for t in range(num_iterations)], axis=1)

    def restricted(self, vertex_ids: np.ndarray) -> "_RestrictedSampler":
        """A view of this sampler limited to ``vertex_ids`` (used by cluster
        machines, which each simulate a subset of the vertices but must see
        the globally consistent draws)."""
        return _RestrictedSampler(self, np.asarray(vertex_ids, dtype=np.int64))


class _RestrictedSampler:
    """Row-restricted view over a :class:`ThresholdSampler`."""

    def __init__(self, base: ThresholdSampler, vertex_ids: np.ndarray):
        if vertex_ids.size and (
            vertex_ids.min() < 0 or vertex_ids.max() >= base.num_vertices
        ):
            raise ValueError("vertex ids out of range for threshold sampler")
        self._base = base
        self._ids = vertex_ids
        self.eps = base.eps

    @property
    def num_vertices(self) -> int:
        return int(self._ids.size)

    def column(self, t: int) -> np.ndarray:
        return self._base.column(t)[self._ids]
