"""Cluster engine: Algorithm 2 executed with explicit MPC messages.

This engine runs every phase of the MWVC algorithm as a real protocol on a
:class:`repro.mpc.Cluster` — machine 0 is the coordinator, machines
``1..W`` are workers holding a static round-robin partition of the edges
("home" storage).  Capacities are enforced by the cluster, so a completed
run *is* a certificate that the algorithm respects the MPC model's memory
and communication limits (Lemma 4.1 becomes an enforced runtime invariant,
not just a measured statistic).

Protocol per phase (steps match :mod:`repro.core.accounting`):

A. coordinator broadcasts the phase state: residual weights, residual
   degrees, nonfrozen mask (``3n`` words) plus scalars (seeds, machine and
   iteration counts, cutoff).  Workers *derive* the ``V^high`` set, the
   random partition, the thresholds, and initial duals from this state —
   exactly the paper's observation that shared randomness need not be
   communicated (footnote to Line 2d).
B. each worker routes each home edge of ``E[V^high]`` whose endpoints share
   a simulation machine to that machine (1 round).  The simulation machines
   store their induced subgraphs — if Lemma 4.1 failed, this store would
   raise :class:`~repro.mpc.exceptions.MemoryLimitExceeded`.
C. simulation machines run the local iterations (compute-only) and their
   per-vertex freeze iterations are gathered to the coordinator (tree).
D. coordinator broadcasts the combined freeze iterations (tree).
E. workers finalize Line (2h) duals for home ``E[V^high]`` edges and
   aggregate the dual loads ``y^MPC`` to the coordinator (tree).
F. coordinator applies the Line (2i) safety freeze and broadcasts the
   updated frozen mask (tree).
G. workers store finalized duals for newly frozen home edges, then
   aggregate the stacked [frozen dual sums; nonfrozen degree counts]
   (``2n`` words, tree); the coordinator rebuilds the residual state.

Floating-point discipline: every per-vertex dual reduction on a machine
runs over that machine's edges in ascending global edge id, which is the
same per-vertex accumulation order the vectorized engine uses — so the two
engines' freezing decisions coincide bit-for-bit (checked by the
engine-equivalence tests).  The only tree-order float sums are the
``y^MPC`` aggregates, which feed a single ``≥ w'`` comparison; the audit
checks in this module verify agreement against the directly assembled
values.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core import accounting
from repro.core.params import MPCParameters
from repro.core.phase_kernel import PhaseOutcome, PhasePlan
from repro.core.thresholds import ThresholdSampler
from repro.graphs.graph import WeightedGraph
from repro.mpc.cluster import Cluster
from repro.mpc.message import Message
from repro.mpc.primitives import aggregate_sum, broadcast, gather_concat

__all__ = ["ClusterEngine"]


class ClusterEngine:
    """Message-passing phase executor (see module docstring)."""

    name = "cluster"

    def __init__(
        self,
        graph: WeightedGraph,
        weights: np.ndarray,
        params: MPCParameters,
        num_workers: int,
        capacity: int | None,
        *,
        kill_schedule=None,
    ):
        self.graph = graph
        self.weights = weights
        self.params = params
        self.num_workers = int(num_workers)
        self.capacity = capacity
        self.cluster = Cluster(self.num_workers + 1, capacity, kill_schedule=kill_schedule)
        self._distribute_edges()
        # Coordinator persistently holds the O(n) vertex state.
        coord = self.cluster.machine(0)
        coord.store("weights", weights)

    # ------------------------------------------------------------------ #
    @property
    def rounds(self) -> int:
        return self.cluster.metrics.rounds

    def _distribute_edges(self) -> None:
        """Round-robin the input edges to worker home storage (uncharged:
        MPC inputs arrive already distributed)."""
        m = self.graph.m
        eids = np.arange(m, dtype=np.int64)
        for w in range(1, self.num_workers + 1):
            mine = eids[eids % self.num_workers == (w - 1)]
            machine = self.cluster.machine(w)
            machine.store("home_eids", mine)
            machine.store("home_u", self.graph.edges_u[mine])
            machine.store("home_v", self.graph.edges_v[mine])
            machine.store("home_x", np.zeros(mine.size, dtype=np.float64))

    # ------------------------------------------------------------------ #
    def run_phase(self, plan: PhasePlan, *, trace: bool = False) -> PhaseOutcome:
        n = self.graph.n
        n_high = plan.num_high
        I = plan.iterations
        m_sim = plan.num_machines
        growth = self.params.growth_factor()
        fanouts = accounting.phase_fanouts(n, n_high, m_sim, self.capacity)
        worker_ids = list(range(1, self.num_workers + 1))

        # -------------------------------------------------------------- #
        # Step A: broadcast phase state; workers derive the plan.
        # The coordinator ships w', d(v), nonfrozen (3n words + scalars);
        # workers recompute V^high, positions, the partition, and x0 —
        # shared randomness travels as seeds, not arrays.
        # -------------------------------------------------------------- #
        coord_state = self.cluster.machine(0).load("phase_state")
        payload = {
            "wprime": coord_state["wprime"],
            "resid_degree": coord_state["resid_degree"],
            "nonfrozen": coord_state["nonfrozen"],
            "partition_seed": plan.partition_seed,
            "threshold_seed": plan.threshold_seed,
            "num_machines": m_sim,
            "iterations": I,
            "cutoff": plan.cutoff,
        }
        received = broadcast(
            self.cluster, 0, "state", payload, dst_ids=worker_ids, fanout=fanouts["state"]
        )

        # Workers derive the shared plan quantities (identical arithmetic on
        # identical floats => identical results on every machine).
        derived: Dict[int, dict] = {}
        for w in worker_ids:
            st = received[w]
            is_high = st["nonfrozen"].astype(bool) & (st["resid_degree"] >= st["cutoff"])
            high_ids = np.nonzero(is_high)[0].astype(np.int64)
            pos = np.full(n, -1, dtype=np.int64)
            pos[high_ids] = np.arange(high_ids.size, dtype=np.int64)
            assignment = np.random.default_rng(st["partition_seed"]).integers(
                0, st["num_machines"], size=high_ids.size, dtype=np.int64
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.where(
                    st["resid_degree"] > 0,
                    st["wprime"] / np.maximum(st["resid_degree"], 1),
                    np.inf,
                )
            derived[w] = {
                "is_high": is_high,
                "pos": pos,
                "assignment": assignment,
                "ratio": ratio,
                "wprime": st["wprime"],
                "high_ids": high_ids,
            }
        # Audit: worker derivation must equal the orchestrator's plan.
        w0 = derived[worker_ids[0]]
        if not np.array_equal(w0["high_ids"], plan.high_ids):
            raise AssertionError("cluster engine: derived V^high disagrees with plan")
        if not np.array_equal(w0["assignment"], plan.assignment):
            raise AssertionError("cluster engine: derived partition disagrees with plan")

        # -------------------------------------------------------------- #
        # Step B: route local E[V^high] edges to simulation machines.
        # -------------------------------------------------------------- #
        out: List[Message] = []
        for w in worker_ids:
            machine = self.cluster.machine(w)
            hu_g = machine.load("home_u")
            hv_g = machine.load("home_v")
            eids = machine.load("home_eids")
            dv = derived[w]
            both_high = dv["is_high"][hu_g] & dv["is_high"][hv_g]
            pu = dv["pos"][hu_g[both_high]]
            pv = dv["pos"][hv_g[both_high]]
            e_sel = eids[both_high]
            owner_u = dv["assignment"][pu]
            owner_v = dv["assignment"][pv]
            local = owner_u == owner_v
            x0_sel = np.minimum(dv["ratio"][hu_g[both_high]], dv["ratio"][hv_g[both_high]])
            for s in np.unique(owner_u[local]):
                sel = local & (owner_u == s)
                out.append(
                    Message(
                        w,
                        1 + int(s),
                        "subgraph",
                        {
                            "eids": e_sel[sel],
                            "pu": pu[sel],
                            "pv": pv[sel],
                            "x0": x0_sel[sel],
                        },
                    )
                )
        inboxes = self.cluster.exchange(out)

        # -------------------------------------------------------------- #
        # Local simulation on each simulation machine (compute only).
        # -------------------------------------------------------------- #
        freeze_parts: Dict[int, np.ndarray] = {}
        machine_edge_counts = np.zeros(m_sim, dtype=np.int64)
        trace_rows_y: List[np.ndarray] = [np.zeros(n_high) for _ in range(I)] if trace else []
        trace_rows_a: List[np.ndarray] = (
            [np.zeros(n_high, dtype=bool) for _ in range(I)] if trace else []
        )
        for s in range(m_sim):
            cluster_id = 1 + s
            msgs = inboxes.get(cluster_id, [])
            if msgs:
                eids = np.concatenate([mm.payload["eids"] for mm in msgs])
                pu = np.concatenate([mm.payload["pu"] for mm in msgs])
                pv = np.concatenate([mm.payload["pv"] for mm in msgs])
                x0 = np.concatenate([mm.payload["x0"] for mm in msgs])
                order = np.argsort(eids, kind="stable")
                eids, pu, pv, x0 = eids[order], pu[order], pv[order], x0[order]
            else:
                eids = np.empty(0, np.int64)
                pu = pv = np.empty(0, np.int64)
                x0 = np.empty(0, np.float64)
            machine = self.cluster.machine(cluster_id)
            machine.store("sim_subgraph", {"eids": eids, "pu": pu, "pv": pv, "x0": x0})
            machine_edge_counts[s] = eids.size

            dv = derived[cluster_id]
            mine = dv["assignment"] == s
            wprime_high = dv["wprime"][dv["high_ids"]]
            sampler = ThresholdSampler(plan.threshold_seed, n_high, self.params.eps)
            x_loc = x0.copy()
            active = mine.copy()
            freeze_iter_mine = np.full(n_high, I, dtype=np.int64)
            for t in range(I):
                sums = np.bincount(pu, weights=x_loc, minlength=n_high) + np.bincount(
                    pv, weights=x_loc, minlength=n_high
                )
                ytilde = self.params.bias(t, m_sim) * wprime_high + m_sim * sums
                if trace:
                    trace_rows_y[t][mine] = ytilde[mine]
                    trace_rows_a[t][mine] = active[mine]
                thresholds = sampler.column(t)
                newly = active & (ytilde >= thresholds * wprime_high)
                freeze_iter_mine[newly] = t
                active &= ~newly
                active_e = active[pu] & active[pv]
                x_loc[active_e] *= growth
            my_pos = np.nonzero(mine)[0].astype(np.int64)
            pairs = np.empty(2 * my_pos.size, dtype=np.int64)
            pairs[0::2] = my_pos
            pairs[1::2] = freeze_iter_mine[my_pos]
            freeze_parts[cluster_id] = pairs
            machine.free("sim_subgraph")

        # -------------------------------------------------------------- #
        # Step C: gather freeze iterations to coordinator.
        # -------------------------------------------------------------- #
        gathered = gather_concat(
            self.cluster, "freeze_up", freeze_parts, root=0, fanout=fanouts["freeze_up"]
        )
        freeze_iter = np.full(n_high, I, dtype=np.int64)
        if gathered.size:
            freeze_iter[gathered[0::2]] = gathered[1::2]

        # -------------------------------------------------------------- #
        # Step D: broadcast combined freeze iterations.
        # -------------------------------------------------------------- #
        freeze_down = broadcast(
            self.cluster,
            0,
            "freeze_down",
            freeze_iter,
            dst_ids=worker_ids,
            fanout=fanouts["freeze_down"],
        )

        # -------------------------------------------------------------- #
        # Step E: workers finalize Line (2h) duals; aggregate dual loads.
        # -------------------------------------------------------------- #
        x_high_full = np.zeros(plan.num_edges_high, dtype=np.float64)
        load_partials: Dict[int, np.ndarray] = {}
        worker_ehigh: Dict[int, dict] = {}
        for w in worker_ids:
            machine = self.cluster.machine(w)
            hu_g = machine.load("home_u")
            hv_g = machine.load("home_v")
            eids = machine.load("home_eids")
            dv = derived[w]
            fz = freeze_down[w]
            both_high = dv["is_high"][hu_g] & dv["is_high"][hv_g]
            pu = dv["pos"][hu_g[both_high]]
            pv = dv["pos"][hv_g[both_high]]
            e_sel = eids[both_high]
            x0_sel = np.minimum(dv["ratio"][hu_g[both_high]], dv["ratio"][hv_g[both_high]])
            order = np.argsort(e_sel, kind="stable")
            pu, pv, e_sel, x0_sel = pu[order], pv[order], e_sel[order], x0_sel[order]
            tprime = np.minimum(fz[pu], fz[pv]) if e_sel.size else np.empty(0, np.int64)
            x_high = x0_sel * growth ** tprime.astype(np.float64)
            load = np.bincount(pu, weights=x_high, minlength=n_high) + np.bincount(
                pv, weights=x_high, minlength=n_high
            )
            load_partials[w] = load
            worker_ehigh[w] = {"eids": e_sel, "pu": pu, "pv": pv, "x_high": x_high}
            # Out-of-band assembly of the global x_high (observational; the
            # in-model data stays distributed on the workers).
            if e_sel.size:
                positions = np.searchsorted(plan.edges_high, e_sel)
                x_high_full[positions] = x_high
        y_mpc = aggregate_sum(
            self.cluster, "loads", load_partials, root=0, fanout=fanouts["loads"]
        )

        # Audit: tree-summed loads must agree with a direct summation.
        direct = np.bincount(plan.hu, weights=x_high_full, minlength=n_high) + np.bincount(
            plan.hv, weights=x_high_full, minlength=n_high
        )
        if not np.allclose(y_mpc, direct, rtol=1e-9, atol=1e-12):
            raise AssertionError("cluster engine: aggregated dual loads diverged from direct sums")

        # -------------------------------------------------------------- #
        # Step F: coordinator safety freeze; broadcast updated frozen mask.
        # -------------------------------------------------------------- #
        coord_state = self.cluster.machine(0).load("phase_state")
        wprime_high = coord_state["wprime"][plan.high_ids]
        active_after = freeze_iter == I
        safety_frozen = active_after & (y_mpc >= wprime_high)
        frozen_local = (freeze_iter < I) | safety_frozen
        frozen_mask_next = ~coord_state["nonfrozen"].astype(bool)
        frozen_mask_next[plan.high_ids[frozen_local]] = True
        mask_down = broadcast(
            self.cluster,
            0,
            "frozen_mask",
            frozen_mask_next.astype(np.int64),
            dst_ids=worker_ids,
            fanout=fanouts["mask"],
        )

        # -------------------------------------------------------------- #
        # Step G: workers store finalized duals; aggregate state updates.
        # -------------------------------------------------------------- #
        update_partials: Dict[int, np.ndarray] = {}
        for w in worker_ids:
            machine = self.cluster.machine(w)
            hu_g = machine.load("home_u")
            hv_g = machine.load("home_v")
            eids = machine.load("home_eids")
            home_x = machine.load("home_x")
            fz_mask = mask_down[w].astype(bool)
            we = worker_ehigh[w]
            if we["eids"].size:
                e_frozen = fz_mask[hu_g] | fz_mask[hv_g]
                local_idx = np.searchsorted(eids, we["eids"])
                now_frozen = e_frozen[local_idx] & (home_x[local_idx] == 0.0)
                sel = local_idx[now_frozen]
                home_x[sel] = we["x_high"][now_frozen]
                machine.store("home_x", home_x)
            edge_frozen = fz_mask[hu_g] | fz_mask[hv_g]
            stacked = np.zeros(2 * n, dtype=np.float64)
            stacked[:n] = np.bincount(
                hu_g, weights=home_x * edge_frozen, minlength=n
            ) + np.bincount(hv_g, weights=home_x * edge_frozen, minlength=n)
            live = ~edge_frozen
            stacked[n:] = np.bincount(hu_g[live], minlength=n) + np.bincount(
                hv_g[live], minlength=n
            )
            update_partials[w] = stacked
        updates = aggregate_sum(
            self.cluster, "updates", update_partials, root=0, fanout=fanouts["updates"]
        )
        coord = self.cluster.machine(0)
        new_wprime = np.maximum(self.weights - updates[:n], 0.0)
        new_resid = updates[n:].astype(np.int64)
        coord.store(
            "phase_state",
            {
                "wprime": new_wprime,
                "resid_degree": new_resid,
                "nonfrozen": (~frozen_mask_next).astype(np.int64),
            },
        )

        return PhaseOutcome(
            freeze_iter=freeze_iter,
            x_high=x_high_full,
            y_mpc=y_mpc,
            safety_frozen=safety_frozen,
            machine_edge_counts=machine_edge_counts,
            trace_ytilde=trace_rows_y,
            trace_active=trace_rows_a,
        )

    # ------------------------------------------------------------------ #
    def sync_state(self, wprime: np.ndarray, resid_degree: np.ndarray, frozen: np.ndarray) -> None:
        """Install the orchestrator's (coordinator's) state before a phase.

        The orchestrator owns the canonical state arrays; this mirrors them
        into machine 0's storage so phase broadcasts ship the real thing and
        the coordinator's memory is charged.
        """
        self.cluster.machine(0).store(
            "phase_state",
            {
                "wprime": np.asarray(wprime, dtype=np.float64),
                "resid_degree": np.asarray(resid_degree, dtype=np.int64),
                "nonfrozen": (~np.asarray(frozen, dtype=bool)).astype(np.int64),
            },
        )

    def finalize(self, remaining_edges: int, frozen_mask: np.ndarray) -> None:
        """Broadcast the final frozen mask, gather the residual edges to the
        coordinator, and charge one compute round for the local solve."""
        n = self.graph.n
        worker_ids = list(range(1, self.num_workers + 1))
        mask_fanout = accounting.fanout_for(self.capacity, max(1, n))
        received = broadcast(
            self.cluster,
            0,
            "final_mask",
            np.asarray(frozen_mask, dtype=np.int64),
            dst_ids=worker_ids,
            fanout=mask_fanout,
        )
        parts: Dict[int, np.ndarray] = {}
        for w in worker_ids:
            machine = self.cluster.machine(w)
            hu_g = machine.load("home_u")
            hv_g = machine.load("home_v")
            eids = machine.load("home_eids")
            fz = received[w].astype(bool)
            live = ~(fz[hu_g] | fz[hv_g])
            triples = np.empty(3 * int(live.sum()), dtype=np.int64)
            triples[0::3] = eids[live]
            triples[1::3] = hu_g[live]
            triples[2::3] = hv_g[live]
            parts[w] = triples
        gather_fanout = accounting.fanout_for(self.capacity, 3 * max(1, remaining_edges))
        gathered = gather_concat(
            self.cluster, "final_edges", parts, root=0, fanout=gather_fanout
        )
        self.cluster.machine(0).store("final_subproblem", gathered)
        if gathered.size // 3 != remaining_edges:
            raise AssertionError(
                "cluster engine: gathered residual edge count "
                f"{gathered.size // 3} != expected {remaining_edges}"
            )
        self.cluster.local_round()

    def collect(self, state) -> None:  # pragma: no cover - interface symmetry
        """Results live in the orchestrator's state; nothing to collect."""
