"""Bounded LRU cache for solve results.

Repeated traffic to a solving service is dominated by repeated instances
(the same graph re-submitted with the same parameters), so results are
cached under the canonical request digest
(:func:`repro.service.schema.request_digest`).  Because
:class:`~repro.core.result.MWVCResult` is effectively immutable — callers
only read it — hits return the stored object without copying.

The cache is thread-safe (a single lock around the ordered map); the
process-pool workers never touch it — only the coordinating
:class:`~repro.service.batch.BatchSolver` in the parent process does.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.core.result import MWVCResult

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counters observed since cache construction (or the last reset)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_entries": self.max_entries,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU map ``digest -> MWVCResult`` with at most ``max_entries`` entries.

    ``max_entries=0`` disables storage (every lookup misses); this lets the
    batch solver treat "no cache" uniformly.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self._max = int(max_entries)
        self._data: "OrderedDict[str, MWVCResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_entries(self) -> int:
        return self._max

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: str) -> Optional[MWVCResult]:
        """The cached result for ``key``, refreshing its recency; None on miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return None

    def put(self, key: str, result: MWVCResult) -> None:
        """Insert (or refresh) ``key``, evicting the least recent on overflow."""
        if self._max == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = result
                return
            self._data[key] = result
            while len(self._data) > self._max:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """A snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                max_entries=self._max,
            )
