"""Batch coordinator: shard solve requests across a process pool.

The instances of a batch are independent, so the coordinator's job is pure
plumbing — but plumbing with guarantees:

* **Caching and dedup.**  Every request is keyed by its canonical content
  digest.  Cache hits (and duplicate requests *within* one batch) never
  reach the pool; a warm-cache replay of a manifest does zero solving.
* **Chunked dispatch.**  Pending requests are split into ~4 chunks per
  worker, so one pool task amortizes pickling/IPC over several instances
  while still load-balancing across workers.
* **Error isolation.**  Per-request failures are trapped inside the worker
  (:mod:`repro.service.worker`); pool-level failures (a worker dying,
  unpicklable payloads) are trapped per chunk.  ``solve_batch`` never
  raises because of a bad instance — it returns an error record in that
  request's slot and solves everything else.

The pool is created lazily and kept warm across batches; use the solver as
a context manager (or call :meth:`BatchSolver.close`) to release it.
"""

from __future__ import annotations

import os
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Union

from repro.service.cache import ResultCache
from repro.service.schema import SolveRequest, SolveResult
from repro.service.worker import solve_chunk, solve_one

__all__ = ["BatchSolver", "solve_sequential"]


class BatchSolver:
    """Solves batches of :class:`SolveRequest` with pooling + caching.

    Parameters
    ----------
    max_workers:
        Process-pool size; defaults to ``os.cpu_count()`` (the
        ``ProcessPoolExecutor`` default).
    cache:
        A :class:`ResultCache`, an integer capacity, or ``None`` to disable
        caching entirely.
    chunk_size:
        Requests per pool task.  Default: pending requests split into
        roughly ``4 × max_workers`` chunks (min 1 request per chunk).
    timeout:
        Per-request wall-clock budget in seconds, enforced inside the
        worker via ``SIGALRM`` (unenforced on platforms without it).
    use_processes:
        ``False`` solves in the calling process (no pool) — the sequential
        reference mode, also handy under debuggers and on 1-core boxes.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        cache: Union[ResultCache, int, None] = 256,
        chunk_size: Optional[int] = None,
        timeout: Optional[float] = None,
        use_processes: bool = True,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.max_workers = max_workers
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache is None:
            self.cache = None
        else:
            self.cache = ResultCache(int(cache))
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.use_processes = use_processes
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent); the cache survives."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(self, request: SolveRequest) -> SolveResult:
        """Solve a single request through the solver's configured mode
        (cache first, then pool or inline per ``use_processes``)."""
        return self.solve_batch([request])[0]

    def solve_batch(self, requests: Sequence[SolveRequest]) -> List[SolveResult]:
        """Solve every request; the i-th result answers the i-th request.

        Never raises for a bad instance: failed requests come back with
        ``ok=False`` and an ``error`` string while the rest of the batch
        completes normally.
        """
        requests = list(requests)
        n = len(requests)
        results: List[Optional[SolveResult]] = [None] * n
        keys = [r.cache_key() for r in requests]

        # Stage 1: cache lookups + within-batch dedup.  `leaders` maps each
        # distinct uncached key to the first request index bearing it; later
        # duplicates are filled from the leader's answer after the solve.
        leaders: Dict[str, int] = {}
        followers: Dict[int, int] = {}
        pending: List[int] = []
        for i, (req, key) in enumerate(zip(requests, keys)):
            # Dedup before the cache lookup so follower copies of one
            # instance don't each record a spurious cache miss.
            if key in leaders:
                followers[i] = leaders[key]
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[i] = SolveResult(
                    request_id=req.label(),
                    ok=True,
                    cache_hit=True,
                    elapsed=0.0,
                    cache_key=key,
                    result=cached,
                )
            else:
                leaders[key] = i
                pending.append(i)

        # Stage 2: solve the distinct uncached requests.
        if pending:
            if self.use_processes:
                self._solve_pooled(requests, keys, pending, results)
            else:
                self._solve_inline(requests, keys, pending, results)

        # Stage 3: fill duplicates from their leader and warm the cache.
        for i, leader in followers.items():
            lead = results[leader]
            assert lead is not None
            results[i] = SolveResult(
                request_id=requests[i].label(),
                ok=lead.ok,
                cache_hit=lead.ok,
                elapsed=0.0,
                cache_key=keys[i],
                result=lead.result,
                error=lead.error,
            )
        out = [r for r in results if r is not None]
        assert len(out) == n
        return out

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _record(self, requests, keys, wire) -> SolveResult:
        """Convert a worker wire record into a SolveResult + cache insert."""
        i = wire.index
        res = SolveResult(
            request_id=requests[i].label(),
            ok=wire.error is None,
            cache_hit=False,
            elapsed=wire.elapsed,
            cache_key=keys[i],
            result=wire.result,
            error=wire.error,
        )
        if res.ok and self.cache is not None and res.result is not None:
            self.cache.put(keys[i], res.result)
        return res

    def _solve_inline(self, requests, keys, pending, results) -> None:
        for i in pending:
            wire = solve_one(requests[i], index=i, timeout=self.timeout)
            results[i] = self._record(requests, keys, wire)

    def _chunks(self, pending: List[int]) -> List[List[int]]:
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            workers = self.max_workers or os.cpu_count() or 1
            target = max(1, 4 * workers)
            size = max(1, -(-len(pending) // target))
        return [pending[i : i + size] for i in range(0, len(pending), size)]

    def _solve_pooled(self, requests, keys, pending, results) -> None:
        pool = self._ensure_pool()
        chunk_futures = []
        try:
            for chunk in self._chunks(pending):
                payload = [(i, requests[i]) for i in chunk]
                fut = pool.submit(solve_chunk, payload, self.timeout)
                chunk_futures.append((chunk, fut))
        except Exception as exc:  # pool already broken at submit time
            # Harvest chunks that finished before the breakage, fail the
            # rest, and drop the poisoned executor so the next batch gets
            # a fresh one.
            for chunk, fut in chunk_futures:
                try:
                    for wire in fut.result(timeout=1.0):
                        results[wire.index] = self._record(requests, keys, wire)
                except Exception:
                    self._mark_failed(requests, keys, chunk, results, exc)
            self._mark_failed(
                requests, keys,
                [i for i in pending if results[i] is None], results, exc,
            )
            self.close()
            return
        for chunk, fut in chunk_futures:
            try:
                for wire in fut.result():
                    results[wire.index] = self._record(requests, keys, wire)
            except BrokenProcessPool as exc:
                # The executor is poisoned: queued futures get cancelled.
                # Rebuild lazily on the next batch.
                self._mark_failed(requests, keys, chunk, results, exc)
                self.close()
            except CancelledError as exc:  # BaseException since 3.8
                self._mark_failed(requests, keys, chunk, results, exc)
            except Exception as exc:
                # Per-chunk transport failure (e.g. unpicklable payload);
                # the pool itself is still healthy — keep it.
                self._mark_failed(requests, keys, chunk, results, exc)
            for i in chunk:
                if results[i] is None:
                    self._mark_failed(
                        requests, keys, [i], results,
                        RuntimeError("worker returned no record"),
                    )

    @staticmethod
    def _mark_failed(requests, keys, indices, results, exc) -> None:
        for i in indices:
            if results[i] is None:
                results[i] = SolveResult(
                    request_id=requests[i].label(),
                    ok=False,
                    cache_key=keys[i],
                    error=f"{type(exc).__name__}: {exc}",
                )


def solve_sequential(
    requests: Sequence[SolveRequest], *, timeout: Optional[float] = None
) -> List[SolveResult]:
    """Reference loop: solve requests one by one, no pool, no cache.

    The baseline that :mod:`benchmarks.bench_service_throughput` compares
    the pooled path against.
    """
    out = []
    start_keys = [r.cache_key() for r in requests]
    for i, req in enumerate(requests):
        wire = solve_one(req, index=i, timeout=timeout)
        out.append(
            SolveResult(
                request_id=req.label(),
                ok=wire.error is None,
                elapsed=wire.elapsed,
                cache_key=start_keys[i],
                result=wire.result,
                error=wire.error,
            )
        )
    return out
