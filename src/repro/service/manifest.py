"""JSON-lines manifests for ``repro batch``.

A manifest is one JSON object per line, each describing one solve request.
The graph comes from exactly one of three sources:

* ``{"input": "path.npz"}`` or ``{"input": "path.txt"}`` — a file written
  by ``repro generate`` (NPZ or edge-list format);
* ``{"family": "gnp", "n": 1000, "degree": 16, "weights": "uniform",
  "graph_seed": 0}`` — a generated workload (same families/weight models
  as ``repro solve``);
* ``{"n": 3, "edges": [[0, 1], [1, 2]], "weights": [1.0, 2.0, 1.0]}`` — an
  inline edge list (weights optional).

Solve parameters ride alongside: ``eps`` (default 0.1), ``seed`` (default
0), ``engine`` (default ``"vectorized"``), ``id`` (optional label).  Blank
lines and ``#`` comment lines are skipped.

The same spec dicts power the programmatic API
(:func:`request_from_spec`), so tests and services can build batches
without touching the filesystem.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, List, Union

import numpy as np

from repro.graphs import generators as _gen
from repro.graphs import generators_extra as _genx
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import load_edgelist, load_npz
from repro.graphs.weights import make_weights
from repro.service.schema import ENGINES, SolveRequest

__all__ = ["GRAPH_FAMILIES", "graph_from_spec", "request_from_spec", "load_manifest"]

GRAPH_FAMILIES = ("gnp", "power_law", "grid", "tree", "sbm", "geometric", "ba")

_SOLVE_KEYS = {"id", "eps", "seed", "engine"}
_GRAPH_KEYS = {"input", "family", "n", "degree", "weights", "graph_seed", "edges"}


def generate_graph(
    family: str, *, n: int, degree: float = 16.0, seed: int = 0
) -> WeightedGraph:
    """Generate an unweighted workload graph from a named family.

    The single entry point behind both ``repro solve --family ...`` and
    manifest ``family`` specs, so the two surfaces can never drift.
    """
    if family == "gnp":
        return _gen.gnp_average_degree(n, degree, seed=seed)
    if family == "power_law":
        return _gen.power_law(n, seed=seed)
    if family == "grid":
        side = int(math.isqrt(n))
        return _gen.grid_2d(side, side)
    if family == "tree":
        return _gen.random_tree(n, seed=seed)
    if family == "sbm":
        blocks = [n // 4] * 4
        return _genx.stochastic_block_model(
            blocks,
            p_in=min(1.0, degree / max(n // 4, 1)),
            p_out=0.25 / max(n, 1),
            seed=seed,
        )
    if family == "geometric":
        radius = math.sqrt(degree / (math.pi * max(n - 1, 1)))
        return _genx.random_geometric(n, radius, seed=seed)
    if family == "ba":
        return _genx.preferential_attachment(n, max(1, int(degree / 2)), seed=seed)
    raise ValueError(f"unknown graph family {family!r}; known: {GRAPH_FAMILIES}")


def graph_from_spec(spec: dict) -> WeightedGraph:
    """Build the graph described by one manifest record."""
    sources = [k for k in ("input", "family", "edges") if k in spec]
    if len(sources) != 1:
        raise ValueError(
            f"spec must have exactly one of 'input'/'family'/'edges', got {sources}"
        )
    # Generator-only keys must not silently no-op with other sources — a
    # user sweeping graph_seed over an 'input' file would get N copies of
    # one instance (all deduplicated) instead of N instances.
    ignored = {"input": {"n", "degree", "graph_seed", "weights"},
               "edges": {"degree", "graph_seed"}}.get(sources[0], set()) & set(spec)
    if ignored:
        raise ValueError(
            f"keys {sorted(ignored)} have no effect with {sources[0]!r} graphs"
        )
    if "input" in spec:
        path = str(spec["input"])
        return load_npz(path) if path.endswith(".npz") else load_edgelist(path)
    if "edges" in spec:
        n = int(spec["n"])
        weights = spec.get("weights")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
        return WeightedGraph.from_edge_list(n, [tuple(e) for e in spec["edges"]], weights)
    family = str(spec["family"])
    n = int(spec.get("n", 1000))
    degree = float(spec.get("degree", 16.0))
    graph_seed = int(spec.get("graph_seed", 0))
    graph = generate_graph(family, n=n, degree=degree, seed=graph_seed)
    weights = spec.get("weights", "unit")
    if weights != "unit":
        graph = graph.with_weights(make_weights(weights, graph, seed=graph_seed + 1))
    return graph


def request_from_spec(spec: dict) -> SolveRequest:
    """Build a :class:`SolveRequest` from one manifest record."""
    if not isinstance(spec, dict):
        raise ValueError(f"manifest record must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - _SOLVE_KEYS - _GRAPH_KEYS
    if unknown:
        raise ValueError(f"unknown manifest keys {sorted(unknown)}")
    engine = str(spec.get("engine", "vectorized"))
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    return SolveRequest(
        graph=graph_from_spec(spec),
        eps=float(spec.get("eps", 0.1)),
        seed=int(spec.get("seed", 0)),
        engine=engine,
        request_id=str(spec.get("id", "")),
    )


def load_manifest(source: Union[str, IO[str], Iterable[str]]) -> List[SolveRequest]:
    """Parse a JSON-lines manifest into solve requests.

    ``source`` is a path, an open text stream, or any iterable of lines.
    A malformed line raises ``ValueError`` naming its line number — a
    manifest is configuration, so it fails loudly up front rather than
    per-request at solve time.
    """
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as fh:
            return load_manifest(list(fh))
    requests: List[SolveRequest] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            spec = json.loads(line)
            req = request_from_spec(spec)
        except (KeyError, TypeError, ValueError) as exc:
            detail = f"missing key {exc}" if isinstance(exc, KeyError) else str(exc)
            raise ValueError(f"manifest line {lineno}: {detail}") from exc
        if not req.request_id:
            req.request_id = f"line-{lineno}"
        requests.append(req)
    return requests
