"""Request/response schema of the batch solving service.

A :class:`SolveRequest` is the unit of work: one graph plus the solve
parameters that affect the answer (``eps``, ``seed``, ``engine``).  A
:class:`SolveResult` is its outcome: either a full
:class:`~repro.core.result.MWVCResult` or an error string, plus service
metadata (timing, cache hit, cache key).  Both are plain picklable
dataclasses so they can cross :class:`~concurrent.futures.ProcessPoolExecutor`
boundaries.

The cache key :func:`request_digest` hashes the *content* of the request —
graph digest + solve parameters — so two requests for the same instance
collide regardless of how the graph object was constructed or which batch
they arrived in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.core.result import MWVCResult
from repro.graphs.graph import WeightedGraph

__all__ = ["SolveRequest", "SolveResult", "request_digest", "ENGINES"]

ENGINES = ("vectorized", "cluster")


def request_digest(
    graph: WeightedGraph, *, eps: float, seed: int, engine: str
) -> str:
    """Canonical content hash of a solve request.

    Combines the graph's :meth:`~repro.graphs.WeightedGraph.content_digest`
    with every parameter that affects the solution, so the digest is a safe
    cache key: equal digests imply byte-identical answers (the solver is
    deterministic given graph + eps + seed + engine).
    """
    h = hashlib.sha256()
    h.update(b"repro-request-v1\0")
    h.update(graph.content_digest().encode("ascii"))
    h.update(f"\0eps={float(eps)!r}\0seed={int(seed)}\0engine={engine}".encode("utf-8"))
    return h.hexdigest()


@dataclass
class SolveRequest:
    """One MWVC instance to solve.

    Parameters are intentionally *not* validated at construction time:
    validation happens inside the worker so that a malformed request is
    reported as a per-request error instead of aborting the whole batch
    (see :class:`~repro.service.batch.BatchSolver` error isolation).

    Attributes
    ----------
    graph:
        The instance to cover.
    eps:
        Accuracy parameter ε (solver requires ε ∈ (0, 1/4)).
    seed:
        Root seed of the solver's randomness.
    engine:
        ``"vectorized"`` or ``"cluster"``.
    request_id:
        Caller-chosen label echoed into the result (defaults to the cache
        key prefix when empty).
    """

    graph: WeightedGraph
    eps: float = 0.1
    seed: int = 0
    engine: str = "vectorized"
    request_id: str = ""

    def cache_key(self) -> str:
        """The canonical cache key for this request."""
        return request_digest(
            self.graph, eps=self.eps, seed=self.seed, engine=self.engine
        )

    def label(self) -> str:
        """``request_id`` or a short digest-derived fallback."""
        return self.request_id or f"req-{self.cache_key()[:12]}"


@dataclass
class SolveResult:
    """Outcome of one :class:`SolveRequest`.

    Exactly one of ``result`` / ``error`` is set (``ok`` tells which).

    Attributes
    ----------
    request_id:
        Label of the originating request.
    ok:
        Whether the solve succeeded.
    cache_hit:
        Whether the answer came from the result cache (or from an identical
        request deduplicated within the same batch).
    elapsed:
        Wall-clock solve time in seconds as measured inside the worker
        (0.0 for cache hits).
    cache_key:
        The request's canonical digest.
    result:
        The full solver result when ``ok``.
    error:
        Human-readable failure description when not ``ok``
        (``"timeout after Ns"`` for per-request timeouts).
    """

    request_id: str
    ok: bool
    cache_hit: bool = False
    elapsed: float = 0.0
    cache_key: str = ""
    result: Optional[MWVCResult] = None
    error: Optional[str] = None

    def summary(self) -> dict:
        """Flat JSON-friendly dict (one line of ``repro batch`` output)."""
        row: dict = {
            "request_id": self.request_id,
            "ok": self.ok,
            "cache_hit": self.cache_hit,
            "elapsed_s": round(float(self.elapsed), 6),
            "cache_key": self.cache_key,
        }
        if self.ok and self.result is not None:
            row.update(self.result.summary())
        else:
            row["error"] = self.error
        return row


@dataclass
class _WireResult:
    """Worker→parent transport record (internal).

    Smaller than :class:`SolveResult`: carries the index of the request in
    the batch instead of repeating identifying metadata.
    """

    index: int
    elapsed: float
    result: Optional[MWVCResult] = None
    error: Optional[str] = None
