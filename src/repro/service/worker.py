"""Process-pool worker for the batch solving service.

Must stay importable at module top level (``ProcessPoolExecutor`` pickles
the function *by reference*).  The worker owns the two service guarantees
that have to hold *inside* the child process:

* **Error isolation** — every request is solved under its own
  ``try/except``; a malformed instance (bad ε, zero-weight vertex, solver
  bug) produces an error record for that request only, and the chunk's
  remaining requests still run.
* **Per-request timeout** — enforced with ``signal.setitimer`` (real
  time) around each solve.  Pool workers are single-threaded child
  processes on their main thread, which is exactly the setting where
  SIGALRM is reliable.  On platforms without ``setitimer`` (Windows) the
  timeout degrades to unenforced, which the batch solver documents.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import List, Optional, Sequence

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.service.schema import SolveRequest, _WireResult

__all__ = ["solve_chunk", "solve_one"]

_HAS_ITIMER = hasattr(signal, "setitimer") and hasattr(signal, "SIGALRM")


class _SolveTimeout(Exception):
    """Raised inside the worker when a request exceeds its time budget."""


def _raise_timeout(signum, frame):  # pragma: no cover - signal handler
    raise _SolveTimeout()


def solve_one(
    request: SolveRequest, index: int = 0, timeout: Optional[float] = None
) -> _WireResult:
    """Solve a single request, trapping failures and enforcing ``timeout``."""
    start = time.perf_counter()
    # SIGALRM only works on the main thread; an inline BatchSolver embedded
    # in a threaded service must degrade to unenforced, not blow up.
    use_timer = (
        timeout is not None
        and timeout > 0
        and _HAS_ITIMER
        and threading.current_thread() is threading.main_thread()
        # Never clobber a host application's own ITIMER_REAL watchdog
        # (inline mode only — pool workers start with no timer armed).
        and signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
    )
    old_handler = None
    if use_timer:
        old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
    result = None
    completed = False
    try:
        try:
            if use_timer:
                signal.setitimer(signal.ITIMER_REAL, float(timeout))
            try:
                result = minimum_weight_vertex_cover(
                    request.graph,
                    eps=request.eps,
                    seed=request.seed,
                    engine=request.engine,
                )
                completed = True
            finally:
                # Disarm *before* any except/return runs, so a late alarm
                # cannot fire inside result/error handling and escape.
                if use_timer:
                    signal.setitimer(signal.ITIMER_REAL, 0.0)
        except _SolveTimeout:
            if not completed:
                return _WireResult(
                    index=index,
                    elapsed=time.perf_counter() - start,
                    error=f"timeout after {float(timeout):g}s",
                )
            # The alarm fired in the gap between solve completion and
            # disarm: the result is valid — fall through and return it.
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            return _WireResult(
                index=index,
                elapsed=time.perf_counter() - start,
                error=f"{type(exc).__name__}: {exc}",
            )
        return _WireResult(
            index=index, elapsed=time.perf_counter() - start, result=result
        )
    finally:
        if use_timer:
            signal.signal(signal.SIGALRM, old_handler)


def solve_chunk(
    indexed_requests: Sequence[tuple], timeout: Optional[float] = None
) -> List[_WireResult]:
    """Solve a chunk of ``(index, request)`` pairs sequentially.

    Chunking amortizes pickling/IPC overhead: the pool ships one task per
    chunk instead of one per request, while the per-request accounting
    (timing, timeout, isolation) stays exact because :func:`solve_one`
    wraps each request individually.
    """
    return [solve_one(req, index=idx, timeout=timeout) for idx, req in indexed_requests]
