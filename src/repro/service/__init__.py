"""Batch MWVC solving service.

The algorithm of Ghaffari–Jin–Nilis is embarrassingly parallel *across
instances*: independent solve requests share nothing, so a service layer can
shard them over a process pool and cache results by graph identity.  This
package is that layer:

:mod:`repro.service.schema`
    :class:`SolveRequest` / :class:`SolveResult` — the wire-level unit of
    work and its outcome, both picklable, plus the canonical cache key.
:mod:`repro.service.cache`
    :class:`ResultCache` — bounded LRU keyed by
    :meth:`~repro.graphs.WeightedGraph.content_digest` + solve parameters.
:mod:`repro.service.batch`
    :class:`BatchSolver` — shards requests across a
    ``ProcessPoolExecutor`` with chunked dispatch, per-request timeouts and
    error isolation (one bad instance never kills the batch).
:mod:`repro.service.manifest`
    JSON-lines manifest parsing for the ``repro batch`` CLI.
"""

from repro.service.batch import BatchSolver, solve_sequential
from repro.service.cache import CacheStats, ResultCache
from repro.service.manifest import graph_from_spec, load_manifest, request_from_spec
from repro.service.schema import SolveRequest, SolveResult, request_digest

__all__ = [
    "BatchSolver",
    "CacheStats",
    "ResultCache",
    "SolveRequest",
    "SolveResult",
    "graph_from_spec",
    "load_manifest",
    "request_from_spec",
    "request_digest",
    "solve_sequential",
]
