"""Summary statistics for repeated randomized trials.

Every benchmark repeats its measurement over several seeds; these helpers
reduce the trials to the mean / spread columns the tables print.  Nothing
here is fancy on purpose: the experiments test *shape* claims (growth rates,
bound satisfaction), not subtle effect sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["TrialSummary", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class TrialSummary:
    """Mean / std / extremes of one measured quantity over trials."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "n": self.count,
        }

    def __format__(self, spec: str) -> str:
        spec = spec or ".3g"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def summarize(values: Sequence[float]) -> TrialSummary:
    """Reduce a sequence of trial measurements.

    Standard deviation is the sample std (ddof=1) when two or more trials
    exist, else 0.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("summarize needs at least one value")
    return TrialSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all values must be positive) — the right average for
    approximation ratios."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean needs at least one value")
    if not (arr > 0).all():
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.log(arr).mean()))
