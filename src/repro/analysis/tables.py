"""ASCII table rendering for benchmark output.

The benches print their reproduced "tables" with :func:`render_table`, so
every experiment's rows look the same in ``pytest benchmarks/`` output and
in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value) -> str:
    """Human-friendly formatting: floats to 4 significant digits, ints and
    strings verbatim, booleans as yes/no."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (sequence of dicts) as a fixed-width ASCII table.

    Parameters
    ----------
    columns:
        Column order; default: keys of the first row.
    title:
        Optional heading line.

    Returns
    -------
    str
        The formatted table (no trailing newline).
    """
    if not rows:
        return (title + "\n(empty)") if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[format_cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), max(len(r[i]) for r in cells)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = [" | ".join(r[i].rjust(widths[i]) for i in range(len(cols))) for r in cells]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, sep])
    lines.extend(body)
    return "\n".join(lines)
