"""Experiment runners E1–E11 (DESIGN.md §5).

Each function reproduces one measurable claim of the paper and returns a
list of row dicts; the benchmark suite times the underlying computations and
prints the rows with :func:`repro.analysis.tables.render_table`, and
EXPERIMENTS.md records the claim-vs-measured comparison.

The paper has no empirical tables of its own (it is a theory paper), so the
"ground truth" column of every experiment is the *theorem's bound*, and the
reproduction succeeds when the measured shape matches: phases growing like
``log log d̄``, ratios below ``2 + 30ε``, per-machine memory ``O(n)``, and
so on.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.analysis.stats import geometric_mean, summarize
from repro.baselines.exact import exact_mwvc
from repro.baselines.ggk_unweighted import unweighted_mpc_vertex_cover
from repro.baselines.greedy import greedy_vertex_cover
from repro.baselines.local_baseline import local_round_by_round
from repro.baselines.lp import lp_relaxation
from repro.baselines.pricing import pricing_vertex_cover
from repro.congested.mwvc import congested_clique_mwvc
from repro.core.centralized import run_centralized
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.orientation import orientation_report
from repro.core.params import MPCParameters
from repro.core.phase_kernel import GlobalState, plan_phase
from repro.core.thresholds import ThresholdSampler
from repro.graphs.generators import gnp_average_degree, power_law
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import make_weights

__all__ = [
    "make_workload",
    "experiment_round_complexity",
    "experiment_approximation",
    "experiment_memory",
    "experiment_degree_reduction",
    "experiment_centralized_iterations",
    "experiment_deviation",
    "experiment_vs_local_baseline",
    "experiment_weighted_vs_unweighted",
    "experiment_ablations",
    "experiment_congested_clique",
    "experiment_engine_agreement",
]


def make_workload(
    family: str, n: int, avg_degree: float, weight_model: str, seed: int
) -> WeightedGraph:
    """Standard experiment workload: topology family × weight model."""
    if family == "gnp":
        g = gnp_average_degree(n, avg_degree, seed=seed)
    elif family == "power_law":
        g = power_law(n, exponent=2.5, min_degree=max(1, int(avg_degree / 4)), seed=seed)
    else:
        raise ValueError(f"unknown family {family!r}")
    return g.with_weights(make_weights(weight_model, g, seed=seed + 1))


# --------------------------------------------------------------------- #
# E1 — Theorem 1.1 / 4.5: phases grow like log log d̄
# --------------------------------------------------------------------- #
def experiment_round_complexity(
    *,
    ns: Sequence[int] = (2000, 4000, 8000),
    degrees: Sequence[float] = (16.0, 64.0, 256.0),
    eps: float = 0.1,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Phases and rounds vs ``log log d̄`` over an (n, d̄) grid."""
    rows: List[dict] = []
    for n in ns:
        for d in degrees:
            if d >= n / 4:
                continue
            phases, rounds, decays = [], [], []
            for t in range(trials):
                g = make_workload("gnp", n, d, "uniform", seed + 1000 * t)
                res = minimum_weight_vertex_cover(g, eps=eps, seed=seed + t)
                phases.append(res.num_phases)
                rounds.append(res.mpc_rounds)
                if res.phases and res.phases[0].avg_degree > 3.0:
                    p0 = res.phases[0]
                    if p0.avg_degree_after > 1.0:
                        # d -> d^c per phase; c < 1 is the loglog mechanism.
                        decays.append(
                            math.log(p0.avg_degree_after) / math.log(p0.avg_degree)
                        )
            loglog = math.log(max(math.log(max(d, 3.0)), 1.001))
            ps = summarize(phases)
            rs = summarize(rounds)
            rows.append(
                {
                    "n": n,
                    "avg_degree": d,
                    "loglog_d": loglog,
                    "phases_mean": ps.mean,
                    "phases_max": ps.maximum,
                    "rounds_mean": rs.mean,
                    "phases_per_loglog": ps.mean / loglog,
                    "phase0_decay_exp": summarize(decays).mean if decays else float("nan"),
                }
            )
    return rows


# --------------------------------------------------------------------- #
# E2 — Theorem 4.7: w(C) ≤ (2 + 30ε)·OPT
# --------------------------------------------------------------------- #
def experiment_approximation(
    *,
    eps_values: Sequence[float] = (0.05, 0.1, 0.2),
    weight_models: Sequence[str] = ("uniform", "exponential", "adversarial"),
    n_small: int = 40,
    n_medium: int = 1200,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Measured ratios against exact OPT (small), LP (medium), and the
    dual certificate (all), per ε and weight model."""
    rows: List[dict] = []
    for eps in eps_values:
        bound = 2.0 + 30.0 * eps
        for model in weight_models:
            exact_ratios, lp_ratios, cert_ratios = [], [], []
            for t in range(trials):
                gs = make_workload("gnp", n_small, 8.0, model, seed + 17 * t)
                rs = minimum_weight_vertex_cover(gs, eps=eps, seed=seed + t)
                opt = exact_mwvc(gs).opt_weight
                if opt > 0:
                    exact_ratios.append(rs.cover_weight / opt)
                gm = make_workload("gnp", n_medium, 24.0, model, seed + 31 * t)
                rm = minimum_weight_vertex_cover(gm, eps=eps, seed=seed + t)
                lp = lp_relaxation(gm).lp_value
                if lp > 0:
                    lp_ratios.append(rm.cover_weight / lp)
                cert_ratios.append(rm.certificate.certified_ratio)
            rows.append(
                {
                    "eps": eps,
                    "weights": model,
                    "paper_bound": bound,
                    "ratio_vs_exact": geometric_mean(exact_ratios),
                    "ratio_vs_lp": geometric_mean(lp_ratios),
                    "certified_ratio": geometric_mean(cert_ratios),
                    "within_bound": max(exact_ratios + lp_ratios) <= bound,
                }
            )
    return rows


# --------------------------------------------------------------------- #
# E3 — Lemma 4.1: per-machine induced subgraphs are O(n)
# --------------------------------------------------------------------- #
def experiment_memory(
    *,
    n: int = 4000,
    degrees: Sequence[float] = (32.0, 128.0, 512.0),
    eps: float = 0.1,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Max over phases/machines of ``|E[V_i]| / n`` — Lemma 4.1 claims
    this stays below 2 w.h.p."""
    rows: List[dict] = []
    for d in degrees:
        worst, per_trial = 0.0, []
        for t in range(trials):
            g = make_workload("gnp", n, d, "uniform", seed + 7 * t)
            res = minimum_weight_vertex_cover(g, eps=eps, seed=seed + t)
            m = max((p.max_machine_edges for p in res.phases), default=0)
            per_trial.append(m / n)
            worst = max(worst, m / n)
        rows.append(
            {
                "n": n,
                "avg_degree": d,
                "max_machine_edges_over_n": worst,
                "mean_over_trials": summarize(per_trial).mean,
                "lemma_bound": 2.0,
                "within_bound": worst <= 2.0,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E4 — Observation 4.3 / Lemma 4.4: per-phase degree reduction
# --------------------------------------------------------------------- #
def experiment_degree_reduction(
    *,
    n: int = 4000,
    avg_degree: float = 64.0,
    families: Sequence[str] = ("gnp", "power_law"),
    eps: float = 0.1,
    seed: int = 0,
) -> List[dict]:
    """Per-phase orientation report rows; Observation 4.3's out-degree
    ratio must be ≤ 1 deterministically, Lemma 4.4's edge ratio ≤ 1 w.h.p."""
    from repro.core.phase_kernel import apply_outcome

    rows: List[dict] = []
    for family in families:
        g = make_workload(family, n, avg_degree, "uniform", seed)
        params = MPCParameters(eps=eps)
        res = minimum_weight_vertex_cover(g, params=params, seed=seed, collect_trace=True)
        # Replay the state evolution so residual degrees at each phase start
        # are in hand for the orientation report.
        state = GlobalState.initial(g, g.weights)
        for plan, outcome in res.traces or []:
            resid_high = state.resid_degree[plan.high_ids]
            report = orientation_report(plan, outcome, params, resid_degree_high=resid_high)
            row = report.as_dict()
            row["family"] = family
            rows.append(row)
            apply_outcome(g, g.weights, state, plan, outcome)
    return rows


# --------------------------------------------------------------------- #
# E5 — Proposition 3.4: centralized iteration counts per initialization
# --------------------------------------------------------------------- #
def experiment_centralized_iterations(
    *,
    n: int = 2000,
    degrees: Sequence[float] = (8.0, 32.0, 128.0),
    weight_spreads: Sequence[float] = (1.0, 5.0, 9.0),
    eps: float = 0.1,
    seed: int = 0,
) -> List[dict]:
    """Iterations of Algorithm 1 with degree-scaled vs uniform vs
    max-degree-scaled initialization, sweeping Δ and the weight spread W."""
    from repro.graphs.weights import adversarial_spread_weights

    rows: List[dict] = []
    for d in degrees:
        for spread in weight_spreads:
            g = gnp_average_degree(n, d, seed=seed)
            w = adversarial_spread_weights(n, orders_of_magnitude=spread, seed=seed + 1)
            g = g.with_weights(w)
            iters = {}
            for scheme in ("degree_scaled", "uniform", "max_degree_scaled"):
                res = run_centralized(g, eps=eps, init=scheme, seed=seed)
                iters[scheme] = res.iterations
            rows.append(
                {
                    "avg_degree": d,
                    "max_degree": g.max_degree,
                    "weight_spread_decades": spread,
                    "log_delta": math.log(max(g.max_degree, 2)),
                    "iters_degree_scaled": iters["degree_scaled"],
                    "iters_uniform": iters["uniform"],
                    "iters_max_degree": iters["max_degree_scaled"],
                    "uniform_over_degree_scaled": iters["uniform"]
                    / max(iters["degree_scaled"], 1),
                }
            )
    return rows


# --------------------------------------------------------------------- #
# E6 — Lemma 4.6: coupled centralized-vs-MPC estimator deviation
# --------------------------------------------------------------------- #
def experiment_deviation(
    *,
    n: int = 3000,
    degrees: Sequence[float] = (32.0, 128.0, 512.0),
    eps: float = 0.1,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Normalized deviation ``|y_{v,t} − ỹ^MPC_{v,t}| / w'(v)`` between the
    coupled runs of phase 0.

    Lemma 4.6 claims ≤ 6ε *asymptotically* (the proof needs
    ``4·m^{-0.1} ≤ ε``, i.e. ``m ≥ (4/ε)^10`` machines — far beyond any
    laptop-scale graph).  The reproducible shape at feasible sizes is the
    *decay* of the deviation with the average degree: the local sample of a
    vertex has ``≈ d/m = √d`` edges, so the relative estimator error falls
    like ``d^{-1/4}``.  The rows report max / p99 / median so both the tail
    and the bulk trends are visible.
    """
    rows: List[dict] = []
    for d in degrees:
        per_vertex_devs: List[np.ndarray] = []
        for t in range(trials):
            g = make_workload("gnp", n, d, "uniform", seed + 13 * t)
            params = MPCParameters(eps=eps)
            res = minimum_weight_vertex_cover(
                g, params=params, seed=seed + t, collect_trace=True
            )
            if not res.traces:
                continue
            plan, outcome = res.traces[0]
            if plan.num_high == 0 or plan.iterations == 0:
                continue
            sub = WeightedGraph(plan.num_high, plan.hu, plan.hv, plan.wprime_high)
            sampler = ThresholdSampler(plan.threshold_seed, plan.num_high, eps)
            cres = run_centralized(
                sub,
                eps=eps,
                weights=plan.wprime_high,
                init=plan.x0,
                thresholds=sampler,
                max_iterations=plan.iterations,
                trace=True,
            )
            for it in range(min(len(cres.trace_y), len(outcome.trace_ytilde))):
                diff = np.abs(cres.trace_y[it] - outcome.trace_ytilde[it]) / plan.wprime_high
                both = cres.trace_active[it] & outcome.trace_active[it]
                if both.any():
                    per_vertex_devs.append(diff[both])
        if per_vertex_devs:
            all_devs = np.concatenate(per_vertex_devs)
            max_dev = float(all_devs.max())
            p99 = float(np.percentile(all_devs, 99))
            median = float(np.median(all_devs))
        else:
            max_dev = p99 = median = 0.0
        rows.append(
            {
                "n": n,
                "avg_degree": d,
                "eps": eps,
                "lemma_bound_6eps": 6.0 * eps,
                "max_dev": max_dev,
                "p99_dev": p99,
                "median_dev": median,
                "predicted_scale_d^-1/4": float(d) ** -0.25,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E7 — rounds vs the O(log n) LOCAL-per-round baseline
# --------------------------------------------------------------------- #
def experiment_vs_local_baseline(
    *,
    ns: Sequence[int] = (1000, 4000, 16000),
    avg_degree: float = 32.0,
    eps: float = 0.1,
    seed: int = 0,
) -> List[dict]:
    """Algorithm 2 phases/rounds vs the uncompressed baseline's rounds."""
    rows: List[dict] = []
    for n in ns:
        g = make_workload("gnp", n, avg_degree, "uniform", seed)
        ours = minimum_weight_vertex_cover(g, eps=eps, seed=seed)
        base = local_round_by_round(g, eps=eps, seed=seed)
        rows.append(
            {
                "n": n,
                "avg_degree": avg_degree,
                "ours_phases": ours.num_phases,
                "ours_rounds": ours.mpc_rounds,
                "baseline_rounds": base.mpc_rounds,
                "ours_weight": ours.cover_weight,
                "baseline_weight": base.cover_weight,
                "weight_ratio": ours.cover_weight / base.cover_weight,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E8 — weighted vs unweighted (GGK-style) covers on weighted instances
# --------------------------------------------------------------------- #
def experiment_weighted_vs_unweighted(
    *,
    n: int = 2000,
    avg_degree: float = 24.0,
    weight_models: Sequence[str] = ("uniform", "adversarial", "degree_correlated"),
    eps: float = 0.1,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Weight of the cardinality-driven cover vs the weighted algorithm's."""
    rows: List[dict] = []
    for model in weight_models:
        ratios = []
        for t in range(trials):
            g = make_workload("gnp", n, avg_degree, model, seed + 11 * t)
            ours = minimum_weight_vertex_cover(g, eps=eps, seed=seed + t)
            ggk = unweighted_mpc_vertex_cover(g, eps=eps, seed=seed + t)
            ratios.append(ggk.true_weight / ours.cover_weight)
        s = summarize(ratios)
        rows.append(
            {
                "weights": model,
                "unweighted_over_weighted_mean": s.mean,
                "unweighted_over_weighted_max": s.maximum,
                "weighted_wins": s.mean > 1.0,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E9 — ablations: initialization scheme and estimator bias schedule
# --------------------------------------------------------------------- #
def experiment_ablations(
    *,
    n: int = 2000,
    avg_degree: float = 64.0,
    eps: float = 0.1,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Phase counts / ratios under the §3.2 design alternatives."""
    variants: Dict[str, MPCParameters] = {
        "paper_practical (unbiased)": MPCParameters(eps=eps),
        "bias mild (0.5, flat)": MPCParameters(eps=eps, bias_coeff=0.5, bias_growth=1.0),
        "bias paper (2, 15^t)": MPCParameters(eps=eps, bias_coeff=2.0, bias_growth=15.0),
        "iterations x2": MPCParameters(eps=eps).with_(iterations_override=None),
    }
    rows: List[dict] = []
    for name, params in variants.items():
        phases, rounds, ratios, pruned_ratios = [], [], [], []
        for t in range(trials):
            g = make_workload("gnp", n, avg_degree, "exponential", seed + 3 * t)
            if name == "iterations x2":
                base_d = g.average_degree
                m = params.num_machines(base_d)
                params = params.with_(
                    iterations_override=2 * MPCParameters(eps=eps).iterations_per_phase(base_d, m)
                )
            res = minimum_weight_vertex_cover(g, params=params, seed=seed + t)
            phases.append(res.num_phases)
            rounds.append(res.mpc_rounds)
            ratios.append(res.certificate.certified_ratio)
            from repro.core.postprocess import prune_redundant_vertices

            pruned = prune_redundant_vertices(g, res.in_cover)
            pruned_weight = float(g.weights[pruned].sum())
            pruned_ratios.append(
                res.certificate.certified_ratio * pruned_weight / res.cover_weight
            )
        rows.append(
            {
                "variant": name,
                "phases_mean": summarize(phases).mean,
                "rounds_mean": summarize(rounds).mean,
                "certified_ratio": geometric_mean(ratios),
                "certified_ratio_pruned": geometric_mean(pruned_ratios),
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E10 — congested-clique round translation
# --------------------------------------------------------------------- #
def experiment_congested_clique(
    *,
    ns: Sequence[int] = (500, 1000, 2000),
    avg_degree: float = 24.0,
    eps: float = 0.1,
    seed: int = 0,
) -> List[dict]:
    """MPC rounds vs translated congested-clique rounds (BDH18 adapter)."""
    rows: List[dict] = []
    for n in ns:
        g = make_workload("gnp", n, avg_degree, "uniform", seed)
        res = congested_clique_mwvc(g, eps=eps, seed=seed)
        rows.append(
            {
                "n": n,
                "mpc_rounds": res.mpc_result.mpc_rounds,
                "cc_rounds": res.cc_rounds,
                "cc_per_mpc": res.cc_rounds_per_mpc_round,
                "cover_weight": res.cover_weight,
            }
        )
    return rows


# --------------------------------------------------------------------- #
# E11 — engine agreement + accounting audit
# --------------------------------------------------------------------- #
def experiment_engine_agreement(
    *,
    ns: Sequence[int] = (200, 400),
    degrees: Sequence[float] = (12.0, 24.0),
    eps: float = 0.1,
    seed: int = 0,
) -> List[dict]:
    """Vectorized vs cluster engine: identical covers, duals, and rounds."""
    rows: List[dict] = []
    for n in ns:
        for d in degrees:
            g = make_workload("gnp", n, d, "uniform", seed)
            rv = minimum_weight_vertex_cover(g, eps=eps, seed=seed, engine="vectorized")
            rc = minimum_weight_vertex_cover(g, eps=eps, seed=seed, engine="cluster")
            rows.append(
                {
                    "n": n,
                    "avg_degree": d,
                    "covers_equal": bool(np.array_equal(rv.in_cover, rc.in_cover)),
                    "duals_close": bool(np.allclose(rv.x, rc.x)),
                    "rounds_vec": rv.mpc_rounds,
                    "rounds_cluster": rc.mpc_rounds,
                    "rounds_equal": rv.mpc_rounds == rc.mpc_rounds,
                }
            )
    return rows
