"""Experiment harness: workload construction, runners E1–E11, tables, stats."""

from repro.analysis.experiments import (
    experiment_ablations,
    experiment_approximation,
    experiment_centralized_iterations,
    experiment_congested_clique,
    experiment_degree_reduction,
    experiment_deviation,
    experiment_engine_agreement,
    experiment_memory,
    experiment_round_complexity,
    experiment_vs_local_baseline,
    experiment_weighted_vs_unweighted,
    make_workload,
)
from repro.analysis.stats import TrialSummary, geometric_mean, summarize
from repro.analysis.tables import format_cell, render_table

__all__ = [
    "make_workload",
    "experiment_round_complexity",
    "experiment_approximation",
    "experiment_memory",
    "experiment_degree_reduction",
    "experiment_centralized_iterations",
    "experiment_deviation",
    "experiment_vs_local_baseline",
    "experiment_weighted_vs_unweighted",
    "experiment_ablations",
    "experiment_congested_clique",
    "experiment_engine_agreement",
    "render_table",
    "format_cell",
    "summarize",
    "geometric_mean",
    "TrialSummary",
]
