"""Argument-validation helpers shared across the package.

These raise early, with messages that name the offending parameter, so that
algorithm code can assume clean inputs and stay branch-free in hot loops.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (``> 0``; or ``>= 0`` when
    ``strict=False``) and finite. Returns the value for chaining."""
    v = float(value)
    if not np.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    v = float(value)
    if not (0.0 <= v <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_fraction(name: str, value: float, *, low: float = 0.0, high: float = 0.5) -> float:
    """Validate an accuracy parameter ``value`` in the open interval
    ``(low, high)``; the paper assumes ``0 < eps < 1/2``."""
    v = float(value)
    if not (low < v < high):
        raise ValueError(f"{name} must lie in ({low}, {high}), got {value!r}")
    return v


def ensure_int_array(name: str, arr, *, ndim: int = 1) -> np.ndarray:
    """Coerce ``arr`` to a contiguous int64 array of dimension ``ndim``."""
    out = np.ascontiguousarray(arr, dtype=np.int64)
    if out.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {out.shape}")
    return out


def ensure_float_array(name: str, arr, *, ndim: int = 1, require_finite: bool = True) -> np.ndarray:
    """Coerce ``arr`` to a contiguous float64 array of dimension ``ndim``."""
    out = np.ascontiguousarray(arr, dtype=np.float64)
    if out.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {out.shape}")
    if require_finite and out.size and not np.all(np.isfinite(out)):
        raise ValueError(f"{name} must contain only finite values")
    return out
