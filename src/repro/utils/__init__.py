"""Shared utilities: seeded RNG streams, validation helpers, timers.

The algorithms in :mod:`repro` are randomized; reproducibility is achieved by
deriving every random draw from a :class:`numpy.random.SeedSequence` spawned
along a documented path (run -> phase -> purpose).  See :mod:`repro.utils.rng`.
"""

from repro.utils.rng import RngFactory, as_seed_sequence, spawn_rng
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    ensure_int_array,
    ensure_float_array,
)

__all__ = [
    "RngFactory",
    "as_seed_sequence",
    "spawn_rng",
    "check_fraction",
    "check_positive",
    "check_probability",
    "ensure_int_array",
    "ensure_float_array",
]
