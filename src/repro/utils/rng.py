"""Deterministic random-stream management.

Every stochastic component of the reproduction (graph generation, vertex
partitioning, threshold sampling) draws from a generator derived from a
:class:`numpy.random.SeedSequence`.  Distinct *purposes* receive distinct
child streams identified by small integer keys, so that two executions that
need the *same* draws (e.g. the coupled centralized/MPC runs of experiment
E6, or the vectorized/cluster engine equivalence test) can reconstruct them
independently.

Purpose keys used across the code base
--------------------------------------
======  ==============================================
key     purpose
======  ==============================================
0       graph topology generation
1       vertex weight generation
2       per-phase vertex partitioning
3       per-phase threshold sampling
4       baseline-internal randomness
5       failure injection
======  ==============================================

Phase-scoped streams append the phase index after the purpose key, i.e. the
spawn path is ``root -> (purpose, phase)``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]

#: Named purpose keys (documented in the module docstring).
PURPOSE_TOPOLOGY = 0
PURPOSE_WEIGHTS = 1
PURPOSE_PARTITION = 2
PURPOSE_THRESHOLDS = 3
PURPOSE_BASELINE = 4
PURPOSE_FAILURES = 5


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Coerce ``seed`` into a :class:`numpy.random.SeedSequence`.

    ``None`` produces a fresh, OS-entropy-backed sequence; an ``int`` produces
    the deterministic sequence for that seed; an existing sequence is returned
    unchanged (not copied — SeedSequence is immutable).
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None:
        return np.random.SeedSequence()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.SeedSequence(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__} as a seed")


def spawn_rng(seed: SeedLike, *path: int) -> np.random.Generator:
    """Return a generator for the child stream at ``path`` under ``seed``.

    The path is folded into the seed sequence via ``spawn_key`` extension,
    which guarantees independence between distinct paths and reproducibility
    for equal paths.
    """
    base = as_seed_sequence(seed)
    if path:
        child = np.random.SeedSequence(
            entropy=base.entropy,
            spawn_key=tuple(base.spawn_key) + tuple(int(p) for p in path),
        )
    else:
        child = base
    return np.random.default_rng(child)


class RngFactory:
    """Factory of reproducible, purpose-scoped random generators.

    Parameters
    ----------
    seed:
        Root seed (``int``, :class:`~numpy.random.SeedSequence`, or ``None``
        for fresh entropy).

    Examples
    --------
    >>> f = RngFactory(7)
    >>> a = f.for_purpose(PURPOSE_PARTITION, phase=0).integers(0, 10, 4)
    >>> b = RngFactory(7).for_purpose(PURPOSE_PARTITION, phase=0).integers(0, 10, 4)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, seed: SeedLike = None):
        self._root = as_seed_sequence(seed)

    @property
    def root(self) -> np.random.SeedSequence:
        """The root seed sequence (immutable)."""
        return self._root

    def for_purpose(self, purpose: int, phase: int = 0) -> np.random.Generator:
        """Generator for ``(purpose, phase)``; identical inputs => identical stream."""
        return spawn_rng(self._root, int(purpose), int(phase))

    def child(self, *path: int) -> "RngFactory":
        """A factory rooted at a child path (used to give sub-algorithms
        their own namespaces without risking stream collisions)."""
        base = self._root
        seq = np.random.SeedSequence(
            entropy=base.entropy,
            spawn_key=tuple(base.spawn_key) + tuple(int(p) for p in path),
        )
        return RngFactory(seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(entropy={self._root.entropy}, spawn_key={self._root.spawn_key})"
