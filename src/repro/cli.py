"""Command-line interface.

Seven subcommands::

    python -m repro solve       # run a cover algorithm on a file or a
                                # generated workload, print the summary
    python -m repro generate    # write a workload to .npz / edge list
    python -m repro experiment  # run experiment runners E1..E11, print tables
    python -m repro batch       # solve a JSON-lines manifest of instances
                                # through the pooled/cached batch service
    python -m repro stream      # maintain a certified cover over a
                                # JSON-lines update stream (or generated
                                # churn), optionally sharded (--shards N)
    python -m repro resume      # pick up a killed `repro stream
                                # --checkpoint-dir` run: restore the last
                                # snapshot, replay the WAL tail, finish
    python -m repro wal-compact # drop WAL records already covered by the
                                # retained snapshots of a checkpoint dir

Examples
--------
Generate a workload and solve it::

    python -m repro generate --family gnp --n 5000 --degree 32 \\
        --weights uniform --seed 1 --out work.npz
    python -m repro solve --input work.npz --eps 0.1 --seed 2

Solve a generated workload directly, with the cluster engine::

    python -m repro solve --family power_law --n 2000 --degree 8 \\
        --weights adversarial --engine cluster --seed 3

Reproduce an experiment table::

    python -m repro experiment e5

Solve a manifest of instances through the batch service::

    python -m repro batch --manifest work.jsonl --workers 4 --out results.jsonl

Maintain a cover over 2000 generated churn events::

    python -m repro stream --family gnp --n 2000 --degree 12 \\
        --churn uniform --num-updates 2000 --max-drift 0.25 --out records.jsonl

Run the same stream durably, kill it, and resume exactly where it died::

    python -m repro stream --family gnp --n 2000 --degree 12 \\
        --churn uniform --num-updates 2000 --checkpoint-dir ckpt
    python -m repro resume --checkpoint-dir ckpt
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import experiments as _exp
from repro.analysis.tables import render_table
from repro.baselines.greedy import greedy_vertex_cover
from repro.baselines.pricing import pricing_vertex_cover
from repro.core.centralized import run_centralized
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import load_edgelist, load_npz, save_edgelist, save_npz
from repro.graphs.weights import WEIGHT_MODELS, make_weights
from repro.service.batch import BatchSolver
from repro.service.manifest import GRAPH_FAMILIES, generate_graph, load_manifest

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "e1": ("round complexity (Thm 1.1)", _exp.experiment_round_complexity),
    "e2": ("approximation ratio (Thm 4.7)", _exp.experiment_approximation),
    "e3": ("per-machine memory (Lemma 4.1)", _exp.experiment_memory),
    "e4": ("degree reduction (Obs 4.3 / Lemma 4.4)", _exp.experiment_degree_reduction),
    "e5": ("centralized iterations (Prop 3.4)", _exp.experiment_centralized_iterations),
    "e6": ("coupling deviation (Lemma 4.6)", _exp.experiment_deviation),
    "e7": ("vs LOCAL baseline (intro)", _exp.experiment_vs_local_baseline),
    "e8": ("weighted vs unweighted (motivation)", _exp.experiment_weighted_vs_unweighted),
    "e9": ("design ablations (§3.2)", _exp.experiment_ablations),
    "e10": ("congested clique (§1.3)", _exp.experiment_congested_clique),
    "e11": ("engine agreement (accounting audit)", _exp.experiment_engine_agreement),
}


def _package_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro-mwvc")
    except Exception:  # pragma: no cover - metadata unavailable
        import repro

        return repro.__version__


def _load_or_generate(args) -> WeightedGraph:
    if args.input:
        try:
            if str(args.input).endswith(".npz"):
                return load_npz(args.input)
            return load_edgelist(args.input)
        except FileNotFoundError:
            raise SystemExit(f"input file not found: {args.input}")
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read input file {args.input}: {exc}")
    return _generate_graph(args)


def _generate_graph(args) -> WeightedGraph:
    try:
        g = generate_graph(args.family, n=args.n, degree=args.degree, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.weights != "unit":
        g = g.with_weights(make_weights(args.weights, g, seed=args.seed + 1))
    return g


def _cmd_solve(args) -> int:
    graph = _load_or_generate(args)
    if args.algorithm == "mpc":
        res = minimum_weight_vertex_cover(
            graph, eps=args.eps, seed=args.seed, engine=args.engine
        )
        summary = res.summary()
        summary.update(res.certificate.summary())
        cover = res.in_cover
    elif args.algorithm == "centralized":
        res = run_centralized(graph, eps=args.eps, seed=args.seed)
        cover = res.in_cover
        summary = {
            "cover_weight": graph.cover_weight(cover),
            "cover_size": int(cover.sum()),
            "dual_value": res.dual_value,
            "iterations": res.iterations,
        }
    elif args.algorithm == "pricing":
        res = pricing_vertex_cover(graph)
        cover = res.in_cover
        summary = {
            "cover_weight": res.cover_weight,
            "cover_size": int(cover.sum()),
            "dual_value": res.dual_value,
        }
    elif args.algorithm == "greedy":
        res = greedy_vertex_cover(graph)
        cover = res.in_cover
        summary = {"cover_weight": res.cover_weight, "cover_size": int(cover.sum())}
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown algorithm {args.algorithm!r}")

    if not graph.is_vertex_cover(cover):  # pragma: no cover - algorithms verified
        raise SystemExit("internal error: produced a non-cover")
    summary["n"] = graph.n
    summary["m"] = graph.m
    summary["algorithm"] = args.algorithm
    if args.json:
        print(json.dumps({k: _jsonable(v) for k, v in summary.items()}, indent=2))
    else:
        rows = [{"key": k, "value": v} for k, v in summary.items()]
        print(render_table(rows, title=f"{args.algorithm} on {graph}"))
    if args.cover_out:
        np.savetxt(args.cover_out, np.nonzero(cover)[0], fmt="%d")
        print(f"cover vertex ids written to {args.cover_out}")
    return 0


def _jsonable(v):
    if isinstance(v, (np.integer,)):
        return int(v)
    if isinstance(v, (np.floating,)):
        return float(v)
    if isinstance(v, (np.bool_,)):
        return bool(v)
    return v


def _cmd_generate(args) -> int:
    graph = _generate_graph(args)
    if str(args.out).endswith(".npz"):
        save_npz(graph, args.out)
    else:
        save_edgelist(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def _cmd_experiment(args) -> int:
    names = [x.lower() for x in args.ids]
    if "all" in names:
        names = list(_EXPERIMENTS)
    unknown = [x for x in names if x not in _EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment ids {unknown}; known: {sorted(_EXPERIMENTS)}")
    for name in names:
        title, fn = _EXPERIMENTS[name]
        rows = fn()
        print(render_table(rows, title=f"{name.upper()}: {title}"))
        print()
    return 0


def _cmd_batch(args) -> int:
    import time

    try:
        if args.manifest == "-":
            requests = load_manifest(sys.stdin)
        else:
            requests = load_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bad manifest: {exc}")
    if not requests:
        raise SystemExit("manifest contains no requests")

    try:
        solver = BatchSolver(
            max_workers=args.workers,
            cache=args.cache_size,
            chunk_size=args.chunk_size,
            timeout=args.timeout,
            use_processes=not args.no_pool,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    # Open the sink before solving: a bad --out path must fail in
    # milliseconds, not after a manifest worth of compute.
    if args.out in (None, "-"):
        out = sys.stdout
    else:
        try:
            out = open(args.out, "w", encoding="utf-8")
        except OSError as exc:
            raise SystemExit(f"cannot write --out: {exc}")

    start = time.perf_counter()
    with solver:
        results = solver.solve_batch(requests)
    wall = time.perf_counter() - start

    try:
        for res in results:
            out.write(json.dumps({k: _jsonable(v) for k, v in res.summary().items()}))
            out.write("\n")
    finally:
        if out is not sys.stdout:
            out.close()

    failed = sum(1 for r in results if not r.ok)
    hits = sum(1 for r in results if r.cache_hit)
    print(
        f"batch: {len(results)} requests, {failed} failed, {hits} cache hits, "
        f"{wall:.2f}s wall",
        file=sys.stderr,
    )
    if solver.cache is not None:
        stats = solver.cache.stats()
        print(
            f"cache: {stats.size}/{stats.max_entries} entries, "
            f"hit rate {stats.hit_rate:.0%}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def _open_stream_out(args):
    """Open ``--out`` up front: a bad path must fail in milliseconds, not
    after a stream worth of compute."""
    if not args.out or args.out == "-":
        return None
    try:
        return open(args.out, "w", encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"cannot write --out: {exc}")


def _emit_stream_summary(args, summary, out) -> int:
    """Shared output path of ``repro stream`` and ``repro resume``."""
    if out is not None:
        try:
            with out:
                for record in summary.records:
                    out.write(
                        json.dumps({k: _jsonable(v) for k, v in record.summary().items()})
                    )
                    out.write("\n")
        except OSError as exc:
            raise SystemExit(f"cannot write --out: {exc}")
    if getattr(args, "cover_out", None) and summary.final_cover is not None:
        try:
            np.savetxt(args.cover_out, np.nonzero(summary.final_cover)[0], fmt="%d")
        except OSError as exc:
            raise SystemExit(f"cannot write --cover-out: {exc}")
        print(f"cover vertex ids written to {args.cover_out}", file=sys.stderr)

    print(json.dumps({k: _jsonable(v) for k, v in summary.summary().items()}, indent=2))
    print(
        f"stream: {summary.num_updates} updates in {summary.num_batches} batches, "
        f"{summary.num_resolves} re-solves ({summary.num_resolve_cache_hits} from cache), "
        f"final ratio {summary.final_certified_ratio:.3f}, "
        f"{summary.elapsed_s:.2f}s wall",
        file=sys.stderr,
    )
    return 0 if summary.final_is_cover else 1


def _cmd_stream(args) -> int:
    from repro.dynamic import (
        CheckpointConfig,
        CheckpointError,
        ResolvePolicy,
        WALError,
        load_update_stream,
        open_update_source,
        run_sharded_stream,
        run_stream,
    )
    from repro.graphs.streams import make_update_stream

    graph = _load_or_generate(args)
    if args.updates:
        try:
            if args.updates == "-":
                updates = load_update_stream(sys.stdin)
            else:
                # Accepts a JSON-lines file or a directory of segments.
                updates = open_update_source(args.updates).collect()
        except FileNotFoundError:
            raise SystemExit(f"update stream not found: {args.updates}")
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bad update stream: {exc}")
    else:
        try:
            updates = make_update_stream(
                args.churn, graph, args.num_updates, seed=args.stream_seed
            )
        except ValueError as exc:
            raise SystemExit(str(exc))

    try:
        policy = ResolvePolicy(
            max_drift=args.max_drift,
            ratio_ceiling=args.ratio_ceiling,
            min_batches_between=args.min_batches_between,
            every_batch=args.resolve_every_batch,
        )
        solver = BatchSolver(
            max_workers=args.workers or None,
            cache=args.cache_size,
            use_processes=bool(args.workers),
        )
        checkpoint = None
        if args.checkpoint_dir:
            checkpoint = CheckpointConfig(
                directory=args.checkpoint_dir,
                snapshot_every=args.snapshot_every,
                fsync=not args.no_fsync,
                keep_snapshots=args.keep_snapshots,
                compact_wal=args.compact_wal,
                snapshot_compression=args.snapshot_compression,
            )
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
    except ValueError as exc:
        raise SystemExit(str(exc))

    out = _open_stream_out(args)
    with solver:
        try:
            if args.shards > 1:
                summary = run_sharded_stream(
                    graph,
                    updates,
                    num_shards=args.shards,
                    partition=args.partition,
                    batch_size=args.batch_size,
                    policy=policy,
                    solver=solver,
                    eps=args.eps,
                    seed=args.seed,
                    engine=args.engine,
                    verify_every=args.verify_every,
                    checkpoint=checkpoint,
                    use_processes=not args.inline_shards,
                    profile=args.profile,
                )
            else:
                summary = run_stream(
                    graph,
                    updates,
                    batch_size=args.batch_size,
                    policy=policy,
                    solver=solver,
                    eps=args.eps,
                    seed=args.seed,
                    engine=args.engine,
                    verify_every=args.verify_every,
                    checkpoint=checkpoint,
                    profile=args.profile,
                )
        except (ValueError, RuntimeError, CheckpointError, WALError) as exc:
            raise SystemExit(str(exc))
    return _emit_stream_summary(args, summary, out)


def _read_stream_config(checkpoint_dir) -> dict:
    from repro.dynamic import CheckpointConfig, CheckpointError
    from repro.dynamic.stream import _load_config

    try:
        return _load_config(CheckpointConfig(directory=checkpoint_dir))
    except CheckpointError as exc:
        raise SystemExit(str(exc))


def _cmd_resume(args) -> int:
    from repro.dynamic import (
        CheckpointError,
        WALError,
        open_update_source,
        resume_sharded_stream,
        resume_stream,
    )

    updates = None
    if args.updates:
        try:
            updates = open_update_source(args.updates).collect()
        except FileNotFoundError:
            raise SystemExit(f"update stream not found: {args.updates}")
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bad update stream: {exc}")

    # The checkpoint config knows which engine wrote it; dispatch to the
    # matching resume so callers never have to re-specify the layout.
    # (A `shards` key marks the sharded engine even with one shard — its
    # snapshots and WAL stamps use the sharded formats.)
    config = _read_stream_config(args.checkpoint_dir)
    sharded = "shards" in config

    try:
        solver = BatchSolver(
            max_workers=args.workers or None,
            cache=args.cache_size,
            use_processes=bool(args.workers),
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    out = _open_stream_out(args)
    with solver:
        try:
            if sharded:
                summary = resume_sharded_stream(
                    args.checkpoint_dir,
                    updates=updates,
                    solver=solver,
                    use_processes=not args.inline_shards,
                    profile=args.profile,
                )
            else:
                summary = resume_stream(
                    args.checkpoint_dir,
                    updates=updates,
                    solver=solver,
                    profile=args.profile,
                )
        except (ValueError, RuntimeError, CheckpointError, WALError) as exc:
            raise SystemExit(str(exc))
    print(
        f"resumed from batch {summary.resumed_from_batch}",
        file=sys.stderr,
    )
    return _emit_stream_summary(args, summary, out)


def _cmd_wal_compact(args) -> int:
    from repro.dynamic import (
        CheckpointConfig,
        CheckpointError,
        WALError,
        compact_wal,
    )
    from repro.dynamic.checkpoint import snapshot_meta
    from repro.dynamic.shard_checkpoint import list_sharded_snapshots

    config = _read_stream_config(args.checkpoint_dir)
    checkpoint = CheckpointConfig(
        directory=args.checkpoint_dir,
        keep_snapshots=int(config.get("keep_snapshots", 1)),
        compress=bool(config.get("compress", False)),
    )
    keep = checkpoint.keep_snapshots
    try:
        # Same engine marker as _cmd_resume: a `shards` key means the
        # sharded snapshot format, whatever the shard count.
        if "shards" in config:
            generations = list_sharded_snapshots(args.checkpoint_dir)
            retained = [idx for idx, _ in generations[:keep]]
        else:
            retained = []
            for idx, path in checkpoint.list_snapshots()[:keep]:
                if idx < 0:  # legacy single snapshot: position is in meta
                    idx = int(
                        snapshot_meta(path).get("extra", {}).get(
                            "next_batch_index", 0
                        )
                    )
                retained.append(idx)
        if not retained:
            raise SystemExit(
                f"no snapshot in {args.checkpoint_dir}; the whole WAL is "
                f"still needed for recovery — nothing to compact"
            )
        floor = min(retained)
        removed = compact_wal(checkpoint.wal_path, floor)
    except (CheckpointError, WALError) as exc:
        raise SystemExit(str(exc))
    print(
        f"wal-compact: dropped {removed} record(s) below batch {floor} "
        f"({len(retained)} snapshot(s) retained)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minimum weight vertex cover in the MPC model "
        "(Ghaffari-Jin-Nilis, SPAA 2020 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_workload_args(p):
        p.add_argument("--input", help="input graph (.npz or edge list)")
        p.add_argument("--family", default="gnp", choices=list(GRAPH_FAMILIES))
        p.add_argument("--n", type=int, default=1000)
        p.add_argument("--degree", type=float, default=16.0)
        p.add_argument(
            "--weights", default="uniform", choices=["unit", *sorted(WEIGHT_MODELS)]
        )
        p.add_argument("--seed", type=int, default=0)

    solve = sub.add_parser("solve", help="compute a vertex cover")
    add_workload_args(solve)
    solve.add_argument(
        "--algorithm",
        default="mpc",
        choices=["mpc", "centralized", "pricing", "greedy"],
    )
    solve.add_argument("--eps", type=float, default=0.1)
    solve.add_argument("--engine", default="vectorized", choices=["vectorized", "cluster"])
    solve.add_argument("--json", action="store_true", help="machine-readable output")
    solve.add_argument("--cover-out", help="write cover vertex ids to this file")
    solve.set_defaults(func=_cmd_solve)

    gen = sub.add_parser("generate", help="write a workload file")
    add_workload_args(gen)
    gen.add_argument("--out", required=True, help="output path (.npz or .txt)")
    gen.set_defaults(func=_cmd_generate)

    exp = sub.add_parser("experiment", help="run experiment tables E1..E11")
    exp.add_argument("ids", nargs="+", help="experiment ids (e1..e11 or 'all')")
    exp.set_defaults(func=_cmd_experiment)

    batch = sub.add_parser(
        "batch", help="solve a JSON-lines manifest through the batch service"
    )
    batch.add_argument(
        "--manifest", required=True,
        help="JSON-lines manifest path ('-' for stdin); one request per line",
    )
    batch.add_argument(
        "--out", default="-",
        help="write JSON-lines results here (default: stdout)",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: cpu count)",
    )
    batch.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU result-cache capacity; 0 disables caching",
    )
    batch.add_argument(
        "--chunk-size", type=int, default=None,
        help="requests per pool task (default: auto, ~4 chunks per worker)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-request wall-clock budget in seconds",
    )
    batch.add_argument(
        "--no-pool", action="store_true",
        help="solve in-process instead of a process pool",
    )
    batch.set_defaults(func=_cmd_batch)

    from repro.graphs.streams import CHURN_MODELS

    stream = sub.add_parser(
        "stream",
        help="maintain a certified cover over an update stream "
        "(incremental repair + drift-bounded re-solves)",
    )
    add_workload_args(stream)
    stream.add_argument(
        "--updates",
        help="JSON-lines update stream ('-' for stdin, '.gz' ok) or a "
        "directory of segment files; omit to generate churn via --churn",
    )
    stream.add_argument(
        "--churn", default="uniform", choices=list(CHURN_MODELS),
        help="churn model for a generated stream (ignored with --updates)",
    )
    stream.add_argument(
        "--num-updates", type=int, default=500,
        help="length of the generated stream (ignored with --updates)",
    )
    stream.add_argument(
        "--stream-seed", type=int, default=7,
        help="seed of the generated stream (ignored with --updates)",
    )
    stream.add_argument("--batch-size", type=int, default=64,
                        help="updates per repair batch")
    stream.add_argument("--eps", type=float, default=0.1)
    stream.add_argument("--engine", default="vectorized",
                        choices=["vectorized", "cluster"])
    stream.add_argument(
        "--max-drift", type=float, default=0.25,
        help="re-solve once the certified ratio drifts past "
        "base·(1+max_drift)",
    )
    stream.add_argument(
        "--ratio-ceiling", type=float, default=None,
        help="absolute certified-ratio bound (on top of the drift rule)",
    )
    stream.add_argument(
        "--min-batches-between", type=int, default=1,
        help="cooldown batches between re-solves",
    )
    stream.add_argument(
        "--resolve-every-batch", action="store_true",
        help="degenerate policy: re-solve after every batch (baseline)",
    )
    stream.add_argument(
        "--verify-every", type=int, default=0,
        help="exactly re-verify the cover every k batches (0: final only)",
    )
    from repro.mpc.partition import PARTITION_SCHEMES

    stream.add_argument(
        "--shards", type=int, default=1,
        help="partition the vertex space across this many shard workers "
        "(1: the single-threaded engine; N > 1: the sharded pipeline, "
        "bit-identical covers)",
    )
    stream.add_argument(
        "--partition", default="hash", choices=list(PARTITION_SCHEMES),
        help="vertex partition scheme for --shards > 1",
    )
    stream.add_argument(
        "--inline-shards", action="store_true",
        help="run shard workers in-process instead of one process per "
        "shard (deterministic either way; inline avoids pool overhead "
        "on small streams / single-core boxes)",
    )
    stream.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for re-solves (0: solve in-process)",
    )
    stream.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU result-cache capacity for warm-started re-solves",
    )
    stream.add_argument(
        "--out", default=None,
        help="write per-batch JSON-lines records here ('-'/omitted: skip)",
    )
    stream.add_argument(
        "--cover-out", default=None,
        help="write the final cover vertex ids to this file",
    )
    stream.add_argument(
        "--checkpoint-dir", default=None,
        help="make the run durable: write-ahead-log every batch and "
        "snapshot maintainer state into this directory (resume a killed "
        "run with `repro resume`)",
    )
    stream.add_argument(
        "--snapshot-every", type=int, default=8,
        help="batches between snapshots (with --checkpoint-dir)",
    )
    stream.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on WAL/snapshot commits (faster; survives process "
        "kills but not power loss)",
    )
    stream.add_argument(
        "--keep-snapshots", type=int, default=1,
        help="retain the last k snapshots instead of one (resume falls "
        "back to an older snapshot when the newest is corrupt)",
    )
    stream.add_argument(
        "--compact-wal", action="store_true",
        help="after each snapshot, drop WAL records older than the oldest "
        "retained snapshot so unbounded streams keep a bounded log",
    )
    stream.add_argument(
        "--snapshot-compression", default="gzip", choices=["gzip", "none"],
        help="compression of snapshot NPZ members (with --checkpoint-dir): "
        "'gzip' (smaller files) or 'none' (faster writes — deflate "
        "dominates snapshot cost on large graphs)",
    )
    stream.add_argument(
        "--profile", action="store_true",
        help="emit the per-batch kernel timing breakdown (repair / prune / "
        "adjacency / certificate) in every record and the summary",
    )
    stream.set_defaults(func=_cmd_stream)

    resume = sub.add_parser(
        "resume",
        help="resume a checkpointed `repro stream` run after a crash: "
        "restore the last snapshot, replay the WAL tail, finish the stream",
    )
    resume.add_argument(
        "--checkpoint-dir", required=True,
        help="checkpoint directory of the interrupted run",
    )
    resume.add_argument(
        "--updates", default=None,
        help="override the stored update stream (default: the checkpoint's "
        "updates.jsonl)",
    )
    resume.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for re-solves (0: solve in-process)",
    )
    resume.add_argument(
        "--cache-size", type=int, default=256,
        help="LRU result-cache capacity for warm-started re-solves",
    )
    resume.add_argument(
        "--out", default=None,
        help="write per-batch JSON-lines records here ('-'/omitted: skip)",
    )
    resume.add_argument(
        "--cover-out", default=None,
        help="write the final cover vertex ids to this file",
    )
    resume.add_argument(
        "--inline-shards", action="store_true",
        help="for sharded checkpoints: run shard workers in-process",
    )
    resume.add_argument(
        "--profile", action="store_true",
        help="emit the per-batch kernel timing breakdown in every record "
        "and the summary",
    )
    resume.set_defaults(func=_cmd_resume)

    wal_compact = sub.add_parser(
        "wal-compact",
        help="truncate WAL records already covered by the retained "
        "snapshots of a checkpoint directory (offline maintenance; "
        "`repro stream --compact-wal` does this automatically)",
    )
    wal_compact.add_argument(
        "--checkpoint-dir", required=True,
        help="checkpoint directory whose wal.jsonl to compact",
    )
    wal_compact.set_defaults(func=_cmd_wal_compact)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
