"""repro — reproduction of "A Massively Parallel Algorithm for Minimum Weight
Vertex Cover" (Ghaffari, Jin, Nilis; SPAA 2020, arXiv:2005.10566).

Public API highlights
---------------------
:func:`repro.minimum_weight_vertex_cover`
    The paper's algorithm: (2+O(ε))-approximate MWVC in O(log log d̄) MPC
    phases, with a duality certificate attached to every result.
:mod:`repro.graphs`
    Weighted-graph substrate: CSR graphs, generators, weight models, IO.
:mod:`repro.mpc`
    MPC cluster simulator with memory/communication enforcement.
:mod:`repro.congested`
    Congested-clique model and the BDH18-style MPC adapter.
:mod:`repro.baselines`
    Sequential 2-approximations, LP bounds, exact solver, and the
    O(log n)-round LOCAL baseline the paper improves on.
:mod:`repro.dynamic`
    Incremental cover maintenance over update streams: local repair with a
    live duality certificate, drift-bounded re-solves through the batch
    service.

Quickstart
----------
>>> import repro
>>> g = repro.graphs.gnp_average_degree(1000, 16.0, seed=0)
>>> res = repro.minimum_weight_vertex_cover(g, eps=0.1, seed=1)
>>> bool(res.verify(g))
True
"""

from repro import baselines, congested, core, dynamic, graphs, mpc, utils  # noqa: F401
from repro.core.centralized import run_centralized
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.core.result import MWVCResult
from repro.graphs.graph import WeightedGraph

__version__ = "1.0.0"

__all__ = [
    "minimum_weight_vertex_cover",
    "run_centralized",
    "MPCParameters",
    "MWVCResult",
    "WeightedGraph",
    "graphs",
    "mpc",
    "core",
    "baselines",
    "congested",
    "dynamic",
    "utils",
    "__version__",
]
