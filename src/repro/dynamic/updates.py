"""Re-export of the graph update events (historical import path).

The event types live in :mod:`repro.graphs.updates` — the leaf module of
the graph substrate layer — so that :mod:`repro.graphs` never has to
import this package.  The dynamic subsystem's public API keeps exposing
them here.
"""

from repro.graphs.updates import (
    EdgeDelete,
    EdgeInsert,
    GraphUpdate,
    WeightChange,
    load_update_stream,
    save_update_stream,
    update_from_json,
    update_to_json,
)

__all__ = [
    "EdgeDelete",
    "EdgeInsert",
    "GraphUpdate",
    "WeightChange",
    "load_update_stream",
    "save_update_stream",
    "update_from_json",
    "update_to_json",
]
