"""Mutable graph view: a canonical snapshot plus a delta log.

:class:`~repro.graphs.WeightedGraph` is deliberately immutable — every
algorithm in the package depends on its canonical CSR edge order.  A
dynamic workload therefore needs a wrapper that absorbs updates cheaply and
re-canonicalizes only occasionally:

* **Base snapshot.**  A frozen :class:`WeightedGraph` in canonical form.
* **Delta log.**  Edges inserted since the snapshot (``added``), snapshot
  edges deleted since (``deleted``), and a mutable weight array.  Applying
  one update is O(1) (amortized; set and adjacency-dict operations).
* **Compaction.**  :meth:`compact` folds the delta into a fresh canonical
  snapshot (one O(m log m) rebuild); :meth:`maybe_compact` does so only
  once the structural delta exceeds a configurable fraction of the
  snapshot, so a stream of k updates costs O(k) amortized plus a rebuild
  every Θ(m) structural changes.

Neighbor queries (:meth:`neighbors`, :meth:`has_edge`) answer against the
*current* graph — base CSR minus deletions plus insertions — which is what
the incremental repair pass in
:class:`repro.dynamic.IncrementalCoverMaintainer` needs: it only ever looks
at the neighborhoods touched by a batch, never at the whole edge set.

:meth:`materialize` produces the current graph as a canonical
:class:`WeightedGraph` (memoized until the next mutation); its
:meth:`~repro.graphs.WeightedGraph.content_digest` is the identity used to
key warm-started re-solves in the service result cache.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.updates import EdgeDelete, EdgeInsert, GraphUpdate, WeightChange

__all__ = ["DynamicGraph"]


class DynamicGraph:
    """A vertex-weighted graph under edge churn and weight changes.

    Parameters
    ----------
    base:
        Initial graph (the vertex set stays fixed at ``base.n``).
    compact_fraction:
        :meth:`maybe_compact` folds the delta log into a new snapshot once
        ``delta_size > max(min_compact, compact_fraction * snapshot_m)``.
    min_compact:
        Floor for the compaction trigger (avoids thrashing on tiny graphs).
    """

    def __init__(
        self,
        base: WeightedGraph,
        *,
        compact_fraction: float = 0.25,
        min_compact: int = 256,
    ):
        if compact_fraction <= 0:
            raise ValueError(f"compact_fraction must be > 0, got {compact_fraction}")
        self.compact_fraction = float(compact_fraction)
        self.min_compact = int(min_compact)
        self._weights = np.array(base.weights, dtype=np.float64)  # mutable copy
        self._generation = 0
        self._compactions = 0
        self._set_base(base)
        # At construction the snapshot *is* the current graph.
        self._materialized = base

    def _set_base(self, base: WeightedGraph) -> None:
        self._base = base
        self._base_ids: Dict[Tuple[int, int], int] = {
            (int(u), int(v)): e
            for e, (u, v) in enumerate(zip(base.edges_u, base.edges_v))
        }
        self._added: Set[Tuple[int, int]] = set()
        self._deleted: Set[Tuple[int, int]] = set()
        self._added_adj: Dict[int, Set[int]] = {}
        self._deleted_adj: Dict[int, Set[int]] = {}
        self._materialized: Optional[WeightedGraph] = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices (fixed)."""
        return self._base.n

    @property
    def m(self) -> int:
        """Current number of edges."""
        return self._base.m - len(self._deleted) + len(self._added)

    @property
    def weights(self) -> np.ndarray:
        """Current vertex weights (live array — mutate via :meth:`apply` only)."""
        return self._weights

    @property
    def base(self) -> WeightedGraph:
        """The canonical snapshot under the delta log."""
        return self._base

    @property
    def delta_size(self) -> int:
        """Structural updates (inserts + deletes) pending since the snapshot."""
        return len(self._added) + len(self._deleted)

    @property
    def generation(self) -> int:
        """Monotone counter bumped by every effective update (cache invalidation)."""
        return self._generation

    @property
    def compactions(self) -> int:
        """Number of snapshot rebuilds performed so far."""
        return self._compactions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(n={self.n}, m={self.m}, delta={self.delta_size}, "
            f"generation={self._generation})"
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _check_vertex(self, v: int) -> int:
        v = int(v)
        if not (0 <= v < self.n):
            raise ValueError(f"vertex {v} out of range [0, {self.n})")
        return v

    def has_edge(self, u: int, v: int) -> bool:
        """True iff edge ``{u, v}`` exists in the current graph."""
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            return False
        key = self._key(u, v)
        if key in self._added:
            return True
        return key in self._base_ids and key not in self._deleted

    def neighbors(self, v: int) -> Set[int]:
        """Current neighbor set of ``v`` (a fresh set; safe to mutate)."""
        v = self._check_vertex(v)
        out = set(int(x) for x in self._base.neighbors(v))
        out -= self._deleted_adj.get(v, set())
        out |= self._added_adj.get(v, set())
        return out

    def degree(self, v: int) -> int:
        """Current degree of ``v``."""
        v = self._check_vertex(v)
        return (
            int(self._base.degrees[v])
            - len(self._deleted_adj.get(v, ()))
            + len(self._added_adj.get(v, ()))
        )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def apply(self, update: GraphUpdate) -> bool:
        """Apply one update; returns True iff it changed the graph.

        Inserting a present edge, deleting an absent edge, and re-setting a
        weight to its current value are all no-ops returning False — a
        replayed stream is idempotent per event.
        """
        if isinstance(update, EdgeInsert):
            return self._insert(update.u, update.v)
        if isinstance(update, EdgeDelete):
            return self._delete(update.u, update.v)
        if isinstance(update, WeightChange):
            return self._reweight(update.v, update.weight)
        raise TypeError(f"not a graph update: {type(update).__name__}")

    def _adj_add(self, adj: Dict[int, Set[int]], u: int, v: int) -> None:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)

    def _adj_remove(self, adj: Dict[int, Set[int]], u: int, v: int) -> None:
        adj[u].discard(v)
        adj[v].discard(u)

    def _insert(self, u: int, v: int) -> bool:
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        key = self._key(u, v)
        if key in self._added:
            return False
        if key in self._base_ids:
            if key not in self._deleted:
                return False
            self._deleted.remove(key)
            self._adj_remove(self._deleted_adj, *key)
        else:
            self._added.add(key)
            self._adj_add(self._added_adj, *key)
        self._touch()
        return True

    def _delete(self, u: int, v: int) -> bool:
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            return False
        key = self._key(u, v)
        if key in self._added:
            self._added.remove(key)
            self._adj_remove(self._added_adj, *key)
        elif key in self._base_ids and key not in self._deleted:
            self._deleted.add(key)
            self._adj_add(self._deleted_adj, *key)
        else:
            return False
        self._touch()
        return True

    def _reweight(self, v: int, weight: float) -> bool:
        v = self._check_vertex(v)
        weight = float(weight)
        if not np.isfinite(weight) or weight <= 0:
            raise ValueError(f"vertex weights must be finite and > 0, got {weight}")
        if self._weights[v] == weight:
            return False
        self._weights[v] = weight
        self._touch()
        return True

    def _touch(self) -> None:
        self._generation += 1
        self._materialized = None

    # ------------------------------------------------------------------ #
    # materialization / compaction
    # ------------------------------------------------------------------ #
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current endpoint arrays (not necessarily canonical order)."""
        bu, bv = self._base.edges_u, self._base.edges_v
        if self._deleted:
            # Deleted keys are always snapshot edges, so the id map gives
            # their edge ids directly — O(|deleted|), not O(m).
            keep = np.ones(self._base.m, dtype=bool)
            keep[[self._base_ids[key] for key in self._deleted]] = False
            bu, bv = bu[keep], bv[keep]
        if self._added:
            extra = np.array(sorted(self._added), dtype=np.int64).reshape(-1, 2)
            bu = np.concatenate([np.asarray(bu), extra[:, 0]])
            bv = np.concatenate([np.asarray(bv), extra[:, 1]])
        return np.asarray(bu, dtype=np.int64), np.asarray(bv, dtype=np.int64)

    def materialize(self) -> WeightedGraph:
        """The current graph as a canonical :class:`WeightedGraph` (memoized)."""
        if self._materialized is None:
            u, v = self.edge_arrays()
            self._materialized = WeightedGraph(self.n, u, v, self._weights.copy())
        return self._materialized

    def content_digest(self) -> str:
        """Stable digest of the *current* graph (snapshot-independent).

        Two dynamic graphs that reached the same edge set and weights —
        regardless of base snapshot, delta-log shape, or compaction
        history — share one digest.  This is the identity stamped into
        checkpoints and write-ahead-log records by
        :mod:`repro.dynamic.checkpoint`.
        """
        return self.materialize().content_digest()

    def compact(self) -> WeightedGraph:
        """Fold the delta log into a fresh canonical snapshot and return it."""
        if self._materialized is not self._base:
            snapshot = self.materialize()
            self._set_base(snapshot)
            self._materialized = snapshot
            self._compactions += 1
        return self._base

    def maybe_compact(self) -> bool:
        """Compact iff the structural delta outgrew the snapshot; True if it did."""
        threshold = max(self.min_compact, int(self.compact_fraction * self._base.m))
        if self.delta_size > threshold:
            self.compact()
            return True
        return False
