"""Mutable graph view: a canonical snapshot plus a CSR-delta overlay.

:class:`~repro.graphs.WeightedGraph` is deliberately immutable — every
algorithm in the package depends on its canonical CSR edge order.  A
dynamic workload therefore needs a wrapper that absorbs updates cheaply and
re-canonicalizes only occasionally:

* **Base CSR.**  A frozen :class:`WeightedGraph` snapshot, unpacked into
  flat row-sorted ``indptr``/``indices`` arrays with an *aliveness* mask
  per adjacency slot.  Deleting a snapshot edge flips two mask bits (found
  by binary search in the sorted rows); it never rebuilds anything.
* **Overlay.**  Edges inserted since the snapshot live in small per-vertex
  sets plus an edge-code set (O(1) insert *and* delete); a maintained
  degree vector absorbs every structural change, so ``degree(v)`` is one
  array read.
* **Compaction.**  :meth:`compact` folds the delta into a fresh canonical
  snapshot (one O(m log m) rebuild); :meth:`maybe_compact` does so only
  once the structural delta exceeds a configurable fraction of the
  snapshot, so a stream of k updates costs O(k) amortized plus a rebuild
  every Θ(m) structural changes.

Neighbor queries answer against the *current* graph — base CSR minus
deletions plus insertions.  :meth:`neighbors` returns a flat ``int64``
array (a zero-copy CSR slice when the vertex has no pending deletions or
overlay edges), which is what the vectorized repair/prune kernels in
:mod:`repro.dynamic.repair` consume directly; :meth:`has_edges` answers
whole frontier-presence queries with one ``searchsorted`` against the
sorted base edge codes.  Edge identity uses the ``(u << 32) | v`` code of
:mod:`repro.dynamic.duals`, so presence checks hash one int, never a
tuple.

:meth:`materialize` produces the current graph as a canonical
:class:`WeightedGraph` (memoized until the next mutation); its
:meth:`~repro.graphs.WeightedGraph.content_digest` is the identity used to
key warm-started re-solves in the service result cache.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.dynamic.duals import _SHIFT, decode_edge_codes, encode_edge_codes
from repro.graphs.graph import WeightedGraph
from repro.graphs.updates import EdgeDelete, EdgeInsert, GraphUpdate, WeightChange

__all__ = ["DynamicGraph"]

#: Vertex ids must fit the ``u`` lane of an edge code with headroom for
#: the sign bit: ``u << 32`` stays positive for ``u < 2**31``.
_MAX_N = 1 << 31


def _sorted_member(sorted_codes: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Membership of ``codes`` in a sorted code array (binary search —
    unlike ``np.isin``, never re-sorts the haystack)."""
    if not sorted_codes.size:
        return np.zeros(codes.shape, dtype=bool)
    pos = np.minimum(
        np.searchsorted(sorted_codes, codes), sorted_codes.size - 1
    )
    return sorted_codes[pos] == codes


class DynamicGraph:
    """A vertex-weighted graph under edge churn and weight changes.

    Parameters
    ----------
    base:
        Initial graph (the vertex set stays fixed at ``base.n``).
    compact_fraction:
        :meth:`maybe_compact` folds the delta log into a new snapshot once
        ``delta_size > max(min_compact, compact_fraction * snapshot_m)``.
    min_compact:
        Floor for the compaction trigger (avoids thrashing on tiny graphs).
    """

    def __init__(
        self,
        base: WeightedGraph,
        *,
        compact_fraction: float = 0.25,
        min_compact: int = 256,
    ):
        if compact_fraction <= 0:
            raise ValueError(f"compact_fraction must be > 0, got {compact_fraction}")
        if base.n >= _MAX_N:
            raise ValueError(
                f"DynamicGraph supports at most {_MAX_N - 1} vertices "
                f"(edge codes pack both endpoints into one int64), got {base.n}"
            )
        self.compact_fraction = float(compact_fraction)
        self.min_compact = int(min_compact)
        self._weights = np.array(base.weights, dtype=np.float64)  # mutable copy
        self._generation = 0
        self._compactions = 0
        self._set_base(base)
        # At construction the snapshot *is* the current graph.
        self._materialized = base

    def _set_base(self, base: WeightedGraph) -> None:
        self._base = base
        n, m = base.n, base.m
        self._n = n
        # Row-sorted CSR (WeightedGraph's lazy CSR groups by head but is
        # not sorted within a row; the delta layer wants deterministic,
        # binary-searchable rows).
        heads = np.concatenate([base.edges_u, base.edges_v])
        tails = np.concatenate([base.edges_v, base.edges_u])
        if m:
            order = np.lexsort((tails, heads))
            tails = np.ascontiguousarray(tails[order])
            # Slot of edge e's two directed entries in the sorted CSR —
            # one O(1) lookup per delete instead of two row searches.
            inv = np.empty(2 * m, dtype=np.int64)
            inv[order] = np.arange(2 * m, dtype=np.int64)
            self._slot_uv = inv[:m]
            self._slot_vu = inv[m:]
        else:
            self._slot_uv = np.empty(0, np.int64)
            self._slot_vu = np.empty(0, np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(heads, minlength=n), out=indptr[1:])
        self._indptr = indptr
        self._adj = tails.astype(np.int64, copy=False)
        # neighbors() hands out zero-copy slices of this array; freeze it
        # so a caller mutating the result fails loudly instead of
        # corrupting the shared adjacency.
        self._adj.setflags(write=False)
        self._alive = np.ones(self._adj.shape[0], dtype=bool)
        # Canonical edges are lex-sorted, so their codes arrive sorted.
        self._base_codes = encode_edge_codes(base.edges_u, base.edges_v)
        self._base_code_set: Set[int] = set(self._base_codes.tolist())
        self._base_keep = np.ones(m, dtype=bool)
        self._degrees = base.degrees.astype(np.int64).copy()
        self._added_codes: Set[int] = set()
        self._deleted_codes: Set[int] = set()
        self._added_adj: Dict[int, Set[int]] = {}
        self._delta_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._materialized: Optional[WeightedGraph] = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of vertices (fixed)."""
        return self._base.n

    @property
    def m(self) -> int:
        """Current number of edges."""
        return self._base.m - len(self._deleted_codes) + len(self._added_codes)

    @property
    def weights(self) -> np.ndarray:
        """Current vertex weights (live array — mutate via :meth:`apply` only)."""
        return self._weights

    @property
    def base(self) -> WeightedGraph:
        """The canonical snapshot under the delta log."""
        return self._base

    @property
    def delta_size(self) -> int:
        """Structural updates (inserts + deletes) pending since the snapshot."""
        return len(self._added_codes) + len(self._deleted_codes)

    @property
    def generation(self) -> int:
        """Monotone counter bumped by every effective update (cache invalidation)."""
        return self._generation

    @property
    def compactions(self) -> int:
        """Number of snapshot rebuilds performed so far."""
        return self._compactions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicGraph(n={self.n}, m={self.m}, delta={self.delta_size}, "
            f"generation={self._generation})"
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(u: int, v: int) -> Tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _check_vertex(self, v: int) -> int:
        v = int(v)
        if not (0 <= v < self._n):
            raise ValueError(f"vertex {v} out of range [0, {self._n})")
        return v

    def has_edge(self, u: int, v: int) -> bool:
        """True iff edge ``{u, v}`` exists in the current graph."""
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            return False
        code = (u << _SHIFT) | v if u < v else (v << _SHIFT) | u
        if code in self._added_codes:
            return True
        return code in self._base_code_set and code not in self._deleted_codes

    def has_edges(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Vectorized presence of canonical ``(u, v)`` endpoint arrays.

        The whole-frontier form of :meth:`has_edge`.  Small frontiers (the
        per-batch repair prepass) answer from the O(1) code sets directly;
        large ones go through one ``searchsorted`` against the sorted base
        codes plus two delta binary searches.
        """
        codes = encode_edge_codes(u, v)
        if codes.size <= 128:
            added = self._added_codes
            deleted = self._deleted_codes
            base = self._base_code_set
            return np.fromiter(
                (
                    c in added or (c in base and c not in deleted)
                    for c in codes.tolist()
                ),
                dtype=bool,
                count=codes.size,
            )
        present = _sorted_member(self._base_codes, codes)
        added_arr, deleted_arr = self._delta_code_arrays()
        if deleted_arr.size:
            present &= ~_sorted_member(deleted_arr, codes)
        if added_arr.size:
            present |= _sorted_member(added_arr, codes)
        return present

    def _delta_code_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sorted ``(added, deleted)`` code arrays, cached per generation."""
        if self._delta_arrays is None:
            added = np.fromiter(
                self._added_codes, dtype=np.int64, count=len(self._added_codes)
            )
            added.sort()
            deleted = np.fromiter(
                self._deleted_codes, dtype=np.int64, count=len(self._deleted_codes)
            )
            deleted.sort()
            self._delta_arrays = (added, deleted)
        return self._delta_arrays

    def neighbors(self, v: int) -> np.ndarray:
        """Current neighbors of ``v`` as a flat ``int64`` array.

        A zero-copy *read-only* CSR slice when ``v`` has no pending
        deletions or overlay edges (writing to it raises); otherwise the
        masked slice concatenated with the overlay set.  Base neighbors
        come out ascending, overlay insertions follow in no guaranteed
        order — treat the result as a set and copy before mutating.
        """
        v = self._check_vertex(v)
        s, e = int(self._indptr[v]), int(self._indptr[v + 1])
        row = self._adj[s:e]
        if self._deleted_codes:
            mask = self._alive[s:e]
            if not mask.all():
                row = row[mask]
        over = self._added_adj.get(v)
        if over:
            row = np.concatenate(
                [row, np.fromiter(over, dtype=np.int64, count=len(over))]
            )
        return row

    def degree(self, v: int) -> int:
        """Current degree of ``v`` (one read of the maintained vector)."""
        return int(self._degrees[self._check_vertex(v)])

    def degrees_of(self, vertices: np.ndarray) -> np.ndarray:
        """Current degrees of a vertex-id array (vectorized gather)."""
        return self._degrees[np.asarray(vertices, dtype=np.int64)]

    def prune_gather(
        self, vertices: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, np.ndarray]]:
        """Batched neighborhood gather for the vectorized prune kernel.

        Returns ``(concat, starts, ends, extras)``: the base-CSR
        neighborhoods of ``vertices[i]`` live in
        ``concat[starts[i]:ends[i]]`` (deleted slots already filtered),
        and ``extras[i]`` holds overlay-inserted neighbors for the few
        vertices that have any.  One ``arange``/``repeat`` index build +
        one fancy gather replaces a Python-level :meth:`neighbors` call
        per vertex — the difference between O(candidates) interpreter
        round trips and three array ops per batch.
        """
        v = np.asarray(vertices, dtype=np.int64)
        row_starts = self._indptr[v]
        sizes = self._indptr[v + 1] - row_starts
        total = int(sizes.sum())
        ends = np.cumsum(sizes)
        starts = ends - sizes
        idx = np.arange(total, dtype=np.int64) + np.repeat(
            row_starts - starts, sizes
        )
        concat = self._adj[idx]
        if self._deleted_codes:
            alive = self._alive[idx]
            if not alive.all():
                new_sizes = np.zeros(v.size, dtype=np.int64)
                nonempty = np.nonzero(sizes)[0]
                if nonempty.size:
                    new_sizes[nonempty] = np.add.reduceat(
                        alive, starts[nonempty]
                    )
                concat = concat[alive]
                ends = np.cumsum(new_sizes)
                starts = ends - new_sizes
        extras: Dict[int, np.ndarray] = {}
        if self._added_adj:
            added_adj = self._added_adj
            for i, vid in enumerate(v.tolist()):
                over = added_adj.get(vid)
                if over:
                    extras[i] = np.fromiter(over, dtype=np.int64, count=len(over))
        return concat, starts, ends, extras

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def apply(self, update: GraphUpdate) -> bool:
        """Apply one update; returns True iff it changed the graph.

        Inserting a present edge, deleting an absent edge, and re-setting a
        weight to its current value are all no-ops returning False — a
        replayed stream is idempotent per event.
        """
        if isinstance(update, EdgeInsert):
            return self._insert(update.u, update.v)
        if isinstance(update, EdgeDelete):
            return self._delete(update.u, update.v)
        if isinstance(update, WeightChange):
            return self._reweight(update.v, update.weight)
        raise TypeError(f"not a graph update: {type(update).__name__}")

    def _set_alive(self, code: int, alive: bool) -> int:
        """Flip both directed CSR slots of a base edge; returns its id."""
        e = int(np.searchsorted(self._base_codes, code))
        self._alive[self._slot_uv[e]] = alive
        self._alive[self._slot_vu[e]] = alive
        return e

    def _insert(self, u: int, v: int) -> bool:
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        if u > v:
            u, v = v, u
        code = (u << _SHIFT) | v
        if code in self._added_codes:
            return False
        if code in self._base_code_set:
            if code not in self._deleted_codes:
                return False
            self._deleted_codes.remove(code)
            self._base_keep[self._set_alive(code, True)] = True
        else:
            self._added_codes.add(code)
            self._added_adj.setdefault(u, set()).add(v)
            self._added_adj.setdefault(v, set()).add(u)
        self._degrees[u] += 1
        self._degrees[v] += 1
        self._touch()
        return True

    def _delete(self, u: int, v: int) -> bool:
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            return False
        if u > v:
            u, v = v, u
        code = (u << _SHIFT) | v
        if code in self._added_codes:
            self._added_codes.remove(code)
            self._added_adj[u].discard(v)
            self._added_adj[v].discard(u)
        elif code in self._base_code_set and code not in self._deleted_codes:
            self._deleted_codes.add(code)
            self._base_keep[self._set_alive(code, False)] = False
        else:
            return False
        self._degrees[u] -= 1
        self._degrees[v] -= 1
        self._touch()
        return True

    def _reweight(self, v: int, weight: float) -> bool:
        v = self._check_vertex(v)
        weight = float(weight)
        if not np.isfinite(weight) or weight <= 0:
            raise ValueError(f"vertex weights must be finite and > 0, got {weight}")
        if self._weights[v] == weight:
            return False
        self._weights[v] = weight
        self._touch()
        return True

    def _touch(self) -> None:
        self._generation += 1
        self._materialized = None
        self._delta_arrays = None

    # ------------------------------------------------------------------ #
    # materialization / compaction
    # ------------------------------------------------------------------ #
    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current endpoint arrays (not necessarily canonical order)."""
        bu = np.asarray(self._base.edges_u, dtype=np.int64)
        bv = np.asarray(self._base.edges_v, dtype=np.int64)
        if self._deleted_codes:
            bu, bv = bu[self._base_keep], bv[self._base_keep]
        if self._added_codes:
            added, _ = self._delta_code_arrays()
            au, av = decode_edge_codes(added)
            bu = np.concatenate([bu, au])
            bv = np.concatenate([bv, av])
        return bu, bv

    def materialize(self) -> WeightedGraph:
        """The current graph as a canonical :class:`WeightedGraph` (memoized)."""
        if self._materialized is None:
            u, v = self.edge_arrays()
            self._materialized = WeightedGraph(self.n, u, v, self._weights.copy())
        return self._materialized

    def content_digest(self) -> str:
        """Stable digest of the *current* graph (snapshot-independent).

        Two dynamic graphs that reached the same edge set and weights —
        regardless of base snapshot, delta-log shape, or compaction
        history — share one digest.  This is the identity stamped into
        checkpoints and write-ahead-log records by
        :mod:`repro.dynamic.checkpoint`.
        """
        return self.materialize().content_digest()

    def compact(self) -> WeightedGraph:
        """Fold the delta log into a fresh canonical snapshot and return it."""
        if self._materialized is not self._base:
            snapshot = self.materialize()
            self._set_base(snapshot)
            self._materialized = snapshot
            self._compactions += 1
        return self._base

    def maybe_compact(self) -> bool:
        """Compact iff the structural delta outgrew the snapshot; True if it did."""
        threshold = max(self.min_compact, int(self.compact_fraction * self._base.m))
        if self.delta_size > threshold:
            self.compact()
            return True
        return False
