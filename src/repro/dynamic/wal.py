"""Write-ahead log of applied update batches.

The durability contract of a dynamic stream (see
:mod:`repro.dynamic.checkpoint` for the companion snapshots):

* **Write-ahead.**  Each batch is appended — and by default fsync'd — to
  the log *before* it is applied to the in-memory maintainer, so every
  state the process can die in is reconstructible as
  ``last snapshot + replay of the WAL tail``.
* **Per-record checksums.**  Each record is one JSON line carrying a CRC32
  of its canonical serialization.  A committed record that fails its
  checksum is *corruption* and raises :class:`WALCorruptionError` — a
  damaged log must never be replayed into a silently wrong cover.
* **Torn tails are expected.**  A crash mid-append leaves a final line
  without its newline terminator (or cut mid-JSON).  That record was never
  committed — the batch it describes produced no durable state — so
  :func:`read_wal` drops it and reports the truncation instead of failing.

Record wire format (one per line)::

    {"v": 1, "batch_index": 3, "updates": [{"op": "insert", ...}, ...],
     "state_digest": "...", "crc": 123456789}

``crc`` is ``zlib.crc32`` over the canonical (sorted-keys, no-whitespace)
JSON of the record without the ``crc`` key.  ``state_digest`` optionally
stamps the content digest of the graph the batch applies *to* (the
pre-apply state — the stamp is taken before the write-ahead commit, when
the batch has not run yet), letting replay verify, record by record, that
it reached the same graph the original run saw.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.graphs.updates import GraphUpdate, update_from_json, update_to_json

__all__ = [
    "WAL_FORMAT_VERSION",
    "WALError",
    "WALCorruptionError",
    "WALRecord",
    "WriteAheadLog",
    "compact_wal",
    "read_wal",
    "repair_wal",
]

PathLike = Union[str, "os.PathLike[str]"]

WAL_FORMAT_VERSION = 1


class WALError(Exception):
    """A write-ahead log could not be read or written."""


class WALCorruptionError(WALError):
    """A committed WAL record is damaged (bad checksum / malformed body)."""


@dataclass(frozen=True)
class WALRecord:
    """One committed batch: its index, its updates, and an optional stamp.

    Attributes
    ----------
    batch_index:
        Zero-based position of the batch in the stream.
    updates:
        The batch's update events, in application order.
    state_digest:
        Content digest of the graph the batch applies *to* (the pre-apply
        state; empty when the writer did not stamp one).  Replay checks it
        before applying the record, so a WAL paired with the wrong
        snapshot or stream fails loudly instead of rebuilding a wrong
        cover.
    """

    batch_index: int
    updates: Tuple[GraphUpdate, ...]
    state_digest: str = ""

    def to_payload(self) -> dict:
        """The record's wire object, without the checksum."""
        payload = {
            "v": WAL_FORMAT_VERSION,
            "batch_index": int(self.batch_index),
            "updates": [update_to_json(u) for u in self.updates],
        }
        if self.state_digest:
            payload["state_digest"] = self.state_digest
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "WALRecord":
        """Parse a checksum-verified wire object back into a record."""
        version = payload.get("v")
        if version != WAL_FORMAT_VERSION:
            raise WALCorruptionError(
                f"unsupported WAL record version {version!r} "
                f"(this build reads version {WAL_FORMAT_VERSION})"
            )
        try:
            batch_index = int(payload["batch_index"])
            updates = tuple(update_from_json(u) for u in payload["updates"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WALCorruptionError(f"malformed WAL record body: {exc}") from exc
        return cls(
            batch_index=batch_index,
            updates=updates,
            state_digest=str(payload.get("state_digest", "")),
        )


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _crc(payload: dict) -> int:
    return zlib.crc32(_canonical(payload).encode("utf-8"))


class WriteAheadLog:
    """Append-only JSONL log with per-record checksums and fsync commits.

    Parameters
    ----------
    path:
        Log file; created if absent, appended to if present (resuming a
        stream continues its existing log).
    fsync:
        Flush every appended record to disk before returning.  Disabling
        it trades the power-loss guarantee for throughput (an OS crash may
        then lose the newest records; a mere process kill loses nothing
        either way since the file buffer is flushed per append).
    """

    def __init__(self, path: PathLike, *, fsync: bool = True):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        existed = os.path.exists(self.path)
        try:
            self._fh = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise WALError(f"cannot open WAL {self.path}: {exc}") from exc
        if self.fsync and not existed:
            # A record fsync flushes data into an entry the directory may
            # not know about yet; flush the dirent once at creation.
            from repro.graphs.io import fsync_directory

            fsync_directory(os.path.dirname(self.path) or ".")

    def append(
        self,
        batch_index: int,
        updates: Sequence[GraphUpdate],
        *,
        state_digest: str = "",
    ) -> WALRecord:
        """Commit one batch record; returns the record as written."""
        if self._fh is None:
            raise WALError("WAL is closed")
        record = WALRecord(
            batch_index=int(batch_index),
            updates=tuple(updates),
            state_digest=state_digest,
        )
        payload = record.to_payload()
        payload["crc"] = _crc(payload)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._fh.write(line)
        self._fh.write("\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_wal(path: PathLike) -> Tuple[List[WALRecord], bool]:
    """Read a WAL; returns ``(records, torn_tail)``.

    Every committed record (newline-terminated line) must parse and pass
    its checksum, and batch indices must be strictly increasing —
    anything else raises :class:`WALCorruptionError` naming the offending
    line.  A final line without its newline terminator is a *torn tail*
    from a crash mid-append: it is dropped (never inspected beyond that)
    and reported via the second return value.

    A missing file reads as an empty, untorn log — a stream that crashed
    before its first commit.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return [], False
    except OSError as exc:
        raise WALError(f"cannot read WAL {os.fspath(path)}: {exc}") from exc

    torn = bool(raw) and not raw.endswith(b"\n")
    lines = raw.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    if torn:
        lines.pop()  # the uncommitted tail

    records: List[WALRecord] = []
    last_index: Optional[int] = None
    for lineno, line in enumerate(lines, start=1):
        try:
            payload = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALCorruptionError(
                f"WAL {os.fspath(path)} line {lineno}: unparseable committed "
                f"record ({exc})"
            ) from exc
        if not isinstance(payload, dict) or "crc" not in payload:
            raise WALCorruptionError(
                f"WAL {os.fspath(path)} line {lineno}: record has no checksum"
            )
        crc = payload.pop("crc")
        if _crc(payload) != crc:
            raise WALCorruptionError(
                f"WAL {os.fspath(path)} line {lineno}: checksum mismatch "
                f"(stored {crc}, computed {_crc(payload)}) — the log is damaged"
            )
        try:
            record = WALRecord.from_payload(payload)
        except WALCorruptionError as exc:
            raise WALCorruptionError(
                f"WAL {os.fspath(path)} line {lineno}: {exc}"
            ) from exc
        if last_index is not None and record.batch_index <= last_index:
            raise WALCorruptionError(
                f"WAL {os.fspath(path)} line {lineno}: batch index "
                f"{record.batch_index} does not increase past {last_index}"
            )
        last_index = record.batch_index
        records.append(record)
    return records, torn


def compact_wal(path: PathLike, min_batch_index: int, *, fsync: bool = True) -> int:
    """Drop WAL records with ``batch_index < min_batch_index``; atomic.

    An unbounded stream otherwise grows its log forever: once a snapshot
    covers every batch up to ``k``, the records before ``k`` can never be
    replayed again (recovery always starts at a retained snapshot).  The
    caller picks ``min_batch_index`` as the *oldest retained* snapshot's
    position — compacting past a newer snapshot would strand the older
    ones.

    The log is rewritten through a temp file + rename, so a crash
    mid-compaction leaves either the old or the new log, both valid.  A
    torn tail (crash mid-append) is dropped, exactly as
    :func:`repair_wal` would.  Returns the number of records removed.

    Raises
    ------
    WALCorruptionError
        If a committed record is damaged — a corrupt log must be
        inspected, not silently rewritten.
    """
    try:
        records, torn = read_wal(path)
    except WALError:
        raise
    keep = [r for r in records if r.batch_index >= int(min_batch_index)]
    if len(keep) == len(records) and not torn:
        return 0
    lines = []
    for record in keep:
        payload = record.to_payload()
        payload["crc"] = _crc(payload)
        lines.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
    data = ("".join(line + "\n" for line in lines)).encode("utf-8")
    from repro.graphs.io import write_bytes_atomic

    try:
        write_bytes_atomic(path, data, fsync=fsync)
    except OSError as exc:
        raise WALError(f"cannot compact WAL {os.fspath(path)}: {exc}") from exc
    return len(records) - len(keep)


def repair_wal(path: PathLike) -> bool:
    """Truncate a torn tail in place; True iff bytes were removed.

    Appending to a log whose last record was cut mid-write would weld the
    new record onto the fragment and corrupt *both*; callers reopening a
    WAL after a crash must repair it first (``resume_stream`` does).  Only
    the unterminated tail is dropped — committed records are untouched —
    and the truncation itself is crash-safe (re-running it is a no-op).
    """
    try:
        with open(path, "rb+") as fh:
            raw = fh.read()
            if not raw or raw.endswith(b"\n"):
                return False
            keep = raw.rfind(b"\n") + 1  # 0 when no record ever committed
            fh.seek(keep)
            fh.truncate()
            fh.flush()
            os.fsync(fh.fileno())
    except FileNotFoundError:
        return False
    except OSError as exc:
        raise WALError(f"cannot repair WAL {os.fspath(path)}: {exc}") from exc
    return True
