"""Shard layer of the sharded stream pipeline: per-shard worker state.

Each shard owns a slice of the vertex space (an assignment array from
:func:`repro.mpc.partition.make_partition`) and holds, in its own process:

* the **local subgraph** — every current edge incident to an owned vertex
  (cut edges are held by both incident shards), as a plain adjacency dict;
* full **weight** and **cover** replicas — pruning needs the weight and
  cover state of ghost neighbors, and replicating two O(n) arrays is the
  near-linear-per-machine memory the MPC model grants;
* the **duals of incident edges** — retiring a deleted edge's dual must
  decrement the owner-side load, so each incident shard keeps the value
  (the coordinator counts it once, from the edge's *home* shard: the
  owner of its min endpoint).

The worker performs the per-batch neighborhood-heavy work in parallel —
applying routed updates, detecting uncovered insertions, and greedily
pruning *interior* candidate components (components of the
candidate-adjacency graph containing no ghost candidate; those provably
cannot interact with any other shard's pruning) — while the coordinator
(:mod:`repro.dynamic.sharded`) replays the cheap cross-shard effects
serially to keep the authoritative arrays bit-exact.

Process plumbing mirrors :mod:`repro.service.worker`: everything a pool
ships must be a top-level function with picklable arguments.  A shard's
state must survive between batches, and ``ProcessPoolExecutor`` cannot pin
tasks to workers, so :class:`ShardPool` runs **one single-worker executor
per shard** — every call for shard *i* lands in the same process, where
the state lives in a module global.  ``use_processes=False`` keeps the
states in-process (the deterministic reference mode used by tests and by
``--shards N`` on one core).
"""

from __future__ import annotations

import hashlib
import io
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dynamic.duals import DualStore, decode_edge_codes
from repro.dynamic.repair import DisjointSets, PruneView, greedy_prune_pass

__all__ = ["ShardInit", "ShardPool", "ShardState"]

EdgeKey = Tuple[int, int]

_EMPTY: Set[int] = frozenset()


@dataclass
class ShardInit:
    """Picklable construction blob for one shard's state.

    ``edges_u``/``edges_v`` are the canonical endpoint arrays of every
    edge incident to a vertex owned by ``shard_id``; ``dual_keys``/
    ``dual_values`` the duals of those edges (zero-dual edges omitted).
    """

    shard_id: int
    num_shards: int
    assignment: np.ndarray
    edges_u: np.ndarray
    edges_v: np.ndarray
    weights: np.ndarray
    cover: np.ndarray
    dual_keys: np.ndarray
    dual_values: np.ndarray


class ShardState:
    """Live state of one shard; methods are the wire protocol verbs."""

    def __init__(self, init: ShardInit):
        self.shard_id = int(init.shard_id)
        self.num_shards = int(init.num_shards)
        self.assignment = np.asarray(init.assignment, dtype=np.int64)
        self.owned = self.assignment == self.shard_id
        self.n = int(self.assignment.shape[0])
        self.weights = np.array(init.weights, dtype=np.float64)
        self.cover = np.array(init.cover, dtype=bool)
        self.adj: Dict[int, Set[int]] = {}
        for u, v in zip(init.edges_u.tolist(), init.edges_v.tolist()):
            self._adj_add(u, v)
        self.duals = DualStore.from_arrays(init.dual_keys, init.dual_values)

    # ------------------------------------------------------------------ #
    # adjacency bookkeeping
    # ------------------------------------------------------------------ #
    def _adj_add(self, u: int, v: int) -> None:
        self.adj.setdefault(u, set()).add(v)
        self.adj.setdefault(v, set()).add(u)

    def _adj_remove(self, u: int, v: int) -> None:
        self.adj[u].discard(v)
        self.adj[v].discard(u)

    def _has_edge(self, u: int, v: int) -> bool:
        return v in self.adj.get(u, _EMPTY)

    # ------------------------------------------------------------------ #
    # round 1: apply the routed slice, detect uncovered insertions
    # ------------------------------------------------------------------ #
    def apply_batch(
        self,
        events: Sequence[tuple],
        cover_clears: Sequence[int] = (),
        want_digest: bool = False,
    ) -> dict:
        """Apply one routed wire slice in stream order.

        ``cover_clears`` are the cover removals of the *previous* batch's
        cross-shard pruning, piggybacked here so the pre-batch cover
        replica matches the coordinator's before uncovered detection.
        Returns the home-shard effects log (for the coordinator's ordered
        replay), the still-present uncovered insertions, the touched owned
        vertices, and — when asked — the pre-apply local edge digest.
        """
        cover = self.cover
        for v in cover_clears:
            cover[v] = False
        digest = self.local_digest() if want_digest else ""

        assignment = self.assignment
        owned = self.owned
        effects: List[tuple] = []
        uncovered: List[EdgeKey] = []
        touched: Set[int] = set()
        for event in events:
            seq, op = event[0], event[1]
            if op == "w":
                v, w = int(event[2]), float(event[3])
                if not np.isfinite(w) or w <= 0:
                    raise ValueError(
                        f"vertex weights must be finite and > 0, got {w}"
                    )
                self.weights[v] = w
                continue
            u, v = int(event[2]), int(event[3])
            if op == "i":
                if u == v:
                    raise ValueError(f"self-loop at vertex {u} is not allowed")
                if self._has_edge(u, v):
                    continue
                self._adj_add(u, v)
                if owned[u]:
                    touched.add(u)
                if owned[v]:
                    touched.add(v)
                if assignment[u] == self.shard_id:
                    effects.append((seq, "i", u, v, 0.0))
                if not (cover[u] or cover[v]):
                    uncovered.append((u, v))
            elif op == "d":
                if u == v or not self._has_edge(u, v):
                    continue
                self._adj_remove(u, v)
                pay = self.duals.pop((u, v), 0.0)
                if owned[u]:
                    touched.add(u)
                if owned[v]:
                    touched.add(v)
                if assignment[u] == self.shard_id:
                    effects.append((seq, "d", u, v, pay))
            else:  # pragma: no cover - router emits only i/d/w
                raise ValueError(f"unknown wire op {op!r}")
        present = sorted(k for k in set(uncovered) if self._has_edge(*k))
        return {
            "effects": effects,
            "uncovered": present,
            "touched": sorted(touched),
            "digest": digest,
        }

    # ------------------------------------------------------------------ #
    # round 2: sync repair results, prune interior components
    # ------------------------------------------------------------------ #
    def finish_batch(
        self,
        dual_u: Optional[np.ndarray] = None,
        dual_v: Optional[np.ndarray] = None,
        dual_pay: Optional[np.ndarray] = None,
        entered: Sequence[int] = (),
        candidates: Sequence[int] = (),
    ) -> dict:
        """Apply the coordinator's repair results, then prune locally.

        ``dual_u``/``dual_v``/``dual_pay`` are the repair pass's new dual
        payments as parallel arrays (the replication log, sorted by key);
        payments on edges incident to an owned vertex are folded into the
        local store after one vectorized ownership mask.  ``entered``
        vertices join the cover replica.  Owned prune candidates are
        split by candidate-adjacency into *interior* components (no ghost
        candidate — pruned here, in parallel across shards) and
        *boundary* components, shipped back with their full neighbor
        lists so the coordinator can run the exact sequential greedy
        across shard boundaries.
        """
        owned = self.owned
        if dual_u is not None and len(dual_u):
            du = np.asarray(dual_u, dtype=np.int64)
            dv = np.asarray(dual_v, dtype=np.int64)
            pays = np.asarray(dual_pay, dtype=np.float64)
            incident = owned[du] | owned[dv]
            add_pay = self.duals.add_pay
            for u, v, pay in zip(
                du[incident].tolist(), dv[incident].tolist(), pays[incident].tolist()
            ):
                add_pay(u, v, pay)
        cover = self.cover
        for v in entered:
            cover[v] = True

        cand_set = set(candidates)
        owned_cands = [v for v in candidates if owned[v] and cover[v]]
        dsu = DisjointSets()
        for v in owned_cands:
            dsu.find(v)
            for nb in self.adj.get(v, _EMPTY):
                if nb in cand_set:
                    dsu.union(v, nb)
        boundary_roots = set()
        for v in owned_cands:
            for nb in self.adj.get(v, _EMPTY):
                if nb in cand_set and not owned[nb]:
                    boundary_roots.add(dsu.find(v))
        interior = [v for v in owned_cands if dsu.find(v) not in boundary_roots]
        boundary = [v for v in owned_cands if dsu.find(v) in boundary_roots]

        pruned = greedy_prune_pass(
            interior,
            weights=self.weights,
            cover=cover,
            view=PruneView(
                neighbors=lambda v: self.adj.get(v, _EMPTY),
                degree=lambda v: len(self.adj.get(v, _EMPTY)),
            ),
        )
        shipped = [
            (v, len(self.adj.get(v, _EMPTY)), sorted(self.adj.get(v, _EMPTY)))
            for v in boundary
        ]
        return {"pruned": pruned, "boundary": shipped}

    # ------------------------------------------------------------------ #
    # gather / scatter
    # ------------------------------------------------------------------ #
    def export_edges(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current *home* edges (min endpoint owned), canonically sorted.

        Concatenating every shard's export yields each current edge
        exactly once — the gather path of re-solves and snapshots.
        """
        us: List[int] = []
        vs: List[int] = []
        owned = self.owned
        for u, neigh in self.adj.items():
            if not owned[u]:
                continue
            for v in neigh:
                if v > u:
                    us.append(u)
                    vs.append(v)
        u_arr = np.asarray(us, dtype=np.int64)
        v_arr = np.asarray(vs, dtype=np.int64)
        # Canonical order via one vectorized lexsort — this runs per batch
        # when WAL digest stamping is on, so no Python-level sorting.
        order = np.lexsort((v_arr, u_arr))
        return u_arr[order], v_arr[order]

    def export_duals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Home duals as ``(keys, values)`` arrays, sorted by key.

        One vectorized code sort + ownership mask — no Python-level key
        walk (this runs per snapshot and per re-solve gather).
        """
        codes, vals = self.duals.sorted_codes()
        u, v = decode_edge_codes(codes)
        home = self.assignment[u] == self.shard_id if codes.size else np.zeros(0, bool)
        keys = np.stack([u[home], v[home]], axis=1) if codes.size else codes.reshape(0, 2)
        return keys, vals[home] if codes.size else vals

    def adopt(
        self,
        cover: np.ndarray,
        dual_keys: np.ndarray,
        dual_values: np.ndarray,
    ) -> None:
        """Replace cover and incident duals after a coordinator re-solve.

        ``dual_keys``/``dual_values`` arrive pre-filtered to this shard's
        incident edges.
        """
        self.cover = np.array(cover, dtype=bool)
        self.duals = DualStore.from_arrays(dual_keys, dual_values)

    # ------------------------------------------------------------------ #
    # integrity / durability
    # ------------------------------------------------------------------ #
    def local_digest(self) -> str:
        """Digest of the shard's current home-edge set.

        The coordinator combines the per-shard digests (plus its own
        weights digest) into the sharded stream's WAL state stamp.
        """
        u, v = self.export_edges()
        h = hashlib.sha256()
        h.update(b"repro-shard-edges\0")
        h.update(f"{self.n}\0{self.shard_id}\0{self.num_shards}\0".encode("ascii"))
        h.update(np.ascontiguousarray(u).tobytes())
        h.update(np.ascontiguousarray(v).tobytes())
        return h.hexdigest()

    def snapshot_payload(self) -> dict:
        """The shard's durable state: home edges + home duals (arrays)."""
        u, v = self.export_edges()
        keys, vals = self.export_duals()
        return {
            "edges_u": u,
            "edges_v": v,
            "dual_keys": keys,
            "dual_values": vals,
        }

    def write_snapshot_file(
        self, path: str, fsync: bool = True, compress: bool = True
    ) -> dict:
        """Write this shard's snapshot file atomically (in parallel with
        its siblings); returns the file digest + edge count for the
        coordinator's manifest.  ``compress=False`` writes a store-only
        NPZ (the ``--snapshot-compression none`` fast path)."""
        from repro.graphs.io import write_bytes_atomic

        payload = self.snapshot_payload()
        meta = {
            "shard_id": self.shard_id,
            "num_shards": self.num_shards,
            "n": self.n,
            "m": int(payload["edges_u"].shape[0]),
        }
        buf = io.BytesIO()
        savez = np.savez_compressed if compress else np.savez
        savez(
            buf,
            meta_json=np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
            **payload,
        )
        data = buf.getvalue()
        write_bytes_atomic(path, data, fsync=fsync)
        return {
            "digest": hashlib.sha256(data).hexdigest(),
            "m": meta["m"],
        }


# ---------------------------------------------------------------------- #
# process-pool plumbing (module-global state, one process per shard)
# ---------------------------------------------------------------------- #

_WORKER_STATES: Dict[int, ShardState] = {}


def _shard_configure(init: ShardInit) -> int:
    """Install (or replace) a shard's state in this worker process."""
    _WORKER_STATES[init.shard_id] = ShardState(init)
    return init.shard_id


def _shard_call(shard_id: int, method: str, kwargs: dict):
    """Dispatch one protocol verb against the resident shard state."""
    state = _WORKER_STATES.get(shard_id)
    if state is None:  # pragma: no cover - defensive; configure runs first
        raise RuntimeError(f"shard {shard_id} is not configured in this worker")
    return getattr(state, method)(**kwargs)


class ShardPool:
    """N shard hosts — process-backed or inline — with scatter/gather calls.

    Process mode starts one single-worker :class:`ProcessPoolExecutor` per
    shard so that every call for a shard executes in the process holding
    its state.  Inline mode keeps :class:`ShardState` objects in the
    calling process (bit-identical results; no parallelism) — the mode
    tests and single-core runs use.
    """

    def __init__(self, inits: Sequence[ShardInit], *, use_processes: bool):
        self.num_shards = len(inits)
        self.use_processes = bool(use_processes)
        self._pools: List[ProcessPoolExecutor] = []
        self._states: Dict[int, ShardState] = {}
        if self.use_processes:
            try:
                for init in inits:
                    self._pools.append(ProcessPoolExecutor(max_workers=1))
                futures = [
                    pool.submit(_shard_configure, init)
                    for pool, init in zip(self._pools, inits)
                ]
                for future in futures:
                    future.result()
            except BaseException:
                self.close()
                raise
        else:
            for init in inits:
                self._states[init.shard_id] = ShardState(init)

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pools = []
        self._states = {}

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- calls ----------------------------------------------------------- #
    def call_all(self, method: str, payloads: Sequence[dict]) -> List[dict]:
        """Invoke ``method`` on every shard concurrently; results in shard order."""
        if len(payloads) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} payloads, got {len(payloads)}"
            )
        if self.use_processes:
            futures = [
                pool.submit(_shard_call, shard_id, method, payload)
                for shard_id, (pool, payload) in enumerate(
                    zip(self._pools, payloads)
                )
            ]
            return [future.result() for future in futures]
        return [
            getattr(self._states[shard_id], method)(**payload)
            for shard_id, payload in enumerate(payloads)
        ]

    def broadcast(self, method: str, payload: Optional[dict] = None) -> List[dict]:
        """``call_all`` with one shared payload."""
        return self.call_all(method, [dict(payload or {})] * self.num_shards)

    def reconfigure(self, inits: Sequence[ShardInit]) -> None:
        """Replace every shard's state (the resume / adopt-reset path)."""
        if len(inits) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} inits, got {len(inits)}"
            )
        if self.use_processes:
            futures = [
                pool.submit(_shard_configure, init)
                for pool, init in zip(self._pools, inits)
            ]
            for future in futures:
                future.result()
        else:
            for init in inits:
                self._states[init.shard_id] = ShardState(init)
