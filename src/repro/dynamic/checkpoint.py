"""Versioned, digest-stamped snapshots of dynamic-stream state.

A *snapshot* is one self-contained file holding everything needed to
reconstruct an equivalent :class:`~repro.dynamic.IncrementalCoverMaintainer`
mid-stream:

* the **current graph** (canonical endpoint arrays + live weights — the
  delta log is folded away; restore starts from a fresh base snapshot,
  which the maintainer's pair-keyed state is explicitly independent of);
* the **maintainer state** exported bit-exactly by
  :meth:`~repro.dynamic.IncrementalCoverMaintainer.export_state` (cover
  mask, loads, pair-keyed duals, dual total, drift baseline, batch count);
* a **metadata header** (JSON): format version, the graph's content
  digest, scalar state, and caller counters (stream position, policy
  cooldown, re-solve tally).

The container is an NPZ archive (arrays stay binary; member compression is
deflate by default and can be disabled per write — ``np.savez_compressed``
dominates snapshot cost on large graphs — the header is one JSON string
member), gzip-wrapped when the path ends in ``.gz``.  Format version 2
stores the duals as one flat ``dual_codes`` array (the ``(u << 32) | v``
encoding of :mod:`repro.dynamic.duals`) plus values — the
:class:`~repro.dynamic.duals.DualStore` serializes straight into the
archive with a single vectorized encode; version-1 snapshots (two-column
``dual_keys``) keep loading through the migration path in
:func:`load_snapshot`.  Two integrity layers make restores trustworthy:

1. a **content digest** over the header + every array, recomputed on load
   (bit rot, torn copies, and hand-edits raise
   :class:`CheckpointCorruptionError` instead of restoring a wrong cover);
2. a **format version** gate — a snapshot from a future format fails with
   :class:`CheckpointVersionError` naming both versions.

Writes are atomic (temp file + rename, fsync'd), so a crash mid-snapshot
leaves the previous snapshot intact; see
:mod:`repro.dynamic.wal` for the companion write-ahead log and
:func:`repro.dynamic.stream.resume_stream` for the recovery procedure.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import zlib
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.dynamic.duals import decode_edge_codes
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.maintainer import IncrementalCoverMaintainer
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import write_bytes_atomic

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointVersionError",
    "RestoredState",
    "save_snapshot",
    "load_snapshot",
    "snapshot_digest",
    "snapshot_meta",
]

PathLike = Union[str, "os.PathLike[str]"]

CHECKPOINT_FORMAT_VERSION = 2

_MAGIC = "repro-dynamic-snapshot"

#: Array members of the archive by format version, in digest order.
#: Version 2 replaced the two-column ``dual_keys`` with the flat encoded
#: ``dual_codes`` (see :mod:`repro.dynamic.duals`).
_ARRAY_FIELDS_V1 = (
    "edges_u",
    "edges_v",
    "weights",
    "cover",
    "loads",
    "dual_keys",
    "dual_values",
)
_ARRAY_FIELDS_V2 = (
    "edges_u",
    "edges_v",
    "weights",
    "cover",
    "loads",
    "dual_codes",
    "dual_values",
)
_ARRAY_FIELDS_BY_VERSION = {1: _ARRAY_FIELDS_V1, 2: _ARRAY_FIELDS_V2}


class CheckpointError(Exception):
    """A snapshot could not be written or restored."""


class CheckpointCorruptionError(CheckpointError):
    """A snapshot failed integrity checks (digest mismatch, damaged file)."""


class CheckpointVersionError(CheckpointError):
    """A snapshot's format version is not readable by this build."""


@dataclass(frozen=True)
class RestoredState:
    """Outcome of :func:`load_snapshot`.

    Attributes
    ----------
    dyn:
        The reconstructed dynamic graph (base snapshot = the saved graph,
        empty delta log).
    maintainer:
        The reconstructed maintainer, bit-identical to the exported one.
    meta:
        The verified metadata header, including the caller's ``extra``
        counters (stream position etc.).
    """

    dyn: DynamicGraph
    maintainer: IncrementalCoverMaintainer
    meta: dict


def _digest(meta_sans_digest: dict, arrays: dict, fields=None) -> str:
    """SHA-256 over the canonical header and every array's raw bytes.

    ``fields`` defaults to the array list of the header's format version,
    so version-1 files verify against the exact byte stream they were
    stamped with.
    """
    if fields is None:
        version = meta_sans_digest.get("format_version", CHECKPOINT_FORMAT_VERSION)
        fields = _ARRAY_FIELDS_BY_VERSION.get(version, _ARRAY_FIELDS_V2)
    h = hashlib.sha256()
    h.update(_MAGIC.encode("ascii"))
    h.update(
        json.dumps(meta_sans_digest, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    )
    for name in fields:
        arr = arrays[name]
        h.update(name.encode("ascii"))
        h.update(str(arr.dtype).encode("ascii"))
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def snapshot_digest(path: PathLike) -> str:
    """The stored content digest of a snapshot file (no verification)."""
    return _read(path).meta["content_digest"]


def snapshot_meta(path: PathLike) -> dict:
    """A snapshot's verified metadata header (no object reconstruction).

    Cheap relative to :func:`load_snapshot` — integrity is checked but no
    graph or maintainer is rebuilt.  Used by maintenance commands
    (``repro wal-compact``) that only need the stream position stored in
    ``meta["extra"]``.
    """
    return _read(path).meta


def save_snapshot(
    path: PathLike,
    maintainer: IncrementalCoverMaintainer,
    *,
    extra: Optional[dict] = None,
    fsync: bool = True,
    compress_arrays: bool = True,
) -> str:
    """Serialize ``maintainer`` (and its current graph) to ``path``.

    ``extra`` is an arbitrary JSON-friendly dict stored verbatim in the
    header — the stream layer records its position and counters there.
    The file appears atomically; with ``fsync`` it also survives power
    loss.  ``compress_arrays=False`` writes a plain (store-only) NPZ —
    deflate dominates snapshot wall clock on large graphs, and the
    stream layer exposes the choice as ``--snapshot-compression``.
    Returns the snapshot's content digest.
    """
    graph = maintainer.dyn.materialize()
    state = maintainer.export_state()
    arrays = {
        "edges_u": np.asarray(graph.edges_u, dtype=np.int64),
        "edges_v": np.asarray(graph.edges_v, dtype=np.int64),
        "weights": np.asarray(graph.weights, dtype=np.float64),
        "cover": state["cover"],
        "loads": state["loads"],
        # export_state emits the store's codes directly — no re-encode.
        "dual_codes": np.asarray(state["dual_codes"], dtype=np.int64),
        "dual_values": state["dual_values"],
    }
    meta = {
        "magic": _MAGIC,
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "n": int(graph.n),
        "m": int(graph.m),
        "graph_digest": graph.content_digest(),
        "dual_value": state["dual_value"],
        "base_ratio": state["base_ratio"],
        "batches_applied": state["batches_applied"],
        "extra": dict(extra or {}),
    }
    digest = _digest(meta, arrays, _ARRAY_FIELDS_V2)
    meta["content_digest"] = digest

    buf = io.BytesIO()
    savez = np.savez_compressed if compress_arrays else np.savez
    savez(buf, meta_json=np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    ), **arrays)
    data = buf.getvalue()
    if str(path).endswith(".gz"):
        data = gzip.compress(data)
    try:
        write_bytes_atomic(path, data, fsync=fsync)
    except OSError as exc:
        raise CheckpointError(f"cannot write snapshot {os.fspath(path)}: {exc}") from exc
    return digest


@dataclass(frozen=True)
class _RawSnapshot:
    meta: dict
    arrays: dict


def _read(path: PathLike) -> _RawSnapshot:
    """Read + integrity-check a snapshot file; no object reconstruction."""
    name = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise CheckpointError(f"snapshot file not found: {name}") from None
    except OSError as exc:
        raise CheckpointError(f"cannot read snapshot {name}: {exc}") from exc
    if str(path).endswith(".gz"):
        try:
            data = gzip.decompress(data)
        except (OSError, EOFError, zlib.error) as exc:
            raise CheckpointCorruptionError(
                f"snapshot {name}: gzip layer is damaged ({exc})"
            ) from exc
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            if "meta_json" not in archive:
                raise CheckpointCorruptionError(
                    f"snapshot {name}: missing metadata header"
                )
            meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
            if not isinstance(meta, dict) or meta.get("magic") != _MAGIC:
                raise CheckpointCorruptionError(
                    f"snapshot {name}: not a {_MAGIC} file"
                )
            version = meta.get("format_version")
            fields = _ARRAY_FIELDS_BY_VERSION.get(version)
            if fields is None:
                raise CheckpointVersionError(
                    f"snapshot {name}: format version {version!r} is not "
                    f"supported (this build reads versions "
                    f"{sorted(_ARRAY_FIELDS_BY_VERSION)}); re-create the "
                    f"checkpoint with a matching build"
                )
            missing = [f for f in fields if f not in archive]
            if missing:
                raise CheckpointCorruptionError(
                    f"snapshot {name}: missing array members {missing}"
                )
            arrays = {f: archive[f] for f in fields}
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile/zlib/json damage comes in many shapes
        raise CheckpointCorruptionError(
            f"snapshot {name}: cannot parse archive ({exc})"
        ) from exc

    stored = meta.get("content_digest")
    check = dict(meta)
    check.pop("content_digest", None)
    computed = _digest(check, arrays, fields)
    if stored != computed:
        raise CheckpointCorruptionError(
            f"snapshot {name}: content digest mismatch (stored "
            f"{str(stored)[:12]}…, computed {computed[:12]}…) — the file is "
            f"corrupt; restore from an older snapshot or replay the full WAL"
        )
    return _RawSnapshot(meta=meta, arrays=arrays)


def load_snapshot(path: PathLike) -> RestoredState:
    """Restore a snapshot into a live ``(DynamicGraph, maintainer)`` pair.

    Raises
    ------
    CheckpointError
        Missing/unreadable file.
    CheckpointCorruptionError
        Any integrity failure — digest mismatch, damaged archive, or a
        header inconsistent with the arrays.
    CheckpointVersionError
        A format version this build cannot read.
    """
    raw = _read(path)
    meta, arrays = raw.meta, raw.arrays
    try:
        graph = WeightedGraph(
            int(meta["n"]), arrays["edges_u"], arrays["edges_v"], arrays["weights"]
        )
    except (KeyError, ValueError) as exc:
        raise CheckpointCorruptionError(
            f"snapshot {os.fspath(path)}: graph arrays are inconsistent ({exc})"
        ) from exc
    if graph.content_digest() != meta.get("graph_digest"):
        raise CheckpointCorruptionError(
            f"snapshot {os.fspath(path)}: restored graph digest "
            f"{graph.content_digest()[:12]}… does not match the stamped "
            f"{str(meta.get('graph_digest'))[:12]}…"
        )
    dyn = DynamicGraph(graph)
    if "dual_codes" in arrays:
        du, dv = decode_edge_codes(arrays["dual_codes"])
        dual_keys = np.stack([du, dv], axis=1) if du.size else du.reshape(0, 2)
    else:
        # Version-1 migration: two-column keys load as-is and the next
        # save_snapshot rewrites the file in the current format.
        dual_keys = np.asarray(arrays["dual_keys"], dtype=np.int64).reshape(-1, 2)
    state = {
        "cover": arrays["cover"],
        "loads": arrays["loads"],
        "dual_keys": dual_keys,
        "dual_values": arrays["dual_values"],
        "dual_value": meta["dual_value"],
        "base_ratio": meta["base_ratio"],
        "batches_applied": meta["batches_applied"],
    }
    try:
        maintainer = IncrementalCoverMaintainer.from_state(dyn, state)
    except (KeyError, ValueError) as exc:
        raise CheckpointCorruptionError(
            f"snapshot {os.fspath(path)}: maintainer state is inconsistent "
            f"with the stored graph ({exc})"
        ) from exc
    return RestoredState(dyn=dyn, maintainer=maintainer, meta=meta)
