"""Coordination layer of the sharded stream pipeline.

:func:`run_sharded_stream` is the partition-parallel sibling of
:func:`repro.dynamic.stream.run_stream` (``repro stream --shards N``).
The vertex space is partitioned (:func:`repro.mpc.partition.make_partition`),
updates are routed to the shard(s) owning their endpoints
(:mod:`repro.dynamic.ingest`), and per-shard workers
(:mod:`repro.dynamic.shard_worker`) apply them to their local subgraphs in
parallel.  The coordinator here keeps the *authoritative* O(n) state —
cover mask, dual loads, weights, dual total — and stitches the shard work
back into exactly the monolithic result:

1. **Effects replay.**  Shards return the batch's effective edge events
   (with retired dual mass) tagged by global stream position; the
   coordinator replays them in that order, so dual retirement performs the
   same float operations in the same sequence a monolithic run would.
2. **Merged repair frontier.**  Shards report still-present uncovered
   insertions; the coordinator merges them and runs the one shared
   :func:`~repro.dynamic.repair.pricing_repair_pass` over the sorted
   union.  Repairs only interact through shared endpoints, so the merged
   pass equals the monolithic pass edge for edge; the resulting dual/cover
   deltas are broadcast back so shard replicas converge.
3. **Two-level pruning.**  Prune decisions interact only between adjacent
   candidates, so candidate components that live entirely inside one
   shard are pruned there, in parallel; components crossing a cut edge
   are shipped (with full neighbor lists) and pruned here sequentially.
4. **Duality reconciliation.**  Cut-edge duals are replicated on both
   incident shards but counted once (at the edge's home shard), and the
   coordinator's loads/dual-total replay keeps the global certificate —
   computed by the same :func:`~repro.dynamic.repair.certificate_from_state`
   the maintainer uses — valid after every batch.

The equivalence is exact, not approximate: for any update stream and any
shard count the final cover mask, duals, and per-batch reports are
bit-identical to the monolithic engine's (``--shards 1`` trivially so).
``tests/dynamic/test_sharded.py`` and
``tests/properties/test_property_sharding.py`` enforce this.

Durability mirrors the monolithic path: the same ``config.json`` /
``graph.npz`` / ``updates.jsonl`` / ``wal.jsonl`` layout, with snapshots
written as per-shard generations (:mod:`repro.dynamic.shard_checkpoint`).
WAL state stamps combine the per-shard edge digests with the
coordinator's weights digest — computed in parallel, verified the same
way on replay.  :func:`resume_sharded_stream` restores the newest intact
generation (falling back under ``keep_snapshots``) and replays the WAL
tail through the exact per-batch machinery.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dynamic.checkpoint import CheckpointError
from repro.dynamic.duals import DualStore, decode_edge_codes
from repro.dynamic.ingest import UpdateRouter, open_update_source
from repro.dynamic.maintainer import KERNEL_PROFILE_KEYS, BatchReport
from repro.dynamic.repair import (
    PruneView,
    adopt_solution,
    certificate_from_state,
    greedy_prune_pass,
    pricing_repair_pass,
)
from repro.dynamic.shard_checkpoint import (
    list_sharded_snapshots,
    load_sharded_snapshot,
    prune_sharded_snapshots,
    save_sharded_snapshot,
)
from repro.dynamic.shard_worker import ShardInit, ShardPool
from repro.dynamic.stream import (
    CheckpointConfig,
    StreamRecord,
    StreamSummary,
    _batches,
    _compact_wal_in_place,
    _load_config,
    _newest_intact,
    _prepare_checkpoint_dir,
    _resume_setup,
)
from repro.dynamic.policy import ResolvePolicy
from repro.dynamic.wal import WriteAheadLog
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import load_npz
from repro.graphs.updates import GraphUpdate, WeightChange
from repro.mpc.partition import make_partition
from repro.service.batch import BatchSolver
from repro.service.schema import SolveRequest

__all__ = ["run_sharded_stream", "resume_sharded_stream"]

PathLike = Union[str, "os.PathLike[str]"]

EdgeKey = Tuple[int, int]


def _weights_digest(weights: np.ndarray) -> str:
    h = hashlib.sha256()
    h.update(b"repro-sharded-weights\0")
    h.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    return h.hexdigest()


def _combined_digest(
    n: int, num_shards: int, weights_digest: str, shard_digests: Sequence[str]
) -> str:
    """The sharded stream's WAL state stamp.

    Shard edge digests are computed in parallel (each over its home-edge
    set) and combined with the coordinator's weights digest; the formula
    differs from the monolithic graph digest, but ``config.json`` records
    the shard count, so replay always recomputes the matching flavor.
    """
    h = hashlib.sha256()
    h.update(b"repro-sharded-state\0")
    h.update(f"{n}\0{num_shards}\0".encode("ascii"))
    h.update(weights_digest.encode("ascii"))
    for digest in shard_digests:
        h.update(digest.encode("ascii"))
    return h.hexdigest()


def _duals_by_shard(
    duals: DualStore, assignment: np.ndarray, num_shards: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Sorted dual ``(keys, values)`` arrays bucketed by incident shard.

    One vectorized code sort + per-shard incidence mask — no Python-level
    key walk.  A cut edge lands in both incident shards' buckets (its
    dual is replicated so either side can retire it on delete);
    per-bucket order stays sorted.
    """
    codes, vals = duals.sorted_codes()
    u, v = decode_edge_codes(codes)
    su = assignment[u] if codes.size else np.zeros(0, np.int64)
    sv = assignment[v] if codes.size else np.zeros(0, np.int64)
    buckets = []
    for s in range(num_shards):
        mask = (su == s) | (sv == s)
        keys = (
            np.stack([u[mask], v[mask]], axis=1)
            if codes.size
            else np.empty((0, 2), np.int64)
        )
        buckets.append((keys, vals[mask] if codes.size else vals))
    return buckets


def _build_shard_inits(
    edges_u: np.ndarray,
    edges_v: np.ndarray,
    assignment: np.ndarray,
    num_shards: int,
    weights: np.ndarray,
    cover: np.ndarray,
    duals,
) -> List[ShardInit]:
    """Scatter global state into per-shard construction blobs."""
    u = np.asarray(edges_u, dtype=np.int64)
    v = np.asarray(edges_v, dtype=np.int64)
    store = duals if isinstance(duals, DualStore) else DualStore(duals)
    buckets = _duals_by_shard(store, assignment, num_shards)
    inits = []
    for s in range(num_shards):
        mask = (assignment[u] == s) | (assignment[v] == s) if u.size else np.zeros(0, bool)
        dual_keys, dual_values = buckets[s]
        inits.append(
            ShardInit(
                shard_id=s,
                num_shards=num_shards,
                assignment=assignment,
                edges_u=u[mask],
                edges_v=v[mask],
                weights=np.array(weights, dtype=np.float64),
                cover=np.array(cover, dtype=bool),
                dual_keys=dual_keys,
                dual_values=dual_values,
            )
        )
    return inits


class _ShardedEngine:
    """Per-batch machinery of ``run_sharded_stream``/``resume_sharded_stream``.

    Owns the authoritative arrays, the router, the shard pool, and the
    mutable counters; performs one batch end-to-end through the two-round
    shard protocol (see the module docstring).
    """

    def __init__(
        self,
        *,
        n: int,
        num_shards: int,
        partition: str,
        partition_seed: int,
        assignment: np.ndarray,
        pool: ShardPool,
        policy: ResolvePolicy,
        solver: BatchSolver,
        eps: float,
        seed: int,
        engine: str,
        verify_every: int,
        checkpoint: Optional[CheckpointConfig] = None,
        wal: Optional[WriteAheadLog] = None,
        weights: np.ndarray,
        cover: np.ndarray,
        loads: np.ndarray,
        dual_value: float = 0.0,
        base_ratio: Optional[float] = None,
        batches_applied: int = 0,
        profile: bool = False,
    ):
        self.n = n
        self.num_shards = num_shards
        self.partition = partition
        self.partition_seed = partition_seed
        self.assignment = assignment
        self.router = UpdateRouter(assignment, num_shards)
        self.pool = pool
        self.policy = policy
        self.solver = solver
        self.eps = eps
        self.seed = seed
        self.engine = engine
        self.verify_every = verify_every
        self.checkpoint = checkpoint
        self.wal = wal
        self.weights = np.array(weights, dtype=np.float64)
        self.cover = np.array(cover, dtype=bool)
        self.loads = np.array(loads, dtype=np.float64)
        self.dual_value = float(dual_value)
        self.base_ratio = base_ratio
        self.batches_applied = int(batches_applied)
        self.pending_clears: List[int] = []
        self.records: List[StreamRecord] = []
        self.num_resolves = 0
        self.cache_hits = 0
        self.batches_since = 0
        self.updates_applied = 0
        self.ingest_s = 0.0
        self.repair_s = 0.0
        self.resolve_s = 0.0
        self.profile_enabled = bool(profile)
        self.profile_acc = {k: 0.0 for k in KERNEL_PROFILE_KEYS}
        self.last_batch_profile: Optional[dict] = None

    # -- counters (snapshot metadata) ------------------------------------ #
    def restore_counters(self, extra: dict) -> None:
        self.batches_since = int(extra.get("batches_since_resolve", 0))
        self.updates_applied = int(extra.get("updates_applied", 0))

    def counters(self, next_batch_index: int) -> dict:
        return {
            "next_batch_index": int(next_batch_index),
            "updates_applied": int(self.updates_applied),
            "batches_since_resolve": int(self.batches_since),
            "num_resolves": int(self.num_resolves),
            "num_resolve_cache_hits": int(self.cache_hits),
        }

    # -- certification ---------------------------------------------------- #
    def certificate(self):
        return certificate_from_state(
            weights=self.weights,
            cover=self.cover,
            loads=self.loads,
            dual_value=self.dual_value,
        )

    def drift(self, ratio: float) -> float:
        base = self.base_ratio
        if base is None or not np.isfinite(base) or base <= 0:
            return 0.0 if np.isfinite(ratio) else float("inf")
        return ratio / base - 1.0

    # -- gather / verify -------------------------------------------------- #
    def gather_graph(self) -> WeightedGraph:
        """Merge the shards' home edges into the global current graph."""
        exports = self.pool.broadcast("export_edges")
        us = [u for u, _ in exports]
        vs = [v for _, v in exports]
        u = np.concatenate(us) if us else np.empty(0, np.int64)
        v = np.concatenate(vs) if vs else np.empty(0, np.int64)
        return WeightedGraph(self.n, u, v, self.weights.copy())

    def verify(self) -> bool:
        """Exact validity check against the gathered current graph."""
        return self.gather_graph().is_vertex_cover(self.cover)

    # -- the solve path --------------------------------------------------- #
    def resolve(self, graph: Optional[WeightedGraph] = None) -> bool:
        """Full re-solve through the service; returns cache-hit flag.

        Gathers the current graph from the shards (unless the caller just
        built it), solves through the shared batch service — the request
        digest equals a monolithic run's, so the result cache warm-starts
        across engines — and scatters the adopted state back.
        """
        t0 = time.perf_counter()
        if graph is None:
            graph = self.gather_graph()
        request = SolveRequest(
            graph=graph, eps=self.eps, seed=self.seed, engine=self.engine
        )
        result = self.solver.solve(request)
        if not result.ok or result.result is None:
            raise RuntimeError(f"re-solve failed: {result.error}")
        state = adopt_solution(graph, result.result, weights=self.weights)
        self.cover = state.cover
        self.loads = state.loads
        self.dual_value = state.dual_value
        cert = self.certificate()
        self.base_ratio = cert.certified_ratio
        # Scatter: full cover replica + each shard's incident duals.
        buckets = _duals_by_shard(state.duals, self.assignment, self.num_shards)
        payloads = [
            {
                "cover": self.cover,
                "dual_keys": dual_keys,
                "dual_values": dual_values,
            }
            for dual_keys, dual_values in buckets
        ]
        self.pool.call_all("adopt", payloads)
        self.pending_clears = []  # superseded by the full cover scatter
        self.num_resolves += 1
        self.cache_hits += int(result.cache_hit)
        self.resolve_s += time.perf_counter() - t0
        return result.cache_hit

    # -- durability -------------------------------------------------------- #
    def write_snapshot(self, next_batch_index: int) -> None:
        if self.checkpoint is None:
            return
        checkpoint = self.checkpoint
        save_sharded_snapshot(
            checkpoint.directory,
            next_batch_index=next_batch_index,
            pool=self.pool,
            num_shards=self.num_shards,
            partition=self.partition,
            partition_seed=self.partition_seed,
            n=self.n,
            weights=self.weights,
            cover=self.cover,
            loads=self.loads,
            dual_value=self.dual_value,
            base_ratio=self.base_ratio,
            batches_applied=self.batches_applied,
            extra=self.counters(next_batch_index),
            fsync=checkpoint.fsync,
            compress_arrays=checkpoint.compress_arrays,
        )
        prune_sharded_snapshots(checkpoint.directory, checkpoint.keep_snapshots)
        if checkpoint.compact_wal and self.wal is not None:
            retained = list_sharded_snapshots(checkpoint.directory)
            floor = min(
                (idx for idx, _ in retained[: checkpoint.keep_snapshots]),
                default=next_batch_index,
            )
            self.wal = _compact_wal_in_place(checkpoint, self.wal, floor)

    def state_digest(self, shard_digests: Sequence[str], weights_digest: str) -> str:
        return _combined_digest(
            self.n, self.num_shards, weights_digest, shard_digests
        )

    # -- one batch --------------------------------------------------------- #
    def process_batch(
        self,
        index: int,
        batch: List[GraphUpdate],
        *,
        log_to_wal: bool,
        expect_digest: Optional[str] = None,
    ) -> StreamRecord:
        t_start = time.perf_counter()
        stamping = (
            log_to_wal
            and self.wal is not None
            and self.checkpoint is not None
            and self.checkpoint.stamp_digests
        )
        want_digest = stamping or bool(expect_digest)

        # ---- round 1: route, scatter, apply ---------------------------- #
        t0 = time.perf_counter()
        routed = self.router.route(batch)
        weights_digest = _weights_digest(self.weights) if want_digest else ""
        clears = self.pending_clears
        payloads = [
            {
                "events": routed.slices[s],
                "cover_clears": clears,
                "want_digest": want_digest,
            }
            for s in range(self.num_shards)
        ]
        self.ingest_s += time.perf_counter() - t0
        # The shard round does the apply/detect work the monolithic engine
        # books under repair_s; attribute it the same way so the split
        # stays comparable across engines.
        t_apply = time.perf_counter()
        responses = self.pool.call_all("apply_batch", payloads)
        shard_round_s = time.perf_counter() - t_apply
        self.repair_s += shard_round_s
        self.pending_clears = []

        digest = ""
        if want_digest:
            digest = self.state_digest(
                [r["digest"] for r in responses], weights_digest
            )
        if expect_digest and digest != expect_digest:
            raise CheckpointError(
                f"WAL batch {index} was logged against sharded state "
                f"{expect_digest[:12]}… but replay reached {digest[:12]}… — "
                f"snapshot/WAL/stream mismatch"
            )
        if log_to_wal and self.wal is not None:
            t_wal = time.perf_counter()
            self.wal.append(index, batch, state_digest=digest)
            self.ingest_s += time.perf_counter() - t_wal

        # ---- replay: reweights + merged edge effects ------------------- #
        t1 = time.perf_counter()
        profiling = self.profile_enabled
        t_mark = time.perf_counter() if profiling else 0.0
        applied = inserts = deletes = reweights = 0
        retired = 0.0
        touched = set()
        for upd in batch:
            if isinstance(upd, WeightChange):
                v = int(upd.v)
                w = float(upd.weight)
                if not np.isfinite(w) or w <= 0:
                    raise ValueError(
                        f"vertex weights must be finite and > 0, got {w}"
                    )
                if self.weights[v] != w:
                    self.weights[v] = w
                    applied += 1
                    reweights += 1
                    touched.add(v)
        effects: List[tuple] = []
        for response in responses:
            effects.extend(response["effects"])
        effects.sort(key=lambda e: e[0])
        loads = self.loads
        for _, op, u, v, pay in effects:
            applied += 1
            touched.add(u)
            touched.add(v)
            if op == "i":
                inserts += 1
            else:
                deletes += 1
                if pay:
                    loads[u] -= pay
                    if loads[u] < 0.0:  # accumulated float noise
                        loads[u] = 0.0
                    loads[v] -= pay
                    if loads[v] < 0.0:
                        loads[v] = 0.0
                    self.dual_value -= pay
                    if self.dual_value < 0.0:
                        self.dual_value = 0.0
                retired += pay

        if profiling:
            now = time.perf_counter()
            adjacency_s = (now - t_mark) + shard_round_s
            t_mark = now

        # ---- merged repair frontier ------------------------------------ #
        uncovered = set()
        for response in responses:
            uncovered.update(tuple(k) for k in response["uncovered"])
        outcome = pricing_repair_pass(
            sorted(uncovered),
            weights=self.weights,
            cover=self.cover,
            loads=self.loads,
            duals=DualStore(),
            dual_value=self.dual_value,
        )
        self.dual_value = outcome.dual_value
        touched |= outcome.entered
        if profiling:
            now = time.perf_counter()
            repair_kernel_s, t_mark = now - t_mark, now

        # ---- round 2: sync repair, two-level prune --------------------- #
        candidates = sorted(v for v in touched if self.cover[v])
        paying = [(key, pay) for key, pay in outcome.events if pay > 0.0]
        if paying:
            dual_u = np.asarray([k[0] for k, _ in paying], dtype=np.int64)
            dual_v = np.asarray([k[1] for k, _ in paying], dtype=np.int64)
            dual_pay = np.asarray([p for _, p in paying], dtype=np.float64)
        else:
            dual_u = np.empty(0, np.int64)
            dual_v = np.empty(0, np.int64)
            dual_pay = np.empty(0, np.float64)
        responses2 = self.pool.broadcast(
            "finish_batch",
            {
                "dual_u": dual_u,
                "dual_v": dual_v,
                "dual_pay": dual_pay,
                "entered": sorted(outcome.entered),
                "candidates": candidates,
            },
        )
        pruned: List[int] = []
        shipment: Dict[int, Tuple[int, List[int]]] = {}
        for response in responses2:
            pruned.extend(response["pruned"])
            for v, deg, neigh in response["boundary"]:
                shipment[v] = (int(deg), neigh)
        for v in pruned:
            self.cover[v] = False
        boundary_pruned = greedy_prune_pass(
            sorted(shipment),
            weights=self.weights,
            cover=self.cover,
            view=PruneView(
                neighbors=lambda v: shipment[v][1],
                degree=lambda v: shipment[v][0],
            ),
        )
        pruned.extend(boundary_pruned)
        self.pending_clears = sorted(pruned)
        if profiling:
            now = time.perf_counter()
            prune_s, t_mark = now - t_mark, now

        self.batches_applied += 1
        self.updates_applied += len(batch)
        self.batches_since += 1
        cert = self.certificate()
        report = BatchReport(
            num_updates=len(batch),
            applied=applied,
            inserts=inserts,
            deletes=deletes,
            reweights=reweights,
            repaired_edges=outcome.repaired,
            added_to_cover=len(outcome.entered),
            pruned_from_cover=len(pruned),
            retired_dual=retired,
            certificate=cert,
            drift=self.drift(cert.certified_ratio),
        )
        self.repair_s += time.perf_counter() - t1
        if profiling:
            certificate_s = time.perf_counter() - t_mark
            batch_profile = {
                "adjacency_s": adjacency_s,
                "repair_s": repair_kernel_s,
                "prune_s": prune_s,
                "certificate_s": certificate_s,
            }
            for key, value in batch_profile.items():
                self.profile_acc[key] += value
            self.last_batch_profile = batch_profile

        decision = self.policy.should_resolve(
            certified_ratio=cert.certified_ratio,
            base_ratio=self.base_ratio,
            batches_since_resolve=self.batches_since,
        )
        hit = False
        if decision:
            hit = self.resolve()
            self.batches_since = 0
        if self.verify_every and (index + 1) % self.verify_every == 0:
            if not self.verify():  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"invalid cover after batch {index} — sharded engine bug"
                )
        record = StreamRecord(
            batch_index=index,
            report=report,
            resolved=bool(decision),
            resolve_reason=decision.reason,
            resolve_cache_hit=hit,
            certified_ratio_after=self.certificate().certified_ratio,
            elapsed_s=time.perf_counter() - t_start,
            kernel_profile=self.last_batch_profile if profiling else None,
        )
        self.records.append(record)
        if (
            self.checkpoint is not None
            and (index + 1) % self.checkpoint.snapshot_every == 0
        ):
            self.write_snapshot(index + 1)
        return record

    # -- the summary -------------------------------------------------------- #
    def summarize(
        self,
        *,
        num_updates: int,
        elapsed_s: float,
        resumed_from_batch: Optional[int] = None,
    ) -> StreamSummary:
        cert = self.certificate()
        return StreamSummary(
            num_updates=num_updates,
            num_batches=len(self.records),
            num_resolves=self.num_resolves,
            num_resolve_cache_hits=self.cache_hits,
            final_cover_weight=cert.cover_weight,
            final_dual_value=cert.dual_value,
            final_certified_ratio=cert.certified_ratio,
            final_is_cover=self.verify(),
            elapsed_s=elapsed_s,
            records=self.records,
            final_cover=self.cover.copy(),
            resumed_from_batch=resumed_from_batch,
            ingest_s=self.ingest_s,
            repair_s=self.repair_s,
            resolve_s=self.resolve_s,
            kernel_profile=dict(self.profile_acc) if self.profile_enabled else None,
        )


def run_sharded_stream(
    graph: WeightedGraph,
    updates,
    *,
    num_shards: int,
    partition: str = "hash",
    partition_seed: int = 0,
    batch_size: int = 64,
    policy: Optional[ResolvePolicy] = None,
    solver: Optional[BatchSolver] = None,
    eps: float = 0.1,
    seed: int = 0,
    engine: str = "vectorized",
    verify_every: int = 0,
    checkpoint: Optional[CheckpointConfig] = None,
    use_processes: bool = True,
    profile: bool = False,
) -> StreamSummary:
    """Maintain a certified cover with partition-parallel shard workers.

    The sharded counterpart of :func:`repro.dynamic.stream.run_stream` —
    same parameters plus the shard layout, same wire schema out, and
    bit-identical covers/records for any ``num_shards`` (including 1).

    Parameters
    ----------
    updates:
        Anything :func:`repro.dynamic.ingest.open_update_source` accepts —
        an in-memory sequence, a JSON-lines file, or a directory of
        segment files.
    num_shards, partition, partition_seed:
        Shard layout: the vertex space is split by
        :func:`repro.mpc.partition.make_partition` and recorded in the
        checkpoint config, so a resumed run re-derives it exactly.
    use_processes:
        Run each shard in its own worker process (one single-worker pool
        per shard).  ``False`` keeps shards in-process — bit-identical,
        no parallelism; the right mode on one core and under test.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    updates = open_update_source(updates).collect()
    policy = policy or ResolvePolicy()
    if checkpoint is not None:
        _prepare_checkpoint_dir(
            checkpoint,
            graph,
            updates,
            batch_size=batch_size,
            policy=policy,
            eps=eps,
            seed=seed,
            engine=engine,
            verify_every=verify_every,
            # Not used by the sharded engine (shards keep dict adjacency),
            # but stored valid so tooling reading the config never chokes.
            compact_fraction=0.25,
            extra_config={
                "shards": int(num_shards),
                "partition": str(partition),
                "partition_seed": int(partition_seed),
            },
        )
    own_solver = solver is None
    if own_solver:
        solver = BatchSolver(use_processes=False)

    start = time.perf_counter()
    assignment = make_partition(
        partition, graph.n, num_shards, seed=partition_seed
    )
    cover = np.zeros(graph.n, dtype=bool)
    if graph.m:
        # Mirror the maintainer's bootstrap: a nonempty graph has no valid
        # empty cover, so start from all-vertices until the initial solve.
        cover[:] = True
    inits = _build_shard_inits(
        graph.edges_u,
        graph.edges_v,
        assignment,
        num_shards,
        graph.weights,
        cover,
        {},
    )
    pool = ShardPool(inits, use_processes=use_processes)
    try:
        wal = (
            WriteAheadLog(checkpoint.wal_path, fsync=checkpoint.fsync)
            if checkpoint is not None
            else None
        )
    except BaseException:
        pool.close()
        if own_solver:
            solver.close()
        raise
    engine_ = _ShardedEngine(
        n=graph.n,
        num_shards=num_shards,
        partition=partition,
        partition_seed=partition_seed,
        assignment=assignment,
        pool=pool,
        policy=policy,
        solver=solver,
        eps=eps,
        seed=seed,
        engine=engine,
        verify_every=verify_every,
        checkpoint=checkpoint,
        wal=wal,
        weights=graph.weights,
        cover=cover,
        loads=np.zeros(graph.n, dtype=np.float64),
        profile=profile,
    )
    try:
        if graph.m:
            engine_.resolve(graph=graph)
        engine_.write_snapshot(0)
        for index, batch in enumerate(_batches(updates, batch_size)):
            engine_.process_batch(index, batch, log_to_wal=True)
        engine_.write_snapshot(len(engine_.records))
        return engine_.summarize(
            num_updates=len(updates), elapsed_s=time.perf_counter() - start
        )
    finally:
        if engine_.wal is not None:
            engine_.wal.close()
        pool.close()
        if own_solver:
            solver.close()


def resume_sharded_stream(
    directory: PathLike,
    *,
    updates=None,
    solver: Optional[BatchSolver] = None,
    use_processes: bool = True,
    profile: bool = False,
) -> StreamSummary:
    """Resume a checkpointed sharded stream after a crash (or completion).

    The sharded counterpart of
    :func:`repro.dynamic.stream.resume_stream`: restore the newest intact
    snapshot generation (older generations are fallbacks under
    ``keep_snapshots``; a missing snapshot cold-starts from ``graph.npz``),
    re-derive the shard layout from the stored partition parameters,
    replay the committed WAL tail through the exact per-batch machinery —
    verifying each record's combined state stamp — and finish the stream.
    """
    config = _load_config(CheckpointConfig(directory=directory))
    if "shards" not in config:
        raise CheckpointError(
            f"checkpoint {os.fspath(directory)} holds a monolithic stream; "
            f"resume it with repro.dynamic.resume_stream"
        )
    num_shards = int(config["shards"])
    partition = str(config.get("partition", "hash"))
    partition_seed = int(config.get("partition_seed", 0))
    if updates is not None:
        updates = open_update_source(updates).collect()
    checkpoint, policy, batch_size, updates, wal_records = _resume_setup(
        directory, config, updates
    )

    own_solver = solver is None
    if own_solver:
        solver = BatchSolver(use_processes=False)
    start = time.perf_counter()
    pool = None
    engine_ = None
    try:
        restored = _restore_latest(checkpoint)
        initial_graph = None
        if restored is not None:
            n = int(restored.manifest["n"])
            if int(restored.manifest["num_shards"]) != num_shards:
                raise CheckpointError(
                    f"snapshot was taken with {restored.manifest['num_shards']} "
                    f"shards but the checkpoint config says {num_shards}"
                )
            weights = restored.weights
            cover = restored.cover
            loads = restored.loads
            dual_value = restored.dual_value
            base_ratio = restored.base_ratio
            batches_applied = restored.batches_applied
            edges_u, edges_v = restored.edges_u, restored.edges_v
            duals = restored.duals
            extra = restored.manifest.get("extra", {})
            next_index = int(extra.get("next_batch_index", 0))
            cold_start = False
        else:
            # No snapshot survived — rebuild from the initial graph and
            # replay the WAL from the beginning.
            try:
                initial_graph = load_npz(checkpoint.graph_path)
            except FileNotFoundError:
                raise CheckpointError(
                    f"checkpoint {os.fspath(directory)} has neither a "
                    f"snapshot nor the initial graph (graph.npz); nothing "
                    f"to restore"
                ) from None
            except Exception as exc:
                raise CheckpointError(
                    f"{checkpoint.graph_path} is unreadable ({exc}); the "
                    f"checkpoint cannot cold-start without it"
                ) from exc
            if initial_graph.content_digest() != config.get("graph_digest"):
                raise CheckpointError(
                    f"{checkpoint.graph_path} does not match the "
                    f"checkpointed run's graph digest"
                )
            n = initial_graph.n
            weights = np.array(initial_graph.weights, dtype=np.float64)
            cover = np.zeros(n, dtype=bool)
            if initial_graph.m:
                cover[:] = True
            loads = np.zeros(n, dtype=np.float64)
            dual_value = 0.0
            base_ratio = None
            batches_applied = 0
            edges_u, edges_v = initial_graph.edges_u, initial_graph.edges_v
            duals = {}
            extra = {}
            next_index = 0
            cold_start = True

        assignment = make_partition(partition, n, num_shards, seed=partition_seed)
        inits = _build_shard_inits(
            edges_u, edges_v, assignment, num_shards, weights, cover, duals
        )
        pool = ShardPool(inits, use_processes=use_processes)
        engine_ = _ShardedEngine(
            n=n,
            num_shards=num_shards,
            partition=partition,
            partition_seed=partition_seed,
            assignment=assignment,
            pool=pool,
            policy=policy,
            solver=solver,
            eps=float(config["eps"]),
            seed=int(config["seed"]),
            engine=str(config["engine"]),
            verify_every=int(config["verify_every"]),
            checkpoint=checkpoint,
            wal=None,  # replay first; the WAL reopens for the continuation
            weights=weights,
            cover=cover,
            loads=loads,
            dual_value=dual_value,
            base_ratio=base_ratio,
            batches_applied=batches_applied,
            profile=profile,
        )
        engine_.restore_counters(extra)
        resumed_from = next_index
        updates_at_restore = engine_.updates_applied
        if cold_start and initial_graph is not None and initial_graph.m:
            engine_.resolve(graph=initial_graph)

        # ---- replay the committed WAL tail ---------------------------- #
        tail = [r for r in wal_records if r.batch_index >= next_index]
        expected = next_index
        for record in tail:
            if record.batch_index != expected:
                raise CheckpointError(
                    f"WAL gap: expected batch {expected}, found "
                    f"{record.batch_index} — the snapshot cannot bridge it"
                )
            engine_.process_batch(
                expected,
                list(record.updates),
                log_to_wal=False,
                expect_digest=record.state_digest or None,
            )
            expected += 1
        if engine_.updates_applied > len(updates):
            raise CheckpointError(
                f"WAL replay consumed {engine_.updates_applied} updates but "
                f"the stream holds only {len(updates)}"
            )

        # ---- continue with the uncommitted remainder ------------------ #
        engine_.wal = WriteAheadLog(checkpoint.wal_path, fsync=checkpoint.fsync)
        remainder = updates[engine_.updates_applied :]
        next_index = expected
        for offset, batch in enumerate(_batches(remainder, batch_size)):
            engine_.process_batch(expected + offset, batch, log_to_wal=True)
            next_index = expected + offset + 1
        engine_.write_snapshot(next_index)
        return engine_.summarize(
            num_updates=engine_.updates_applied - updates_at_restore,
            elapsed_s=time.perf_counter() - start,
            resumed_from_batch=resumed_from,
        )
    finally:
        if engine_ is not None and engine_.wal is not None:
            engine_.wal.close()
        if pool is not None:
            pool.close()
        if own_solver:
            solver.close()


def _restore_latest(checkpoint: CheckpointConfig):
    """Newest intact sharded snapshot, with older-generation fallback."""
    return _newest_intact(
        list_sharded_snapshots(checkpoint.directory),
        load_sharded_snapshot,
        checkpoint.directory,
    )
