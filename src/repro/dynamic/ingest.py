"""Ingestion layer: pluggable update sources and the partition router.

The first stage of the sharded stream pipeline
(:mod:`repro.dynamic.sharded`).  Two concerns live here:

**Sources.**  A stream may arrive as an in-memory sequence, a JSON-lines
file (plain or gzipped), or a directory of numbered segment files (the
shape a log-shipping producer writes — see
:func:`repro.graphs.updates.save_update_stream_segments`).
:func:`open_update_source` coerces any of those into an
:class:`UpdateSource`, and :func:`iter_update_batches` chops one into
repair batches.

**Routing.**  :class:`UpdateRouter` owns the vertex partition (an
assignment array from :func:`repro.mpc.partition.make_partition`) and
routes every event to the shard(s) that must see it:

* edge events go to the owner shard of *each* endpoint (one shard for an
  internal edge, both for a cut edge) — every shard holds exactly the
  edges incident to its owned vertices;
* weight changes are broadcast to every shard, because any shard may need
  the weight of a ghost neighbor during pruning.

Events are routed as compact wire tuples carrying their global stream
position (``seq``), so each shard applies its slice in original stream
order and the coordinator can replay cross-shard effects (dual
retirements) in the exact global order — the float-level determinism the
differential equivalence tests rely on.
"""

from __future__ import annotations

import glob
import os
import re
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.updates import (
    EdgeDelete,
    EdgeInsert,
    GraphUpdate,
    WeightChange,
    load_update_stream,
)

__all__ = [
    "DirectorySource",
    "FileSource",
    "IterableSource",
    "MemorySource",
    "RoutedBatch",
    "UpdateRouter",
    "UpdateSource",
    "iter_update_batches",
    "open_update_source",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Wire tuples shipped to shard workers: ``(seq, op, a, b)`` where ``op``
#: is ``"i"``/``"d"`` (a, b = canonical endpoints) or ``"w"`` (a = vertex,
#: b = new weight).
WireEvent = Tuple[int, str, int, float]


class UpdateSource:
    """An iterable of :data:`GraphUpdate` events in stream order."""

    def __iter__(self) -> Iterator[GraphUpdate]:  # pragma: no cover - abstract
        raise NotImplementedError

    def count(self) -> Optional[int]:
        """Number of events, when knowable without consuming the source."""
        return None

    def collect(self) -> List[GraphUpdate]:
        """Materialize the source as a list (consumes one-shot sources)."""
        return list(self)


class MemorySource(UpdateSource):
    """An in-memory sequence of events."""

    def __init__(self, updates: Sequence[GraphUpdate]):
        self._updates = list(updates)

    def __iter__(self) -> Iterator[GraphUpdate]:
        return iter(self._updates)

    def count(self) -> int:
        return len(self._updates)

    def collect(self) -> List[GraphUpdate]:
        return list(self._updates)


class FileSource(UpdateSource):
    """A JSON-lines update file (gzip-compressed iff the name ends ``.gz``)."""

    def __init__(self, path: PathLike):
        self.path = os.fspath(path)

    def __iter__(self) -> Iterator[GraphUpdate]:
        return iter(load_update_stream(self.path))


class DirectorySource(UpdateSource):
    """A directory of JSON-lines segment files, read in filename order.

    The default pattern matches the segments written by
    :func:`repro.graphs.updates.save_update_stream_segments`; pass a
    custom glob for differently named logs.  An empty directory is an
    empty stream; a directory with no matching files raises (a typo'd
    pattern must not silently read zero updates from a populated log).
    """

    def __init__(self, directory: PathLike, *, pattern: str = "*.jsonl*"):
        self.directory = os.fspath(directory)
        self.pattern = pattern

    def segments(self) -> List[str]:
        paths = glob.glob(os.path.join(self.directory, self.pattern))
        if not paths and os.listdir(self.directory):
            raise ValueError(
                f"update directory {self.directory} has no segments matching "
                f"{self.pattern!r}"
            )
        # Numeric-aware ordering: a writer that outgrows its zero padding
        # (part-99999 → part-100000) must not have its segments replayed
        # lexicographically out of order.
        def natural(path: str):
            name = os.path.basename(path)
            return tuple(
                int(piece) if piece.isdigit() else piece
                for piece in re.split(r"(\d+)", name)
            )

        return sorted(paths, key=natural)

    def __iter__(self) -> Iterator[GraphUpdate]:
        for path in self.segments():
            yield from load_update_stream(path)


class IterableSource(UpdateSource):
    """A one-shot iterator of events (consumed on first traversal)."""

    def __init__(self, iterable: Iterable[GraphUpdate]):
        self._iterable = iterable

    def __iter__(self) -> Iterator[GraphUpdate]:
        return iter(self._iterable)


def open_update_source(
    spec: Union[UpdateSource, Sequence[GraphUpdate], Iterable[GraphUpdate], PathLike]
) -> UpdateSource:
    """Coerce ``spec`` into an :class:`UpdateSource`.

    Accepts an existing source, a path (file or directory), a sequence of
    events, or any iterable of events.
    """
    if isinstance(spec, UpdateSource):
        return spec
    if isinstance(spec, (str, os.PathLike)):
        path = os.fspath(spec)
        if os.path.isdir(path):
            return DirectorySource(path)
        return FileSource(path)
    if isinstance(spec, Sequence):
        return MemorySource(spec)
    if isinstance(spec, Iterable):
        return IterableSource(spec)
    raise TypeError(f"cannot read updates from {type(spec).__name__}")


def iter_update_batches(
    source: Union[UpdateSource, Sequence[GraphUpdate], PathLike],
    batch_size: int,
) -> Iterator[List[GraphUpdate]]:
    """Chop a source into lists of at most ``batch_size`` events."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batch: List[GraphUpdate] = []
    for upd in open_update_source(source):
        batch.append(upd)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


class RoutedBatch:
    """One batch split into per-shard wire slices (stream order kept)."""

    __slots__ = ("slices", "num_events")

    def __init__(self, slices: List[List[WireEvent]], num_events: int):
        self.slices = slices
        self.num_events = num_events


class UpdateRouter:
    """Routes events to the shards owning their endpoints.

    Parameters
    ----------
    assignment:
        ``int64`` array mapping vertex id → shard id (see
        :func:`repro.mpc.partition.make_partition`).
    num_shards:
        Number of shards; every assignment entry must lie in
        ``[0, num_shards)``.
    """

    def __init__(self, assignment: np.ndarray, num_shards: int):
        self.assignment = np.asarray(assignment, dtype=np.int64)
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= num_shards
        ):
            raise ValueError(
                f"assignment entries must lie in [0, {num_shards})"
            )
        self.num_shards = num_shards

    def owner(self, v: int) -> int:
        """Shard owning vertex ``v``."""
        return int(self.assignment[v])

    def home(self, u: int, v: int) -> int:
        """Home shard of edge ``{u, v}``: the owner of the min endpoint."""
        return int(self.assignment[min(u, v)])

    def route(self, batch: Sequence[GraphUpdate], *, base_seq: int = 0) -> RoutedBatch:
        """Split ``batch`` into per-shard wire slices.

        Each event keeps its global position ``base_seq + i``; slices
        preserve relative order, so a shard applying its slice sees its
        events in original stream order.  Endpoint range is validated here
        (routing needs the owner); self-loop and weight validation happen
        at the shard/coordinator, mirroring the monolithic engine.
        """
        slices: List[List[WireEvent]] = [[] for _ in range(self.num_shards)]
        a = self.assignment
        n = a.shape[0]
        for i, upd in enumerate(batch):
            seq = base_seq + i
            if isinstance(upd, EdgeInsert) or isinstance(upd, EdgeDelete):
                op = "i" if isinstance(upd, EdgeInsert) else "d"
                u, v = int(upd.u), int(upd.v)
                if u > v:
                    u, v = v, u
                if not (0 <= u < n and 0 <= v < n):
                    raise ValueError(
                        f"edge endpoints ({u}, {v}) out of range [0, {n})"
                    )
                event = (seq, op, u, v)
                su = int(a[u])
                slices[su].append(event)
                sv = int(a[v])
                if sv != su:
                    slices[sv].append(event)
            elif isinstance(upd, WeightChange):
                w_vertex = int(upd.v)
                if not 0 <= w_vertex < n:
                    raise ValueError(
                        f"vertex {w_vertex} out of range [0, {n})"
                    )
                event = (seq, "w", w_vertex, float(upd.weight))
                for s in range(self.num_shards):
                    slices[s].append(event)
            else:
                raise TypeError(f"not a graph update: {type(upd).__name__}")
        return RoutedBatch(slices=slices, num_events=len(batch))
