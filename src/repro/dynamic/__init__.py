"""Dynamic-graph subsystem: certified MWVC over update streams.

The MPC algorithm solves one static instance per invocation; production
graphs mutate continuously.  This package maintains a valid, certified
cover under edge churn and weight changes, re-solving only when the
certificate drifts past a policy bound:

:mod:`repro.dynamic.updates`
    :class:`EdgeInsert` / :class:`EdgeDelete` / :class:`WeightChange`
    events and their JSON-lines wire format.
:mod:`repro.dynamic.dynamic_graph`
    :class:`DynamicGraph` — delta log over the immutable
    :class:`~repro.graphs.WeightedGraph`, with periodic compaction back to
    canonical CSR form.
:mod:`repro.dynamic.maintainer`
    :class:`IncrementalCoverMaintainer` — local pricing repair + touched
    pruning + a live duality certificate.
:mod:`repro.dynamic.policy`
    :class:`ResolvePolicy` — drift-bounded re-solve trigger.
:mod:`repro.dynamic.stream`
    :func:`run_stream` — batches, policy evaluation, and warm-started
    re-solves through the batch service (``repro stream``); plus
    :class:`CheckpointConfig` and :func:`resume_stream` for durable,
    crash-recoverable runs (``repro resume``).
:mod:`repro.dynamic.checkpoint`
    Versioned, digest-stamped snapshots of maintainer + graph state.
:mod:`repro.dynamic.wal`
    Append-only, checksummed write-ahead log of applied update batches.
:mod:`repro.dynamic.repair`
    The shared repair/prune/certification kernels both engines run —
    vectorized array passes plus the ``_reference_*`` executable specs.
:mod:`repro.dynamic.duals`
    :class:`DualStore` — array-backed per-edge duals keyed by encoded
    ``int64`` edge codes.
:mod:`repro.dynamic.ingest`
    Pluggable update sources (file / directory segments / memory) and the
    partition-aware :class:`~repro.dynamic.ingest.UpdateRouter`.
:mod:`repro.dynamic.shard_worker`
    Per-shard worker state + the one-process-per-shard pool plumbing.
:mod:`repro.dynamic.sharded`
    :func:`run_sharded_stream` / :func:`resume_sharded_stream` — the
    partition-parallel pipeline behind ``repro stream --shards N``,
    bit-identical to the monolithic engine for any shard count.
:mod:`repro.dynamic.shard_checkpoint`
    Shard-aware snapshots: per-shard files + a manifest commit point.
"""

from repro.dynamic.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointVersionError,
    RestoredState,
    load_snapshot,
    save_snapshot,
)
from repro.dynamic.duals import DualStore, decode_edge_codes, encode_edge_codes
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.maintainer import (
    KERNEL_PROFILE_KEYS,
    BatchReport,
    IncrementalCoverMaintainer,
)
from repro.dynamic.policy import ResolveDecision, ResolvePolicy
from repro.dynamic.ingest import (
    DirectorySource,
    FileSource,
    MemorySource,
    UpdateRouter,
    UpdateSource,
    iter_update_batches,
    open_update_source,
)
from repro.dynamic.sharded import resume_sharded_stream, run_sharded_stream
from repro.dynamic.stream import (
    CheckpointConfig,
    StreamRecord,
    StreamSummary,
    resume_stream,
    run_stream,
)
from repro.dynamic.wal import (
    WALCorruptionError,
    WALError,
    WALRecord,
    WriteAheadLog,
    compact_wal,
    read_wal,
    repair_wal,
)
from repro.dynamic.updates import (
    EdgeDelete,
    EdgeInsert,
    GraphUpdate,
    WeightChange,
    load_update_stream,
    save_update_stream,
    update_from_json,
    update_to_json,
)

__all__ = [
    "BatchReport",
    "CheckpointConfig",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointVersionError",
    "DirectorySource",
    "DualStore",
    "DynamicGraph",
    "EdgeDelete",
    "EdgeInsert",
    "FileSource",
    "GraphUpdate",
    "IncrementalCoverMaintainer",
    "KERNEL_PROFILE_KEYS",
    "MemorySource",
    "ResolveDecision",
    "ResolvePolicy",
    "RestoredState",
    "StreamRecord",
    "StreamSummary",
    "UpdateRouter",
    "UpdateSource",
    "WALCorruptionError",
    "WALError",
    "WALRecord",
    "WriteAheadLog",
    "compact_wal",
    "decode_edge_codes",
    "encode_edge_codes",
    "iter_update_batches",
    "load_snapshot",
    "load_update_stream",
    "open_update_source",
    "read_wal",
    "repair_wal",
    "resume_sharded_stream",
    "resume_stream",
    "run_sharded_stream",
    "run_stream",
    "save_snapshot",
    "save_update_stream",
    "update_from_json",
    "update_to_json",
]
