"""Dynamic-graph subsystem: certified MWVC over update streams.

The MPC algorithm solves one static instance per invocation; production
graphs mutate continuously.  This package maintains a valid, certified
cover under edge churn and weight changes, re-solving only when the
certificate drifts past a policy bound:

:mod:`repro.dynamic.updates`
    :class:`EdgeInsert` / :class:`EdgeDelete` / :class:`WeightChange`
    events and their JSON-lines wire format.
:mod:`repro.dynamic.dynamic_graph`
    :class:`DynamicGraph` — delta log over the immutable
    :class:`~repro.graphs.WeightedGraph`, with periodic compaction back to
    canonical CSR form.
:mod:`repro.dynamic.maintainer`
    :class:`IncrementalCoverMaintainer` — local pricing repair + touched
    pruning + a live duality certificate.
:mod:`repro.dynamic.policy`
    :class:`ResolvePolicy` — drift-bounded re-solve trigger.
:mod:`repro.dynamic.stream`
    :func:`run_stream` — batches, policy evaluation, and warm-started
    re-solves through the batch service (``repro stream``); plus
    :class:`CheckpointConfig` and :func:`resume_stream` for durable,
    crash-recoverable runs (``repro resume``).
:mod:`repro.dynamic.checkpoint`
    Versioned, digest-stamped snapshots of maintainer + graph state.
:mod:`repro.dynamic.wal`
    Append-only, checksummed write-ahead log of applied update batches.
"""

from repro.dynamic.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointVersionError,
    RestoredState,
    load_snapshot,
    save_snapshot,
)
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.maintainer import BatchReport, IncrementalCoverMaintainer
from repro.dynamic.policy import ResolveDecision, ResolvePolicy
from repro.dynamic.stream import (
    CheckpointConfig,
    StreamRecord,
    StreamSummary,
    resume_stream,
    run_stream,
)
from repro.dynamic.wal import (
    WALCorruptionError,
    WALError,
    WALRecord,
    WriteAheadLog,
    read_wal,
    repair_wal,
)
from repro.dynamic.updates import (
    EdgeDelete,
    EdgeInsert,
    GraphUpdate,
    WeightChange,
    load_update_stream,
    save_update_stream,
    update_from_json,
    update_to_json,
)

__all__ = [
    "BatchReport",
    "CheckpointConfig",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointVersionError",
    "DynamicGraph",
    "EdgeDelete",
    "EdgeInsert",
    "GraphUpdate",
    "IncrementalCoverMaintainer",
    "ResolveDecision",
    "ResolvePolicy",
    "RestoredState",
    "StreamRecord",
    "StreamSummary",
    "WALCorruptionError",
    "WALError",
    "WALRecord",
    "WriteAheadLog",
    "load_snapshot",
    "load_update_stream",
    "read_wal",
    "repair_wal",
    "resume_stream",
    "run_stream",
    "save_snapshot",
    "save_update_stream",
    "update_from_json",
    "update_to_json",
]
