"""Shared repair kernels: pricing repair, greedy prune, certification.

The incremental maintainer (:mod:`repro.dynamic.maintainer`) and the
sharded stream pipeline (:mod:`repro.dynamic.sharded`) must produce
*bit-identical* covers for the same update stream — the differential
equivalence contract ``tests/dynamic/test_sharded.py`` and
``tests/properties/test_property_sharding.py`` enforce.  The only robust
way to guarantee that is to run the exact same float operations in the
exact same order, so the three state transitions that involve floating
point live here as free functions over plain arrays, and both engines call
them:

* :func:`pricing_repair_pass` — the local-ratio/pricing repair of
  uncovered edges, processed in canonical sorted-key order.  Two repairs
  of one batch interact only through shared endpoints, so any
  vertex-disjoint split of the key set composes back to the global result;
  the sharded coordinator exploits this by running the single pass over
  the merged per-shard frontiers.
* :func:`greedy_prune_pass` — the sequential greedy redundancy prune over
  a candidate set, parameterized by neighbor access so it runs unchanged
  on a :class:`~repro.dynamic.DynamicGraph`, a shard's adjacency dict, or
  the coordinator's shipped neighbor lists.  Prune decisions interact only
  between *adjacent* candidates (removing ``v`` changes exactly its
  neighbors' droppability), so candidate components split across shards
  the same way repairs do.
* :func:`certificate_from_state` — the duality certificate from the raw
  ``(weights, cover, loads, dual_value)`` arrays.

Both mutation kernels come in two implementations with one contract:

* the **vectorized** public functions do a masked array *prepass*
  (presence, covered-endpoint, residual/tolerance precomputation for the
  repair; effectiveness ordering and bulk droppability for the prune) so
  the sequential tail loop — whose float-accumulation *order* is the
  bit-identity contract and therefore cannot be parallelized — only
  touches surviving items through preextracted Python locals;
* the ``_reference_*`` functions keep the original object-at-a-time
  bodies.  They are the executable spec: the Hypothesis suite
  ``tests/properties/test_property_kernels.py`` and the
  ``benchmarks/bench_repair_kernels.py`` microbenchmark drive both
  implementations over identical streams and require bit-for-bit equal
  covers, duals, and dual totals.

Why the prepass is exact, not approximate: the repair loop skips an edge
iff it is absent or an endpoint is covered *when reached*; an edge absent
or covered before the pass starts is skipped with no side effects, so
filtering those up front removes only no-op iterations.  The prune loop
re-reads ``cover`` per candidate, but cover bits only change at *dropped*
vertices, and dropping ``v`` locks every neighbor of ``v`` — so any
candidate whose droppability inputs changed mid-pass is locked and skipped
anyway, making the pass-start droppability mask decision-equivalent.

:class:`DisjointSets` is the union-find used to split repair/prune work
into independent conflict components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.certificates import CoverCertificate
from repro.dynamic.duals import DualStore

__all__ = [
    "AdoptedState",
    "DisjointSets",
    "PruneView",
    "RepairOutcome",
    "adopt_solution",
    "certificate_from_state",
    "greedy_prune_pass",
    "pricing_repair_pass",
    "_reference_greedy_prune_pass",
    "_reference_pricing_repair_pass",
]

#: Relative tolerance for "residual weight is exhausted" decisions.
#: (Moved here from :mod:`repro.dynamic.maintainer`, which re-exports it.)
RESIDUAL_RTOL = 1e-9

EdgeKey = Tuple[int, int]


@dataclass(frozen=True)
class RepairOutcome:
    """Result of one :func:`pricing_repair_pass`.

    Attributes
    ----------
    repaired:
        Number of edges processed (present and uncovered when reached).
    entered:
        Vertices that entered the cover during the pass.
    events:
        ``(key, pay)`` per processed edge, in processing order — the
        replication log the sharded coordinator broadcasts so shard
        replicas apply the exact same dual additions.
    dual_value:
        The updated dual total (additions applied in processing order,
        so the float accumulation matches a monolithic run exactly).
    """

    repaired: int
    entered: Set[int]
    events: List[Tuple[EdgeKey, float]]
    dual_value: float


def _reference_pricing_repair_pass(
    keys: Iterable[EdgeKey],
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    duals,
    dual_value: float,
    has_edge: Optional[Callable[[int, int], bool]] = None,
) -> RepairOutcome:
    """The original object-at-a-time repair loop (executable spec).

    Semantically identical to :func:`pricing_repair_pass`; kept as the
    differential-test oracle and the reference side of
    ``benchmarks/bench_repair_kernels.py``.
    """
    repaired = 0
    entered: Set[int] = set()
    events: List[Tuple[EdgeKey, float]] = []
    for key in keys:
        u, v = key
        if has_edge is not None and not has_edge(u, v):
            continue  # inserted then deleted within the same batch
        if cover[u] or cover[v]:
            continue  # an earlier repair already covered this edge
        ru = float(weights[u] - loads[u])
        rv = float(weights[v] - loads[v])
        pay = max(0.0, min(ru, rv))
        if pay > 0.0:
            duals[key] = duals.get(key, 0.0) + pay
            loads[u] += pay
            loads[v] += pay
            dual_value += pay
        tol_u = RESIDUAL_RTOL * float(weights[u])
        tol_v = RESIDUAL_RTOL * float(weights[v])
        if ru - pay <= tol_u:
            cover[u] = True
            entered.add(u)
        if rv - pay <= tol_v:
            cover[v] = True
            entered.add(v)
        if not (cover[u] or cover[v]):  # pragma: no cover
            # min(ru, rv) - pay == 0 exactly for at least one endpoint;
            # defensive fallback for pathological float inputs.
            cheap = u if weights[u] <= weights[v] else v
            cover[cheap] = True
            entered.add(cheap)
        repaired += 1
        events.append((key, pay))
    return RepairOutcome(
        repaired=repaired, entered=entered, events=events, dual_value=dual_value
    )


def pricing_repair_pass(
    keys: Iterable[EdgeKey],
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    duals,
    dual_value: float,
    has_edge: Optional[Callable[[int, int], bool]] = None,
    has_edges: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
) -> RepairOutcome:
    """Patch uncovered edges via the local-ratio/pricing rule.

    ``keys`` must be canonical ``(u, v)`` pairs with ``u < v`` in sorted
    order.  For each edge still present and still uncovered, the dual is
    raised by the smaller endpoint residual ``w − y``; every endpoint
    whose residual is exhausted enters the cover.  An endpoint already
    fully paid (residual ≤ 0, possible after an adopted solve with load
    factor > 1 or a weight decrease) enters for free.  ``cover``,
    ``loads`` and ``duals`` are mutated in place.

    ``duals`` is a :class:`~repro.dynamic.duals.DualStore` (or any
    tuple-keyed mapping).  Presence filtering takes either the vectorized
    ``has_edges(u_arr, v_arr) -> bool array`` (preferred) or the scalar
    ``has_edge`` callable; omit both when the caller pre-filtered the
    frontier (the sharded coordinator's merged shard reports).

    The vectorized prepass removes edges that are absent or covered at
    pass start and precomputes per-edge weights/tolerances; the ordered
    dual-accumulation tail runs over the survivors only (see the module
    docstring for the exactness argument).
    """
    key_list = keys if isinstance(keys, list) else list(keys)
    if not key_list:
        return RepairOutcome(
            repaired=0, entered=set(), events=[], dual_value=dual_value
        )

    arr = np.asarray(key_list, dtype=np.int64).reshape(len(key_list), 2)
    u_arr, v_arr = arr[:, 0], arr[:, 1]
    keep = ~(cover[u_arr] | cover[v_arr])
    if has_edges is not None:
        keep &= has_edges(u_arr, v_arr)
    elif has_edge is not None and keep.any():
        idx = np.nonzero(keep)[0]
        for i, u, v in zip(
            idx.tolist(), u_arr[idx].tolist(), v_arr[idx].tolist()
        ):
            if not has_edge(u, v):
                keep[i] = False
    if not keep.any():
        return RepairOutcome(
            repaired=0, entered=set(), events=[], dual_value=dual_value
        )

    su, sv = u_arr[keep], v_arr[keep]
    w_u = weights[su]
    w_v = weights[sv]
    # IEEE-identical to the reference's per-edge scalar products.
    tols_u = (RESIDUAL_RTOL * w_u).tolist()
    tols_v = (RESIDUAL_RTOL * w_v).tolist()
    us, vs = su.tolist(), sv.tolist()
    wus, wvs = w_u.tolist(), w_v.tolist()

    repaired = 0
    entered: Set[int] = set()
    events: List[Tuple[EdgeKey, float]] = []
    add_pay = duals.add_pay if isinstance(duals, DualStore) else None
    for i in range(len(us)):
        u = us[i]
        v = vs[i]
        if cover[u] or cover[v]:
            continue  # an earlier repair already covered this edge
        wu = wus[i]
        wv = wvs[i]
        ru = wu - float(loads[u])
        rv = wv - float(loads[v])
        pay = max(0.0, min(ru, rv))
        if pay > 0.0:
            if add_pay is not None:
                add_pay(u, v, pay)
            else:
                key = (u, v)
                duals[key] = duals.get(key, 0.0) + pay
            loads[u] += pay
            loads[v] += pay
            dual_value += pay
        if ru - pay <= tols_u[i]:
            cover[u] = True
            entered.add(u)
        if rv - pay <= tols_v[i]:
            cover[v] = True
            entered.add(v)
        if not (cover[u] or cover[v]):  # pragma: no cover
            # min(ru, rv) - pay == 0 exactly for at least one endpoint;
            # defensive fallback for pathological float inputs.
            cheap = u if wu <= wv else v
            cover[cheap] = True
            entered.add(cheap)
        repaired += 1
        events.append(((u, v), pay))
    return RepairOutcome(
        repaired=repaired, entered=entered, events=events, dual_value=dual_value
    )


@dataclass(frozen=True)
class PruneView:
    """Neighbor access for :func:`greedy_prune_pass`.

    ``neighbors(v)`` must yield the *complete* current neighbor set of
    ``v`` and ``degree(v)`` its current degree — a candidate is droppable
    iff every incident edge's other endpoint is covered, so a partial
    neighborhood would silently break the cover.

    The optional array accessors unlock the fully vectorized kernel:
    ``degrees_of(ids)`` gathers degrees for a whole id array at once;
    ``neighbors_array(v)`` returns one neighborhood as a flat ``int64``
    array (a :class:`~repro.dynamic.DynamicGraph` CSR slice); ``gather``
    batches the whole candidate set into one concatenated neighbor array
    (:meth:`~repro.dynamic.DynamicGraph.prune_gather`).  Views without
    them fall back to wrapping the scalar callables.
    """

    neighbors: Callable[[int], Iterable[int]]
    degree: Callable[[int], int]
    neighbors_array: Optional[Callable[[int], np.ndarray]] = None
    degrees_of: Optional[Callable[[np.ndarray], np.ndarray]] = None
    gather: Optional[Callable[[np.ndarray], tuple]] = None


def _reference_greedy_prune_pass(
    candidates: Iterable[int],
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    view: PruneView,
) -> List[int]:
    """The original set-at-a-time prune loop (executable spec)."""
    cands = [v for v in candidates if cover[v]]
    if not cands:
        return []

    def effectiveness(v: int) -> float:
        d = view.degree(v)
        return weights[v] / d if d else float("inf")

    cands.sort(key=lambda v: (-effectiveness(v), v))
    locked: Set[int] = set()
    pruned: List[int] = []
    for v in cands:
        if not cover[v] or v in locked:
            continue
        neigh = set(view.neighbors(v))
        if all(cover[u] for u in neigh):
            cover[v] = False
            pruned.append(v)
            locked |= neigh
    return pruned


def greedy_prune_pass(
    candidates: Iterable[int],
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    view: PruneView,
) -> List[int]:
    """Greedy redundancy prune restricted to ``candidates``.

    Decreasing ``w/deg`` order (most expensive per covered edge first;
    isolated vertices lead; ties by id for determinism), droppable iff
    every current neighbor is covered, and dropping ``v`` locks its
    neighbors — each now solely covers its edge to ``v``.  ``cover`` is
    mutated in place; returns the pruned vertex ids.

    Vectorized: ordering is one ``lexsort``, droppability is one gathered
    ``cover`` reduction over the concatenated neighbor arrays, and the
    sequential tail does O(1) work per candidate.  The drop *decisions*
    equal :func:`_reference_greedy_prune_pass`'s exactly — cover bits only
    change at dropped vertices, whose neighbors are locked, so the
    pass-start droppability mask never disagrees with a live re-check for
    an unlocked candidate.
    """
    cand = np.fromiter(
        (v for v in candidates if cover[v]), dtype=np.int64
    )
    if cand.size == 0:
        return []

    if view.degrees_of is not None:
        degs = view.degrees_of(cand)
    else:
        degs = np.fromiter(
            (view.degree(int(v)) for v in cand), dtype=np.int64, count=cand.size
        )
    w = np.asarray(weights, dtype=np.float64)[cand]
    with np.errstate(divide="ignore"):
        eff = np.where(degs > 0, w / np.maximum(degs, 1), np.inf)
    ordered = cand[np.lexsort((cand, -eff))]

    locked = np.zeros(cover.shape[0], dtype=bool)
    pruned: List[int] = []
    if view.gather is not None:
        # Batched path: one index build + one fancy gather for the whole
        # candidate set (overlay-inserted neighbors ride in `extras`).
        concat, starts, ends, extras = view.gather(ordered)
        sizes = ends - starts
        droppable = np.ones(ordered.size, dtype=bool)
        nonempty = np.nonzero(sizes)[0]
        if nonempty.size:
            droppable[nonempty] = np.minimum.reduceat(
                cover[concat], starts[nonempty]
            )
        for i, arr in extras.items():
            if droppable[i] and not cover[arr].all():
                droppable[i] = False
        drop_flags = droppable.tolist()
        seg_starts = starts.tolist()
        seg_ends = ends.tolist()
        for i, v in enumerate(ordered.tolist()):
            if not drop_flags[i] or not cover[v] or locked[v]:
                continue
            cover[v] = False
            pruned.append(v)
            seg = concat[seg_starts[i] : seg_ends[i]]
            if seg.size:
                locked[seg] = True
            extra = extras.get(i)
            if extra is not None:
                locked[extra] = True
        return pruned

    neigh_fn = view.neighbors_array
    if neigh_fn is None:
        raw = view.neighbors

        def neigh_fn(v: int) -> np.ndarray:
            return np.fromiter(raw(v), dtype=np.int64)

    neighborhoods = [neigh_fn(int(v)) for v in ordered]
    sizes = np.fromiter(
        (a.size for a in neighborhoods), dtype=np.int64, count=len(neighborhoods)
    )
    droppable = np.ones(ordered.size, dtype=bool)
    nonempty = np.nonzero(sizes)[0]
    if nonempty.size:
        concat = np.concatenate([neighborhoods[i] for i in nonempty.tolist()])
        starts = np.zeros(nonempty.size, dtype=np.int64)
        np.cumsum(sizes[nonempty][:-1], out=starts[1:])
        droppable[nonempty] = np.minimum.reduceat(cover[concat], starts)

    drop_flags = droppable.tolist()
    for i, v in enumerate(ordered.tolist()):
        if not drop_flags[i] or not cover[v] or locked[v]:
            continue
        cover[v] = False
        pruned.append(v)
        neigh = neighborhoods[i]
        if neigh.size:
            locked[neigh] = True
    return pruned


def certificate_from_state(
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    dual_value: float,
) -> CoverCertificate:
    """The duality certificate of a maintained ``(cover, duals)`` state.

    The OPT lower bound is the better of the two sound repairs of a
    violated dual: global scaling ``Σx / load_factor`` and excess
    subtraction ``Σx − Σ_v (y_v − w_v)_+`` (see
    :meth:`repro.dynamic.IncrementalCoverMaintainer.certificate`).
    ``is_cover`` asserts the caller's validity invariant — it is not
    recomputed here.
    """
    cover_weight = float(weights[cover].sum())
    n = weights.shape[0]
    if n == 0:
        load_factor = 1.0
        excess = 0.0
    else:
        load_factor = max(1.0, float((loads / weights).max()))
        excess = float(np.maximum(loads - weights, 0.0).sum())
    if dual_value > 0:
        lower = max(dual_value / load_factor, dual_value - excess)
        ratio = cover_weight / lower if lower > 0 else float("inf")
    else:
        lower = 0.0
        ratio = 1.0 if cover_weight == 0.0 else float("inf")
    return CoverCertificate(
        is_cover=True,
        cover_weight=cover_weight,
        dual_value=dual_value,
        load_factor=load_factor,
        opt_lower_bound=lower,
        certified_ratio=ratio,
    )


@dataclass
class AdoptedState:
    """A freshly solved solution converted to maintained-state arrays."""

    cover: np.ndarray
    duals: DualStore
    loads: np.ndarray
    dual_value: float


def adopt_solution(graph, result, *, weights: np.ndarray, prune: bool = True) -> AdoptedState:
    """Convert a solver result into maintained state for ``graph``.

    The shared adoption path of
    :meth:`repro.dynamic.IncrementalCoverMaintainer.adopt` and the sharded
    coordinator: validates the result against the graph, optionally prunes
    the cover (:func:`repro.core.postprocess.prune_redundant_vertices` —
    never heavier, duals untouched), and maps the edge-indexed duals into
    an edge-code-keyed :class:`~repro.dynamic.duals.DualStore` with one
    vectorized encode.
    """
    from repro.core.postprocess import prune_redundant_vertices

    cover = np.asarray(result.in_cover, dtype=bool)
    if cover.shape != (graph.n,):
        raise ValueError(f"cover mask has shape {cover.shape}, expected ({graph.n},)")
    if not graph.is_vertex_cover(cover):
        raise ValueError("adopted result is not a vertex cover of the current graph")
    x = np.asarray(result.x, dtype=np.float64)
    if x.shape != (graph.m,):
        raise ValueError(f"duals have shape {x.shape}, expected ({graph.m},)")
    if prune:
        cover = prune_redundant_vertices(graph, cover, weights=weights)
    nz = np.nonzero(x)[0]
    from repro.dynamic.duals import encode_edge_codes

    duals = DualStore.from_codes(
        encode_edge_codes(graph.edges_u[nz], graph.edges_v[nz]), x[nz]
    )
    return AdoptedState(
        cover=cover.copy(),
        duals=duals,
        loads=graph.incident_sums(x),
        dual_value=float(x.sum()),
    )


class DisjointSets:
    """Union-find over arbitrary hashable items (path halving + size)."""

    def __init__(self):
        self._parent = {}
        self._size = {}

    def find(self, item):
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def groups(self):
        """Every known item grouped under its root."""
        out = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out
