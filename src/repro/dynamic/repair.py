"""Shared repair kernels: pricing repair, greedy prune, certification.

The incremental maintainer (:mod:`repro.dynamic.maintainer`) and the
sharded stream pipeline (:mod:`repro.dynamic.sharded`) must produce
*bit-identical* covers for the same update stream — the differential
equivalence contract ``tests/dynamic/test_sharded.py`` and
``tests/properties/test_property_sharding.py`` enforce.  The only robust
way to guarantee that is to run the exact same float operations in the
exact same order, so the three state transitions that involve floating
point live here as free functions over plain arrays, and both engines call
them:

* :func:`pricing_repair_pass` — the local-ratio/pricing repair of
  uncovered edges, processed in canonical sorted-key order.  Both repairs
  of one batch interact only through shared endpoints, so any
  vertex-disjoint split of the key set composes back to the global result;
  the sharded coordinator exploits this by running the single pass over
  the merged per-shard frontiers.
* :func:`greedy_prune_pass` — the sequential greedy redundancy prune over
  a candidate set, parameterized by neighbor access so it runs unchanged
  on a :class:`~repro.dynamic.DynamicGraph`, a shard's adjacency dict, or
  the coordinator's shipped neighbor lists.  Prune decisions interact only
  between *adjacent* candidates (removing ``v`` changes exactly its
  neighbors' droppability), so candidate components split across shards
  the same way repairs do.
* :func:`certificate_from_state` — the duality certificate from the raw
  ``(weights, cover, loads, dual_value)`` arrays.

:class:`DisjointSets` is the union-find used to split repair/prune work
into those independent conflict components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.core.certificates import CoverCertificate

__all__ = [
    "AdoptedState",
    "DisjointSets",
    "PruneView",
    "RepairOutcome",
    "adopt_solution",
    "certificate_from_state",
    "greedy_prune_pass",
    "pricing_repair_pass",
]

#: Relative tolerance for "residual weight is exhausted" decisions.
#: (Moved here from :mod:`repro.dynamic.maintainer`, which re-exports it.)
RESIDUAL_RTOL = 1e-9

EdgeKey = Tuple[int, int]


@dataclass(frozen=True)
class RepairOutcome:
    """Result of one :func:`pricing_repair_pass`.

    Attributes
    ----------
    repaired:
        Number of edges processed (present and uncovered when reached).
    entered:
        Vertices that entered the cover during the pass.
    events:
        ``(key, pay)`` per processed edge, in processing order — the
        replication log the sharded coordinator broadcasts so shard
        replicas apply the exact same dual additions.
    dual_value:
        The updated dual total (additions applied in processing order,
        so the float accumulation matches a monolithic run exactly).
    """

    repaired: int
    entered: Set[int]
    events: List[Tuple[EdgeKey, float]]
    dual_value: float


def pricing_repair_pass(
    keys: Iterable[EdgeKey],
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    duals: Dict[EdgeKey, float],
    dual_value: float,
    has_edge: Callable[[int, int], bool] = None,
) -> RepairOutcome:
    """Patch uncovered edges via the local-ratio/pricing rule.

    ``keys`` must be canonical ``(u, v)`` pairs with ``u < v`` in sorted
    order.  For each edge still present (when ``has_edge`` is given) and
    still uncovered, the dual is raised by the smaller endpoint residual
    ``w − y``; every endpoint whose residual is exhausted enters the
    cover.  An endpoint already fully paid (residual ≤ 0, possible after
    an adopted solve with load factor > 1 or a weight decrease) enters for
    free.  ``cover``, ``loads`` and ``duals`` are mutated in place.
    """
    repaired = 0
    entered: Set[int] = set()
    events: List[Tuple[EdgeKey, float]] = []
    for key in keys:
        u, v = key
        if has_edge is not None and not has_edge(u, v):
            continue  # inserted then deleted within the same batch
        if cover[u] or cover[v]:
            continue  # an earlier repair already covered this edge
        ru = float(weights[u] - loads[u])
        rv = float(weights[v] - loads[v])
        pay = max(0.0, min(ru, rv))
        if pay > 0.0:
            duals[key] = duals.get(key, 0.0) + pay
            loads[u] += pay
            loads[v] += pay
            dual_value += pay
        tol_u = RESIDUAL_RTOL * float(weights[u])
        tol_v = RESIDUAL_RTOL * float(weights[v])
        if ru - pay <= tol_u:
            cover[u] = True
            entered.add(u)
        if rv - pay <= tol_v:
            cover[v] = True
            entered.add(v)
        if not (cover[u] or cover[v]):  # pragma: no cover
            # min(ru, rv) - pay == 0 exactly for at least one endpoint;
            # defensive fallback for pathological float inputs.
            cheap = u if weights[u] <= weights[v] else v
            cover[cheap] = True
            entered.add(cheap)
        repaired += 1
        events.append((key, pay))
    return RepairOutcome(
        repaired=repaired, entered=entered, events=events, dual_value=dual_value
    )


@dataclass(frozen=True)
class PruneView:
    """Neighbor access for :func:`greedy_prune_pass`.

    ``neighbors(v)`` must yield the *complete* current neighbor set of
    ``v`` and ``degree(v)`` its current degree — a candidate is droppable
    iff every incident edge's other endpoint is covered, so a partial
    neighborhood would silently break the cover.
    """

    neighbors: Callable[[int], Iterable[int]]
    degree: Callable[[int], int]


def greedy_prune_pass(
    candidates: Iterable[int],
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    view: PruneView,
) -> List[int]:
    """Greedy redundancy prune restricted to ``candidates``.

    Decreasing ``w/deg`` order (most expensive per covered edge first;
    isolated vertices lead; ties by id for determinism), droppable iff
    every current neighbor is covered, and dropping ``v`` locks its
    neighbors — each now solely covers its edge to ``v``.  ``cover`` is
    mutated in place; returns the pruned vertex ids.
    """
    cands = [v for v in candidates if cover[v]]
    if not cands:
        return []

    def effectiveness(v: int) -> float:
        d = view.degree(v)
        return weights[v] / d if d else float("inf")

    cands.sort(key=lambda v: (-effectiveness(v), v))
    locked: Set[int] = set()
    pruned: List[int] = []
    for v in cands:
        if not cover[v] or v in locked:
            continue
        neigh = set(view.neighbors(v))
        if all(cover[u] for u in neigh):
            cover[v] = False
            pruned.append(v)
            locked |= neigh
    return pruned


def certificate_from_state(
    *,
    weights: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    dual_value: float,
) -> CoverCertificate:
    """The duality certificate of a maintained ``(cover, duals)`` state.

    The OPT lower bound is the better of the two sound repairs of a
    violated dual: global scaling ``Σx / load_factor`` and excess
    subtraction ``Σx − Σ_v (y_v − w_v)_+`` (see
    :meth:`repro.dynamic.IncrementalCoverMaintainer.certificate`).
    ``is_cover`` asserts the caller's validity invariant — it is not
    recomputed here.
    """
    cover_weight = float(weights[cover].sum())
    n = weights.shape[0]
    if n == 0:
        load_factor = 1.0
        excess = 0.0
    else:
        load_factor = max(1.0, float((loads / weights).max()))
        excess = float(np.maximum(loads - weights, 0.0).sum())
    if dual_value > 0:
        lower = max(dual_value / load_factor, dual_value - excess)
        ratio = cover_weight / lower if lower > 0 else float("inf")
    else:
        lower = 0.0
        ratio = 1.0 if cover_weight == 0.0 else float("inf")
    return CoverCertificate(
        is_cover=True,
        cover_weight=cover_weight,
        dual_value=dual_value,
        load_factor=load_factor,
        opt_lower_bound=lower,
        certified_ratio=ratio,
    )


@dataclass
class AdoptedState:
    """A freshly solved solution converted to maintained-state arrays."""

    cover: np.ndarray
    duals: Dict[EdgeKey, float]
    loads: np.ndarray
    dual_value: float


def adopt_solution(graph, result, *, weights: np.ndarray, prune: bool = True) -> AdoptedState:
    """Convert a solver result into maintained state for ``graph``.

    The shared adoption path of
    :meth:`repro.dynamic.IncrementalCoverMaintainer.adopt` and the sharded
    coordinator: validates the result against the graph, optionally prunes
    the cover (:func:`repro.core.postprocess.prune_redundant_vertices` —
    never heavier, duals untouched), and maps the edge-indexed duals into
    pair-keyed form.
    """
    from repro.core.postprocess import prune_redundant_vertices

    cover = np.asarray(result.in_cover, dtype=bool)
    if cover.shape != (graph.n,):
        raise ValueError(f"cover mask has shape {cover.shape}, expected ({graph.n},)")
    if not graph.is_vertex_cover(cover):
        raise ValueError("adopted result is not a vertex cover of the current graph")
    x = np.asarray(result.x, dtype=np.float64)
    if x.shape != (graph.m,):
        raise ValueError(f"duals have shape {x.shape}, expected ({graph.m},)")
    if prune:
        cover = prune_redundant_vertices(graph, cover, weights=weights)
    nz = np.nonzero(x)[0]
    duals = {
        (int(graph.edges_u[e]), int(graph.edges_v[e])): float(x[e]) for e in nz
    }
    return AdoptedState(
        cover=cover.copy(),
        duals=duals,
        loads=graph.incident_sums(x),
        dual_value=float(x.sum()),
    )


class DisjointSets:
    """Union-find over arbitrary hashable items (path halving + size)."""

    def __init__(self):
        self._parent: Dict[object, object] = {}
        self._size: Dict[object, int] = {}

    def find(self, item) -> object:
        parent = self._parent
        if item not in parent:
            parent[item] = item
            self._size[item] = 1
            return item
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a, b) -> object:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def groups(self) -> Dict[object, List[object]]:
        """Every known item grouped under its root."""
        out: Dict[object, List[object]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out
