"""When to stop repairing and re-solve: the drift-bounded policy.

Incremental repair keeps the cover *valid* forever, but its *certificate*
decays: deletions retire dual mass the cover weight was charged against,
weight drops bend the load factor, and pricing repairs are only locally
optimal.  Following the local-search playbook (cheap repair + occasional
global restart), :class:`ResolvePolicy` bounds the decay — the exposed
cover is always certified within ``base_ratio · (1 + max_drift)``, where
``base_ratio ≤ 2 + O(ε)`` is the certificate of the last full MPC solve.

The policy is a pure decision function over maintainer observables; it
performs no solving itself.  :func:`repro.dynamic.stream.run_stream`
executes triggered re-solves through the batch service (so repeated graph
states — e.g. sliding-window churn — hit the result cache instead of the
solver).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["ResolvePolicy", "ResolveDecision"]


@dataclass(frozen=True)
class ResolveDecision:
    """Outcome of one policy evaluation."""

    resolve: bool
    reason: str

    def __bool__(self) -> bool:
        return self.resolve


@dataclass(frozen=True)
class ResolvePolicy:
    """Decides after each batch whether to trigger a full re-solve.

    Attributes
    ----------
    max_drift:
        Tolerated relative certificate degradation: re-solve once
        ``certified_ratio > base_ratio · (1 + max_drift)``.
    ratio_ceiling:
        Optional absolute bound on the certified ratio, applied on top of
        the drift rule (whichever trips first).
    min_batches_between:
        Cooldown: at least this many batches between consecutive re-solves
        (the drift rule is suppressed during the cooldown; an unbounded
        certificate still fires if ``resolve_unbounded``).
    max_batches_between:
        Forced refresh: re-solve after this many batches even if the
        certificate looks healthy.  Low-dual-churn streams (e.g. a
        sliding window cycling through similar states) can degrade true
        quality faster than the certificate degrades; a periodic refresh
        bounds that gap.  ``None`` disables the rule.
    every_batch:
        Degenerate policy that re-solves after every batch — the baseline
        mode of ``benchmarks/bench_dynamic_stream.py``.
    resolve_unbounded:
        Re-solve whenever the certificate is unbounded (``ratio = inf``,
        i.e. positive cover weight with zero dual mass), regardless of
        cooldown.
    """

    max_drift: float = 0.25
    ratio_ceiling: Optional[float] = None
    min_batches_between: int = 1
    max_batches_between: Optional[int] = None
    every_batch: bool = False
    resolve_unbounded: bool = True

    def __post_init__(self):
        if self.max_drift < 0:
            raise ValueError(f"max_drift must be >= 0, got {self.max_drift}")
        if self.ratio_ceiling is not None and self.ratio_ceiling <= 1:
            raise ValueError(f"ratio_ceiling must be > 1, got {self.ratio_ceiling}")
        if self.min_batches_between < 0:
            raise ValueError(
                f"min_batches_between must be >= 0, got {self.min_batches_between}"
            )
        if self.max_batches_between is not None and (
            self.max_batches_between < 1
            or self.max_batches_between < self.min_batches_between
        ):
            raise ValueError(
                f"max_batches_between must be >= max(1, min_batches_between), "
                f"got {self.max_batches_between}"
            )

    def should_resolve(
        self,
        *,
        certified_ratio: float,
        base_ratio: Optional[float],
        batches_since_resolve: int,
    ) -> ResolveDecision:
        """Evaluate the policy against the maintainer's observables.

        Parameters
        ----------
        certified_ratio:
            The maintainer's current certified ratio (may be ``inf``).
        base_ratio:
            Certified ratio right after the last adopted solve, or ``None``
            if no solution was ever adopted (always triggers).
        batches_since_resolve:
            Batches applied since the last adopted solve.
        """
        if base_ratio is None:
            return ResolveDecision(True, "no adopted solution yet")
        if self.every_batch:
            return ResolveDecision(True, "every-batch policy")
        unbounded = math.isinf(certified_ratio)
        if unbounded and self.resolve_unbounded:
            return ResolveDecision(True, "certificate unbounded (zero dual mass)")
        if batches_since_resolve < self.min_batches_between:
            return ResolveDecision(
                False, f"cooldown ({batches_since_resolve}/{self.min_batches_between})"
            )
        if (
            self.max_batches_between is not None
            and batches_since_resolve >= self.max_batches_between
        ):
            return ResolveDecision(
                True, f"periodic refresh ({self.max_batches_between} batches)"
            )
        if self.ratio_ceiling is not None and certified_ratio > self.ratio_ceiling:
            return ResolveDecision(
                True,
                f"ratio {certified_ratio:.3f} above ceiling {self.ratio_ceiling:.3f}",
            )
        if math.isfinite(base_ratio) and base_ratio > 0:
            bound = base_ratio * (1.0 + self.max_drift)
            if certified_ratio > bound:
                return ResolveDecision(
                    True,
                    f"drift bound exceeded: ratio {certified_ratio:.3f} > "
                    f"{base_ratio:.3f}·(1+{self.max_drift}) = {bound:.3f}",
                )
        return ResolveDecision(False, "within drift budget")
