"""Shard-aware snapshots: per-shard files + a manifest commit point.

A sharded stream's durable state is split the same way its live state is:

* ``shard-0000.npz`` … — each shard's **home edges** (edges whose min
  endpoint it owns — every current edge appears in exactly one file) and
  home duals, written *by the shard's own process* in parallel;
* ``coordinator.npz`` — the authoritative O(n) arrays (cover, loads,
  weights) plus the scalar state (dual total, drift baseline, batch
  count) in its JSON header;
* ``manifest.json`` — written **last**, atomically: the commit point.  It
  records the partition parameters (so resume re-derives the exact shard
  layout), the per-file SHA-256 digests, and the stream counters.

One snapshot is one directory, ``snapshot-<batch>.shards/``, so rotation
(:class:`repro.dynamic.stream.CheckpointConfig` ``keep_snapshots``) prunes
whole generations and a crash mid-snapshot leaves at worst a manifest-less
directory that restore ignores and the next rotation sweeps away.  The
write-ahead log is untouched — the coordinator commits whole batches to
the same ``wal.jsonl`` a monolithic run uses.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.dynamic.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointVersionError,
)
from repro.graphs.io import write_bytes_atomic

__all__ = [
    "SHARDED_SNAPSHOT_VERSION",
    "RestoredShardedState",
    "list_sharded_snapshots",
    "load_sharded_snapshot",
    "prune_sharded_snapshots",
    "save_sharded_snapshot",
    "sharded_snapshot_dir",
]

PathLike = Union[str, "os.PathLike[str]"]

SHARDED_SNAPSHOT_VERSION = 1

_MAGIC = "repro-sharded-snapshot"
_MANIFEST_FILE = "manifest.json"
_COORDINATOR_FILE = "coordinator.npz"
_DIR_PATTERN = re.compile(r"^snapshot-(\d{8,})\.shards$")


def sharded_snapshot_dir(directory: PathLike, next_batch_index: int) -> str:
    """Path of the snapshot generation taken at ``next_batch_index``."""
    return os.path.join(
        os.fspath(directory), f"snapshot-{int(next_batch_index):08d}.shards"
    )


def list_sharded_snapshots(directory: PathLike) -> List[Tuple[int, str]]:
    """Committed snapshot generations, newest first.

    Only directories holding a ``manifest.json`` count — a manifest-less
    directory is an uncommitted (crashed) snapshot attempt.
    """
    root = os.fspath(directory)
    out: List[Tuple[int, str]] = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    for name in names:
        match = _DIR_PATTERN.match(name)
        if not match:
            continue
        path = os.path.join(root, name)
        if os.path.exists(os.path.join(path, _MANIFEST_FILE)):
            out.append((int(match.group(1)), path))
    out.sort(reverse=True)
    return out


def prune_sharded_snapshots(directory: PathLike, keep: int) -> List[str]:
    """Remove snapshot generations beyond the newest ``keep``; also sweeps
    manifest-less (crashed) generations older than the newest kept one.
    Returns the removed paths."""
    root = os.fspath(directory)
    committed = list_sharded_snapshots(root)
    keep_paths = {path for _, path in committed[: max(1, keep)]}
    keep_floor = min(
        (idx for idx, path in committed if path in keep_paths), default=None
    )
    removed: List[str] = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return removed
    for name in names:
        match = _DIR_PATTERN.match(name)
        if not match:
            continue
        path = os.path.join(root, name)
        if path in keep_paths:
            continue
        committed_dir = os.path.exists(os.path.join(path, _MANIFEST_FILE))
        if not committed_dir and (
            keep_floor is None or int(match.group(1)) >= keep_floor
        ):
            # An uncommitted attempt newer than the retained floor may be
            # a snapshot in progress; leave it alone.
            continue
        shutil.rmtree(path, ignore_errors=True)
        removed.append(path)
    return removed


def _file_digest(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def save_sharded_snapshot(
    directory: PathLike,
    *,
    next_batch_index: int,
    pool,
    num_shards: int,
    partition: str,
    partition_seed: int,
    n: int,
    weights: np.ndarray,
    cover: np.ndarray,
    loads: np.ndarray,
    dual_value: float,
    base_ratio: Optional[float],
    batches_applied: int,
    extra: Optional[dict] = None,
    fsync: bool = True,
    compress_arrays: bool = True,
) -> str:
    """Write one snapshot generation; returns its directory path.

    Shard files are written concurrently by the shard workers themselves
    (parallel I/O); the coordinator then writes its own arrays and commits
    with the manifest.  ``compress_arrays=False`` writes store-only NPZ
    members everywhere (the ``--snapshot-compression none`` fast path);
    the choice is recorded in the manifest for observability.
    """
    snapdir = sharded_snapshot_dir(directory, next_batch_index)
    os.makedirs(snapdir, exist_ok=True)

    shard_results = pool.call_all(
        "write_snapshot_file",
        [
            {
                "path": os.path.join(snapdir, f"shard-{s:04d}.npz"),
                "fsync": fsync,
                "compress": compress_arrays,
            }
            for s in range(num_shards)
        ],
    )

    coord_meta = {
        "magic": _MAGIC,
        "format_version": SHARDED_SNAPSHOT_VERSION,
        "n": int(n),
        "dual_value": float(dual_value),
        "base_ratio": None if base_ratio is None else float(base_ratio),
        "batches_applied": int(batches_applied),
    }
    buf = io.BytesIO()
    savez = np.savez_compressed if compress_arrays else np.savez
    savez(
        buf,
        meta_json=np.frombuffer(
            json.dumps(coord_meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        cover=np.asarray(cover, dtype=bool),
        loads=np.asarray(loads, dtype=np.float64),
        weights=np.asarray(weights, dtype=np.float64),
    )
    coord_bytes = buf.getvalue()
    coord_path = os.path.join(snapdir, _COORDINATOR_FILE)
    write_bytes_atomic(coord_path, coord_bytes, fsync=fsync)

    manifest = {
        "magic": _MAGIC,
        "format_version": SHARDED_SNAPSHOT_VERSION,
        "next_batch_index": int(next_batch_index),
        "num_shards": int(num_shards),
        "partition": str(partition),
        "partition_seed": int(partition_seed),
        "n": int(n),
        "snapshot_compression": "gzip" if compress_arrays else "none",
        "extra": dict(extra or {}),
        "coordinator": {
            "file": _COORDINATOR_FILE,
            "digest": hashlib.sha256(coord_bytes).hexdigest(),
        },
        "shards": [
            {
                "file": f"shard-{s:04d}.npz",
                "digest": result["digest"],
                "m": int(result["m"]),
            }
            for s, result in enumerate(shard_results)
        ],
    }
    write_bytes_atomic(
        os.path.join(snapdir, _MANIFEST_FILE),
        (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        fsync=fsync,
    )
    return snapdir


@dataclass(frozen=True)
class RestoredShardedState:
    """Everything :func:`load_sharded_snapshot` reassembles.

    ``edges_u``/``edges_v`` are the global current edge set (union of the
    shard files' home edges); ``duals`` the global pair-keyed dual map.
    """

    manifest: dict
    weights: np.ndarray
    cover: np.ndarray
    loads: np.ndarray
    dual_value: float
    base_ratio: Optional[float]
    batches_applied: int
    edges_u: np.ndarray
    edges_v: np.ndarray
    duals: Dict[Tuple[int, int], float]


def _load_npz(path: str, expected_digest: str, *, required: Tuple[str, ...]) -> dict:
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        raise CheckpointCorruptionError(
            f"sharded snapshot member missing: {path}"
        ) from None
    except OSError as exc:
        raise CheckpointError(f"cannot read {path}: {exc}") from exc
    if hashlib.sha256(data).hexdigest() != expected_digest:
        raise CheckpointCorruptionError(
            f"{path}: digest mismatch — the snapshot member is corrupt"
        )
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            missing = [f for f in required if f not in archive]
            if missing:
                raise CheckpointCorruptionError(
                    f"{path}: missing array members {missing}"
                )
            out = {f: archive[f] for f in required}
            if "meta_json" in archive:
                out["meta"] = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointCorruptionError(f"{path}: cannot parse archive ({exc})") from exc
    return out


def load_sharded_snapshot(snapdir: PathLike) -> RestoredShardedState:
    """Load + integrity-check one snapshot generation.

    Raises
    ------
    CheckpointCorruptionError
        Digest mismatches, missing members, damaged archives.
    CheckpointVersionError
        A manifest format this build cannot read.
    """
    snapdir = os.fspath(snapdir)
    manifest_path = os.path.join(snapdir, _MANIFEST_FILE)
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"no manifest in {snapdir}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptionError(
            f"cannot read manifest {manifest_path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != _MAGIC:
        raise CheckpointCorruptionError(f"{manifest_path}: not a {_MAGIC} manifest")
    version = manifest.get("format_version")
    if version != SHARDED_SNAPSHOT_VERSION:
        raise CheckpointVersionError(
            f"{manifest_path}: format version {version!r} is not supported "
            f"(this build reads version {SHARDED_SNAPSHOT_VERSION})"
        )

    coord = _load_npz(
        os.path.join(snapdir, manifest["coordinator"]["file"]),
        manifest["coordinator"]["digest"],
        required=("cover", "loads", "weights"),
    )
    meta = coord.get("meta", {})
    n = int(manifest["n"])
    cover = np.asarray(coord["cover"], dtype=bool)
    loads = np.asarray(coord["loads"], dtype=np.float64)
    weights = np.asarray(coord["weights"], dtype=np.float64)
    for name, arr in (("cover", cover), ("loads", loads), ("weights", weights)):
        if arr.shape != (n,):
            raise CheckpointCorruptionError(
                f"{snapdir}: coordinator {name} has shape {arr.shape}, "
                f"expected ({n},)"
            )

    all_u: List[np.ndarray] = []
    all_v: List[np.ndarray] = []
    duals: Dict[Tuple[int, int], float] = {}
    for entry in manifest["shards"]:
        shard = _load_npz(
            os.path.join(snapdir, entry["file"]),
            entry["digest"],
            required=("edges_u", "edges_v", "dual_keys", "dual_values"),
        )
        u = np.asarray(shard["edges_u"], dtype=np.int64)
        v = np.asarray(shard["edges_v"], dtype=np.int64)
        if u.shape != v.shape or u.shape[0] != int(entry["m"]):
            raise CheckpointCorruptionError(
                f"{snapdir}/{entry['file']}: edge arrays disagree with manifest"
            )
        all_u.append(u)
        all_v.append(v)
        for (du, dv), val in zip(
            np.asarray(shard["dual_keys"], dtype=np.int64).reshape(-1, 2),
            np.asarray(shard["dual_values"], dtype=np.float64),
        ):
            duals[(int(du), int(dv))] = float(val)

    edges_u = np.concatenate(all_u) if all_u else np.empty(0, np.int64)
    edges_v = np.concatenate(all_v) if all_v else np.empty(0, np.int64)
    return RestoredShardedState(
        manifest=manifest,
        weights=weights,
        cover=cover,
        loads=loads,
        dual_value=float(meta.get("dual_value", 0.0)),
        base_ratio=meta.get("base_ratio"),
        batches_applied=int(meta.get("batches_applied", 0)),
        edges_u=edges_u,
        edges_v=edges_v,
        duals=duals,
    )
