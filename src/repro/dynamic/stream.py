"""End-to-end stream processing: maintainer + policy + batch service.

:func:`run_stream` is the orchestration layer behind ``repro stream``: it
chops an update stream into batches, drives
:class:`~repro.dynamic.IncrementalCoverMaintainer` over them, evaluates the
:class:`~repro.dynamic.ResolvePolicy` after each batch, and executes
triggered re-solves through a :class:`~repro.service.BatchSolver`.

Re-solves are *warm-started at the service layer*: the request is keyed by
the compacted graph's content digest, so a graph state seen before (e.g.
sliding-window churn that returns to a previous window, or replaying a
stream) is answered from the result cache without touching the solver.

Every batch yields a :class:`StreamRecord` (JSON-friendly), and the final
state is verified exactly against the materialized graph before the
summary is returned — ``run_stream`` never hands back an unverified cover.

Durability (``repro stream --checkpoint-dir`` / ``repro resume``)
-----------------------------------------------------------------
With a :class:`CheckpointConfig`, ``run_stream`` makes the whole run
crash-recoverable.  The checkpoint directory holds:

* ``config.json`` — the run parameters (batch size, solve params, policy)
  written once up front, so ``resume`` needs no flags re-specified;
* ``graph.npz`` + ``updates.jsonl`` — the initial graph and the full
  update stream (the replay sources);
* ``wal.jsonl`` — the write-ahead log: every batch is committed (fsync'd,
  checksummed) *before* it is applied (:mod:`repro.dynamic.wal`);
* ``snapshot.npz`` — the latest maintainer snapshot, rewritten atomically
  every ``snapshot_every`` batches (:mod:`repro.dynamic.checkpoint`).

:func:`resume_stream` restores ``last snapshot + WAL tail replay`` and
continues the run.  Because every component is deterministic — the
maintainer's repair pass, the policy, and the seeded solver — a resumed
run reproduces the uninterrupted run's cover mask and certificate exactly,
whatever batch boundary the process died at (the property
``tests/recovery`` enforces).
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dynamic.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    load_snapshot,
    save_snapshot,
)
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.maintainer import BatchReport, IncrementalCoverMaintainer
from repro.dynamic.policy import ResolvePolicy
from repro.dynamic.wal import WriteAheadLog, compact_wal, read_wal, repair_wal
from repro.graphs.graph import WeightedGraph
from repro.graphs.io import load_npz, save_npz, write_bytes_atomic
from repro.graphs.updates import (
    GraphUpdate,
    load_update_stream,
    save_update_stream,
)
from repro.service.batch import BatchSolver
from repro.service.schema import SolveRequest

__all__ = [
    "CONFIG_FORMAT_VERSION",
    "CheckpointConfig",
    "StreamRecord",
    "StreamSummary",
    "resume_stream",
    "run_stream",
]

PathLike = Union[str, "os.PathLike[str]"]

#: Version gate of ``config.json`` in a checkpoint directory.
CONFIG_FORMAT_VERSION = 1

_CONFIG_FILE = "config.json"
_GRAPH_FILE = "graph.npz"
_UPDATES_FILE = "updates.jsonl"
_WAL_FILE = "wal.jsonl"
_SNAPSHOT_FILE = "snapshot.npz"
_SNAPSHOT_FILE_GZ = "snapshot.npz.gz"


@dataclass(frozen=True)
class CheckpointConfig:
    """Durability policy of a checkpointed :func:`run_stream`.

    Attributes
    ----------
    directory:
        Checkpoint directory (created if needed; must not already hold a
        stream — resume one with :func:`resume_stream` instead).
    snapshot_every:
        Write a fresh snapshot every this many batches.  Smaller values
        shorten recovery replay; larger values cost less I/O.  A snapshot
        is always written right after the initial solve and at stream end.
    fsync:
        Flush WAL records and snapshots to disk at commit time.  Keep on
        for crash-consistency against power loss; turning it off still
        survives process kills (buffers are flushed per batch).
    compress:
        gzip-wrap snapshots (``snapshot.npz.gz``).
    snapshot_compression:
        Compression of the NPZ array members inside a snapshot:
        ``"gzip"`` (deflate via ``np.savez_compressed``, the default) or
        ``"none"`` (store-only ``np.savez``).  Deflate dominates snapshot
        wall clock on large graphs; ``"none"`` trades file size for write
        speed.  Recorded in ``config.json`` so a resumed run keeps the
        same policy.
    stamp_digests:
        Stamp each WAL record with the pre-apply graph content digest so
        replay verifies, record by record, that it rebuilds the exact
        state the original run saw.  Costs one O(m) hash per batch.
    keep_snapshots:
        Retain the last this-many snapshots instead of one.  With ``1``
        (the default) the single ``snapshot.npz`` is overwritten in place,
        exactly the pre-rotation behavior.  With ``k > 1`` snapshots are
        written as ``snapshot-<batch>.npz`` and older files beyond ``k``
        are pruned after each commit; :func:`resume_stream` restores the
        newest snapshot that passes integrity checks, falling back to an
        older one when the newest is corrupt.
    compact_wal:
        After each committed snapshot, drop WAL records older than the
        *oldest retained* snapshot (they can never be replayed again), so
        an unbounded stream keeps a bounded log.  ``repro wal-compact``
        performs the same truncation offline.
    """

    directory: PathLike
    snapshot_every: int = 8
    fsync: bool = True
    compress: bool = False
    stamp_digests: bool = True
    keep_snapshots: int = 1
    compact_wal: bool = False
    snapshot_compression: str = "gzip"

    def __post_init__(self):
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.keep_snapshots < 1:
            raise ValueError(
                f"keep_snapshots must be >= 1, got {self.keep_snapshots}"
            )
        if self.snapshot_compression not in ("gzip", "none"):
            raise ValueError(
                f"snapshot_compression must be 'gzip' or 'none', got "
                f"{self.snapshot_compression!r}"
            )

    @property
    def compress_arrays(self) -> bool:
        """True iff snapshot NPZ members are deflate-compressed."""
        return self.snapshot_compression != "none"

    @property
    def config_path(self) -> str:
        return os.path.join(os.fspath(self.directory), _CONFIG_FILE)

    @property
    def graph_path(self) -> str:
        return os.path.join(os.fspath(self.directory), _GRAPH_FILE)

    @property
    def updates_path(self) -> str:
        return os.path.join(os.fspath(self.directory), _UPDATES_FILE)

    @property
    def wal_path(self) -> str:
        return os.path.join(os.fspath(self.directory), _WAL_FILE)

    @property
    def snapshot_path(self) -> str:
        name = _SNAPSHOT_FILE_GZ if self.compress else _SNAPSHOT_FILE
        return os.path.join(os.fspath(self.directory), name)

    def numbered_snapshot_path(self, next_batch_index: int) -> str:
        """Rotated snapshot filename for ``keep_snapshots > 1`` runs."""
        suffix = ".npz.gz" if self.compress else ".npz"
        return os.path.join(
            os.fspath(self.directory),
            f"snapshot-{int(next_batch_index):08d}{suffix}",
        )

    def list_snapshots(self) -> List[Tuple[int, str]]:
        """Available snapshots, newest first: ``(next_batch_index, path)``.

        Numbered (rotated) snapshots sort by their batch position; the
        legacy single ``snapshot.npz`` sorts last (position ``-1``) so a
        run upgraded from ``keep_snapshots=1`` still prefers its newer
        rotated files.
        """
        directory = os.fspath(self.directory)
        out: List[Tuple[int, str]] = []
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []
        pattern = re.compile(r"^snapshot-(\d{8,})\.npz(?:\.gz)?$")
        for name in names:
            match = pattern.match(name)
            if match:
                out.append((int(match.group(1)), os.path.join(directory, name)))
        out.sort(reverse=True)
        for legacy in (_SNAPSHOT_FILE, _SNAPSHOT_FILE_GZ):
            if legacy in names:
                out.append((-1, os.path.join(directory, legacy)))
        return out


@dataclass(frozen=True)
class StreamRecord:
    """One processed batch: maintainer report + policy outcome + timing.

    ``kernel_profile`` (``--profile`` runs only) is this batch's kernel
    timing breakdown — repair / prune / adjacency / certificate seconds —
    so per-batch regressions are attributable, not just wall clock.
    """

    batch_index: int
    report: BatchReport
    resolved: bool
    resolve_reason: str
    resolve_cache_hit: bool
    certified_ratio_after: float
    elapsed_s: float
    kernel_profile: Optional[dict] = None

    def summary(self) -> dict:
        """Flat JSON-friendly row (one line of ``repro stream --out``)."""
        row = {"batch_index": self.batch_index}
        row.update(self.report.summary())
        row.update(
            {
                "resolved": self.resolved,
                "resolve_reason": self.resolve_reason,
                "resolve_cache_hit": self.resolve_cache_hit,
                "certified_ratio_after": self.certified_ratio_after,
                "elapsed_s": round(self.elapsed_s, 6),
            }
        )
        if self.kernel_profile is not None:
            row["kernel_profile"] = {
                k: round(v, 6) for k, v in self.kernel_profile.items()
            }
        return row


@dataclass
class StreamSummary:
    """Aggregate outcome of :func:`run_stream` / :func:`resume_stream`.

    ``num_updates``/``num_batches`` count the work performed by *this*
    invocation — for a resumed run that is the WAL tail replay plus the
    continuation, not the batches already folded into the restored
    snapshot.  ``final_cover`` is the maintained cover mask itself
    (excluded from ``summary()``; written by ``--cover-out``).

    ``ingest_s``/``repair_s``/``resolve_s`` split the wall clock so shard
    speedups are attributable: time spent getting updates into the engine
    (routing, WAL commits, scatter), time spent applying/repairing/pruning
    (the incremental path), and time spent in triggered full re-solves.
    The three do not sum to ``elapsed_s`` — verification, snapshots and
    bookkeeping are outside all three buckets.

    ``kernel_profile`` (``profile=True`` runs only) splits ``repair_s``
    further by kernel: adjacency maintenance, pricing repair, greedy
    prune, and certificate computation, summed over every batch.  In
    *sharded* runs the buckets follow the two-round protocol: the whole
    shard apply round (local adjacency updates + uncovered detection)
    plus the coordinator's effects replay land in ``adjacency_s``,
    ``repair_s`` is the coordinator's merged pricing pass only, and
    ``prune_s`` covers round 2 (shard-local interior prunes + the
    boundary prune) — compare profiles across shard counts with that in
    mind.
    """

    num_updates: int
    num_batches: int
    num_resolves: int
    num_resolve_cache_hits: int
    final_cover_weight: float
    final_dual_value: float
    final_certified_ratio: float
    final_is_cover: bool
    elapsed_s: float
    records: List[StreamRecord] = field(repr=False, default_factory=list)
    final_cover: Optional[np.ndarray] = field(repr=False, default=None)
    resumed_from_batch: Optional[int] = None
    ingest_s: float = 0.0
    repair_s: float = 0.0
    resolve_s: float = 0.0
    kernel_profile: Optional[dict] = None

    def summary(self) -> dict:
        """Scalar JSON-friendly summary (the ``repro stream`` footer)."""
        row = {
            "num_updates": self.num_updates,
            "num_batches": self.num_batches,
            "num_resolves": self.num_resolves,
            "num_resolve_cache_hits": self.num_resolve_cache_hits,
            "final_cover_weight": self.final_cover_weight,
            "final_dual_value": self.final_dual_value,
            "final_certified_ratio": self.final_certified_ratio,
            "final_is_cover": self.final_is_cover,
            "elapsed_s": round(self.elapsed_s, 6),
            "ingest_s": round(self.ingest_s, 6),
            "repair_s": round(self.repair_s, 6),
            "resolve_s": round(self.resolve_s, 6),
        }
        if self.kernel_profile is not None:
            row["kernel_profile"] = {
                k: round(v, 6) for k, v in self.kernel_profile.items()
            }
        if self.resumed_from_batch is not None:
            row["resumed_from_batch"] = self.resumed_from_batch
        return row


def _compact_wal_in_place(
    checkpoint: CheckpointConfig, wal: WriteAheadLog, retained_floor: int
) -> WriteAheadLog:
    """Compact the live WAL below ``retained_floor``; returns the new handle.

    The engine's append handle points at the pre-rewrite inode, so it is
    closed around the atomic rewrite and a fresh one opened on the new
    file.  Shared by the monolithic and sharded engines.
    """
    wal.close()
    compact_wal(checkpoint.wal_path, retained_floor, fsync=checkpoint.fsync)
    return WriteAheadLog(checkpoint.wal_path, fsync=checkpoint.fsync)


def _batches(updates: Sequence[GraphUpdate], size: int) -> Iterable[List[GraphUpdate]]:
    from repro.dynamic.ingest import iter_update_batches

    return iter_update_batches(updates, size)


class _StreamEngine:
    """Shared per-batch machinery of ``run_stream`` and ``resume_stream``.

    Owns the mutable counters (stream position, cooldown, re-solve tally)
    and performs one batch end-to-end: optional WAL commit *before* the
    state mutation, repair, policy evaluation, triggered re-solve,
    periodic verification, record keeping, and periodic snapshots.
    """

    def __init__(
        self,
        maintainer: IncrementalCoverMaintainer,
        policy: ResolvePolicy,
        solver: BatchSolver,
        *,
        eps: float,
        seed: int,
        engine: str,
        verify_every: int,
        checkpoint: Optional[CheckpointConfig] = None,
        wal: Optional[WriteAheadLog] = None,
    ):
        self.maintainer = maintainer
        self.policy = policy
        self.solver = solver
        self.eps = eps
        self.seed = seed
        self.engine = engine
        self.verify_every = verify_every
        self.checkpoint = checkpoint
        self.wal = wal
        self.records: List[StreamRecord] = []
        self.num_resolves = 0
        self.cache_hits = 0
        self.batches_since = 0
        self.updates_applied = 0
        self.ingest_s = 0.0
        self.repair_s = 0.0
        self.resolve_s = 0.0

    # -- state restored from a snapshot's extra counters ---------------- #
    def restore_counters(self, extra: dict) -> None:
        self.batches_since = int(extra.get("batches_since_resolve", 0))
        self.updates_applied = int(extra.get("updates_applied", 0))

    def counters(self, next_batch_index: int) -> dict:
        return {
            "next_batch_index": int(next_batch_index),
            "updates_applied": int(self.updates_applied),
            "batches_since_resolve": int(self.batches_since),
            "num_resolves": int(self.num_resolves),
            "num_resolve_cache_hits": int(self.cache_hits),
        }

    # -- the solve path -------------------------------------------------- #
    def resolve(self) -> bool:
        """Full re-solve through the service; returns cache-hit flag."""
        t0 = time.perf_counter()
        graph = self.maintainer.dyn.compact()
        request = SolveRequest(
            graph=graph, eps=self.eps, seed=self.seed, engine=self.engine
        )
        result = self.solver.solve(request)
        if not result.ok or result.result is None:
            raise RuntimeError(f"re-solve failed: {result.error}")
        self.maintainer.adopt(result.result, graph=graph)
        self.num_resolves += 1
        self.cache_hits += int(result.cache_hit)
        self.resolve_s += time.perf_counter() - t0
        return result.cache_hit

    # -- durability ------------------------------------------------------ #
    def write_snapshot(self, next_batch_index: int) -> None:
        if self.checkpoint is None:
            return
        checkpoint = self.checkpoint
        if checkpoint.keep_snapshots == 1:
            path = checkpoint.snapshot_path
        else:
            path = checkpoint.numbered_snapshot_path(next_batch_index)
        save_snapshot(
            path,
            self.maintainer,
            extra=self.counters(next_batch_index),
            fsync=checkpoint.fsync,
            compress_arrays=checkpoint.compress_arrays,
        )
        retained_floor = next_batch_index
        if checkpoint.keep_snapshots > 1:
            snapshots = checkpoint.list_snapshots()
            numbered = [(i, p) for i, p in snapshots if i >= 0]
            for _, stale in numbered[checkpoint.keep_snapshots :]:
                os.remove(stale)
            retained = numbered[: checkpoint.keep_snapshots]
            if retained:
                retained_floor = min(i for i, _ in retained)
        if checkpoint.compact_wal and self.wal is not None:
            self.wal = _compact_wal_in_place(checkpoint, self.wal, retained_floor)

    # -- one batch ------------------------------------------------------- #
    def process_batch(
        self, index: int, batch: List[GraphUpdate], *, log_to_wal: bool
    ) -> StreamRecord:
        if log_to_wal and self.wal is not None:
            t_wal = time.perf_counter()
            digest = ""
            if self.checkpoint is not None and self.checkpoint.stamp_digests:
                digest = self.maintainer.dyn.content_digest()
            self.wal.append(index, batch, state_digest=digest)
            self.ingest_s += time.perf_counter() - t_wal
        t0 = time.perf_counter()
        report = self.maintainer.apply_batch(batch)
        self.repair_s += time.perf_counter() - t0
        self.updates_applied += len(batch)
        self.batches_since += 1
        decision = self.policy.should_resolve(
            certified_ratio=report.certificate.certified_ratio,
            base_ratio=self.maintainer.base_ratio,
            batches_since_resolve=self.batches_since,
        )
        hit = False
        if decision:
            hit = self.resolve()
            self.batches_since = 0
        if self.verify_every and (index + 1) % self.verify_every == 0:
            if not self.maintainer.verify():  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"invalid cover after batch {index} — maintainer bug"
                )
        record = StreamRecord(
            batch_index=index,
            report=report,
            resolved=bool(decision),
            resolve_reason=decision.reason,
            resolve_cache_hit=hit,
            certified_ratio_after=self.maintainer.certified_ratio(),
            elapsed_s=time.perf_counter() - t0,
            kernel_profile=self.maintainer.last_batch_profile,
        )
        self.records.append(record)
        if (
            self.checkpoint is not None
            and (index + 1) % self.checkpoint.snapshot_every == 0
        ):
            self.write_snapshot(index + 1)
        return record

    # -- the summary ----------------------------------------------------- #
    def summarize(
        self,
        *,
        num_updates: int,
        elapsed_s: float,
        resumed_from_batch: Optional[int] = None,
    ) -> StreamSummary:
        cert = self.maintainer.certificate()
        return StreamSummary(
            num_updates=num_updates,
            num_batches=len(self.records),
            num_resolves=self.num_resolves,
            num_resolve_cache_hits=self.cache_hits,
            final_cover_weight=cert.cover_weight,
            final_dual_value=cert.dual_value,
            final_certified_ratio=cert.certified_ratio,
            final_is_cover=self.maintainer.verify(),
            elapsed_s=elapsed_s,
            records=self.records,
            final_cover=self.maintainer.cover,
            resumed_from_batch=resumed_from_batch,
            ingest_s=self.ingest_s,
            repair_s=self.repair_s,
            resolve_s=self.resolve_s,
            kernel_profile=self.maintainer.kernel_profile,
        )


def _write_config(
    checkpoint: CheckpointConfig,
    graph: WeightedGraph,
    updates: Sequence[GraphUpdate],
    *,
    batch_size: int,
    policy: ResolvePolicy,
    eps: float,
    seed: int,
    engine: str,
    verify_every: int,
    compact_fraction: float,
    extra_config: Optional[dict] = None,
) -> None:
    config = {
        "format_version": CONFIG_FORMAT_VERSION,
        "batch_size": int(batch_size),
        "eps": float(eps),
        "seed": int(seed),
        "engine": str(engine),
        "verify_every": int(verify_every),
        "compact_fraction": float(compact_fraction),
        "policy": asdict(policy),
        "snapshot_every": int(checkpoint.snapshot_every),
        "fsync": bool(checkpoint.fsync),
        "stamp_digests": bool(checkpoint.stamp_digests),
        "compress": bool(checkpoint.compress),
        "keep_snapshots": int(checkpoint.keep_snapshots),
        "compact_wal": bool(checkpoint.compact_wal),
        "snapshot_compression": str(checkpoint.snapshot_compression),
        "num_updates": len(updates),
        "graph_digest": graph.content_digest(),
        "snapshot_file": os.path.basename(checkpoint.snapshot_path),
    }
    config.update(extra_config or {})
    write_bytes_atomic(
        checkpoint.config_path,
        (json.dumps(config, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        fsync=checkpoint.fsync,
    )


def _prepare_checkpoint_dir(
    checkpoint: CheckpointConfig,
    graph: WeightedGraph,
    updates: Sequence[GraphUpdate],
    **config_params,
) -> None:
    directory = os.fspath(checkpoint.directory)
    os.makedirs(directory, exist_ok=True)
    if os.path.exists(checkpoint.config_path):
        raise CheckpointError(
            f"checkpoint directory {directory} already holds a stream "
            f"(found {_CONFIG_FILE}); resume it with `repro resume` or "
            f"point --checkpoint-dir at a fresh directory"
        )
    save_npz(graph, checkpoint.graph_path)
    save_update_stream(updates, checkpoint.updates_path)
    _write_config(checkpoint, graph, updates, **config_params)


def run_stream(
    graph: WeightedGraph,
    updates: Sequence[GraphUpdate],
    *,
    batch_size: int = 64,
    policy: Optional[ResolvePolicy] = None,
    solver: Optional[BatchSolver] = None,
    eps: float = 0.1,
    seed: int = 0,
    engine: str = "vectorized",
    verify_every: int = 0,
    compact_fraction: float = 0.25,
    checkpoint: Optional[CheckpointConfig] = None,
    profile: bool = False,
) -> StreamSummary:
    """Maintain a certified cover over ``graph`` while replaying ``updates``.

    Parameters
    ----------
    graph:
        Initial graph; solved once up front to seed the maintainer.
    updates:
        The update stream (see :mod:`repro.dynamic.updates`).
    batch_size:
        Updates per repair batch (the granularity of policy evaluation).
    policy:
        Re-solve trigger; defaults to ``ResolvePolicy()`` (25% drift).
    solver:
        Batch service used for the initial solve and all re-solves; a
        private in-process solver is created (and closed) when omitted.
    eps, seed, engine:
        Solve parameters forwarded to every :class:`SolveRequest` — they
        are part of the cache key, so a replay with equal parameters is
        answered from cache.
    verify_every:
        When > 0, exactly re-verify the cover against the materialized
        graph every k batches (defense in depth; the final state is always
        verified).
    compact_fraction:
        Delta-log compaction threshold of the underlying
        :class:`DynamicGraph`.
    checkpoint:
        When given, make the run durable: write-ahead-log every batch and
        snapshot periodically into ``checkpoint.directory`` so a killed
        process can be picked up by :func:`resume_stream` at the exact
        state it died in.
    profile:
        Collect the per-batch kernel timing breakdown (repair / prune /
        adjacency / certificate) into every record and the summary's
        ``kernel_profile`` (``repro stream --profile``).

    Raises
    ------
    RuntimeError
        If a re-solve fails, or a verification pass catches an invalid
        cover (which would be a maintainer bug, not a data error).
    CheckpointError
        If the checkpoint directory already holds a stream.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    policy = policy or ResolvePolicy()
    if checkpoint is not None:
        _prepare_checkpoint_dir(
            checkpoint,
            graph,
            updates,
            batch_size=batch_size,
            policy=policy,
            eps=eps,
            seed=seed,
            engine=engine,
            verify_every=verify_every,
            compact_fraction=compact_fraction,
        )
    own_solver = solver is None
    if own_solver:
        solver = BatchSolver(use_processes=False)

    start = time.perf_counter()
    dyn = DynamicGraph(graph, compact_fraction=compact_fraction)
    maintainer = IncrementalCoverMaintainer(dyn, profile=profile)
    wal = (
        WriteAheadLog(checkpoint.wal_path, fsync=checkpoint.fsync)
        if checkpoint is not None
        else None
    )
    engine_ = _StreamEngine(
        maintainer,
        policy,
        solver,
        eps=eps,
        seed=seed,
        engine=engine,
        verify_every=verify_every,
        checkpoint=checkpoint,
        wal=wal,
    )
    try:
        if graph.m:
            engine_.resolve()
        engine_.write_snapshot(0)
        for index, batch in enumerate(_batches(updates, batch_size)):
            engine_.process_batch(index, batch, log_to_wal=True)
        engine_.write_snapshot(len(engine_.records))
    finally:
        if wal is not None:
            wal.close()
        if own_solver:
            solver.close()

    return engine_.summarize(
        num_updates=len(updates), elapsed_s=time.perf_counter() - start
    )


def _resume_setup(
    directory: PathLike,
    config: dict,
    updates: Optional[Sequence[GraphUpdate]],
):
    """Rebuild the run context every resume path needs from ``config``.

    Shared by :func:`resume_stream` and
    :func:`repro.dynamic.sharded.resume_sharded_stream` so a new
    :class:`CheckpointConfig` knob is threaded through exactly once.
    Returns ``(checkpoint, policy, batch_size, updates, wal_records)``
    with the WAL's torn tail already repaired.
    """
    checkpoint = CheckpointConfig(
        directory=directory,
        snapshot_every=int(config["snapshot_every"]),
        fsync=bool(config.get("fsync", True)),
        compress=bool(config.get("compress", False)),
        stamp_digests=bool(config.get("stamp_digests", True)),
        keep_snapshots=int(config.get("keep_snapshots", 1)),
        compact_wal=bool(config.get("compact_wal", False)),
        snapshot_compression=str(config.get("snapshot_compression", "gzip")),
    )
    policy = ResolvePolicy(**config["policy"])
    batch_size = int(config["batch_size"])

    if updates is None:
        try:
            updates = load_update_stream(checkpoint.updates_path)
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint {os.fspath(directory)} has no stored update "
                f"stream ({_UPDATES_FILE}); pass the stream explicitly"
            ) from None
    if len(updates) != int(config["num_updates"]):
        raise CheckpointError(
            f"update stream length {len(updates)} does not match the "
            f"checkpointed run's {config['num_updates']}"
        )

    repair_wal(checkpoint.wal_path)
    wal_records, _ = read_wal(checkpoint.wal_path)
    return checkpoint, policy, batch_size, updates, wal_records


def _newest_intact(snapshots, load_fn, directory: PathLike):
    """Load the newest snapshot that passes integrity checks.

    The shared fallback policy of both snapshot flavors: with
    ``keep_snapshots > 1`` a corrupt newest snapshot falls back to the
    next older one — that is what retaining history is *for*.  When every
    present snapshot is corrupt the aggregate corruption error is raised
    (a damaged checkpoint must fail loudly, never silently cold-start
    past it); version errors always raise immediately.  ``None`` when no
    snapshots exist.
    """
    if not snapshots:
        return None
    last_error: Optional[CheckpointCorruptionError] = None
    for _, path in snapshots:
        try:
            return load_fn(path)
        except CheckpointCorruptionError as exc:
            last_error = exc
    raise CheckpointCorruptionError(
        f"all {len(snapshots)} snapshot(s) in {os.fspath(directory)} "
        f"failed integrity checks; newest error: {last_error}"
    )


def _restore_latest_snapshot(checkpoint: CheckpointConfig):
    """Newest intact monolithic snapshot, or ``None`` when none exist."""
    return _newest_intact(
        checkpoint.list_snapshots(), load_snapshot, checkpoint.directory
    )


def _load_config(checkpoint: CheckpointConfig) -> dict:
    try:
        with open(checkpoint.config_path, "r", encoding="utf-8") as fh:
            config = json.load(fh)
    except FileNotFoundError:
        raise CheckpointError(
            f"no stream checkpoint in {os.fspath(checkpoint.directory)} "
            f"(missing {_CONFIG_FILE})"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read {checkpoint.config_path}: {exc}") from exc
    version = config.get("format_version")
    if version != CONFIG_FORMAT_VERSION:
        raise CheckpointError(
            f"{checkpoint.config_path}: config format version {version!r} is "
            f"not supported (this build reads version {CONFIG_FORMAT_VERSION})"
        )
    return config


def resume_stream(
    directory: PathLike,
    *,
    updates: Optional[Sequence[GraphUpdate]] = None,
    solver: Optional[BatchSolver] = None,
    profile: bool = False,
) -> StreamSummary:
    """Resume a checkpointed stream after a crash (or completion).

    Recovery procedure:

    1. read ``config.json`` (run parameters travel with the checkpoint —
       no flags to re-specify);
    2. repair a torn WAL tail (a record cut mid-write was never
       committed), then read the committed records;
    3. restore the latest snapshot — or, when the snapshot file is
       *missing*, cold-start from ``graph.npz`` and replay the WAL from
       batch 0 (a corrupt snapshot raises instead: a damaged checkpoint
       must never silently restore);
    4. replay the WAL records past the snapshot through the exact
       per-batch machinery of :func:`run_stream` (each record's pre-apply
       digest is verified when stamped);
    5. continue with the remaining updates from the stored stream,
       write-ahead-logging and snapshotting as usual.

    Determinism makes the result *exact*: the resumed run's final cover
    mask and certificate equal the uninterrupted run's.

    Parameters
    ----------
    directory:
        The checkpoint directory of the interrupted run.
    updates:
        Override the stored update stream (defaults to the directory's
        ``updates.jsonl``).
    solver:
        Batch service for re-solves; a private in-process solver is
        created (and closed) when omitted.

    Raises
    ------
    CheckpointError
        Missing/invalid checkpoint pieces (no config, corrupt snapshot or
        WAL, a WAL gap the snapshot cannot bridge, or a stream/WAL state
        mismatch).
    """
    config = _load_config(CheckpointConfig(directory=directory))
    if "shards" in config:
        raise CheckpointError(
            f"checkpoint {os.fspath(directory)} holds a sharded stream "
            f"({config['shards']} shard(s)); resume it with "
            f"repro.dynamic.sharded.resume_sharded_stream (the `repro "
            f"resume` CLI dispatches automatically)"
        )
    checkpoint, policy, batch_size, updates, wal_records = _resume_setup(
        directory, config, updates
    )

    own_solver = solver is None
    if own_solver:
        solver = BatchSolver(use_processes=False)
    start = time.perf_counter()
    wal = None
    try:
        restored = _restore_latest_snapshot(checkpoint)
        if restored is not None:
            maintainer = restored.maintainer
            maintainer.set_profiling(profile)
            restored.dyn.compact_fraction = float(config["compact_fraction"])
            extra = restored.meta.get("extra", {})
            next_index = int(extra.get("next_batch_index", 0))
            cold_start = False
        else:
            # No snapshot survived — rebuild from the initial graph and
            # replay the WAL from the beginning.
            try:
                graph = load_npz(checkpoint.graph_path)
            except FileNotFoundError:
                raise CheckpointError(
                    f"checkpoint {os.fspath(directory)} has neither a "
                    f"snapshot nor the initial graph ({_GRAPH_FILE}); "
                    f"nothing to restore"
                ) from None
            except Exception as exc:  # a damaged npz surfaces many shapes
                raise CheckpointError(
                    f"{checkpoint.graph_path} is unreadable ({exc}); the "
                    f"checkpoint cannot cold-start without it"
                ) from exc
            if graph.content_digest() != config.get("graph_digest"):
                raise CheckpointError(
                    f"{checkpoint.graph_path} does not match the "
                    f"checkpointed run's graph digest"
                )
            dyn = DynamicGraph(
                graph, compact_fraction=float(config["compact_fraction"])
            )
            maintainer = IncrementalCoverMaintainer(dyn, profile=profile)
            extra = {}
            next_index = 0
            cold_start = True

        engine_ = _StreamEngine(
            maintainer,
            policy,
            solver,
            eps=float(config["eps"]),
            seed=int(config["seed"]),
            engine=str(config["engine"]),
            verify_every=int(config["verify_every"]),
            checkpoint=checkpoint,
            wal=None,  # replay first; the WAL reopens for the continuation
        )
        engine_.restore_counters(extra)
        resumed_from = next_index
        updates_at_restore = engine_.updates_applied
        if cold_start and maintainer.dyn.m:
            engine_.resolve()

        # ---- replay the committed WAL tail ---------------------------- #
        tail = [r for r in wal_records if r.batch_index >= next_index]
        expected = next_index
        for record in tail:
            if record.batch_index != expected:
                raise CheckpointError(
                    f"WAL gap: expected batch {expected}, found "
                    f"{record.batch_index} — the snapshot cannot bridge it"
                )
            if record.state_digest:
                current = maintainer.dyn.content_digest()
                if current != record.state_digest:
                    raise CheckpointError(
                        f"WAL batch {record.batch_index} was logged against "
                        f"graph state {record.state_digest[:12]}… but replay "
                        f"reached {current[:12]}… — snapshot/WAL/stream "
                        f"mismatch"
                    )
            engine_.process_batch(expected, list(record.updates), log_to_wal=False)
            expected += 1
        if engine_.updates_applied > len(updates):
            raise CheckpointError(
                f"WAL replay consumed {engine_.updates_applied} updates but "
                f"the stream holds only {len(updates)}"
            )

        # ---- continue with the uncommitted remainder ------------------ #
        wal = WriteAheadLog(checkpoint.wal_path, fsync=checkpoint.fsync)
        engine_.wal = wal
        remainder = updates[engine_.updates_applied :]
        next_index = expected
        for offset, batch in enumerate(_batches(remainder, batch_size)):
            engine_.process_batch(expected + offset, batch, log_to_wal=True)
            next_index = expected + offset + 1
        engine_.write_snapshot(next_index)
    finally:
        if wal is not None:
            wal.close()
        if own_solver:
            solver.close()

    return engine_.summarize(
        num_updates=engine_.updates_applied - updates_at_restore,
        elapsed_s=time.perf_counter() - start,
        resumed_from_batch=resumed_from,
    )
