"""End-to-end stream processing: maintainer + policy + batch service.

:func:`run_stream` is the orchestration layer behind ``repro stream``: it
chops an update stream into batches, drives
:class:`~repro.dynamic.IncrementalCoverMaintainer` over them, evaluates the
:class:`~repro.dynamic.ResolvePolicy` after each batch, and executes
triggered re-solves through a :class:`~repro.service.BatchSolver`.

Re-solves are *warm-started at the service layer*: the request is keyed by
the compacted graph's content digest, so a graph state seen before (e.g.
sliding-window churn that returns to a previous window, or replaying a
stream) is answered from the result cache without touching the solver.

Every batch yields a :class:`StreamRecord` (JSON-friendly), and the final
state is verified exactly against the materialized graph before the
summary is returned — ``run_stream`` never hands back an unverified cover.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.maintainer import BatchReport, IncrementalCoverMaintainer
from repro.dynamic.policy import ResolvePolicy
from repro.graphs.graph import WeightedGraph
from repro.graphs.updates import GraphUpdate
from repro.service.batch import BatchSolver
from repro.service.schema import SolveRequest

__all__ = ["StreamRecord", "StreamSummary", "run_stream"]


@dataclass(frozen=True)
class StreamRecord:
    """One processed batch: maintainer report + policy outcome + timing."""

    batch_index: int
    report: BatchReport
    resolved: bool
    resolve_reason: str
    resolve_cache_hit: bool
    certified_ratio_after: float
    elapsed_s: float

    def summary(self) -> dict:
        """Flat JSON-friendly row (one line of ``repro stream --out``)."""
        row = {"batch_index": self.batch_index}
        row.update(self.report.summary())
        row.update(
            {
                "resolved": self.resolved,
                "resolve_reason": self.resolve_reason,
                "resolve_cache_hit": self.resolve_cache_hit,
                "certified_ratio_after": self.certified_ratio_after,
                "elapsed_s": round(self.elapsed_s, 6),
            }
        )
        return row


@dataclass
class StreamSummary:
    """Aggregate outcome of :func:`run_stream`."""

    num_updates: int
    num_batches: int
    num_resolves: int
    num_resolve_cache_hits: int
    final_cover_weight: float
    final_dual_value: float
    final_certified_ratio: float
    final_is_cover: bool
    elapsed_s: float
    records: List[StreamRecord] = field(repr=False, default_factory=list)

    def summary(self) -> dict:
        """Scalar JSON-friendly summary (the ``repro stream`` footer)."""
        return {
            "num_updates": self.num_updates,
            "num_batches": self.num_batches,
            "num_resolves": self.num_resolves,
            "num_resolve_cache_hits": self.num_resolve_cache_hits,
            "final_cover_weight": self.final_cover_weight,
            "final_dual_value": self.final_dual_value,
            "final_certified_ratio": self.final_certified_ratio,
            "final_is_cover": self.final_is_cover,
            "elapsed_s": round(self.elapsed_s, 6),
        }


def _batches(updates: Sequence[GraphUpdate], size: int) -> Iterable[List[GraphUpdate]]:
    for i in range(0, len(updates), size):
        yield list(updates[i : i + size])


def _resolve(
    maintainer: IncrementalCoverMaintainer,
    solver: BatchSolver,
    *,
    eps: float,
    seed: int,
    engine: str,
) -> bool:
    """Full re-solve of the current graph through the service; returns
    whether the answer came from the result cache."""
    graph = maintainer.dyn.compact()
    request = SolveRequest(graph=graph, eps=eps, seed=seed, engine=engine)
    result = solver.solve(request)
    if not result.ok or result.result is None:
        raise RuntimeError(f"re-solve failed: {result.error}")
    maintainer.adopt(result.result, graph=graph)
    return result.cache_hit


def run_stream(
    graph: WeightedGraph,
    updates: Sequence[GraphUpdate],
    *,
    batch_size: int = 64,
    policy: Optional[ResolvePolicy] = None,
    solver: Optional[BatchSolver] = None,
    eps: float = 0.1,
    seed: int = 0,
    engine: str = "vectorized",
    verify_every: int = 0,
    compact_fraction: float = 0.25,
) -> StreamSummary:
    """Maintain a certified cover over ``graph`` while replaying ``updates``.

    Parameters
    ----------
    graph:
        Initial graph; solved once up front to seed the maintainer.
    updates:
        The update stream (see :mod:`repro.dynamic.updates`).
    batch_size:
        Updates per repair batch (the granularity of policy evaluation).
    policy:
        Re-solve trigger; defaults to ``ResolvePolicy()`` (25% drift).
    solver:
        Batch service used for the initial solve and all re-solves; a
        private in-process solver is created (and closed) when omitted.
    eps, seed, engine:
        Solve parameters forwarded to every :class:`SolveRequest` — they
        are part of the cache key, so a replay with equal parameters is
        answered from cache.
    verify_every:
        When > 0, exactly re-verify the cover against the materialized
        graph every k batches (defense in depth; the final state is always
        verified).
    compact_fraction:
        Delta-log compaction threshold of the underlying
        :class:`DynamicGraph`.

    Raises
    ------
    RuntimeError
        If a re-solve fails, or a verification pass catches an invalid
        cover (which would be a maintainer bug, not a data error).
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    policy = policy or ResolvePolicy()
    own_solver = solver is None
    if own_solver:
        solver = BatchSolver(use_processes=False)

    start = time.perf_counter()
    dyn = DynamicGraph(graph, compact_fraction=compact_fraction)
    maintainer = IncrementalCoverMaintainer(dyn)
    records: List[StreamRecord] = []
    num_resolves = 0
    cache_hits = 0
    batches_since = 0
    try:
        if graph.m:
            hit = _resolve(maintainer, solver, eps=eps, seed=seed, engine=engine)
            num_resolves += 1
            cache_hits += int(hit)
        for index, batch in enumerate(_batches(updates, batch_size)):
            t0 = time.perf_counter()
            report = maintainer.apply_batch(batch)
            batches_since += 1
            decision = policy.should_resolve(
                certified_ratio=report.certificate.certified_ratio,
                base_ratio=maintainer.base_ratio,
                batches_since_resolve=batches_since,
            )
            hit = False
            if decision:
                hit = _resolve(maintainer, solver, eps=eps, seed=seed, engine=engine)
                num_resolves += 1
                cache_hits += int(hit)
                batches_since = 0
            if verify_every and (index + 1) % verify_every == 0:
                if not maintainer.verify():  # pragma: no cover - invariant guard
                    raise RuntimeError(
                        f"invalid cover after batch {index} — maintainer bug"
                    )
            records.append(
                StreamRecord(
                    batch_index=index,
                    report=report,
                    resolved=bool(decision),
                    resolve_reason=decision.reason,
                    resolve_cache_hit=hit,
                    certified_ratio_after=maintainer.certified_ratio(),
                    elapsed_s=time.perf_counter() - t0,
                )
            )
    finally:
        if own_solver:
            solver.close()

    cert = maintainer.certificate()
    return StreamSummary(
        num_updates=len(updates),
        num_batches=len(records),
        num_resolves=num_resolves,
        num_resolve_cache_hits=cache_hits,
        final_cover_weight=cert.cover_weight,
        final_dual_value=cert.dual_value,
        final_certified_ratio=cert.certified_ratio,
        final_is_cover=maintainer.verify(),
        elapsed_s=time.perf_counter() - start,
        records=records,
    )
