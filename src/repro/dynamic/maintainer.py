"""Incremental cover maintenance: local repair + certificate tracking.

:class:`IncrementalCoverMaintainer` keeps a *valid, certified* vertex cover
over a :class:`~repro.dynamic.DynamicGraph` as updates stream in, without
re-solving from scratch.  The invariants after every
:meth:`apply_batch` call:

1. **Validity** — the maintained mask covers every current edge.  Only edge
   *insertions* can uncover (deletions and weight changes cannot), so the
   repair pass touches exactly the inserted edges whose endpoints are both
   outside the cover.
2. **Sound lower bound** — the maintainer carries per-edge duals ``x_e``
   (a near-feasible fractional matching on the *current* graph): duals of
   deleted edges are retired immediately, repairs pay new duals by the
   local-ratio/pricing rule (raise ``x_e`` by the smaller *residual*
   ``w(v) − y_v`` of the endpoints; the endpoint whose residual hits zero
   enters the cover), and weight decreases are absorbed into the measured
   ``load_factor``.  By weak duality ``Σ_e x_e / load_factor ≤ OPT`` of the
   current graph, so the certificate is checkable at any moment.
3. **Local minimality** — after repair, vertices *touched* by the batch are
   greedily pruned (most expensive first) if all their current neighbors
   are covered; untouched vertices keep their state, so the pass is
   O(batch-neighborhood), not O(n).

The hot path runs the vectorized kernels of :mod:`repro.dynamic.repair`
over the dynamic graph's CSR-delta arrays; ``kernels="reference"`` swaps
in the original object-at-a-time ``_reference_*`` implementations — same
results bit for bit (the contract ``tests/properties/test_property_kernels``
enforces), used by the differential suites and the kernel microbenchmark.

The certificate degrades (``drift``) as churn accumulates — deletions strand
cover weight whose paying edges are gone, weight changes bend the dual
loads.  The maintainer only *measures* drift; deciding when to trigger a
full re-solve is :class:`repro.dynamic.ResolvePolicy`'s job, and executing
it through the batch service is :func:`repro.dynamic.stream.run_stream`'s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.certificates import CoverCertificate
from repro.core.postprocess import prune_redundant_vertices
from repro.core.result import MWVCResult
from repro.dynamic.duals import DualStore, decode_edge_codes
from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.repair import (
    RESIDUAL_RTOL,
    PruneView,
    _reference_greedy_prune_pass,
    _reference_pricing_repair_pass,
    adopt_solution,
    certificate_from_state,
    greedy_prune_pass,
    pricing_repair_pass,
)
from repro.graphs.updates import EdgeDelete, EdgeInsert, GraphUpdate, WeightChange

__all__ = ["IncrementalCoverMaintainer", "BatchReport", "KERNEL_PROFILE_KEYS"]

#: Relative tolerance for "residual weight is exhausted" decisions
#: (the shared constant of :mod:`repro.dynamic.repair`).
_RESIDUAL_RTOL = RESIDUAL_RTOL

#: Sections of the per-batch kernel timing breakdown (``profile=True``).
KERNEL_PROFILE_KEYS = ("adjacency_s", "repair_s", "prune_s", "certificate_s")


@dataclass(frozen=True)
class BatchReport:
    """Observables of one :meth:`IncrementalCoverMaintainer.apply_batch`.

    Attributes
    ----------
    num_updates, applied:
        Events received / events that changed the graph (inserting a
        present edge etc. are no-ops).
    inserts, deletes, reweights:
        Effective events by kind.
    repaired_edges:
        Inserted edges that arrived uncovered and were patched by the
        pricing rule.
    added_to_cover, pruned_from_cover:
        Cover membership churn caused by the batch.
    retired_dual:
        Dual mass removed with deleted edges (certificate damage).
    certificate:
        The post-batch duality certificate.
    drift:
        ``certified_ratio / base_ratio − 1`` where ``base_ratio`` is the
        certified ratio right after the last adopted re-solve.
    """

    num_updates: int
    applied: int
    inserts: int
    deletes: int
    reweights: int
    repaired_edges: int
    added_to_cover: int
    pruned_from_cover: int
    retired_dual: float
    certificate: CoverCertificate
    drift: float

    def to_dict(self) -> dict:
        """Exact JSON-friendly form; inverse of :meth:`from_dict`.

        The certificate is nested in full (its own ``to_dict``), so this is
        the one schema shared by stream records and the write-ahead log.
        """
        return {
            "num_updates": int(self.num_updates),
            "applied": int(self.applied),
            "inserts": int(self.inserts),
            "deletes": int(self.deletes),
            "reweights": int(self.reweights),
            "repaired_edges": int(self.repaired_edges),
            "added_to_cover": int(self.added_to_cover),
            "pruned_from_cover": int(self.pruned_from_cover),
            "retired_dual": float(self.retired_dual),
            "certificate": self.certificate.to_dict(),
            "drift": float(self.drift),
        }

    @classmethod
    def from_dict(cls, spec: dict) -> "BatchReport":
        """Rebuild a report from its :meth:`to_dict` form."""
        if not isinstance(spec, dict):
            raise ValueError(f"batch report must be a dict, got {type(spec).__name__}")
        missing = {f for f in cls.__dataclass_fields__} - set(spec)
        if missing:
            raise ValueError(f"batch report missing keys {sorted(missing)}")
        return cls(
            num_updates=int(spec["num_updates"]),
            applied=int(spec["applied"]),
            inserts=int(spec["inserts"]),
            deletes=int(spec["deletes"]),
            reweights=int(spec["reweights"]),
            repaired_edges=int(spec["repaired_edges"]),
            added_to_cover=int(spec["added_to_cover"]),
            pruned_from_cover=int(spec["pruned_from_cover"]),
            retired_dual=float(spec["retired_dual"]),
            certificate=CoverCertificate.from_dict(spec["certificate"]),
            drift=float(spec["drift"]),
        )

    def summary(self) -> dict:
        """Flat JSON-friendly dict (one row of ``repro stream`` output)."""
        row = self.to_dict()
        cert = row.pop("certificate")
        row["cover_weight"] = cert["cover_weight"]
        row["dual_value"] = cert["dual_value"]
        row["certified_ratio"] = cert["certified_ratio"]
        # `drift` stays the last key, matching the historical row layout.
        row["drift"] = row.pop("drift")
        return row


class IncrementalCoverMaintainer:
    """Maintains a certified vertex cover on a :class:`DynamicGraph`.

    Typical lifecycle::

        dyn = DynamicGraph(graph)
        maintainer = IncrementalCoverMaintainer(dyn)
        maintainer.adopt(minimum_weight_vertex_cover(graph, eps=0.1))
        for batch in batches(update_stream):
            report = maintainer.apply_batch(batch)
            if policy.should_resolve(...):
                maintainer.adopt(re_solve(dyn.compact()))

    On an edgeless initial graph :meth:`adopt` is optional — the empty
    cover is trivially valid and repairs bootstrap the duals from zero.

    Parameters
    ----------
    kernels:
        ``"vectorized"`` (default) runs the array kernels of
        :mod:`repro.dynamic.repair`; ``"reference"`` runs the original
        object-at-a-time implementations.  Results are bit-identical —
        the switch exists for differential tests and benchmarking.
    profile:
        Accumulate a per-batch kernel timing breakdown
        (:data:`KERNEL_PROFILE_KEYS`) in :attr:`kernel_profile` /
        :attr:`last_batch_profile`.  Off by default: the hot path stays
        timer-free.
    """

    def __init__(
        self,
        dyn: DynamicGraph,
        *,
        kernels: str = "vectorized",
        profile: bool = False,
    ):
        if kernels not in ("vectorized", "reference"):
            raise ValueError(
                f"kernels must be 'vectorized' or 'reference', got {kernels!r}"
            )
        self.dyn = dyn
        self.kernels = kernels
        n = dyn.n
        self._cover = np.zeros(n, dtype=bool)
        self._x = DualStore()
        self._loads = np.zeros(n, dtype=np.float64)
        self._dual_value = 0.0
        self._base_ratio: Optional[float] = None
        self._batches = 0
        self._init_profile(profile)
        if dyn.m:
            # A nonempty graph has no valid empty cover; start from the
            # trivial all-vertices cover (duals empty → ratio inf) so the
            # validity invariant holds from the first moment.  Callers are
            # expected to adopt() a real solution before streaming.
            self._cover[:] = True

    def _init_profile(self, profile: bool) -> None:
        self._profile = bool(profile)
        self._profile_acc: Dict[str, float] = {k: 0.0 for k in KERNEL_PROFILE_KEYS}
        self.last_batch_profile: Optional[Dict[str, float]] = None

    def set_profiling(self, enabled: bool) -> None:
        """Switch kernel profiling on/off (resets the accumulated split)."""
        self._init_profile(enabled)

    # ------------------------------------------------------------------ #
    # state accessors
    # ------------------------------------------------------------------ #
    @property
    def cover(self) -> np.ndarray:
        """The maintained cover mask (a defensive copy)."""
        return self._cover.copy()

    @property
    def dual_value(self) -> float:
        """Current ``Σ_e x_e``."""
        return self._dual_value

    @property
    def cover_weight(self) -> float:
        """Current ``w(C)`` under the dynamic weights."""
        return float(self.dyn.weights[self._cover].sum())

    @property
    def base_ratio(self) -> Optional[float]:
        """Certified ratio measured right after the last :meth:`adopt`."""
        return self._base_ratio

    @property
    def batches_applied(self) -> int:
        """Number of :meth:`apply_batch` calls so far."""
        return self._batches

    @property
    def kernel_profile(self) -> Optional[Dict[str, float]]:
        """Cumulative kernel timing breakdown (``None`` unless profiling)."""
        return dict(self._profile_acc) if self._profile else None

    def edge_duals(self) -> Dict[Tuple[int, int], float]:
        """Nonzero per-edge duals keyed by canonical endpoint pair (copy)."""
        return self._x.as_dict()

    # ------------------------------------------------------------------ #
    # snapshot/restore support
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """The maintainer's full mutable state as plain arrays/scalars.

        The exact float payload is exported — loads and the dual total are
        *not* recomputed — so a maintainer restored via :meth:`from_state`
        is bit-identical and every subsequent :meth:`apply_batch` evolves
        it exactly as the original (the property
        ``tests/recovery/test_equivalence.py`` checks).  Dual keys are
        emitted in sorted order (one vectorized code sort), making the
        export deterministic for a given state (content digests of two
        exports of one state match).
        """
        dual_codes, dual_values = self._x.sorted_codes()
        du, dv = decode_edge_codes(dual_codes)
        dual_keys = (
            np.stack([du, dv], axis=1) if dual_codes.size else dual_codes.reshape(0, 2)
        )
        return {
            "cover": self._cover.copy(),
            "loads": self._loads.copy(),
            "dual_keys": dual_keys,
            "dual_codes": dual_codes,
            "dual_values": dual_values,
            "dual_value": float(self._dual_value),
            "base_ratio": self._base_ratio,
            "batches_applied": int(self._batches),
        }

    @classmethod
    def from_state(
        cls,
        dyn: DynamicGraph,
        state: dict,
        *,
        kernels: str = "vectorized",
        profile: bool = False,
    ) -> "IncrementalCoverMaintainer":
        """Reconstruct a maintainer around ``dyn`` from :meth:`export_state`.

        ``dyn`` must already hold the graph the state was exported against;
        the state is validated structurally (shapes, dual keys are current
        edges) so a mismatched graph/state pair fails loudly instead of
        silently corrupting the certificate.
        """
        n = dyn.n
        cover = np.asarray(state["cover"], dtype=bool)
        loads = np.asarray(state["loads"], dtype=np.float64)
        if cover.shape != (n,):
            raise ValueError(f"cover mask has shape {cover.shape}, expected ({n},)")
        if loads.shape != (n,):
            raise ValueError(f"loads have shape {loads.shape}, expected ({n},)")
        keys = np.asarray(state["dual_keys"], dtype=np.int64)
        vals = np.asarray(state["dual_values"], dtype=np.float64)
        if keys.ndim != 2 or keys.shape[1] != 2 or keys.shape[0] != vals.shape[0]:
            raise ValueError(
                f"dual arrays disagree: keys {keys.shape}, values {vals.shape}"
            )
        if keys.shape[0]:
            present = dyn.has_edges(keys[:, 0], keys[:, 1])
            if not present.all():
                u, v = keys[np.nonzero(~present)[0][0]]
                raise ValueError(
                    f"dual on ({int(u)}, {int(v)}) which is not an edge of "
                    f"the restored graph"
                )
        maintainer = cls.__new__(cls)
        maintainer.dyn = dyn
        maintainer.kernels = kernels
        maintainer._cover = cover.copy()
        maintainer._loads = loads.copy()
        maintainer._x = DualStore.from_arrays(keys, vals)
        maintainer._dual_value = float(state["dual_value"])
        base = state["base_ratio"]
        maintainer._base_ratio = None if base is None else float(base)
        maintainer._batches = int(state["batches_applied"])
        maintainer._init_profile(profile)
        return maintainer

    # ------------------------------------------------------------------ #
    # certification
    # ------------------------------------------------------------------ #
    def load_factor(self) -> float:
        """``max(1, max_v y_v / w(v))`` against the *current* weights."""
        if self.dyn.n == 0:
            return 1.0
        return max(1.0, float((self._loads / self.dyn.weights).max()))

    def dual_excess(self) -> float:
        """Total dual overload ``Σ_v max(0, y_v − w(v))``.

        For any cover ``C``, ``Σ_e x_e ≤ Σ_{v∈C} y_v ≤ w(C) + Σ_v (y_v −
        w_v)_+`` (every edge has an endpoint in ``C``), so ``Σ_e x_e −
        dual_excess ≤ OPT`` — a per-vertex-tight companion to the global
        ``load_factor`` scaling.
        """
        if self.dyn.n == 0:
            return 0.0
        return float(np.maximum(self._loads - self.dyn.weights, 0.0).sum())

    def certificate(self) -> CoverCertificate:
        """The duality certificate of the maintained state.

        ``is_cover`` here asserts the maintainer's invariant (it is
        recomputed exactly by :meth:`verify`, which materializes the
        graph).  The OPT lower bound is the better of the two sound
        repairs of a violated dual: global scaling ``Σx / load_factor``
        (as in :func:`repro.core.certificates.certify_cover`) and excess
        subtraction ``Σx − dual_excess`` — the latter is far tighter when
        a few reweighted vertices carry all the violation.
        """
        return certificate_from_state(
            weights=self.dyn.weights,
            cover=self._cover,
            loads=self._loads,
            dual_value=self._dual_value,
        )

    def certified_ratio(self) -> float:
        """Current certified approximation-ratio upper bound."""
        return self.certificate().certified_ratio

    def drift(self) -> float:
        """Relative certificate degradation since the last :meth:`adopt`."""
        ratio = self.certified_ratio()
        base = self._base_ratio
        if base is None or not np.isfinite(base) or base <= 0:
            return 0.0 if np.isfinite(ratio) else float("inf")
        return ratio / base - 1.0

    def verify(self) -> bool:
        """Exact validity check against the materialized current graph."""
        return self.dyn.materialize().is_vertex_cover(self._cover)

    # ------------------------------------------------------------------ #
    # adopting a full solution
    # ------------------------------------------------------------------ #
    def adopt(
        self, result: MWVCResult, *, graph=None, prune: bool = True
    ) -> CoverCertificate:
        """Replace the maintained state with a freshly solved one.

        Parameters
        ----------
        result:
            A solver result for the dynamic graph's *current* state
            (typically via ``solver.solve(SolveRequest(dyn.compact(), ...))``).
        graph:
            The graph the result was computed on; defaults to
            ``dyn.materialize()``.  Its canonical edge order maps
            ``result.x`` into the maintainer's edge-code-keyed duals.
        prune:
            Run :func:`~repro.core.postprocess.prune_redundant_vertices`
            on the adopted cover (never heavier, usually lighter; the
            duals — and thus the lower bound — are unaffected).

        Returns the post-adoption certificate (the new drift baseline).
        """
        g = self.dyn.materialize() if graph is None else graph
        if g.n != self.dyn.n:
            raise ValueError(f"result graph has n={g.n}, expected {self.dyn.n}")
        state = adopt_solution(g, result, weights=self.dyn.weights, prune=prune)
        self._cover = state.cover
        self._x = state.duals
        self._loads = state.loads
        self._dual_value = state.dual_value
        cert = self.certificate()
        self._base_ratio = cert.certified_ratio
        return cert

    # ------------------------------------------------------------------ #
    # the incremental path
    # ------------------------------------------------------------------ #
    def apply_batch(self, updates: Sequence[GraphUpdate]) -> BatchReport:
        """Apply a batch of updates and repair the cover locally.

        The repair budget is proportional to the batch's touched
        neighborhood: uncovered inserted edges are patched by the pricing
        rule, then touched vertices are pruned greedily.  The certificate
        in the returned report reflects the post-repair state.
        """
        updates = list(updates)
        dyn = self.dyn
        profiling = self._profile
        t_mark = time.perf_counter() if profiling else 0.0
        applied = inserts = deletes = reweights = 0
        retired = 0.0
        touched: Set[int] = set()
        uncovered: List[Tuple[int, int]] = []

        for upd in updates:
            changed = dyn.apply(upd)
            if not changed:
                continue
            applied += 1
            if isinstance(upd, EdgeInsert):
                inserts += 1
                key = dyn._key(int(upd.u), int(upd.v))
                touched.update(key)
                if not (self._cover[key[0]] or self._cover[key[1]]):
                    uncovered.append(key)
            elif isinstance(upd, EdgeDelete):
                deletes += 1
                key = dyn._key(int(upd.u), int(upd.v))
                touched.update(key)
                retired += self._retire_dual(key)
            elif isinstance(upd, WeightChange):
                reweights += 1
                touched.add(int(upd.v))
        if profiling:
            now = time.perf_counter()
            adjacency_s, t_mark = now - t_mark, now

        repaired, entered = self._repair(uncovered)
        touched |= entered
        if profiling:
            now = time.perf_counter()
            repair_s, t_mark = now - t_mark, now
        pruned = self._prune_touched(touched)
        if profiling:
            now = time.perf_counter()
            prune_s, t_mark = now - t_mark, now
        # Amortized: fold the delta log into a fresh snapshot once it
        # outgrows the base (the maintainer's edge-code-keyed state is
        # snapshot-independent, so compaction is invisible here).  Booked
        # under adjacency_s — it is CSR maintenance, not prune work.
        self.dyn.maybe_compact()
        if profiling:
            now = time.perf_counter()
            adjacency_s += now - t_mark
            t_mark = now

        self._batches += 1
        cert = self.certificate()
        report = BatchReport(
            num_updates=len(updates),
            applied=applied,
            inserts=inserts,
            deletes=deletes,
            reweights=reweights,
            repaired_edges=repaired,
            added_to_cover=len(entered),
            pruned_from_cover=pruned,
            retired_dual=retired,
            certificate=cert,
            drift=self.drift(),
        )
        if profiling:
            certificate_s = time.perf_counter() - t_mark
            delta = {
                "adjacency_s": adjacency_s,
                "repair_s": repair_s,
                "prune_s": prune_s,
                "certificate_s": certificate_s,
            }
            acc = self._profile_acc
            for key, value in delta.items():
                acc[key] += value
            self.last_batch_profile = delta
        return report

    def _retire_dual(self, key: Tuple[int, int]) -> float:
        """Drop a deleted edge's dual; returns the retired mass."""
        pay = self._x.pop(key, 0.0)
        if pay:
            for t in key:
                self._loads[t] -= pay
                if self._loads[t] < 0.0:  # accumulated float noise
                    self._loads[t] = 0.0
            self._dual_value -= pay
            if self._dual_value < 0.0:
                self._dual_value = 0.0
        return pay

    def _repair(self, uncovered: Iterable[Tuple[int, int]]) -> Tuple[int, Set[int]]:
        """Patch uncovered edges via the shared pricing-repair kernel.

        For each still-uncovered edge, raise its dual by the smaller
        endpoint residual ``w − y``; every endpoint whose residual is
        exhausted enters the cover.  An endpoint already fully paid
        (residual ≤ 0, possible after an adopted solve with load factor
        > 1 or a weight decrease) enters for free.  The pass itself is
        :func:`repro.dynamic.repair.pricing_repair_pass` — the same code
        the sharded coordinator runs, which is what makes sharded and
        monolithic streams bit-identical.
        """
        keys = sorted(set(uncovered))
        if self.kernels == "reference":
            outcome = _reference_pricing_repair_pass(
                keys,
                weights=self.dyn.weights,
                cover=self._cover,
                loads=self._loads,
                duals=self._x,
                dual_value=self._dual_value,
                has_edge=self.dyn.has_edge,
            )
        else:
            outcome = pricing_repair_pass(
                keys,
                weights=self.dyn.weights,
                cover=self._cover,
                loads=self._loads,
                duals=self._x,
                dual_value=self._dual_value,
                has_edges=self.dyn.has_edges,
            )
        self._dual_value = outcome.dual_value
        return outcome.repaired, outcome.entered

    def _prune_touched(self, touched: Set[int]) -> int:
        """Greedy redundancy pruning restricted to the touched vertices.

        The vectorized kernel walks the dynamic CSR directly — O(batch
        neighborhood), *never* materializing the graph: decreasing
        ``w/deg`` order, droppable iff every incident edge's other
        endpoint is covered, and dropping ``v`` locks its neighbors —
        each now solely covers its edge to ``v``.  The reference path
        keeps the historical dispatch: large touched sets (a constant
        fraction of the graph) go to the restricted sweep of
        :func:`repro.core.postprocess.prune_redundant_vertices` on the
        materialized graph — the same greedy result (identical order and
        droppability rule), so the two modes stay bit-identical.
        """
        w = self.dyn.weights
        candidates = [v for v in touched if self._cover[v]]
        if not candidates:
            return 0
        if self.kernels == "reference":
            if len(candidates) * 8 > self.dyn.n:
                before = int(self._cover.sum())
                self._cover = prune_redundant_vertices(
                    self.dyn.materialize(),
                    self._cover,
                    weights=w,
                    candidates=np.asarray(candidates, dtype=np.int64),
                )
                return before - int(self._cover.sum())
            pruned = _reference_greedy_prune_pass(
                candidates,
                weights=w,
                cover=self._cover,
                view=PruneView(
                    neighbors=self.dyn.neighbors, degree=self.dyn.degree
                ),
            )
            return len(pruned)
        pruned = greedy_prune_pass(
            candidates,
            weights=w,
            cover=self._cover,
            view=PruneView(
                neighbors=self.dyn.neighbors,
                degree=self.dyn.degree,
                neighbors_array=self.dyn.neighbors,
                degrees_of=self.dyn.degrees_of,
                gather=self.dyn.prune_gather,
            ),
        )
        return len(pruned)
