"""Array-backed edge duals: the :class:`DualStore`.

The incremental engines carry a sparse fractional matching ``x_e`` over the
*current* edge set.  The original representation — ``Dict[(u, v), float]``
keyed by endpoint tuples — pays tuple allocation + tuple hashing on every
repair/retire, and serializes through a Python sort + per-key list walk.
:class:`DualStore` keeps the same mapping keyed by one ``int64`` *edge
code* ``(u << 32) | v`` instead:

* **Hot-path ops** (``add_pay``, ``pop``, membership) hash a single small
  int — measurably cheaper than a tuple, and the code doubles as the
  canonical sort key (for ``u < v < 2**32`` the code order *is* the
  lexicographic key order).
* **Bulk I/O** is vectorized: :meth:`to_arrays` / :meth:`from_arrays`
  encode/decode whole key columns with two shifts and a mask, so
  checkpoint snapshots, shard scatter/gather, and the coordinator's
  replication log move duals as flat arrays, never as pickled tuple
  lists.

The tuple-keyed mapping protocol (``store[(u, v)]``, ``.get``, ``.pop``,
iteration in insertion order) is kept so the ``_reference_*`` kernels and
existing tests run unchanged against a store.

Vertex ids must fit in an unsigned 32-bit lane (``0 <= v < 2**32``); the
dynamic-graph layer enforces the far stricter practical bound at
construction time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

import numpy as np

__all__ = ["DualStore", "decode_edge_codes", "encode_edge_codes"]

EdgeKey = Tuple[int, int]

#: Bit width of the ``v`` lane inside an edge code.
_SHIFT = 32
_MASK = (1 << _SHIFT) - 1


def encode_edge_codes(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorized ``(u << 32) | v`` over canonical (``u < v``) endpoint arrays.

    Because both lanes are below ``2**32`` and ``u < v``, code order equals
    lexicographic ``(u, v)`` order — sorting codes sorts keys.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    return (u << _SHIFT) | v


def decode_edge_codes(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_edge_codes`: codes → ``(u, v)`` arrays."""
    codes = np.asarray(codes, dtype=np.int64)
    return codes >> _SHIFT, codes & _MASK


class DualStore:
    """Sparse per-edge duals keyed by encoded ``int64`` edge codes.

    Behaves as a mutable mapping from canonical ``(u, v)`` tuples to
    floats (the legacy protocol), while exposing integer-keyed fast paths
    and vectorized array import/export for the hot kernels.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Union["DualStore", Mapping[EdgeKey, float], None] = None):
        if mapping is None:
            self._map: Dict[int, float] = {}
        elif isinstance(mapping, DualStore):
            self._map = dict(mapping._map)
        else:
            self._map = {
                (int(u) << _SHIFT) | int(v): float(x)
                for (u, v), x in mapping.items()
            }

    # ------------------------------------------------------------------ #
    # tuple-keyed mapping protocol (legacy/reference-kernel compatibility)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _code(key: EdgeKey) -> int:
        u, v = key
        return (int(u) << _SHIFT) | int(v)

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __contains__(self, key: EdgeKey) -> bool:
        return self._code(key) in self._map

    def __getitem__(self, key: EdgeKey) -> float:
        try:
            return self._map[self._code(key)]
        except KeyError:
            raise KeyError(key) from None

    def __setitem__(self, key: EdgeKey, value: float) -> None:
        self._map[self._code(key)] = float(value)

    def __delitem__(self, key: EdgeKey) -> None:
        try:
            del self._map[self._code(key)]
        except KeyError:
            raise KeyError(key) from None

    def __iter__(self) -> Iterator[EdgeKey]:
        for code in self._map:
            yield (code >> _SHIFT, code & _MASK)

    def keys(self) -> Iterator[EdgeKey]:
        return iter(self)

    def items(self) -> Iterator[Tuple[EdgeKey, float]]:
        for code, value in self._map.items():
            yield (code >> _SHIFT, code & _MASK), value

    def values(self) -> Iterable[float]:
        return self._map.values()

    def get(self, key: EdgeKey, default: float = 0.0) -> float:
        return self._map.get(self._code(key), default)

    def pop(self, key: EdgeKey, default: float = 0.0) -> float:
        return self._map.pop(self._code(key), default)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DualStore):
            return self._map == other._map
        if isinstance(other, Mapping):
            return self.as_dict() == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DualStore({len(self._map)} edges)"

    # ------------------------------------------------------------------ #
    # integer fast paths (the vectorized kernels)
    # ------------------------------------------------------------------ #
    def add_pay(self, u: int, v: int, pay: float) -> None:
        """``store[(u, v)] += pay`` without tuple allocation."""
        code = (u << _SHIFT) | v
        m = self._map
        m[code] = m.get(code, 0.0) + pay

    # ------------------------------------------------------------------ #
    # vectorized array I/O
    # ------------------------------------------------------------------ #
    def sorted_codes(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(codes, values)`` sorted by code (== canonical key order)."""
        if not self._map:
            return np.empty(0, np.int64), np.empty(0, np.float64)
        codes = np.fromiter(self._map.keys(), dtype=np.int64, count=len(self._map))
        order = np.argsort(codes)
        codes = codes[order]
        values = np.fromiter(
            self._map.values(), dtype=np.float64, count=len(self._map)
        )[order]
        return codes, values

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, values)`` with keys an ``(k, 2)`` int64 array in
        canonical sorted order — the legacy wire/export layout."""
        codes, values = self.sorted_codes()
        u, v = decode_edge_codes(codes)
        return np.stack([u, v], axis=1) if codes.size else codes.reshape(0, 2), values

    @classmethod
    def from_codes(cls, codes: np.ndarray, values: np.ndarray) -> "DualStore":
        store = cls()
        store._map = dict(
            zip(
                np.asarray(codes, dtype=np.int64).tolist(),
                np.asarray(values, dtype=np.float64).tolist(),
            )
        )
        return store

    @classmethod
    def from_arrays(cls, keys: np.ndarray, values: np.ndarray) -> "DualStore":
        """Build from a ``(k, 2)`` key array + value array (any order)."""
        keys = np.asarray(keys, dtype=np.int64).reshape(-1, 2)
        return cls.from_codes(encode_edge_codes(keys[:, 0], keys[:, 1]), values)

    def as_dict(self) -> Dict[EdgeKey, float]:
        """A plain tuple-keyed dict copy (the legacy public form)."""
        return {
            (code >> _SHIFT, code & _MASK): value
            for code, value in self._map.items()
        }

    def copy(self) -> "DualStore":
        return DualStore(self)

    def total(self) -> float:
        """``Σ_e x_e`` over the stored edges."""
        return float(sum(self._map.values()))
