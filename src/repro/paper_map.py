"""Cross-reference: paper statements → code locations.

:data:`PAPER_MAP` maps every algorithm line, theorem, lemma, proposition
and named technique of Ghaffari–Jin–Nilis (SPAA 2020) to the symbol(s)
implementing or validating it.  The map is executable documentation: the
test suite imports every referenced symbol, so a refactor that breaks the
correspondence fails CI.

Use :func:`where` for interactive lookup::

    >>> where("Algorithm 2 Line (2i) (safety freeze y \u2265 w')")[0]
    'repro.core.phase_kernel.simulate_phase_vectorized'
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["PAPER_MAP", "where"]

#: Statement -> list of fully qualified symbols.
PAPER_MAP: Dict[str, List[str]] = {
    # ----- Section 1: model ------------------------------------------------
    "MPC model (Section 1.1)": [
        "repro.mpc.cluster.Cluster",
        "repro.mpc.machine.Machine",
        "repro.mpc.message.payload_words",
    ],
    "near-linear memory regime S = Θ̃(n)": [
        "repro.core.params.MPCParameters.machine_capacity_words",
    ],
    "congested clique model (Section 1.3)": [
        "repro.congested.clique.CongestedClique",
    ],
    "BDH18 semi-MPC ≡ congested clique": [
        "repro.congested.mwvc.congested_clique_mwvc",
    ],
    # ----- Section 2: preliminaries ----------------------------------------
    "LP relaxation / dual (Figure 1)": [
        "repro.baselines.lp.lp_relaxation",
        "repro.core.certificates.fractional_matching_violation",
    ],
    # ----- Section 3.1: Algorithm 1 ----------------------------------------
    "Algorithm 1 (generic centralized MWVC)": [
        "repro.core.centralized.run_centralized",
    ],
    "Algorithm 1 Line 2 (valid initial fractional matching)": [
        "repro.core.initialization.degree_scaled_init",
        "repro.core.initialization.uniform_init",
    ],
    "Algorithm 1 Line 3 (random thresholds T_{v,t})": [
        "repro.core.thresholds.ThresholdSampler",
    ],
    "Observation 3.1 (duals stay feasible)": [
        "repro.core.certificates.fractional_matching_violation",
    ],
    "Lemma 3.2 (weak LP duality)": [
        "repro.core.certificates.certify_cover",
    ],
    "Proposition 3.3 (2+10ε approximation)": [
        "repro.core.certificates.CoverCertificate",
    ],
    "Proposition 3.4 (degree-scaled init, O(log Δ) termination)": [
        "repro.core.initialization.degree_scaled_init",
        "repro.core.centralized.termination_bound",
    ],
    # ----- Section 3.2: techniques ------------------------------------------
    "non-uniform initialization (min(w/d, w/d))": [
        "repro.core.initialization.degree_scaled_init",
    ],
    "rejected min(w,w)/Δ initialization": [
        "repro.core.initialization.max_degree_scaled_init",
    ],
    "orientation argument": [
        "repro.core.orientation.orient_edges",
        "repro.core.orientation.orientation_report",
    ],
    "V^high / V^inactive split": [
        "repro.core.phase_kernel.plan_phase",
    ],
    "one-sided bias estimator": [
        "repro.core.params.MPCParameters.bias",
    ],
    # ----- Section 3.3: Algorithm 2 -----------------------------------------
    "Algorithm 2 (MPC simulation)": [
        "repro.core.mpc_mwvc.minimum_weight_vertex_cover",
    ],
    "Algorithm 2 Line (2a) (high/inactive split)": [
        "repro.core.phase_kernel.plan_phase",
    ],
    "Algorithm 2 Line (2b) (residual weights)": [
        "repro.core.phase_kernel.GlobalState",
    ],
    "Algorithm 2 Line (2c) (initial duals on E[V^high])": [
        "repro.core.phase_kernel.plan_phase",
    ],
    "Algorithm 2 Line (2e) (m = √d̄, iterations I)": [
        "repro.core.params.MPCParameters.num_machines",
        "repro.core.params.MPCParameters.iterations_per_phase",
    ],
    "Algorithm 2 Line (2f) (random partition)": [
        "repro.mpc.partition.random_assignment",
    ],
    "Algorithm 2 Line (2g) (local simulation)": [
        "repro.core.phase_kernel.simulate_phase_vectorized",
        "repro.core.engine_cluster.ClusterEngine.run_phase",
    ],
    "Algorithm 2 Line (2h) (dual finalization x0/(1-ε)^t')": [
        "repro.core.phase_kernel.simulate_phase_vectorized",
    ],
    "Algorithm 2 Line (2i) (safety freeze y ≥ w')": [
        "repro.core.phase_kernel.simulate_phase_vectorized",
    ],
    "Algorithm 2 Line (2j) (inactive-side duals = 0)": [
        "repro.core.phase_kernel.apply_outcome",
    ],
    "Algorithm 2 Line (2k) (residual degrees)": [
        "repro.core.phase_kernel.apply_outcome",
    ],
    "Algorithm 2 Line 3 (final centralized phase)": [
        "repro.core.mpc_mwvc.minimum_weight_vertex_cover",
    ],
    "Remark 4.2 (residual degrees, not V^high degrees)": [
        "repro.core.phase_kernel.plan_phase",
    ],
    # ----- Section 4: analysis → experiments --------------------------------
    "Theorem 1.1 / Theorem 4.5 (O(log log d̄) rounds)": [
        "repro.analysis.experiments.experiment_round_complexity",
        "repro.core.asymptotics.paper_phase_recursion",
    ],
    "Lemma 4.1 (per-machine memory O(n))": [
        "repro.analysis.experiments.experiment_memory",
        "repro.mpc.exceptions.MemoryLimitExceeded",
    ],
    "Observation 4.3 (active out-degree bound)": [
        "repro.analysis.experiments.experiment_degree_reduction",
    ],
    "Lemma 4.4 (surviving edges ≤ 2nd̄(1-ε)^I)": [
        "repro.core.orientation.orientation_report",
    ],
    "Lemma 4.6 (coupled-run deviation ≤ 6ε)": [
        "repro.analysis.experiments.experiment_deviation",
    ],
    "Theorem 4.7 (2+30ε approximation)": [
        "repro.analysis.experiments.experiment_approximation",
    ],
    # ----- comparators the paper cites ---------------------------------------
    "pre-paper O(log n) baseline (KY09-style)": [
        "repro.baselines.local_baseline.local_round_by_round",
    ],
    "GGK+18 unweighted algorithm": [
        "repro.baselines.ggk_unweighted.unweighted_mpc_vertex_cover",
    ],
    "BYE81 / Hoc82 sequential primal-dual": [
        "repro.baselines.pricing.pricing_vertex_cover",
        "repro.baselines.local_ratio.local_ratio_vertex_cover",
    ],
    "II86 maximal matching": [
        "repro.core.matching.greedy_maximal_matching",
    ],
}


def where(statement: str) -> List[str]:
    """Symbols implementing ``statement`` (KeyError lists known statements)."""
    try:
        return PAPER_MAP[statement]
    except KeyError:
        known = "\n  ".join(sorted(PAPER_MAP))
        raise KeyError(f"unknown statement {statement!r}; known statements:\n  {known}") from None
