"""The O(log n)-round baseline: Algorithm 1 run one LOCAL iteration per round.

Before this paper, the best known MPC algorithm for *weighted* vertex cover
was the direct simulation of the PRAM/LOCAL primal–dual algorithm (e.g.
Koufogiannakis–Young 2009), costing one MPC round per LOCAL iteration —
``Θ(log Δ)`` rounds with the degree-scaled initialization, ``Θ(log(Wn))``
with the classic uniform one.  Experiment E7 plots these round counts
against Algorithm 2's ``O(log log d̄)``.

Each LOCAL iteration is one MPC round: a vertex needs only its incident
duals (held by edge-owning machines) and its threshold, and the per-round
messages are one word per edge — comfortably within the near-linear regime.
We therefore charge ``rounds = iterations`` (plus one final output round),
which matches how the PRAM-to-MPC simulations [KSV10, GSZ11] are counted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.centralized import CentralizedResult, run_centralized
from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike

__all__ = ["LocalBaselineResult", "local_round_by_round"]


@dataclass(frozen=True)
class LocalBaselineResult:
    """Cover + MPC round count for the LOCAL-per-round baseline."""

    in_cover: np.ndarray
    x: np.ndarray
    cover_weight: float
    dual_value: float
    iterations: int
    mpc_rounds: int


def local_round_by_round(
    graph: WeightedGraph,
    *,
    eps: float = 0.1,
    init: str = "degree_scaled",
    seed: SeedLike = None,
) -> LocalBaselineResult:
    """Run Algorithm 1 with one MPC round charged per LOCAL iteration.

    Parameters mirror :func:`repro.core.centralized.run_centralized`; the
    returned ``mpc_rounds`` is ``iterations + 1`` (the +1 is the output
    round collecting the frozen set).
    """
    res: CentralizedResult = run_centralized(graph, eps=eps, init=init, seed=seed)
    return LocalBaselineResult(
        in_cover=res.in_cover,
        x=res.x,
        cover_weight=float(graph.weights[res.in_cover].sum()),
        dual_value=res.dual_value,
        iterations=res.iterations,
        mpc_rounds=res.iterations + 1,
    )
