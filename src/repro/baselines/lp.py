"""LP relaxation of MWVC: exact fractional optimum + half-integral rounding.

The LP relaxation (Figure 1 of the paper)::

    min  Σ_v w(v) · z_v
    s.t. z_u + z_v ≥ 1   for every edge (u, v)
         z_v ≥ 0

has two classical properties this module exploits:

* its optimum lower-bounds OPT, and by Nemhauser–Trotter it is
  *half-integral* (an optimal solution exists with ``z_v ∈ {0, ½, 1}``);
* rounding ``z_v ≥ ½`` up yields a vertex cover of weight at most
  ``2 · LP ≤ 2 · OPT``.

The LP value is the tightest tractable lower bound for medium instances in
experiment E2 (exact search handles the small ones, the algorithm's own dual
certificate handles the large ones — and ``dual ≤ LP`` always, so the three
bounds are mutually consistent, which the integration tests check).

Solved with ``scipy.optimize.linprog`` (HiGHS) on a sparse constraint matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.graphs.graph import WeightedGraph

__all__ = ["LPResult", "lp_relaxation", "lp_rounded_cover"]


@dataclass(frozen=True)
class LPResult:
    """Fractional optimum of the vertex-cover LP."""

    z: np.ndarray
    lp_value: float
    status: int

    @property
    def ok(self) -> bool:
        return self.status == 0


def lp_relaxation(graph: WeightedGraph) -> LPResult:
    """Solve the vertex-cover LP relaxation exactly.

    Returns the optimal fractional solution and its value (a lower bound on
    the weight of every vertex cover).  Edgeless graphs yield ``z = 0``.
    """
    n, m = graph.n, graph.m
    if m == 0:
        return LPResult(z=np.zeros(n), lp_value=0.0, status=0)
    rows = np.repeat(np.arange(m, dtype=np.int64), 2)
    cols = np.empty(2 * m, dtype=np.int64)
    cols[0::2] = graph.edges_u
    cols[1::2] = graph.edges_v
    data = np.ones(2 * m, dtype=np.float64)
    # linprog wants A_ub @ z <= b_ub; encode z_u + z_v >= 1 as -(z_u+z_v) <= -1.
    a_ub = sp.csr_matrix((-data, (rows, cols)), shape=(m, n))
    res = linprog(
        c=graph.weights,
        A_ub=a_ub,
        b_ub=-np.ones(m),
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if res.status != 0:
        return LPResult(z=np.zeros(n), lp_value=float("nan"), status=int(res.status))
    return LPResult(z=np.asarray(res.x), lp_value=float(res.fun), status=0)


def lp_rounded_cover(graph: WeightedGraph) -> tuple[np.ndarray, float, float]:
    """Half-integral rounding: ``z_v ≥ ½ - tol`` enters the cover.

    Returns ``(in_cover, cover_weight, lp_value)``; the cover weight is at
    most ``2 · lp_value``.

    Raises
    ------
    RuntimeError
        If the LP solver fails (never observed with HiGHS on these LPs).
    """
    res = lp_relaxation(graph)
    if not res.ok:
        raise RuntimeError(f"LP solver failed with status {res.status}")
    in_cover = res.z >= 0.5 - 1e-9
    return in_cover, float(graph.weights[in_cover].sum()), res.lp_value
