"""Bar-Yehuda–Even pricing algorithm: sequential 2-approximate MWVC.

The classic linear-time primal–dual algorithm [BYE81] the paper's Section 3.1
framework descends from: scan the edges once; for each edge still uncovered,
raise its dual ``x_e`` by the smaller residual weight of its endpoints; a
vertex whose residual hits zero enters the cover.

Guarantees: the output is a vertex cover with
``w(C) ≤ 2 · Σ_e x_e ≤ 2 · OPT`` — each covered vertex's weight is fully
paid by its incident duals, and each dual is counted at most twice.

This is the strongest *sequential* comparator in the repo: same
approximation factor as the MPC algorithm at zero coordination cost, but
inherently ``Θ(m)`` sequential steps.  The duals it emits plug into
:func:`repro.core.certificates.certify_cover`, so its certified ratios are
directly comparable to the MPC algorithm's in experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, spawn_rng, PURPOSE_BASELINE

__all__ = ["PricingResult", "pricing_vertex_cover"]


@dataclass(frozen=True)
class PricingResult:
    """Cover + duals from the pricing algorithm."""

    in_cover: np.ndarray
    x: np.ndarray
    cover_weight: float
    dual_value: float


def pricing_vertex_cover(
    graph: WeightedGraph,
    *,
    order: str = "input",
    seed: SeedLike = None,
    weights: Optional[np.ndarray] = None,
) -> PricingResult:
    """Run Bar-Yehuda–Even pricing on ``graph``.

    Parameters
    ----------
    order:
        Edge processing order: ``"input"`` (canonical edge order),
        ``"random"`` (shuffled with ``seed``), or ``"heavy_first"``
        (descending ``min(w(u), w(v))``, a better-in-practice heuristic).
    weights:
        Optional override of the graph's vertex weights.

    Notes
    -----
    The edge loop is a genuine data dependence chain (each payment changes
    the residuals later edges see), so it runs as a Python loop over numpy
    scalars — acceptable because this baseline is exercised on test- and
    benchmark-sized inputs, and the loop body is O(1).
    """
    n, m = graph.n, graph.m
    w = graph.weights if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},)")

    if order == "input":
        edge_order = np.arange(m, dtype=np.int64)
    elif order == "random":
        edge_order = spawn_rng(seed, PURPOSE_BASELINE).permutation(m).astype(np.int64)
    elif order == "heavy_first":
        wu, wv = graph.endpoint_values(w)
        edge_order = np.argsort(-np.minimum(wu, wv), kind="stable").astype(np.int64)
    else:
        raise ValueError(f"unknown order {order!r}")

    residual = w.astype(np.float64).copy()
    x = np.zeros(m, dtype=np.float64)
    eu, ev = graph.edges_u, graph.edges_v
    for e in edge_order:
        u = int(eu[e])
        v = int(ev[e])
        ru = residual[u]
        rv = residual[v]
        if ru <= 0.0 or rv <= 0.0:
            continue  # already covered
        pay = ru if ru < rv else rv
        x[e] = pay
        residual[u] = ru - pay
        residual[v] = rv - pay

    in_cover = residual <= 0.0
    # Isolated vertices have residual w(v) > 0 and never join; correct.
    return PricingResult(
        in_cover=in_cover,
        x=x,
        cover_weight=float(w[in_cover].sum()),
        dual_value=float(x.sum()),
    )
