"""Comparators: sequential 2-approximations, LP, exact search, and the
pre-paper O(log n)-round MPC baseline."""

from repro.baselines.exact import ExactResult, exact_mwvc, exact_mwvc_bruteforce
from repro.baselines.ggk_unweighted import (
    UnweightedBaselineResult,
    unweighted_mpc_vertex_cover,
)
from repro.baselines.greedy import GreedyResult, greedy_vertex_cover
from repro.baselines.local_baseline import LocalBaselineResult, local_round_by_round
from repro.baselines.local_ratio import LocalRatioResult, local_ratio_vertex_cover
from repro.baselines.lp import LPResult, lp_relaxation, lp_rounded_cover
from repro.baselines.pricing import PricingResult, pricing_vertex_cover

__all__ = [
    "pricing_vertex_cover",
    "PricingResult",
    "local_ratio_vertex_cover",
    "LocalRatioResult",
    "greedy_vertex_cover",
    "GreedyResult",
    "lp_relaxation",
    "lp_rounded_cover",
    "LPResult",
    "exact_mwvc",
    "exact_mwvc_bruteforce",
    "ExactResult",
    "local_round_by_round",
    "LocalBaselineResult",
    "unweighted_mpc_vertex_cover",
    "UnweightedBaselineResult",
]
