"""GGK+18-style unweighted MPC vertex cover, as a weighted-instance foil.

Ghaffari et al. [GGK+18] give the O(log log n)-round MPC algorithm for
(2+ε)-approximate *minimum cardinality* vertex cover — the ``w ≡ 1`` special
case of this paper's Algorithm 2 (the paper's framework reduces to theirs
when all weights and the initialization collapse to the uniform case).  We
therefore realize the GGK baseline as Algorithm 2 executed on the
weight-stripped graph.

Experiment E8 uses it the way the paper's introduction motivates the whole
work: on instances with heterogeneous weights, a cardinality-optimizing
cover can be *arbitrarily* more expensive than the weighted optimum — e.g. a
star with a heavy hub and light leaves, where cardinality reasoning buys the
hub.  The baseline keeps the round complexity but loses the weighted
guarantee entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike

__all__ = ["UnweightedBaselineResult", "unweighted_mpc_vertex_cover"]


@dataclass(frozen=True)
class UnweightedBaselineResult:
    """Cardinality-targeting cover evaluated against the true weights."""

    in_cover: np.ndarray
    cover_size: int
    true_weight: float
    mpc_rounds: int
    num_phases: int


def unweighted_mpc_vertex_cover(
    graph: WeightedGraph,
    *,
    eps: float = 0.1,
    params: MPCParameters | None = None,
    seed: SeedLike = None,
) -> UnweightedBaselineResult:
    """Run the unweighted (GGK-style) MPC algorithm, ignoring the weights.

    The returned ``true_weight`` evaluates the cardinality-driven cover
    under ``graph``'s real weights — the number experiment E8 compares with
    the weighted algorithm's cover weight.
    """
    stripped = graph.with_weights(np.ones(graph.n))
    res = minimum_weight_vertex_cover(
        stripped, eps=eps, params=params, seed=seed, engine="vectorized"
    )
    return UnweightedBaselineResult(
        in_cover=res.in_cover,
        cover_size=res.cover_size(),
        true_weight=float(graph.weights[res.in_cover].sum()),
        mpc_rounds=res.mpc_rounds,
        num_phases=res.num_phases,
    )
