"""Greedy weight-effectiveness heuristic for MWVC.

Repeatedly selects the vertex minimizing ``w(v) / (live degree of v)`` —
the cheapest coverage per edge — adds it to the cover, and deletes its
edges.  This is the weighted set-cover greedy specialized to vertex cover;
its worst-case guarantee is only ``H_Δ = O(log Δ)`` (Chvátal), *not* 2, and
the classic bipartite bad instances realize the log factor.  It is included
as the practitioner's default comparator: experiment E2 shows where the
primal–dual algorithms beat it and where it happens to win.

Implementation: lazy-deletion binary heap keyed by the effectiveness ratio;
stale heap entries are dropped on pop by comparing the recorded live degree.
Complexity ``O(m log n)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["GreedyResult", "greedy_vertex_cover"]


@dataclass(frozen=True)
class GreedyResult:
    """Cover from the greedy heuristic."""

    in_cover: np.ndarray
    cover_weight: float
    picks: int


def greedy_vertex_cover(graph: WeightedGraph) -> GreedyResult:
    """Run the weight-per-covered-edge greedy heuristic."""
    n = graph.n
    w = graph.weights
    live_degree = graph.degrees.astype(np.int64).copy()
    covered_edge = np.zeros(graph.m, dtype=bool)
    in_cover = np.zeros(n, dtype=bool)

    heap = [
        (w[v] / live_degree[v], v, int(live_degree[v]))
        for v in range(n)
        if live_degree[v] > 0
    ]
    heapq.heapify(heap)
    picks = 0

    indptr = graph.indptr
    adj_v = graph.adj_vertices
    adj_e = graph.adj_edges

    while heap:
        _, v, deg_at_push = heapq.heappop(heap)
        if in_cover[v] or live_degree[v] == 0:
            continue
        if deg_at_push != live_degree[v]:
            # Stale entry: reinsert with the current ratio.
            heapq.heappush(heap, (w[v] / live_degree[v], v, int(live_degree[v])))
            continue
        in_cover[v] = True
        picks += 1
        for slot in range(int(indptr[v]), int(indptr[v + 1])):
            e = int(adj_e[slot])
            if covered_edge[e]:
                continue
            covered_edge[e] = True
            u = int(adj_v[slot])
            live_degree[u] -= 1
        live_degree[v] = 0

    return GreedyResult(
        in_cover=in_cover,
        cover_weight=float(w[in_cover].sum()),
        picks=picks,
    )
