"""Local-ratio 2-approximation for MWVC (Bar-Yehuda & Even, 1985 form).

The local-ratio technique decomposes the weight function: repeatedly pick an
uncovered edge ``(u, v)``, subtract ``δ = min(w(u), w(v))`` from *both*
endpoints, and recurse on the residual weights; vertices whose weight
reaches zero form the cover.  Every feasible cover pays at least ``δ`` per
decomposition step, and the returned cover pays at most ``2δ``, giving the
factor-2 guarantee.

Operationally this is the same dual ascent as
:mod:`repro.baselines.pricing`, but expressed through weight decomposition —
it returns the list of ``(edge, δ)`` reductions rather than duals, and the
tests verify the two algorithms produce *identical covers* when run in the
same edge order (a nontrivial equivalence worth pinning: it guards both
implementations against drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["LocalRatioResult", "local_ratio_vertex_cover"]


@dataclass(frozen=True)
class LocalRatioResult:
    """Cover + weight decomposition from the local-ratio algorithm."""

    in_cover: np.ndarray
    cover_weight: float
    reductions: List[Tuple[int, float]]
    lower_bound: float

    @property
    def num_reductions(self) -> int:
        return len(self.reductions)


def local_ratio_vertex_cover(graph: WeightedGraph) -> LocalRatioResult:
    """Run the local-ratio algorithm in canonical edge order.

    Returns
    -------
    LocalRatioResult
        ``reductions`` is the weight decomposition (edge id, δ);
        ``lower_bound = Σ δ`` satisfies ``lower_bound ≤ OPT`` and
        ``cover_weight ≤ 2 · lower_bound``.
    """
    n, m = graph.n, graph.m
    residual = graph.weights.astype(np.float64).copy()
    eu, ev = graph.edges_u, graph.edges_v
    reductions: List[Tuple[int, float]] = []
    for e in range(m):
        u = int(eu[e])
        v = int(ev[e])
        ru = residual[u]
        rv = residual[v]
        if ru <= 0.0 or rv <= 0.0:
            continue
        delta = ru if ru < rv else rv
        residual[u] = ru - delta
        residual[v] = rv - delta
        reductions.append((e, float(delta)))
    in_cover = residual <= 0.0
    return LocalRatioResult(
        in_cover=in_cover,
        cover_weight=float(graph.weights[in_cover].sum()),
        reductions=reductions,
        lower_bound=float(sum(d for _, d in reductions)),
    )
