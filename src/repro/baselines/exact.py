"""Exact minimum weight vertex cover for small instances.

Two independent solvers (the tests cross-check them against each other and
against the LP lower bound):

* :func:`exact_mwvc` — branch and bound.  Branches on the vertex with the
  largest live degree: either it joins the cover, or it stays out and *all*
  its live neighbors join (the standard VC dichotomy, valid for arbitrary
  weights).  Pruning uses the Bar-Yehuda–Even dual of the live subgraph as
  an admissible lower bound.  Practical to ~60 vertices at benchmark
  densities — comfortably covering the "exact OPT" column of experiment E2.
* :func:`exact_mwvc_bruteforce` — enumerates all ``2^n`` subsets (n ≤ 22
  enforced); exists purely to validate the branch-and-bound solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph

__all__ = ["ExactResult", "exact_mwvc", "exact_mwvc_bruteforce"]


@dataclass(frozen=True)
class ExactResult:
    """Provably optimal cover."""

    in_cover: np.ndarray
    opt_weight: float
    nodes_explored: int


class _Searcher:
    """Branch-and-bound state machine with an explicit undo journal.

    Mutating operations (``take`` = vertex into cover; ``drop`` = vertex
    excluded) append ``(kind, vertex, saved_degree)`` entries; undoing in
    reverse order restores the exact prior state because each vertex's
    alive-neighbor set at undo time equals its set at do time.
    """

    def __init__(self, graph: WeightedGraph, node_limit: int):
        self.n = graph.n
        self.w = graph.weights.astype(np.float64)
        self.adj: List[np.ndarray] = [graph.neighbors(v).copy() for v in range(self.n)]
        self.alive = np.ones(self.n, dtype=bool)
        self.in_cover = np.zeros(self.n, dtype=bool)
        self.live_deg = graph.degrees.astype(np.int64).copy()
        self.best_weight = float(self.w.sum())
        self.best_cover = np.ones(self.n, dtype=bool)
        self.nodes = 0
        self.node_limit = node_limit

    # -- mutations ------------------------------------------------------ #
    def _deactivate(self, u: int, journal: List[Tuple[str, int, int]], kind: str) -> None:
        saved = int(self.live_deg[u])
        self.alive[u] = False
        for v in self.adj[u]:
            if self.alive[v]:
                self.live_deg[v] -= 1
        self.live_deg[u] = 0
        journal.append((kind, u, saved))

    def take(self, u: int, journal: List[Tuple[str, int, int]]) -> float:
        self.in_cover[u] = True
        self._deactivate(u, journal, "take")
        return float(self.w[u])

    def drop(self, u: int, journal: List[Tuple[str, int, int]]) -> None:
        self._deactivate(u, journal, "drop")

    def unwind(self, journal: List[Tuple[str, int, int]]) -> None:
        for kind, u, saved in reversed(journal):
            if kind == "take":
                self.in_cover[u] = False
            for v in self.adj[u]:
                if self.alive[v]:
                    self.live_deg[v] += 1
            self.alive[u] = True
            self.live_deg[u] = saved

    # -- bounding ------------------------------------------------------- #
    def lower_bound(self) -> float:
        """Bar-Yehuda–Even dual on the live subgraph (admissible: any cover
        of the live edges pays at least the raised dual)."""
        res = np.where(self.alive, self.w, 0.0)
        bound = 0.0
        for u in range(self.n):
            if not self.alive[u] or self.live_deg[u] == 0:
                continue
            ru = res[u]
            if ru <= 0.0:
                continue
            for v in self.adj[u]:
                if v <= u or not self.alive[v]:
                    continue
                rv = res[v]
                if rv <= 0.0 or ru <= 0.0:
                    continue
                pay = ru if ru < rv else rv
                bound += pay
                ru -= pay
                res[v] = rv - pay
            res[u] = ru
        return bound

    def branch_vertex(self) -> int:
        cand = np.nonzero(self.alive & (self.live_deg > 0))[0]
        if cand.size == 0:
            return -1
        order = np.lexsort((-self.w[cand], -self.live_deg[cand]))
        return int(cand[order[0]])

    # -- search --------------------------------------------------------- #
    def search(self, current: float) -> None:
        self.nodes += 1
        if self.nodes > self.node_limit:
            raise RuntimeError(f"exact_mwvc exceeded node limit {self.node_limit}")
        if current >= self.best_weight:
            return
        u = self.branch_vertex()
        if u < 0:
            self.best_weight = current
            self.best_cover = self.in_cover.copy()
            return
        if current + self.lower_bound() >= self.best_weight:
            return

        # Branch 1: u joins the cover.
        journal: List[Tuple[str, int, int]] = []
        cost = self.take(u, journal)
        self.search(current + cost)
        self.unwind(journal)

        # Branch 2: u stays out => every live neighbor joins.
        neighbors = [int(v) for v in self.adj[u] if self.alive[v]]
        journal = []
        self.drop(u, journal)
        cost = 0.0
        for v in neighbors:
            cost += self.take(v, journal)
        self.search(current + cost)
        self.unwind(journal)


def exact_mwvc(graph: WeightedGraph, *, node_limit: int = 5_000_000) -> ExactResult:
    """Branch-and-bound exact MWVC (see module docstring).

    Parameters
    ----------
    node_limit:
        Abort (``RuntimeError``) after exploring this many search nodes;
        guards the test suite against accidentally huge inputs.
    """
    searcher = _Searcher(graph, node_limit)
    searcher.search(0.0)
    return ExactResult(
        in_cover=searcher.best_cover,
        opt_weight=searcher.best_weight,
        nodes_explored=searcher.nodes,
    )


def exact_mwvc_bruteforce(graph: WeightedGraph) -> ExactResult:
    """Enumerate all subsets (n ≤ 22) — validation oracle for the B&B."""
    n = graph.n
    if n > 22:
        raise ValueError(f"brute force limited to n <= 22, got {n}")
    w = graph.weights
    eu, ev = graph.edges_u, graph.edges_v
    best_weight = float(w.sum())
    best_mask = (1 << n) - 1
    idx = np.arange(n)
    for mask in range(1 << n):
        if graph.m:
            sel_u = (mask >> eu) & 1
            sel_v = (mask >> ev) & 1
            if not ((sel_u | sel_v) == 1).all():
                continue
        weight = float(w[(mask >> idx) & 1 == 1].sum())
        if weight < best_weight:
            best_weight = weight
            best_mask = mask
    in_cover = ((best_mask >> idx) & 1).astype(bool)
    return ExactResult(in_cover=in_cover, opt_weight=best_weight, nodes_explored=1 << n)
