"""The congested clique model [LPSPP05].

``n`` nodes, fully connected; computation proceeds in synchronous rounds; in
each round every ordered pair of nodes may exchange one ``O(log n)``-bit
message — one machine word in this package's accounting.  Local memory and
computation are unbounded (the model's stated assumption).

The simulator enforces the per-link word limit and counts rounds; it is the
substrate for the BDH18 equivalence adapter in :mod:`repro.congested.mwvc`,
and for the directly-executed primitives in
:mod:`repro.congested.primitives`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.mpc.message import payload_words

__all__ = ["CongestedClique", "CliqueMessage", "LinkCapacityExceeded"]


class LinkCapacityExceeded(RuntimeError):
    """A single link carried more than the per-round word budget."""

    def __init__(self, src: int, dst: int, words: int, limit: int):
        self.src, self.dst, self.words, self.limit = src, dst, words, limit
        super().__init__(
            f"link {src}->{dst} carried {words} words in one round, limit {limit}"
        )


@dataclass(frozen=True)
class CliqueMessage:
    """One directed message for one round."""

    src: int
    dst: int
    payload: Any
    words: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "words", payload_words(self.payload))


class CongestedClique:
    """Synchronous congested-clique communication with link-capacity checks.

    Parameters
    ----------
    num_nodes:
        Number of clique nodes (``n``).
    words_per_link:
        Per-round, per-ordered-pair word budget (default 1, the
        ``O(log n)``-bit message of the model).
    """

    def __init__(self, num_nodes: int, *, words_per_link: int = 1):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if words_per_link < 1:
            raise ValueError("words_per_link must be >= 1")
        self.num_nodes = int(num_nodes)
        self.words_per_link = int(words_per_link)
        self.rounds = 0
        self.total_messages = 0
        self.total_words = 0
        self.max_node_inflow = 0
        self.max_node_outflow = 0

    def exchange(self, messages: Iterable[CliqueMessage]) -> Dict[int, List[CliqueMessage]]:
        """One synchronous round; returns per-destination inboxes.

        Raises :class:`LinkCapacityExceeded` if an ordered pair carries more
        than ``words_per_link`` words, and ``ValueError`` on bad node ids or
        self-messages.
        """
        link_words: Dict[Tuple[int, int], int] = {}
        inflow = [0] * self.num_nodes
        outflow = [0] * self.num_nodes
        inboxes: Dict[int, List[CliqueMessage]] = {}
        msgs = sorted(messages, key=lambda mm: (mm.src, mm.dst))
        for msg in msgs:
            if not (0 <= msg.src < self.num_nodes and 0 <= msg.dst < self.num_nodes):
                raise ValueError(f"node id out of range in message {msg.src}->{msg.dst}")
            if msg.src == msg.dst:
                raise ValueError("self-messages are not part of the model")
            key = (msg.src, msg.dst)
            link_words[key] = link_words.get(key, 0) + msg.words
            if link_words[key] > self.words_per_link:
                raise LinkCapacityExceeded(msg.src, msg.dst, link_words[key], self.words_per_link)
            inflow[msg.dst] += msg.words
            outflow[msg.src] += msg.words
            inboxes.setdefault(msg.dst, []).append(msg)
        self.rounds += 1
        self.total_messages += len(msgs)
        self.total_words += sum(mm.words for mm in msgs)
        if inflow:
            self.max_node_inflow = max(self.max_node_inflow, max(inflow))
            self.max_node_outflow = max(self.max_node_outflow, max(outflow))
        return inboxes

    def idle_round(self) -> None:
        """A round with local computation only."""
        self.exchange([])

    def summary(self) -> dict:
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "max_node_inflow": self.max_node_inflow,
            "max_node_outflow": self.max_node_outflow,
        }
