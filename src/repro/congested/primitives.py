"""Directly-executed congested-clique primitives.

These are the standard O(1)-round collectives of the model, implemented with
real :class:`~repro.congested.clique.CongestedClique` messages so the tests
can pin their round counts and link loads:

* :func:`broadcast_value` — 1 round (source sends one word on each link);
* :func:`aggregate_sum` — 1 round (every node sends its value to the root;
  the root receives ``n-1`` words, but on *distinct* links — legal);
* :func:`allreduce_sum` — 2 rounds (aggregate, then broadcast);
* :func:`compute_degrees` — each node learns its degree in a vertex-per-node
  distributed graph: node ``v`` holds its adjacency row and needs no
  communication for its own degree, but 1 aggregate round gives node 0 the
  degree *sum* (used by the MWVC adapter to evaluate the Line 2 condition).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.congested.clique import CliqueMessage, CongestedClique

__all__ = ["broadcast_value", "aggregate_sum", "allreduce_sum", "compute_degree_sum"]


def broadcast_value(cc: CongestedClique, src: int, value: float) -> Dict[int, float]:
    """Source sends one word to every other node; 1 round."""
    msgs = [
        CliqueMessage(src, dst, float(value)) for dst in range(cc.num_nodes) if dst != src
    ]
    inboxes = cc.exchange(msgs)
    out = {src: float(value)}
    for dst, box in inboxes.items():
        out[dst] = float(box[0].payload)
    return out


def aggregate_sum(cc: CongestedClique, values: Dict[int, float], *, root: int = 0) -> float:
    """Every node ships its value to ``root``; root returns the total; 1 round."""
    msgs = [
        CliqueMessage(node, root, float(v)) for node, v in sorted(values.items()) if node != root
    ]
    inboxes = cc.exchange(msgs)
    total = float(values.get(root, 0.0))
    for msg in inboxes.get(root, []):
        total += float(msg.payload)
    return total


def allreduce_sum(cc: CongestedClique, values: Dict[int, float], *, root: int = 0) -> Dict[int, float]:
    """Aggregate to ``root`` then broadcast; 2 rounds; all nodes learn the sum."""
    total = aggregate_sum(cc, values, root=root)
    return broadcast_value(cc, root, total)


def compute_degree_sum(cc: CongestedClique, degrees: np.ndarray, *, root: int = 0) -> float:
    """Node ``v`` holds ``degrees[v]``; root learns ``Σ_v d(v)``; 1 round.

    This is the congested-clique realization of evaluating the Line 2
    condition ``d̄ > threshold`` when the graph is distributed one vertex
    per node.
    """
    if degrees.shape != (cc.num_nodes,):
        raise ValueError(f"degrees must have shape ({cc.num_nodes},)")
    return aggregate_sum(cc, {v: float(degrees[v]) for v in range(cc.num_nodes)}, root=root)
