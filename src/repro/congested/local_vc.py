"""Algorithm 1 executed natively on the congested clique.

Unlike the BDH18 adapter (:mod:`repro.congested.mwvc`), which *translates*
round counts, this module actually runs the primal–dual algorithm as a
message-passing protocol with one vertex per clique node:

* node ``v`` holds ``w(v)``, its incident edges' duals (each dual is
  replicated at both endpoints and evolves identically on both, because
  both apply the same deterministic update rule), and the freeze state of
  itself and its neighbors;
* per LOCAL iteration, each active node computes its dual load ``y_v``
  locally, freezes itself against the shared-seed threshold ``T_{v,t}``,
  and notifies each neighbor with a 1-word message (within the per-link
  budget by construction — messages travel only along graph edges);
* a convergence check (does any active edge remain?) costs one
  aggregate-to-root and one broadcast round per iteration.

Total: **3 congested-clique rounds per LOCAL iteration** — the Θ(log Δ)
pre-compression cost, executed for real.  The protocol is deterministic
given the threshold seed, and the tests verify its output equals
:func:`repro.core.centralized.run_centralized` bit-for-bit — a distributed
execution certifying the centralized implementation (and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.congested.clique import CliqueMessage, CongestedClique
from repro.congested.primitives import aggregate_sum, broadcast_value
from repro.core.centralized import termination_bound
from repro.core.initialization import degree_scaled_init
from repro.core.thresholds import ThresholdSampler
from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fraction

__all__ = ["CliqueVertexCoverResult", "congested_clique_local_vc"]


@dataclass(frozen=True)
class CliqueVertexCoverResult:
    """Output of the native congested-clique primal–dual run."""

    in_cover: np.ndarray
    x: np.ndarray
    iterations: int
    cc_rounds: int
    cover_weight: float
    dual_value: float


def congested_clique_local_vc(
    graph: WeightedGraph,
    *,
    eps: float = 0.1,
    seed: SeedLike = None,
) -> CliqueVertexCoverResult:
    """Run Algorithm 1 as a real congested-clique protocol (see module doc).

    Parameters mirror the centralized runner; ``seed`` feeds the shared
    threshold sampler (every node derives its own thresholds from it —
    shared randomness travels as a seed, not as messages).
    """
    check_fraction("eps", eps, low=0.0, high=0.25)
    n = graph.n
    if n == 0:
        return CliqueVertexCoverResult(
            in_cover=np.zeros(0, dtype=bool),
            x=np.empty(0),
            iterations=0,
            cc_rounds=0,
            cover_weight=0.0,
            dual_value=0.0,
        )
    cc = CongestedClique(max(n, 2))
    sampler = ThresholdSampler(seed, n, eps)
    w = graph.weights
    x = degree_scaled_init(graph).copy()
    growth = 1.0 / (1.0 - eps)

    active_v = np.ones(n, dtype=bool)
    active_e = np.ones(graph.m, dtype=bool)
    eu, ev = graph.edges_u, graph.edges_v
    guard = termination_bound(x, w, eps)

    t = 0
    while True:
        # Convergence check: root learns the live-edge count (each node
        # contributes its count of active incident edges; the total is
        # 2x the live edges), then broadcasts continue/stop.
        live_counts = graph.incident_counts(active_e).astype(np.float64)
        total = aggregate_sum(cc, {v: float(live_counts[v]) for v in range(n)})
        broadcast_value(cc, 0, total)
        if total == 0.0:
            break
        if t >= guard:  # pragma: no cover - same guard as centralized
            raise RuntimeError("congested-clique run exceeded its termination bound")

        # LOCAL iteration as one communication round: each node decides
        # from its *local* duals, then notifies neighbors.
        y = graph.incident_sums(x)
        thresholds = sampler.column(t)
        newly = active_v & (y >= thresholds * w)
        msgs = []
        new_ids = np.nonzero(newly)[0]
        for v in new_ids:
            for u in graph.neighbors(int(v)):
                msgs.append(CliqueMessage(int(v), int(u), 1.0))
        cc.exchange(msgs)
        # Both endpoints of every edge now know this round's freezes (their
        # own locally, their neighbors' by message) and update identically.
        active_v &= ~newly
        active_e &= active_v[eu] & active_v[ev]
        x[active_e] *= growth
        t += 1

    # The cover is exactly the frozen set, as in the centralized algorithm;
    # vertices that never froze (including isolated ones) stay out.
    in_cover = np.logical_not(active_v)
    return CliqueVertexCoverResult(
        in_cover=in_cover,
        x=x,
        iterations=t,
        cc_rounds=cc.rounds,
        cover_weight=float(w[in_cover].sum()),
        dual_value=float(x.sum()),
    )
