"""MWVC in the congested clique via the BDH18 equivalence (paper §1.3).

Behnezhad, Derakhshan & Hajiaghayi [BDH18, Theorem 3.2] show the near-linear
memory MPC regime ("semi-MapReduce") and the congested clique simulate each
other with constant-factor round overhead.  The paper invokes this to
conclude an ``O(log log d)``-round congested-clique algorithm for
(2+ε)-approximate MWVC.

This module realizes the MPC→CC direction as an *accounted adapter*:

* one graph vertex per clique node (the model's native input distribution);
* each MPC machine (capacity ``S = c·n`` words) is hosted by a group of
  clique nodes; one MPC round moves at most ``S`` words in and out of each
  machine, which Lenzen's routing theorem delivers in ``O(⌈S/n⌉)`` CC
  rounds — we charge ``LENZEN_ROUNDS · ⌈S/n⌉`` per MPC round, with the
  routing constant pinned at 2 (one round to spread messages over the
  group, one to deliver), the standard accounting for Lenzen routing;
* the underlying MPC execution is Algorithm 2 itself, so the *decisions*
  (and the returned cover) are identical to the MPC run — only the round
  accounting is translated.

The adapter charges real rounds on a :class:`CongestedClique` instance so
that the per-link budget bookkeeping stays live, and returns both the MPC
and CC round counts for experiment E10.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.congested.clique import CongestedClique
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.core.result import MWVCResult
from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike

__all__ = ["CongestedCliqueMWVCResult", "congested_clique_mwvc", "LENZEN_ROUNDS"]

#: CC rounds charged per n-word routing batch (Lenzen's routing theorem
#: delivers any instance with n-word per-node in/out demand in O(1) rounds;
#: 2 is the textbook constant: distribute, then deliver).
LENZEN_ROUNDS = 2


@dataclass(frozen=True)
class CongestedCliqueMWVCResult:
    """MWVC solution with congested-clique round accounting."""

    mpc_result: MWVCResult
    cc_rounds: int
    cc_rounds_per_mpc_round: int
    num_nodes: int

    @property
    def in_cover(self) -> np.ndarray:
        return self.mpc_result.in_cover

    @property
    def cover_weight(self) -> float:
        return self.mpc_result.cover_weight


def congested_clique_mwvc(
    graph: WeightedGraph,
    *,
    eps: float = 0.1,
    params: MPCParameters | None = None,
    seed: SeedLike = None,
) -> CongestedCliqueMWVCResult:
    """Solve MWVC with congested-clique round accounting (see module doc).

    The cover and certificate equal the MPC run's exactly; ``cc_rounds`` is
    the translated round count ``LENZEN_ROUNDS · ⌈S/n⌉ · mpc_rounds``.
    """
    if params is None:
        params = MPCParameters(eps=eps)
    if graph.n == 0:
        raise ValueError("congested clique needs at least one node")
    res = minimum_weight_vertex_cover(
        graph, params=params, seed=seed, engine="vectorized"
    )
    capacity = params.machine_capacity_words(graph.n)
    per_round = LENZEN_ROUNDS * max(1, ceil(capacity / max(1, graph.n)))
    cc = CongestedClique(graph.n)
    cc_rounds = per_round * res.mpc_rounds
    for _ in range(cc_rounds):
        cc.idle_round()
    return CongestedCliqueMWVCResult(
        mpc_result=res,
        cc_rounds=cc.rounds,
        cc_rounds_per_mpc_round=per_round,
        num_nodes=graph.n,
    )
