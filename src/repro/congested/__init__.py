"""Congested-clique model, primitives, and the BDH18 MWVC adapter."""

from repro.congested.clique import CliqueMessage, CongestedClique, LinkCapacityExceeded
from repro.congested.mwvc import (
    LENZEN_ROUNDS,
    CongestedCliqueMWVCResult,
    congested_clique_mwvc,
)
from repro.congested.local_vc import CliqueVertexCoverResult, congested_clique_local_vc
from repro.congested.primitives import (
    aggregate_sum,
    allreduce_sum,
    broadcast_value,
    compute_degree_sum,
)

__all__ = [
    "CongestedClique",
    "CliqueMessage",
    "LinkCapacityExceeded",
    "broadcast_value",
    "aggregate_sum",
    "allreduce_sum",
    "compute_degree_sum",
    "congested_clique_mwvc",
    "CongestedCliqueMWVCResult",
    "LENZEN_ROUNDS",
    "congested_clique_local_vc",
    "CliqueVertexCoverResult",
]
