"""Round and communication metrics for cluster executions.

The MPC cost model cares about three quantities, all captured here:

* **rounds** — the headline complexity measure (Theorem 1.1);
* **communication** — words sent/received per machine per round, which must
  stay within ``S``;
* **memory** — per-machine high-water storage, which must stay within ``S``
  (Lemma 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["RoundRecord", "ClusterMetrics"]


@dataclass
class RoundRecord:
    """Communication totals for one synchronous round."""

    round_index: int
    messages: int = 0
    total_words: int = 0
    max_sent_words: int = 0
    max_received_words: int = 0


@dataclass
class ClusterMetrics:
    """Aggregated metrics over a cluster execution."""

    rounds: int = 0
    total_messages: int = 0
    total_words: int = 0
    max_sent_words: int = 0
    max_received_words: int = 0
    memory_high_water: int = 0
    per_round: List[RoundRecord] = field(default_factory=list)

    def record_round(self, rec: RoundRecord) -> None:
        """Fold one round's record into the aggregates."""
        self.rounds += 1
        self.total_messages += rec.messages
        self.total_words += rec.total_words
        self.max_sent_words = max(self.max_sent_words, rec.max_sent_words)
        self.max_received_words = max(self.max_received_words, rec.max_received_words)
        self.per_round.append(rec)

    def observe_memory(self, high_water: int) -> None:
        """Update the cluster-wide memory high-water mark."""
        if high_water > self.memory_high_water:
            self.memory_high_water = high_water

    def summary(self) -> dict:
        """Plain-dict summary for table printers and JSON dumps."""
        return {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_words": self.total_words,
            "max_sent_words": self.max_sent_words,
            "max_received_words": self.max_received_words,
            "memory_high_water": self.memory_high_water,
        }
