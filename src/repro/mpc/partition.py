"""Random vertex partitioning (Algorithm 2, Line (2f)).

Every phase of the MPC algorithm assigns each simulated vertex to one of
``m`` machines independently and uniformly at random.  Both execution
engines (vectorized and cluster) must consume *identical* assignments for a
given seed, so the assignment is produced here, once, as a plain array, and
handed to whichever engine runs the phase.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["random_assignment", "assignment_counts", "local_edge_mask"]


def random_assignment(
    rng: np.random.Generator, num_items: int, num_machines: int
) -> np.ndarray:
    """I.i.d. uniform machine assignment for ``num_items`` items.

    Returns an ``int64`` array ``a`` with ``a[i] ∈ [0, num_machines)``.
    """
    if num_machines < 1:
        raise ValueError(f"num_machines must be >= 1, got {num_machines}")
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    return rng.integers(0, num_machines, size=num_items, dtype=np.int64)


def assignment_counts(assignment: np.ndarray, num_machines: int) -> np.ndarray:
    """Number of items per machine."""
    return np.bincount(assignment, minlength=num_machines).astype(np.int64)


def local_edge_mask(
    assignment_u: np.ndarray, assignment_v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Identify machine-local edges under a vertex assignment.

    Parameters
    ----------
    assignment_u, assignment_v:
        Machine ids of the two endpoints of every edge (``-1`` for endpoints
        that are not being simulated this phase).

    Returns
    -------
    (is_local, owner):
        ``is_local[e]`` is True when both endpoints are simulated and landed
        on the same machine; ``owner[e]`` is that machine id for local edges
        and ``-1`` otherwise.
    """
    a = np.asarray(assignment_u)
    b = np.asarray(assignment_v)
    if a.shape != b.shape:
        raise ValueError("assignment arrays must have equal shape")
    is_local = (a == b) & (a >= 0)
    owner = np.where(is_local, a, -1)
    return is_local, owner
