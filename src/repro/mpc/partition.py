"""Vertex partitioning: random (Algorithm 2, Line (2f)) and deterministic.

Every phase of the MPC algorithm assigns each simulated vertex to one of
``m`` machines independently and uniformly at random.  Both execution
engines (vectorized and cluster) must consume *identical* assignments for a
given seed, so the assignment is produced here, once, as a plain array, and
handed to whichever engine runs the phase.

The sharded stream pipeline (:mod:`repro.dynamic.sharded`) reuses the same
assignment-array representation but needs *stable* partitions — the owner
of a vertex must be recomputable from the partition parameters alone, so a
resumed run re-derives the exact shard layout from its checkpoint config.
Two deterministic schemes are provided:

* :func:`hash_partition` — a fixed integer mixer (splitmix64) over the
  vertex id; spreads adjacent ids across shards, insensitive to vertex
  numbering locality.
* :func:`range_partition` — contiguous near-equal ranges; keeps id-local
  neighborhoods together (low cut fraction when the numbering is
  community-correlated).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "PARTITION_SCHEMES",
    "assignment_counts",
    "cut_edge_fraction",
    "hash_partition",
    "local_edge_mask",
    "make_partition",
    "random_assignment",
    "range_partition",
]

PARTITION_SCHEMES = ("hash", "range")


def random_assignment(
    rng: np.random.Generator, num_items: int, num_machines: int
) -> np.ndarray:
    """I.i.d. uniform machine assignment for ``num_items`` items.

    Returns an ``int64`` array ``a`` with ``a[i] ∈ [0, num_machines)``.
    """
    if num_machines < 1:
        raise ValueError(f"num_machines must be >= 1, got {num_machines}")
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    return rng.integers(0, num_machines, size=num_items, dtype=np.int64)


def assignment_counts(assignment: np.ndarray, num_machines: int) -> np.ndarray:
    """Number of items per machine."""
    return np.bincount(assignment, minlength=num_machines).astype(np.int64)


def _check_shards(num_items: int, num_shards: int) -> None:
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")


def hash_partition(num_items: int, num_shards: int, *, seed: int = 0) -> np.ndarray:
    """Deterministic hashed assignment of ``num_items`` ids to shards.

    Uses the splitmix64 finalizer over ``id + seed`` — a fixed bijective
    mixer, so the assignment depends only on ``(num_items, num_shards,
    seed)`` and is identical across processes and Python versions (unlike
    the builtin ``hash``, which is salted per interpreter).
    """
    _check_shards(num_items, num_shards)
    z = np.arange(num_items, dtype=np.uint64) + np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    z = (z + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    z ^= z >> np.uint64(30)
    z = (z * np.uint64(0xBF58476D1CE4E5B9)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    z ^= z >> np.uint64(27)
    z = (z * np.uint64(0x94D049BB133111EB)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    z ^= z >> np.uint64(31)
    return (z % np.uint64(num_shards)).astype(np.int64)


def range_partition(num_items: int, num_shards: int) -> np.ndarray:
    """Contiguous near-equal ranges: shard ``s`` owns one id interval.

    The first ``num_items % num_shards`` shards get one extra id, so shard
    sizes differ by at most one.
    """
    _check_shards(num_items, num_shards)
    base, extra = divmod(num_items, num_shards)
    sizes = np.full(num_shards, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.repeat(np.arange(num_shards, dtype=np.int64), sizes)


def make_partition(
    scheme: str, num_items: int, num_shards: int, *, seed: int = 0
) -> np.ndarray:
    """Dispatch to a deterministic partition scheme by name."""
    if scheme == "hash":
        return hash_partition(num_items, num_shards, seed=seed)
    if scheme == "range":
        return range_partition(num_items, num_shards)
    raise ValueError(
        f"unknown partition scheme {scheme!r}; known: {PARTITION_SCHEMES}"
    )


def cut_edge_fraction(
    edges_u: np.ndarray, edges_v: np.ndarray, assignment: np.ndarray
) -> float:
    """Fraction of edges whose endpoints land on different shards."""
    u = np.asarray(edges_u, dtype=np.int64)
    v = np.asarray(edges_v, dtype=np.int64)
    if u.size == 0:
        return 0.0
    a = np.asarray(assignment, dtype=np.int64)
    return float((a[u] != a[v]).mean())


def local_edge_mask(
    assignment_u: np.ndarray, assignment_v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Identify machine-local edges under a vertex assignment.

    Parameters
    ----------
    assignment_u, assignment_v:
        Machine ids of the two endpoints of every edge (``-1`` for endpoints
        that are not being simulated this phase).

    Returns
    -------
    (is_local, owner):
        ``is_local[e]`` is True when both endpoints are simulated and landed
        on the same machine; ``owner[e]`` is that machine id for local edges
        and ``-1`` otherwise.
    """
    a = np.asarray(assignment_u)
    b = np.asarray(assignment_v)
    if a.shape != b.shape:
        raise ValueError("assignment arrays must have equal shape")
    is_local = (a == b) & (a >= 0)
    owner = np.where(is_local, a, -1)
    return is_local, owner
