"""Exceptions raised by the MPC cluster simulator.

These model the *hard constraints* of the MPC model (Section 1.1 of the
paper): local memory of ``S`` words, and per-round communication bounded by
``S`` words sent and received per machine.  An algorithm that violates a
constraint is wrong in the model even if it computes the right answer, so
the simulator refuses to proceed rather than warn.
"""

from __future__ import annotations

__all__ = [
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "DeadMachineError",
    "ProtocolError",
]


class MPCError(RuntimeError):
    """Base class for MPC-model violations."""


class MemoryLimitExceeded(MPCError):
    """A machine's local storage exceeded its ``S``-word capacity."""

    def __init__(self, machine_id: int, used: int, capacity: int, key: str = ""):
        self.machine_id = machine_id
        self.used = used
        self.capacity = capacity
        self.key = key
        detail = f" while storing {key!r}" if key else ""
        super().__init__(
            f"machine {machine_id} memory limit exceeded{detail}: "
            f"{used} words used, capacity {capacity}"
        )


class CommunicationLimitExceeded(MPCError):
    """A machine sent or received more than ``S`` words in one round."""

    def __init__(self, machine_id: int, direction: str, words: int, capacity: int):
        self.machine_id = machine_id
        self.direction = direction
        self.words = words
        self.capacity = capacity
        super().__init__(
            f"machine {machine_id} {direction} {words} words in one round, "
            f"capacity {capacity}"
        )


class DeadMachineError(MPCError):
    """A message was addressed to (or expected from) a failed machine."""

    def __init__(self, machine_id: int, round_index: int):
        self.machine_id = machine_id
        self.round_index = round_index
        super().__init__(f"machine {machine_id} is dead (failed before round {round_index})")


class ProtocolError(MPCError):
    """The algorithm misused the cluster API (e.g. unknown machine id)."""
