"""MPC cluster simulator: machines, synchronous rounds, model-cost accounting."""

from repro.mpc.cluster import Cluster
from repro.mpc.exceptions import (
    CommunicationLimitExceeded,
    DeadMachineError,
    MemoryLimitExceeded,
    MPCError,
    ProtocolError,
)
from repro.mpc.machine import Machine
from repro.mpc.message import Message, payload_words
from repro.mpc.metrics import ClusterMetrics, RoundRecord
from repro.mpc.partition import assignment_counts, local_edge_mask, random_assignment
from repro.mpc.primitives import aggregate_sum, broadcast, gather_concat, route, tree_fanout

__all__ = [
    "Cluster",
    "Machine",
    "Message",
    "payload_words",
    "ClusterMetrics",
    "RoundRecord",
    "MPCError",
    "MemoryLimitExceeded",
    "CommunicationLimitExceeded",
    "DeadMachineError",
    "ProtocolError",
    "random_assignment",
    "assignment_counts",
    "local_edge_mask",
    "broadcast",
    "aggregate_sum",
    "gather_concat",
    "route",
    "tree_fanout",
]
