"""A single MPC machine: bounded local storage with usage accounting.

A machine is a key-value store whose total size may never exceed the
capacity ``S`` (in words; see :func:`repro.mpc.message.payload_words` for the
charging rules).  The high-water mark is tracked so experiments can report
*peak* memory per machine (Lemma 4.1 is a statement about the peak).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.mpc.exceptions import MemoryLimitExceeded
from repro.mpc.message import payload_words

__all__ = ["Machine"]


class Machine:
    """Bounded-memory machine.

    Parameters
    ----------
    machine_id:
        Identifier in ``0 .. num_machines - 1``.
    capacity_words:
        Local memory ``S`` in words.  ``None`` disables enforcement (used by
        unit tests of other components, never by model-faithful runs).
    """

    __slots__ = ("machine_id", "capacity_words", "_store", "_sizes", "used_words", "high_water", "alive")

    def __init__(self, machine_id: int, capacity_words: int | None):
        self.machine_id = int(machine_id)
        self.capacity_words = None if capacity_words is None else int(capacity_words)
        self._store: Dict[str, Any] = {}
        self._sizes: Dict[str, int] = {}
        self.used_words = 0
        self.high_water = 0
        self.alive = True

    # ------------------------------------------------------------------ #
    def store(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, replacing any previous value.

        Raises :class:`MemoryLimitExceeded` if the new total exceeds capacity
        (the store is rolled back — the machine keeps its previous state).
        """
        new_size = payload_words(value)
        old_size = self._sizes.get(key, 0)
        new_total = self.used_words - old_size + new_size
        if self.capacity_words is not None and new_total > self.capacity_words:
            raise MemoryLimitExceeded(self.machine_id, new_total, self.capacity_words, key)
        self._store[key] = value
        self._sizes[key] = new_size
        self.used_words = new_total
        if new_total > self.high_water:
            self.high_water = new_total

    def load(self, key: str) -> Any:
        """Retrieve the value stored under ``key`` (KeyError if absent)."""
        return self._store[key]

    def free(self, key: str) -> None:
        """Delete ``key`` (no-op when absent)."""
        if key in self._store:
            self.used_words -= self._sizes.pop(key)
            del self._store[key]

    def has(self, key: str) -> bool:
        """Whether ``key`` is present."""
        return key in self._store

    def keys(self):
        """Stored keys (view)."""
        return self._store.keys()

    def clear(self) -> None:
        """Drop all stored data (capacity and high-water are kept)."""
        self._store.clear()
        self._sizes.clear()
        self.used_words = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "∞" if self.capacity_words is None else str(self.capacity_words)
        return (
            f"Machine(id={self.machine_id}, used={self.used_words}/{cap}, "
            f"high_water={self.high_water}, alive={self.alive})"
        )
