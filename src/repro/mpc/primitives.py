"""Collective communication primitives on top of :class:`~repro.mpc.cluster.Cluster`.

The MPC literature freely uses "broadcast a seed", "aggregate the degree
counts", "route each edge to its machine" as O(1)-round steps; in the
near-linear memory regime they are implemented with fan-out/fan-in trees
whose fan-out is chosen so every transfer respects the per-round ``S``-word
limit.  This module implements exactly those trees, so that every collective
costs its true round count and the cluster's metrics remain model-accurate.

All primitives are deterministic: message order is fixed by machine id.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mpc.cluster import Cluster
from repro.mpc.message import Message, payload_words

__all__ = ["broadcast", "aggregate_sum", "route", "gather_concat", "tree_fanout"]


def tree_fanout(cluster: Cluster, item_words: int) -> int:
    """Largest per-level fan-out that keeps one level within capacity.

    A node transferring ``f`` copies (broadcast) or receiving ``f`` partials
    (aggregation) of an ``item_words``-sized object moves ``f * item_words``
    words; the fan-out is capped so this stays within ``S``.
    """
    if cluster.capacity_words is None:
        return max(2, cluster.num_machines)
    if item_words <= 0:
        return max(2, cluster.num_machines)
    return max(2, cluster.capacity_words // max(1, item_words))


def broadcast(
    cluster: Cluster,
    src: int,
    tag: str,
    payload,
    *,
    dst_ids: Optional[Sequence[int]] = None,
    fanout: Optional[int] = None,
) -> Dict[int, object]:
    """Broadcast ``payload`` from machine ``src`` to ``dst_ids`` (default all).

    Uses a fan-out tree: in each round, every machine already holding the
    payload forwards it to up to ``fanout`` machines that do not.  Returns
    ``{machine_id: payload}`` for all destinations (including ``src`` if it
    is a destination).  Round cost: ``ceil(log_fanout(len(dst_ids)))``.

    ``fanout`` may be prescribed by the caller (the MWVC cluster engine does
    this so its round counts match the analytic accounting); by default it is
    derived from the payload size and capacity.
    """
    targets = list(range(cluster.num_machines)) if dst_ids is None else sorted(set(dst_ids))
    words = payload_words(payload)
    if fanout is None:
        fanout = tree_fanout(cluster, words)
    holders = [src]
    pending = [t for t in targets if t != src]
    received: Dict[int, object] = {}
    if src in targets:
        received[src] = payload
    while pending:
        out: List[Message] = []
        assignments = []
        for h_idx, holder in enumerate(holders):
            lo = h_idx * fanout
            chunk = pending[lo : lo + fanout]
            for dst in chunk:
                out.append(Message(holder, dst, tag, payload))
                assignments.append(dst)
            if lo >= len(pending):
                break
        inboxes = cluster.exchange(out)
        for dst in assignments:
            received[dst] = inboxes[dst][0].payload
        holders = holders + assignments
        pending = pending[len(assignments) :]
    return received


def aggregate_sum(
    cluster: Cluster,
    tag: str,
    partials: Dict[int, np.ndarray],
    *,
    root: int = 0,
    fanout: Optional[int] = None,
) -> np.ndarray:
    """Sum dense numpy vectors held by machines, delivering the total to ``root``.

    Fan-in tree: machines are grouped in blocks of ``fanout``; block members
    send their partial to the block leader, leaders sum, and the process
    repeats on the leaders.  Round cost: ``ceil(log_fanout(M))``.

    Parameters
    ----------
    partials:
        ``machine_id -> vector``; all vectors must share shape and dtype.
        Machines without an entry contribute zero (and send nothing).
    """
    if not partials:
        raise ValueError("aggregate_sum needs at least one partial")
    shapes = {v.shape for v in partials.values()}
    if len(shapes) != 1:
        raise ValueError(f"partial vectors disagree in shape: {shapes}")
    (shape,) = shapes
    words = int(np.prod(shape))
    if fanout is None:
        fanout = tree_fanout(cluster, words)
    # Work on the sorted list of participating machines; fold `root` in so
    # the final value lands there.
    current: Dict[int, np.ndarray] = {mid: np.array(v, dtype=np.float64) for mid, v in partials.items()}
    if root not in current:
        current[root] = np.zeros(shape, dtype=np.float64)
    while len(current) > 1:
        ids = sorted(current.keys(), key=lambda i: (i != root, i))
        # ids[0] is root; leaders are every `fanout`-th machine in this order.
        out: List[Message] = []
        leaders: Dict[int, np.ndarray] = {}
        for idx, mid in enumerate(ids):
            leader = ids[(idx // fanout) * fanout]
            if mid == leader:
                leaders[mid] = current[mid]
            else:
                out.append(Message(mid, leader, tag, current[mid]))
        inboxes = cluster.exchange(out)
        for leader, acc in leaders.items():
            for msg in inboxes.get(leader, []):
                acc = acc + msg.payload
            leaders[leader] = acc
        current = leaders
    return current[root]


def route(cluster: Cluster, tag: str, messages: Sequence[Message]) -> Dict[int, List[Message]]:
    """One round of arbitrary point-to-point routing (thin exchange wrapper).

    Provided for symmetry with the collectives; capacity enforcement and
    accounting are inherited from :meth:`Cluster.exchange`.
    """
    return cluster.exchange(list(messages))


def gather_concat(
    cluster: Cluster,
    tag: str,
    parts: Dict[int, np.ndarray],
    *,
    root: int = 0,
    fanout: Optional[int] = None,
) -> np.ndarray:
    """Gather variable-length vectors to ``root``, concatenated in machine order.

    Fan-in tree like :func:`aggregate_sum`, but payload sizes grow as parts
    merge; each hop is separately capacity-checked by the cluster.  Parts are
    tagged with their origin so the final concatenation is ordered by source
    machine id regardless of tree shape.
    """
    if not parts:
        raise ValueError("gather_concat needs at least one part")
    dtype = next(iter(parts.values())).dtype
    current: Dict[int, List] = {
        mid: [(mid, np.asarray(v))] for mid, v in parts.items()
    }
    if root not in current:
        current[root] = [(root, np.empty(0, dtype=dtype))]
    if fanout is None:
        max_words = max(int(np.asarray(v).size) for v in parts.values())
        fanout = tree_fanout(cluster, max(1, max_words))
    while len(current) > 1:
        ids = sorted(current.keys(), key=lambda i: (i != root, i))
        out: List[Message] = []
        leaders: Dict[int, List] = {}
        for idx, mid in enumerate(ids):
            leader = ids[(idx // fanout) * fanout]
            if mid == leader:
                leaders[mid] = current[mid]
            else:
                out.append(Message(mid, leader, tag, current[mid]))
        inboxes = cluster.exchange(out)
        for leader in leaders:
            for msg in inboxes.get(leader, []):
                leaders[leader] = leaders[leader] + msg.payload
        current = leaders
    pieces = sorted(current[root], key=lambda kv: kv[0])
    arrays = [np.asarray(a) for _, a in pieces if np.asarray(a).size]
    if not arrays:
        return np.empty(0, dtype=dtype)
    return np.concatenate(arrays)
