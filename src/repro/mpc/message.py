"""Messages and word-size accounting.

The MPC model measures communication in *words* (machine-word-sized units,
enough for a vertex id, an edge id, or a fixed-precision weight).  The
simulator charges every message by :func:`payload_words` so that round
capacities can be enforced exactly, independent of Python's actual object
sizes.

Charging rules (documented because benchmarks report these numbers):

* a numpy array costs one word per element;
* a Python scalar (int / float / bool / numpy scalar) costs one word;
* tuples / lists / dicts cost the sum of their items (dicts: keys + values);
* ``None`` is free (it encodes "no payload");
* strings cost ``ceil(len/8)`` words (8 ASCII characters per 64-bit word).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Message", "payload_words"]


def payload_words(payload: Any) -> int:
    """Number of machine words needed to transmit ``payload``."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (bool, int, float, np.integer, np.floating, np.bool_)):
        return 1
    if isinstance(payload, str):
        return (len(payload) + 7) // 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in payload.items())
    raise TypeError(f"cannot size payload of type {type(payload).__name__}")


@dataclass(frozen=True)
class Message:
    """A point-to-point message for one synchronous round.

    Attributes
    ----------
    src, dst:
        Machine ids (``0 .. num_machines-1``).
    tag:
        Application-level routing tag (e.g. ``"edges"``, ``"freeze"``).
    payload:
        Any sizeable object (see :func:`payload_words`).
    words:
        Cached size; computed automatically.
    """

    src: int
    dst: int
    tag: str
    payload: Any = None
    words: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "words", payload_words(self.payload))
