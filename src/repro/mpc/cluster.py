"""Synchronous-round MPC cluster simulator.

The simulator realizes the model of Section 1.1 of the paper: ``M`` machines
with ``S`` words of local memory each; computation proceeds in synchronous
rounds; in each round every machine performs local computation and then sends
messages, subject to the constraint that no machine sends or receives more
than ``S`` words per round.  Violations raise (see
:mod:`repro.mpc.exceptions`) — a run that completes is, by construction, a
valid MPC execution, and its :class:`~repro.mpc.metrics.ClusterMetrics` are
the model costs reported in the benchmarks.

Failure injection: machines can be scheduled to die before a given round
(``kill_schedule``).  Dead machines emit nothing; addressing a dead machine
raises :class:`~repro.mpc.exceptions.DeadMachineError`.  The MWVC algorithms
do not implement fault tolerance (neither does the paper); the tests use
failure injection to verify that violations *surface* rather than corrupt
results silently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.mpc.exceptions import (
    CommunicationLimitExceeded,
    DeadMachineError,
    ProtocolError,
)
from repro.mpc.machine import Machine
from repro.mpc.message import Message
from repro.mpc.metrics import ClusterMetrics, RoundRecord

__all__ = ["Cluster"]


class Cluster:
    """A fixed set of machines exchanging messages in synchronous rounds.

    Parameters
    ----------
    num_machines:
        Number of machines ``M`` (>= 1).
    capacity_words:
        Per-machine memory and per-round communication bound ``S`` in words;
        ``None`` disables enforcement.
    kill_schedule:
        Optional mapping ``round_index -> iterable of machine ids`` that die
        *before* that round executes.
    """

    def __init__(
        self,
        num_machines: int,
        capacity_words: int | None,
        *,
        kill_schedule: Optional[Dict[int, Iterable[int]]] = None,
    ):
        if num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {num_machines}")
        self.num_machines = int(num_machines)
        self.capacity_words = None if capacity_words is None else int(capacity_words)
        self.machines = [Machine(i, self.capacity_words) for i in range(self.num_machines)]
        self.metrics = ClusterMetrics()
        self._kill_schedule = {
            int(r): frozenset(int(i) for i in ids) for r, ids in (kill_schedule or {}).items()
        }
        self._round_index = 0

    # ------------------------------------------------------------------ #
    @property
    def round_index(self) -> int:
        """Index of the next round to execute (0-based)."""
        return self._round_index

    def machine(self, machine_id: int) -> Machine:
        """Machine by id, with bounds checking."""
        if not (0 <= machine_id < self.num_machines):
            raise ProtocolError(f"machine id {machine_id} out of range [0, {self.num_machines})")
        return self.machines[machine_id]

    def alive_ids(self) -> List[int]:
        """Ids of machines still alive."""
        return [m.machine_id for m in self.machines if m.alive]

    # ------------------------------------------------------------------ #
    def exchange(self, outgoing: Iterable[Message]) -> Dict[int, List[Message]]:
        """Execute one communication round.

        Takes all messages produced by the machines' local computation this
        round, enforces the model constraints, advances the round counter,
        and returns the inboxes (``dst -> [messages]``, in deterministic
        ``(src, dst)`` order) for the next round's local computation.

        Raises
        ------
        CommunicationLimitExceeded
            If a machine's total sent or received words exceed ``S``.
        DeadMachineError
            If a message's source or destination machine is dead.
        ProtocolError
            On out-of-range machine ids.
        """
        self._apply_kills()
        msgs = sorted(outgoing, key=lambda mm: (mm.src, mm.dst, mm.tag))
        sent = [0] * self.num_machines
        received = [0] * self.num_machines
        inboxes: Dict[int, List[Message]] = {}
        for msg in msgs:
            if not (0 <= msg.src < self.num_machines):
                raise ProtocolError(f"message source {msg.src} out of range")
            if not (0 <= msg.dst < self.num_machines):
                raise ProtocolError(f"message destination {msg.dst} out of range")
            if not self.machines[msg.src].alive:
                raise DeadMachineError(msg.src, self._round_index)
            if not self.machines[msg.dst].alive:
                raise DeadMachineError(msg.dst, self._round_index)
            sent[msg.src] += msg.words
            received[msg.dst] += msg.words
            inboxes.setdefault(msg.dst, []).append(msg)
        if self.capacity_words is not None:
            for mid in range(self.num_machines):
                if sent[mid] > self.capacity_words:
                    raise CommunicationLimitExceeded(mid, "sent", sent[mid], self.capacity_words)
                if received[mid] > self.capacity_words:
                    raise CommunicationLimitExceeded(
                        mid, "received", received[mid], self.capacity_words
                    )
        rec = RoundRecord(
            round_index=self._round_index,
            messages=len(msgs),
            total_words=sum(m.words for m in msgs),
            max_sent_words=max(sent) if sent else 0,
            max_received_words=max(received) if received else 0,
        )
        self.metrics.record_round(rec)
        self._round_index += 1
        for machine in self.machines:
            self.metrics.observe_memory(machine.high_water)
        return inboxes

    def local_round(self) -> None:
        """Account a round in which machines compute but send nothing.

        The MPC model charges rounds, not messages; a purely local phase
        still costs one round of the complexity measure.
        """
        self.exchange([])

    def _apply_kills(self) -> None:
        doomed = self._kill_schedule.get(self._round_index, frozenset())
        for mid in doomed:
            if 0 <= mid < self.num_machines:
                machine = self.machines[mid]
                machine.alive = False
                machine.clear()

    # ------------------------------------------------------------------ #
    def memory_high_water(self) -> int:
        """Maximum storage any machine has held, in words."""
        return max((m.high_water for m in self.machines), default=0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "∞" if self.capacity_words is None else str(self.capacity_words)
        return (
            f"Cluster(M={self.num_machines}, S={cap}, rounds={self.metrics.rounds}, "
            f"alive={len(self.alive_ids())})"
        )
