"""LRU semantics and statistics of the service result cache."""

import pytest

from repro.service.cache import ResultCache


def test_miss_then_hit():
    cache = ResultCache(4)
    assert cache.get("k") is None
    cache.put("k", "res")  # type: ignore[arg-type] - any object works
    assert cache.get("k") == "res"
    stats = cache.stats()
    assert stats.hits == 1 and stats.misses == 1
    assert stats.hit_rate == pytest.approx(0.5)


def test_lru_eviction_order():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a": now "b" is least recent
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 1 and cache.get("c") == 3
    assert cache.stats().evictions == 1


def test_put_refreshes_recency_and_value():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert: no eviction
    cache.put("c", 3)  # evicts "b", the least recent
    assert cache.get("a") == 10
    assert "b" not in cache
    assert len(cache) == 2


def test_zero_capacity_disables_storage():
    cache = ResultCache(0)
    cache.put("k", 1)
    assert cache.get("k") is None
    assert len(cache) == 0
    assert cache.stats().misses == 1


def test_clear_keeps_stats():
    cache = ResultCache(4)
    cache.put("k", 1)
    assert cache.get("k") == 1
    cache.clear()
    assert "k" not in cache
    assert cache.stats().hits == 1


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ResultCache(-1)
