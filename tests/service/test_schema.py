"""Request digests and manifest parsing."""

import io
import json

import numpy as np
import pytest

from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.service.manifest import graph_from_spec, load_manifest, request_from_spec
from repro.service.schema import SolveRequest, request_digest


# --------------------------------------------------------------------- #
# digests
# --------------------------------------------------------------------- #
def test_graph_digest_stable_across_edge_orderings():
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    w = [1.0, 2.0, 3.0, 4.0]
    a = WeightedGraph.from_edge_list(4, edges, w)
    b = WeightedGraph.from_edge_list(4, list(reversed(edges)), w)
    c = WeightedGraph.from_edge_list(4, [(v, u) for u, v in edges], w)
    d = WeightedGraph.from_edge_list(4, edges + [(0, 1)], w)  # duplicate merged
    assert a.content_digest() == b.content_digest() == c.content_digest()
    assert a.content_digest() == d.content_digest()


def test_graph_digest_sensitive_to_content():
    base = WeightedGraph.from_edge_list(3, [(0, 1), (1, 2)])
    other_edges = WeightedGraph.from_edge_list(3, [(0, 1), (0, 2)])
    other_weights = base.with_weights(np.array([1.0, 2.0, 1.0]))
    other_n = WeightedGraph.from_edge_list(4, [(0, 1), (1, 2)])
    digests = {
        g.content_digest() for g in (base, other_edges, other_weights, other_n)
    }
    assert len(digests) == 4


def test_request_digest_covers_every_solve_parameter():
    g = gnp_average_degree(30, 4.0, seed=0)
    base = request_digest(g, eps=0.1, seed=0, engine="vectorized")
    assert request_digest(g, eps=0.1, seed=0, engine="vectorized") == base
    assert request_digest(g, eps=0.2, seed=0, engine="vectorized") != base
    assert request_digest(g, eps=0.1, seed=1, engine="vectorized") != base
    assert request_digest(g, eps=0.1, seed=0, engine="cluster") != base


def test_request_label_fallback():
    g = WeightedGraph.from_edge_list(2, [(0, 1)])
    req = SolveRequest(g)
    assert req.label().startswith("req-")
    assert SolveRequest(g, request_id="mine").label() == "mine"


# --------------------------------------------------------------------- #
# manifests
# --------------------------------------------------------------------- #
def test_manifest_family_and_inline_and_comments():
    lines = [
        "# comment",
        "",
        json.dumps({"id": "a", "family": "gnp", "n": 50, "degree": 4, "graph_seed": 1}),
        json.dumps({"n": 3, "edges": [[0, 1], [1, 2]], "weights": [1, 2, 1], "eps": 0.05}),
    ]
    reqs = load_manifest(lines)
    assert [r.request_id for r in reqs] == ["a", "line-4"]
    assert reqs[0].graph.n == 50
    assert reqs[1].graph.m == 2
    assert reqs[1].eps == 0.05


def test_manifest_from_stream_and_path(tmp_path):
    text = json.dumps({"family": "tree", "n": 20}) + "\n"
    assert load_manifest(io.StringIO(text))[0].graph.n == 20
    path = tmp_path / "m.jsonl"
    path.write_text(text)
    assert load_manifest(str(path))[0].graph.n == 20


def test_manifest_input_file_round_trip(tmp_path):
    from repro.graphs.io import save_npz

    g = gnp_average_degree(40, 4.0, seed=3)
    path = tmp_path / "g.npz"
    save_npz(g, path)
    req = request_from_spec({"input": str(path)})
    assert req.graph.content_digest() == g.content_digest()


def test_manifest_errors_name_the_line():
    with pytest.raises(ValueError, match="line 2"):
        load_manifest([json.dumps({"family": "tree", "n": 5}), "{not json"])
    with pytest.raises(ValueError, match="line 1"):
        load_manifest([json.dumps({"family": "tree", "n": 5, "bogus": 1})])


def test_manifest_rejects_unknown_engine_up_front():
    with pytest.raises(ValueError, match="unknown engine"):
        request_from_spec({"family": "tree", "n": 5, "engine": "vectorised"})


def test_spec_requires_exactly_one_graph_source():
    with pytest.raises(ValueError, match="exactly one"):
        graph_from_spec({"family": "tree", "n": 5, "edges": [[0, 1]]})
    with pytest.raises(ValueError, match="exactly one"):
        graph_from_spec({"eps": 0.1})
