"""BatchSolver: pooling, isolation, dedup, caching, timeouts."""

import numpy as np
import pytest

from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights
from repro.service.batch import BatchSolver, solve_sequential
from repro.service.schema import SolveRequest


def _graph(seed, n=60, degree=5.0):
    g = gnp_average_degree(n, degree, seed=seed)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=seed + 100))


def _requests(k=4):
    return [SolveRequest(_graph(i), seed=7, request_id=f"r{i}") for i in range(k)]


def test_pooled_matches_sequential():
    reqs = _requests(4)
    seq = solve_sequential(reqs)
    with BatchSolver(max_workers=2, cache=None) as solver:
        pooled = solver.solve_batch(reqs)
    assert [r.request_id for r in pooled] == [f"r{i}" for i in range(4)]
    for s, p in zip(seq, pooled):
        assert p.ok and not p.cache_hit
        assert p.result.cover_weight == s.result.cover_weight
        assert np.array_equal(p.result.in_cover, s.result.in_cover)


def test_error_isolation_one_bad_request():
    reqs = _requests(3)
    # eps = 0.4 is outside the solver's (0, 1/4) domain: the worker must
    # report it as a per-request failure, not kill the batch.
    reqs.insert(1, SolveRequest(_graph(9), eps=0.4, request_id="bad"))
    with BatchSolver(max_workers=2, cache=None, chunk_size=2) as solver:
        out = solver.solve_batch(reqs)
    by_id = {r.request_id: r for r in out}
    assert not by_id["bad"].ok
    assert "eps" in by_id["bad"].error
    assert by_id["bad"].result is None
    for rid in ("r0", "r1", "r2"):
        assert by_id[rid].ok, by_id[rid].error
        assert by_id[rid].result is not None


def test_within_batch_dedup_and_warm_cache_replay():
    g = _graph(1)
    reqs = [
        SolveRequest(g, seed=3, request_id="first"),
        SolveRequest(g, seed=3, request_id="dup"),
    ]
    with BatchSolver(max_workers=2, cache=8) as solver:
        out = solver.solve_batch(reqs)
        assert out[0].ok and not out[0].cache_hit
        assert out[1].ok and out[1].cache_hit  # deduplicated, not re-solved
        assert out[1].result is out[0].result
        replay = solver.solve_batch(reqs)
    assert all(r.cache_hit for r in replay)
    assert all(r.elapsed == 0.0 for r in replay)
    assert replay[0].result is out[0].result  # served from cache, no re-solve
    assert replay[0].result.cover_weight == out[0].result.cover_weight


def test_cache_disabled_always_solves():
    g = _graph(2)
    req = SolveRequest(g, request_id="x")
    with BatchSolver(cache=None, use_processes=False) as solver:
        a = solver.solve(req)
        b = solver.solve(req)
    assert a.ok and b.ok
    assert not a.cache_hit and not b.cache_hit


def test_inline_mode_no_pool():
    reqs = _requests(2)
    with BatchSolver(use_processes=False, cache=4) as solver:
        out = solver.solve_batch(reqs)
    assert all(r.ok for r in out)
    assert solver._pool is None  # never created a process pool


def test_per_request_timeout_is_isolated():
    # A deliberately large instance with a microscopic budget must time out;
    # its batch-mates must still succeed.  Inline mode exercises the same
    # SIGALRM path the workers use, without depending on pool scheduling.
    big = gnp_average_degree(4000, 30.0, seed=5)
    reqs = [
        SolveRequest(_graph(3), request_id="small"),
        SolveRequest(big, request_id="big"),
    ]
    with BatchSolver(use_processes=False, cache=None, timeout=1e-4) as solver:
        out = solver.solve_batch(reqs)
    by_id = {r.request_id: r for r in out}
    assert not by_id["big"].ok
    assert "timeout" in by_id["big"].error
    # the small instance may or may not beat 0.1ms; what matters is the big
    # one's timeout did not poison the batch structure
    assert by_id["small"].request_id == "small"


def test_constructor_validation():
    with pytest.raises(ValueError):
        BatchSolver(max_workers=0)
    with pytest.raises(ValueError):
        BatchSolver(chunk_size=0)
    with pytest.raises(ValueError):
        BatchSolver(timeout=0.0)


def test_results_keep_request_order_with_chunks():
    reqs = _requests(5)
    with BatchSolver(max_workers=2, chunk_size=2, cache=None) as solver:
        out = solver.solve_batch(reqs)
    assert [r.request_id for r in out] == [f"r{i}" for i in range(5)]
