"""Tests for the result types."""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights


@pytest.fixture(scope="module")
def result_and_graph():
    g = gnp_average_degree(1000, 32.0, seed=90)
    g = g.with_weights(uniform_weights(g.n, seed=91))
    return minimum_weight_vertex_cover(g, eps=0.1, seed=92), g


class TestMWVCResult:
    def test_cover_ids_match_mask(self, result_and_graph):
        res, g = result_and_graph
        ids = res.cover_ids()
        mask = np.zeros(g.n, dtype=bool)
        mask[ids] = True
        assert np.array_equal(mask, res.in_cover)
        assert res.cover_size() == ids.size

    def test_verify(self, result_and_graph):
        res, g = result_and_graph
        assert res.verify(g)

    def test_summary_keys(self, result_and_graph):
        res, _ = result_and_graph
        s = res.summary()
        for key in ("cover_weight", "cover_size", "num_phases", "mpc_rounds", "engine"):
            assert key in s

    def test_weights_consistent(self, result_and_graph):
        res, g = result_and_graph
        assert res.cover_weight == pytest.approx(g.cover_weight(res.in_cover))
        assert res.dual_value == pytest.approx(float(res.x.sum()))

    def test_phase_records_as_dict(self, result_and_graph):
        res, _ = result_and_graph
        for p in res.phases:
            d = p.as_dict()
            assert d["phase_index"] == p.phase_index
            assert set(d) >= {"avg_degree", "num_machines", "iterations", "rounds"}

    def test_vectorized_has_no_cluster_metrics(self, result_and_graph):
        res, _ = result_and_graph
        assert res.cluster_metrics is None

    def test_cluster_metrics_populated(self):
        g = gnp_average_degree(200, 10.0, seed=93)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=94, engine="cluster")
        assert res.cluster_metrics is not None
        assert res.cluster_metrics["rounds"] == res.mpc_rounds
