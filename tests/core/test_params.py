"""Tests for MPCParameters: validation, presets, derived formulas."""

import math

import pytest

from repro.core.params import MPCParameters


class TestValidation:
    def test_defaults_valid(self):
        p = MPCParameters()
        assert p.eps == 0.1

    @pytest.mark.parametrize("eps", [0.0, 0.5, -0.1, 0.7])
    def test_eps_range(self, eps):
        with pytest.raises(ValueError):
            MPCParameters(eps=eps)

    def test_exponent_range(self):
        with pytest.raises(ValueError):
            MPCParameters(high_degree_exponent=1.0)
        with pytest.raises(ValueError):
            MPCParameters(high_degree_exponent=0.0)

    def test_unknown_rules(self):
        with pytest.raises(ValueError):
            MPCParameters(iteration_rule="magic")
        with pytest.raises(ValueError):
            MPCParameters(stop_rule="never")
        with pytest.raises(ValueError):
            MPCParameters(machine_rule="all")

    def test_bias_validation(self):
        with pytest.raises(ValueError):
            MPCParameters(bias_coeff=-1.0)
        with pytest.raises(ValueError):
            MPCParameters(bias_growth=0.0)

    def test_with_override(self):
        p = MPCParameters(eps=0.1).with_(eps=0.2)
        assert p.eps == 0.2


class TestDerived:
    def test_machines_sqrt(self):
        p = MPCParameters()
        assert p.num_machines(100.0) == 10
        assert p.num_machines(101.0) == 11  # ceil
        assert p.num_machines(1.0) == p.min_machines

    def test_iterations_practical_target(self):
        # practical rule hits the paper's decay target (1-eps)^I <= d^{-1/20}.
        p = MPCParameters(eps=0.1)
        for d in (16.0, 64.0, 1024.0):
            m = p.num_machines(d)
            I = p.iterations_per_phase(d, m)
            assert (1 - p.eps) ** I <= d ** (-1 / 20) + 1e-12
            assert I >= 1

    def test_iterations_paper_formula(self):
        # The verbatim paper formula: I = floor(log m / (10 log 15)); for any
        # machine count below 15^10 this is 0 — the documented degeneracy.
        p = MPCParameters.paper()
        assert p.iterations_per_phase(100.0, 10) == 0
        huge_m = int(15**10 * 2)
        assert p.iterations_per_phase(1.0, huge_m) == 1

    def test_iterations_override(self):
        p = MPCParameters(iterations_override=5)
        assert p.iterations_per_phase(1e6, 1000) == 5

    def test_high_degree_cutoff(self):
        p = MPCParameters()
        assert p.high_degree_cutoff(100.0) == pytest.approx(100.0**0.95)
        assert p.high_degree_cutoff(0.0) == 0.0

    def test_capacity(self):
        p = MPCParameters(memory_factor=16.0)
        assert p.machine_capacity_words(1000) == 16000
        assert p.final_phase_edge_capacity(1000) == 2000

    def test_stop_rule_practical(self):
        p = MPCParameters()
        n = 1000
        cap = p.final_phase_edge_capacity(n)
        assert p.should_continue(n=n, nonfrozen_edges=cap + 1, avg_degree=50.0)
        assert not p.should_continue(n=n, nonfrozen_edges=cap, avg_degree=50.0)

    def test_stop_rule_paper_never_continues_at_laptop_scale(self):
        # log^30 n dwarfs every feasible degree: the paper loop never runs.
        p = MPCParameters.paper()
        assert not p.should_continue(n=10**6, nonfrozen_edges=10**9, avg_degree=2000.0)

    def test_bias_schedule(self):
        p = MPCParameters(bias_coeff=2.0, bias_growth=15.0, bias_machine_exponent=-0.2)
        assert p.bias(0, 32) == pytest.approx(2.0 * 32 ** (-0.2))
        assert p.bias(2, 32) == pytest.approx(2.0 * 225 * 32 ** (-0.2))

    def test_bias_zero_fast_path(self):
        p = MPCParameters(bias_coeff=0.0)
        assert p.bias(3, 10) == 0.0

    def test_threshold_interval(self):
        lo, hi = MPCParameters(eps=0.1).threshold_interval()
        assert lo == pytest.approx(0.6)
        assert hi == pytest.approx(0.8)

    def test_growth_factor(self):
        assert MPCParameters(eps=0.2).growth_factor() == pytest.approx(1.25)

    def test_paper_preset_constants(self):
        p = MPCParameters.paper(eps=0.05)
        assert p.bias_coeff == 2.0
        assert p.bias_growth == 15.0
        assert p.stop_rule == "paper"
        assert p.iteration_rule == "paper"
        assert p.eps == 0.05
