"""Result objects must survive process boundaries (pickle round-trips).

The batch service ships :class:`~repro.core.result.MWVCResult` (and the
graphs inside requests) through a ``ProcessPoolExecutor``; these tests pin
the transport contract, including the trace-carrying and cluster-engine
variants.
"""

import pickle

import numpy as np

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


def _workload():
    g = gnp_average_degree(120, 6.0, seed=11)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=12))


def _round_trip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def test_graph_pickle_round_trip_preserves_content_and_immutability():
    g = _workload()
    g.neighbors(0)  # force the lazy CSR so __getstate__ has to drop it
    h = _round_trip(g)
    assert h == g
    assert h.content_digest() == g.content_digest()
    assert not h.weights.flags.writeable
    assert not h.edges_u.flags.writeable
    # lazy CSR rebuilds on the far side
    assert np.array_equal(sorted(h.neighbors(0)), sorted(g.neighbors(0)))


def test_mwvc_result_pickle_round_trip():
    g = _workload()
    res = minimum_weight_vertex_cover(g, eps=0.1, seed=3)
    back = _round_trip(res)
    assert back.cover_weight == res.cover_weight
    assert np.array_equal(back.in_cover, res.in_cover)
    assert np.array_equal(back.x, res.x)
    assert back.certificate == res.certificate
    assert back.params == res.params
    assert [p.as_dict() for p in back.phases] == [p.as_dict() for p in res.phases]
    assert back.verify(g)


def test_mwvc_result_pickle_with_traces_and_cluster_engine():
    g = _workload()
    traced = minimum_weight_vertex_cover(g, eps=0.1, seed=3, collect_trace=True)
    back = _round_trip(traced)
    assert back.cover_weight == traced.cover_weight
    if traced.traces:
        plan, outcome = traced.traces[0]
        bplan, boutcome = back.traces[0]
        assert np.array_equal(bplan.high_ids, plan.high_ids)
        assert np.array_equal(boutcome.freeze_iter, outcome.freeze_iter)

    clustered = minimum_weight_vertex_cover(g, eps=0.1, seed=3, engine="cluster")
    cback = _round_trip(clustered)
    assert cback.cover_weight == clustered.cover_weight
    assert cback.cluster_metrics == clustered.cluster_metrics
