"""Tests for the deterministic threshold sampler."""

import numpy as np
import pytest

from repro.core.thresholds import ThresholdSampler


class TestThresholdSampler:
    def test_support(self):
        s = ThresholdSampler(0, 1000, eps=0.1)
        col = s.column(0)
        assert col.shape == (1000,)
        assert col.min() >= 0.6 and col.max() <= 0.8

    def test_deterministic_per_seed_and_t(self):
        a = ThresholdSampler(7, 50, eps=0.1)
        b = ThresholdSampler(7, 50, eps=0.1)
        assert np.array_equal(a.column(3), b.column(3))
        assert not np.array_equal(a.column(3), a.column(4))

    def test_different_seeds_differ(self):
        a = ThresholdSampler(7, 50, eps=0.1)
        b = ThresholdSampler(8, 50, eps=0.1)
        assert not np.array_equal(a.column(0), b.column(0))

    def test_cache_returns_same_object(self):
        s = ThresholdSampler(1, 10, eps=0.1)
        assert s.column(2) is s.column(2)

    def test_columns_read_only(self):
        s = ThresholdSampler(1, 10, eps=0.1)
        with pytest.raises(ValueError):
            s.column(0)[0] = 0.5

    def test_matrix(self):
        s = ThresholdSampler(1, 10, eps=0.1)
        mat = s.matrix(4)
        assert mat.shape == (10, 4)
        assert np.array_equal(mat[:, 2], s.column(2))

    def test_matrix_empty(self):
        assert ThresholdSampler(1, 0, eps=0.1).matrix(3).shape == (0, 3)
        assert ThresholdSampler(1, 5, eps=0.1).matrix(0).shape == (5, 0)

    def test_negative_iteration_rejected(self):
        with pytest.raises(ValueError):
            ThresholdSampler(1, 10, eps=0.1).column(-1)

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            ThresholdSampler(1, 10, eps=0.6)

    def test_restricted_view(self):
        s = ThresholdSampler(3, 20, eps=0.1)
        r = s.restricted(np.array([4, 7, 19]))
        assert r.num_vertices == 3
        assert np.array_equal(r.column(1), s.column(1)[[4, 7, 19]])

    def test_restricted_out_of_range(self):
        s = ThresholdSampler(3, 20, eps=0.1)
        with pytest.raises(ValueError):
            s.restricted(np.array([25]))
