"""Tests for the phase kernel: planning, simulation, state folding."""

import numpy as np
import pytest

from repro.core.params import MPCParameters
from repro.core.phase_kernel import (
    GlobalState,
    apply_outcome,
    plan_phase,
    simulate_phase_vectorized,
)
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights


@pytest.fixture
def setup():
    g = gnp_average_degree(400, 24.0, seed=3)
    g = g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=4))
    params = MPCParameters(eps=0.1)
    state = GlobalState.initial(g, g.weights)
    plan = plan_phase(
        g, state, params, phase_index=0, partition_seed=11, threshold_seed=22
    )
    return g, params, state, plan


class TestGlobalState:
    def test_initial(self, setup):
        g, _, state, _ = setup
        assert not state.frozen.any()
        assert np.array_equal(state.resid_degree, g.degrees)
        assert state.nonfrozen_edge_count(g) == g.m
        assert state.average_residual_degree(g) == pytest.approx(g.average_degree)

    def test_average_degree_denominator_is_n(self, setup):
        """Paper footnote 4: d̄ divides by n even after freezing."""
        g, _, state, _ = setup
        state.frozen[:200] = True
        fu, fv = g.endpoint_values(state.frozen)
        live = ~(fu | fv)
        state.resid_degree = g.incident_counts(live)
        expected = state.resid_degree[~state.frozen].sum() / g.n
        assert state.average_residual_degree(g) == pytest.approx(expected)


class TestPlanPhase:
    def test_high_low_split(self, setup):
        g, params, state, plan = setup
        cutoff = params.high_degree_cutoff(g.average_degree)
        assert plan.cutoff == pytest.approx(cutoff)
        expected_high = np.nonzero(g.degrees >= cutoff)[0]
        assert np.array_equal(plan.high_ids, expected_high)
        assert plan.num_inactive == g.n - expected_high.size

    def test_machines_and_iterations(self, setup):
        g, params, _, plan = setup
        assert plan.num_machines == params.num_machines(g.average_degree)
        assert plan.iterations == params.iterations_per_phase(
            g.average_degree, plan.num_machines
        )

    def test_max_machines_clamp(self, setup):
        g, params, state, _ = setup
        plan = plan_phase(
            g, state, params, phase_index=0, partition_seed=1, threshold_seed=2,
            max_machines=2,
        )
        assert plan.num_machines == 2
        assert plan.assignment.max() < 2

    def test_edges_high_both_endpoints_high(self, setup):
        g, _, _, plan = setup
        is_high = np.zeros(g.n, dtype=bool)
        is_high[plan.high_ids] = True
        eu = g.edges_u[plan.edges_high]
        ev = g.edges_v[plan.edges_high]
        assert is_high[eu].all() and is_high[ev].all()

    def test_local_positions_align(self, setup):
        g, _, _, plan = setup
        assert np.array_equal(plan.high_ids[plan.hu], g.edges_u[plan.edges_high])
        assert np.array_equal(plan.high_ids[plan.hv], g.edges_v[plan.edges_high])

    def test_x0_formula(self, setup):
        """Line (2c): x0 = min(w'(u)/d(u), w'(v)/d(v)) with residual values."""
        g, _, state, plan = setup
        ratio = state.wprime / np.maximum(state.resid_degree, 1)
        expected = np.minimum(
            ratio[g.edges_u[plan.edges_high]], ratio[g.edges_v[plan.edges_high]]
        )
        assert np.array_equal(plan.x0, expected)

    def test_x0_valid_within_phase(self, setup):
        """Σ_{e∈E_high ∋ v} x0 ≤ w'(v) (validity inside the phase)."""
        g, _, state, plan = setup
        loads = np.bincount(plan.hu, weights=plan.x0, minlength=plan.num_high)
        loads += np.bincount(plan.hv, weights=plan.x0, minlength=plan.num_high)
        assert (loads <= plan.wprime_high * (1 + 1e-12)).all()

    def test_deterministic_given_seeds(self, setup):
        g, params, state, plan = setup
        plan2 = plan_phase(
            g, state, params, phase_index=0, partition_seed=11, threshold_seed=22
        )
        assert np.array_equal(plan.assignment, plan2.assignment)
        assert np.array_equal(plan.x0, plan2.x0)


class TestSimulate:
    def test_freeze_iter_range(self, setup):
        _, params, _, plan = setup
        out = simulate_phase_vectorized(plan, params)
        assert out.freeze_iter.min() >= 0
        assert out.freeze_iter.max() <= plan.iterations

    def test_x_high_formula(self, setup):
        """Line (2h): x = x0/(1-ε)^t' with t' = min endpoint freeze."""
        _, params, _, plan = setup
        out = simulate_phase_vectorized(plan, params)
        tprime = np.minimum(out.freeze_iter[plan.hu], out.freeze_iter[plan.hv])
        expected = plan.x0 * (1 / (1 - params.eps)) ** tprime
        assert np.allclose(out.x_high, expected)

    def test_y_mpc_is_incident_sum(self, setup):
        _, params, _, plan = setup
        out = simulate_phase_vectorized(plan, params)
        y = np.bincount(plan.hu, weights=out.x_high, minlength=plan.num_high)
        y += np.bincount(plan.hv, weights=out.x_high, minlength=plan.num_high)
        assert np.allclose(out.y_mpc, y)

    def test_safety_freeze_condition(self, setup):
        """Line (2i): exactly the active vertices with y ≥ w' freeze."""
        _, params, _, plan = setup
        out = simulate_phase_vectorized(plan, params)
        active = out.freeze_iter == plan.iterations
        expected = active & (out.y_mpc >= plan.wprime_high)
        assert np.array_equal(out.safety_frozen, expected)

    def test_machine_edge_counts(self, setup):
        _, params, _, plan = setup
        out = simulate_phase_vectorized(plan, params)
        au = plan.assignment[plan.hu]
        av = plan.assignment[plan.hv]
        local = au == av
        assert out.machine_edge_counts.sum() == local.sum()
        assert out.machine_edge_counts.shape == (plan.num_machines,)

    def test_trace_collected(self, setup):
        _, params, _, plan = setup
        out = simulate_phase_vectorized(plan, params, trace=True)
        assert len(out.trace_ytilde) == plan.iterations
        assert out.trace_ytilde[0].shape == (plan.num_high,)
        assert out.trace_active[0].all()  # everyone active at t=0

    def test_deterministic(self, setup):
        _, params, _, plan = setup
        a = simulate_phase_vectorized(plan, params)
        b = simulate_phase_vectorized(plan, params)
        assert np.array_equal(a.freeze_iter, b.freeze_iter)
        assert np.array_equal(a.x_high, b.x_high)


class TestApplyOutcome:
    def test_frozen_vertices_recorded(self, setup):
        g, params, state, plan = setup
        out = simulate_phase_vectorized(plan, params)
        newly = apply_outcome(g, g.weights, state, plan, out)
        frozen_local = out.frozen_mask(plan.iterations)
        assert newly >= int(frozen_local.sum())
        assert state.frozen[plan.high_ids[frozen_local]].all()

    def test_nonfrozen_duals_zero(self, setup):
        g, params, state, plan = setup
        out = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, out)
        live = state.nonfrozen_edge_mask(g)
        assert (state.x_final[live] == 0).all()

    def test_residual_degrees_recomputed(self, setup):
        g, params, state, plan = setup
        out = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, out)
        live = state.nonfrozen_edge_mask(g)
        assert np.array_equal(state.resid_degree, g.incident_counts(live))

    def test_residual_weights_nonnegative(self, setup):
        g, params, state, plan = setup
        out = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, out)
        assert (state.wprime >= 0).all()

    def test_nonfrozen_vertices_keep_positive_weight(self, setup):
        g, params, state, plan = setup
        out = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, out)
        assert (state.wprime[~state.frozen] > 0).all()

    def test_edge_count_decreases(self, setup):
        g, params, state, plan = setup
        before = state.nonfrozen_edge_count(g)
        out = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, out)
        assert state.nonfrozen_edge_count(g) < before

    def test_invariant_validation_catches_corruption(self, setup):
        g, params, state, plan = setup
        out = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, out)
        # Corrupt: give a nonfrozen edge a dual, then re-apply a no-op phase.
        live = np.nonzero(state.nonfrozen_edge_mask(g))[0]
        if live.size:
            state.x_final[live[0]] = 1.0
            plan2 = plan_phase(
                g, state, params, phase_index=1, partition_seed=1, threshold_seed=2
            )
            out2 = simulate_phase_vectorized(plan2, params)
            with pytest.raises(AssertionError, match="invariant"):
                apply_outcome(g, g.weights, state, plan2, out2)
