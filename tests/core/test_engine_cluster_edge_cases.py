"""Cluster-engine runs on adversarial structures.

The cluster engine's message paths (routing, gathers, finalization) are the
most intricate code in the repository; these tests push graph shapes that
stress unusual branches: hub-dominated stars, disconnected graphs, graphs
with isolated vertices, and dense-but-tiny cliques — always checking
agreement with the vectorized engine.
"""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import (
    complete_graph,
    disjoint_edges,
    gnp_average_degree,
    star,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import adversarial_spread_weights


def _agree(graph, seed=0, eps=0.1):
    rv = minimum_weight_vertex_cover(graph, eps=eps, seed=seed, engine="vectorized")
    rc = minimum_weight_vertex_cover(graph, eps=eps, seed=seed, engine="cluster")
    assert rv.verify(graph) and rc.verify(graph)
    assert np.array_equal(rv.in_cover, rc.in_cover)
    assert rv.mpc_rounds == rc.mpc_rounds
    return rv


class TestClusterEdgeCases:
    def test_dense_star(self):
        """A 600-leaf star: the hub's degree dwarfs d̄, V^high is tiny."""
        _agree(star(601), seed=1)

    def test_small_clique(self):
        _agree(complete_graph(30), seed=2)

    def test_disconnected_matching(self):
        """Hundreds of disjoint edges: avg degree 1, straight to the final
        phase even through the cluster protocol."""
        res = _agree(disjoint_edges(300), seed=3)
        assert res.num_phases == 0

    def test_isolated_vertices(self):
        g = gnp_average_degree(200, 12.0, seed=4)
        padded = WeightedGraph(
            g.n + 40,
            g.edges_u,
            g.edges_v,
            np.concatenate([g.weights, np.ones(40)]),
        )
        res = _agree(padded, seed=5)
        assert not res.in_cover[g.n :].any()

    def test_wild_weights(self):
        g = gnp_average_degree(250, 16.0, seed=6)
        g = g.with_weights(adversarial_spread_weights(g.n, 9.0, seed=7))
        _agree(g, seed=8)

    def test_two_dense_blobs(self):
        """Two disconnected dense communities (tests routing when the
        partition spreads two unrelated subgraphs over the same machines)."""
        a = complete_graph(40)
        us = np.concatenate([a.edges_u, a.edges_u + 40])
        vs = np.concatenate([a.edges_v, a.edges_v + 40])
        g = WeightedGraph(80, us, vs)
        _agree(g, seed=9)

    @pytest.mark.parametrize("eps", [0.05, 0.2])
    def test_eps_extremes(self, eps):
        g = gnp_average_degree(220, 14.0, seed=10)
        _agree(g, seed=11, eps=eps)
