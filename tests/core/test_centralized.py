"""Tests for Algorithm 1 (centralized primal–dual MWVC)."""

import math

import numpy as np
import pytest

from repro.core.centralized import run_centralized, termination_bound
from repro.core.certificates import fractional_matching_violation
from repro.core.thresholds import ThresholdSampler
from repro.graphs.generators import gnp_average_degree, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import adversarial_spread_weights, uniform_weights


class TestBasicBehaviour:
    def test_returns_cover(self, named_graph):
        res = run_centralized(named_graph, eps=0.1, seed=0)
        assert named_graph.is_vertex_cover(res.in_cover)

    def test_duals_stay_valid(self, named_graph):
        """Observation 3.1: the duals form a fractional matching throughout
        (checked at the end; the per-iteration invariant is covered by the
        property suite)."""
        res = run_centralized(named_graph, eps=0.1, seed=0)
        assert fractional_matching_violation(named_graph, res.x) <= 1.0 + 1e-9

    def test_approximation_guarantee(self, medium_random):
        """Proposition 3.3: w(C) ≤ (2+10ε)/(1-4ε)-ish; we check the clean
        form w(C) ≤ 2/(1-4ε) · Σx."""
        eps = 0.1
        res = run_centralized(medium_random, eps=eps, seed=1)
        w_c = medium_random.cover_weight(res.in_cover)
        assert w_c <= (2.0 / (1 - 4 * eps)) * res.dual_value + 1e-9

    def test_frozen_vertices_nearly_tight(self, medium_random):
        """Every cover vertex froze with y ≥ (1-4ε)·w (Prop 3.3's core)."""
        eps = 0.1
        res = run_centralized(medium_random, eps=eps, seed=2)
        loads = medium_random.incident_sums(res.x)
        covered = res.in_cover
        assert (
            loads[covered] >= (1 - 4 * eps) * medium_random.weights[covered] - 1e-9
        ).all()

    def test_empty_graph(self):
        g = WeightedGraph.empty(4)
        res = run_centralized(g, seed=0)
        assert res.iterations == 0
        assert not res.in_cover.any()
        assert res.dual_value == 0.0

    def test_single_edge(self):
        g = WeightedGraph.from_edge_list(2, [(0, 1)], weights=[3.0, 5.0])
        res = run_centralized(g, eps=0.1, seed=0)
        assert g.is_vertex_cover(res.in_cover)
        # the cheap endpoint saturates first
        assert res.in_cover[0]

    def test_isolated_vertices_never_join(self):
        g = WeightedGraph.from_edge_list(4, [(0, 1)])
        res = run_centralized(g, eps=0.1, seed=0)
        assert not res.in_cover[2] and not res.in_cover[3]

    def test_freeze_iteration_consistency(self, small_random):
        res = run_centralized(small_random, eps=0.1, seed=3)
        assert ((res.freeze_iteration >= 0) == res.in_cover).all()
        assert res.freeze_iteration.max() < res.iterations


class TestIterationCounts:
    def test_proposition_3_4_log_delta(self):
        """Degree-scaled init terminates within log_{1/(1-ε)} Δ + 2."""
        eps = 0.1
        for seed in range(3):
            g = gnp_average_degree(500, 20.0, seed=seed)
            g = g.with_weights(adversarial_spread_weights(g.n, 9.0, seed=seed + 1))
            res = run_centralized(g, eps=eps, init="degree_scaled", seed=seed)
            bound = math.log(g.max_degree) / math.log(1 / (1 - eps)) + 2
            assert res.iterations <= bound

    def test_uniform_init_pays_for_weight_spread(self):
        """The O(log(Wn)) penalty of the classic init (§3.1 discussion)."""
        g = gnp_average_degree(500, 20.0, seed=0)
        g = g.with_weights(adversarial_spread_weights(g.n, 9.0, seed=1))
        fast = run_centralized(g, eps=0.1, init="degree_scaled", seed=2)
        slow = run_centralized(g, eps=0.1, init="uniform", seed=2)
        assert slow.iterations > 2 * fast.iterations

    def test_termination_bound_formula(self):
        x0 = np.array([0.25, 1.0])
        w = np.array([4.0, 4.0, 4.0])
        b = termination_bound(x0, w, eps=0.1)
        assert b == math.ceil(math.log(16.0) / math.log(1 / 0.9)) + 2

    def test_termination_bound_empty(self):
        assert termination_bound(np.empty(0), np.ones(3), eps=0.1) == 0


class TestCouplingInterface:
    def test_max_iterations_truncates(self, medium_random):
        full = run_centralized(medium_random, eps=0.1, seed=5)
        part = run_centralized(medium_random, eps=0.1, seed=5, max_iterations=2)
        assert part.iterations <= 2 < full.iterations

    def test_trace_shapes(self, small_random):
        res = run_centralized(small_random, eps=0.1, seed=6, trace=True)
        assert len(res.trace_y) == res.iterations
        assert len(res.trace_active) == res.iterations
        assert res.trace_y[0].shape == (small_random.n,)

    def test_shared_thresholds_reproduce(self, small_random):
        s1 = ThresholdSampler(99, small_random.n, 0.1)
        s2 = ThresholdSampler(99, small_random.n, 0.1)
        r1 = run_centralized(small_random, eps=0.1, thresholds=s1)
        r2 = run_centralized(small_random, eps=0.1, thresholds=s2)
        assert np.array_equal(r1.in_cover, r2.in_cover)
        assert np.array_equal(r1.x, r2.x)

    def test_explicit_init_array(self, small_random):
        from repro.core.initialization import degree_scaled_init

        x0 = degree_scaled_init(small_random)
        res = run_centralized(small_random, eps=0.1, init=x0, seed=0)
        assert small_random.is_vertex_cover(res.in_cover)

    def test_seed_reproducibility(self, small_random):
        a = run_centralized(small_random, eps=0.1, seed=42)
        b = run_centralized(small_random, eps=0.1, seed=42)
        assert np.array_equal(a.in_cover, b.in_cover)
        assert a.iterations == b.iterations


class TestValidationErrors:
    def test_bad_weights(self, triangle):
        with pytest.raises(ValueError):
            run_centralized(triangle, weights=np.array([1.0, -1.0, 1.0]))
        with pytest.raises(ValueError):
            run_centralized(triangle, weights=np.ones(2))

    def test_bad_init(self, triangle):
        with pytest.raises(ValueError, match="unknown init"):
            run_centralized(triangle, init="nope")
        with pytest.raises(ValueError, match="shape"):
            run_centralized(triangle, init=np.ones(7))
        with pytest.raises(ValueError, match="positive"):
            run_centralized(triangle, init=np.zeros(3))

    def test_bad_eps(self, triangle):
        with pytest.raises(ValueError):
            run_centralized(triangle, eps=0.9)

    def test_mismatched_sampler(self, triangle):
        with pytest.raises(ValueError, match="sampler"):
            run_centralized(triangle, thresholds=ThresholdSampler(0, 99, 0.1))


class TestWeightedOptima:
    def test_cheap_hub_star(self, cheap_hub_star):
        """On the light-hub star the algorithm should buy the hub, not the
        five heavy leaves: ratio vs OPT=1 must respect the guarantee."""
        res = run_centralized(cheap_hub_star, eps=0.05, seed=0)
        w_c = cheap_hub_star.cover_weight(res.in_cover)
        assert w_c <= (2 + 10 * 0.05) * 1.0 + 1e-9
        assert res.in_cover[0]

    def test_weighted_star_prefers_leaves(self, weighted_star):
        """Heavy hub (10) vs 5 unit leaves: OPT = 5; guarantee allows ≤ ~10.5
        but the dual schedule should actually find the leaves."""
        res = run_centralized(weighted_star, eps=0.05, seed=0)
        w_c = weighted_star.cover_weight(res.in_cover)
        assert w_c <= (2 + 10 * 0.05) * 5.0
