"""Tests for the round-cost model."""

import pytest

from repro.core.accounting import (
    PhaseCost,
    broadcast_round_count,
    cluster_width,
    fanin_round_count,
    fanout_for,
    final_phase_cost,
    phase_cost,
)


class TestFanout:
    def test_capacity_division(self):
        assert fanout_for(1000, 100) == 10
        assert fanout_for(1000, 600) == 2  # floor at 2

    def test_unbounded(self):
        assert fanout_for(None, 100) == 1024

    def test_zero_item(self):
        assert fanout_for(1000, 0) == 1024


class TestBroadcastRounds:
    def test_zero_targets(self):
        assert broadcast_round_count(0, 4) == 0

    def test_single_target(self):
        assert broadcast_round_count(1, 4) == 1

    def test_doubling_with_fanout_1(self):
        # holders double each round: 1->2->4->8
        assert broadcast_round_count(7, 1) == 3

    def test_fanout_growth(self):
        # fanout 3: holders 1 -> 4 -> 16; 15 targets in 2 rounds
        assert broadcast_round_count(15, 3) == 2
        assert broadcast_round_count(16, 3) == 3

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            broadcast_round_count(5, 0)


class TestFaninRounds:
    def test_trivial(self):
        assert fanin_round_count(0, 4) == 0
        assert fanin_round_count(1, 4) == 0

    def test_single_level(self):
        assert fanin_round_count(4, 4) == 1
        assert fanin_round_count(5, 4) == 2

    def test_log_depth(self):
        assert fanin_round_count(64, 2) == 6

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            fanin_round_count(5, 1)


class TestPhaseCost:
    def test_breakdown_sums_to_total(self):
        cost = phase_cost(n=1000, n_high=800, num_workers=8, num_sim_machines=5, capacity=16000)
        d = cost.as_dict()
        assert d["total"] == cost.total
        assert cost.total == sum(v for k, v in d.items() if k != "total")

    def test_route_is_one_round(self):
        cost = phase_cost(n=100, n_high=50, num_workers=4, num_sim_machines=3, capacity=1600)
        assert cost.route_edges == 1

    def test_constant_in_n_for_fixed_workers(self):
        """Per-phase rounds depend on worker count and fan-outs, not on n
        directly (both scale with capacity = Θ(n))."""
        a = phase_cost(n=1000, n_high=900, num_workers=8, num_sim_machines=8, capacity=16000)
        b = phase_cost(n=100000, n_high=90000, num_workers=8, num_sim_machines=8, capacity=1600000)
        assert a.total == b.total

    def test_more_workers_more_tree_rounds(self):
        small = phase_cost(n=1000, n_high=900, num_workers=4, num_sim_machines=4, capacity=16000)
        big = phase_cost(n=1000, n_high=900, num_workers=4096, num_sim_machines=64, capacity=16000)
        assert big.total > small.total


class TestFinalPhaseCost:
    def test_positive(self):
        assert final_phase_cost(num_workers=4, remaining_edges=100, n=1000, capacity=16000) >= 2

    def test_grows_with_workers(self):
        a = final_phase_cost(num_workers=2, remaining_edges=100, n=1000, capacity=16000)
        b = final_phase_cost(num_workers=4096, remaining_edges=100, n=1000, capacity=16000)
        assert b > a


class TestClusterWidth:
    def test_minimum_two(self):
        assert cluster_width(n=10, m_edges=5, initial_machines=1, capacity=160) >= 2

    def test_storage_bound(self):
        # 4 words/edge must fit in a quarter of capacity per worker.
        w = cluster_width(n=1000, m_edges=100_000, initial_machines=2, capacity=16000)
        assert 4 * 100_000 / w <= 16000 / 4

    def test_sim_machines_respected(self):
        assert cluster_width(n=1000, m_edges=10, initial_machines=23, capacity=16000) >= 23

    def test_unbounded_capacity(self):
        assert cluster_width(n=10, m_edges=10**6, initial_machines=3, capacity=None) == 3
