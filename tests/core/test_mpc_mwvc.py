"""Tests for the full MPC MWVC algorithm (orchestrator + vectorized engine)."""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.graphs.generators import gnp_average_degree, power_law, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import (
    adversarial_spread_weights,
    degree_correlated_weights,
    uniform_weights,
)


class TestCorrectness:
    def test_returns_cover(self, named_graph):
        res = minimum_weight_vertex_cover(named_graph, eps=0.1, seed=0)
        assert res.verify(named_graph)
        assert res.certificate.is_cover

    def test_medium_random(self, medium_random):
        res = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=1)
        assert res.verify(medium_random)
        assert res.cover_weight == pytest.approx(
            medium_random.cover_weight(res.in_cover)
        )

    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.15, 0.2])
    def test_eps_sweep(self, medium_random, eps):
        res = minimum_weight_vertex_cover(medium_random, eps=eps, seed=2)
        assert res.verify(medium_random)
        assert res.certificate.certified_ratio <= 2.0 / (1 - 4 * eps) * (1.5)

    def test_eps_quarter_rejected(self, medium_random):
        """The approximation proof needs ε < 1/4 (Prop 3.3); enforced."""
        with pytest.raises(ValueError):
            minimum_weight_vertex_cover(medium_random, eps=0.25, seed=0)

    def test_empty_graph(self):
        g = WeightedGraph.empty(10)
        res = minimum_weight_vertex_cover(g, seed=0)
        assert res.cover_weight == 0.0
        assert res.num_phases == 0
        assert not res.in_cover.any()

    def test_single_edge(self):
        g = WeightedGraph.from_edge_list(2, [(0, 1)], weights=[1.0, 9.0])
        res = minimum_weight_vertex_cover(g, seed=0)
        assert res.verify(g)
        assert res.cover_weight <= 9.0

    def test_heterogeneous_weights(self):
        g = gnp_average_degree(600, 16.0, seed=3)
        g = g.with_weights(adversarial_spread_weights(g.n, 9.0, seed=4))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=5)
        assert res.verify(g)
        # dual certificate sound even with 9 decades of weight spread
        assert res.certificate.opt_lower_bound <= res.cover_weight

    def test_power_law(self):
        g = power_law(1500, seed=6)
        g = g.with_weights(degree_correlated_weights(g, seed=7))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=8)
        assert res.verify(g)

    def test_duals_near_feasible(self, medium_random):
        """Theorem 4.7's Σx ≤ (1+6ε)w per vertex, with empirical slack."""
        eps = 0.1
        res = minimum_weight_vertex_cover(medium_random, eps=eps, seed=9)
        loads = medium_random.incident_sums(res.x)
        # The w.h.p. bound is (1+6ε); measured load factors should be close.
        assert res.certificate.load_factor <= 1 + 10 * eps

    def test_frozen_vertices_paid(self, medium_random):
        """Cover vertices have nearly tight dual loads (the 2+O(ε) engine)."""
        eps = 0.1
        res = minimum_weight_vertex_cover(medium_random, eps=eps, seed=10)
        loads = medium_random.incident_sums(res.x)
        covered = res.in_cover
        # Theorem 4.7: Σ_{e∋v} x ≥ (1-16ε)w(v) for frozen v, up to the
        # laptop-scale estimator noise absorbed by the certificate.
        tight = loads[covered] >= (1 - 16 * eps) * medium_random.weights[covered] - 1e-9
        assert tight.mean() > 0.9


class TestDeterminism:
    def test_same_seed_same_result(self, medium_random):
        a = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=77)
        b = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=77)
        assert np.array_equal(a.in_cover, b.in_cover)
        assert np.array_equal(a.x, b.x)
        assert a.mpc_rounds == b.mpc_rounds

    def test_different_seeds_may_differ(self, medium_random):
        a = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=1)
        b = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=2)
        # both valid; covers usually differ (not required, but weights do
        # match the same guarantee)
        assert a.verify(medium_random) and b.verify(medium_random)


class TestPhaseStructure:
    def test_records_consistent(self):
        g = gnp_average_degree(2000, 64.0, seed=11)
        g = g.with_weights(uniform_weights(g.n, seed=12))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=13)
        assert res.num_phases == len(res.phases)
        for i, p in enumerate(res.phases):
            assert p.phase_index == i
            assert p.num_machines >= 1
            assert p.iterations >= 1
            assert p.max_machine_edges <= p.num_local_edges
            assert p.rounds > 0
        # monotone average-degree decrease across phases
        degrees = [p.avg_degree for p in res.phases]
        assert all(a > b for a, b in zip(degrees, degrees[1:]))

    def test_rounds_sum(self):
        g = gnp_average_degree(1500, 48.0, seed=14)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=15)
        phase_rounds = sum(p.rounds for p in res.phases)
        assert res.mpc_rounds > phase_rounds  # final phase adds rounds

    def test_small_graph_skips_phases(self):
        # 150 expected edges vs final-phase capacity 16*100/8 = 200: the
        # input fits one machine, so no compressed phase runs.
        g = gnp_average_degree(100, 3.0, seed=16)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=16)
        assert res.num_phases == 0
        assert res.final_edges == g.m

    def test_trace_collection(self):
        g = gnp_average_degree(1200, 48.0, seed=17)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=18, collect_trace=True)
        assert res.traces is not None
        assert len(res.traces) == res.num_phases
        plan, outcome = res.traces[0]
        assert len(outcome.trace_ytilde) == plan.iterations

    def test_no_trace_by_default(self, medium_random):
        res = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=19)
        assert res.traces is None


class TestParameters:
    def test_params_override_eps(self, medium_random):
        params = MPCParameters(eps=0.2)
        res = minimum_weight_vertex_cover(medium_random, eps=0.05, params=params, seed=0)
        assert res.params.eps == 0.2

    def test_paper_preset_goes_straight_to_final(self, medium_random):
        """With the verbatim paper constants, log^30 n exceeds any feasible
        degree, so zero compressed phases run — the documented degeneracy."""
        res = minimum_weight_vertex_cover(
            medium_random, params=MPCParameters.paper(), seed=0
        )
        assert res.num_phases == 0
        assert res.verify(medium_random)

    def test_iterations_override(self):
        g = gnp_average_degree(1200, 48.0, seed=20)
        params = MPCParameters(eps=0.1, iterations_override=4)
        res = minimum_weight_vertex_cover(g, params=params, seed=21)
        assert all(p.iterations == 4 for p in res.phases)

    def test_kill_schedule_requires_cluster(self, medium_random):
        with pytest.raises(ValueError, match="cluster"):
            minimum_weight_vertex_cover(
                medium_random, seed=0, engine="vectorized", kill_schedule={0: [1]}
            )

    def test_unknown_engine(self, medium_random):
        with pytest.raises(ValueError, match="unknown engine"):
            minimum_weight_vertex_cover(medium_random, seed=0, engine="quantum")


class TestMetamorphic:
    def test_weight_scaling_invariance(self, medium_random):
        """Covers are invariant under w -> c·w (the algorithm is
        scale-free: thresholds, initializations and freezes all scale)."""
        a = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=33)
        scaled = medium_random.with_weights(medium_random.weights * 1000.0)
        b = minimum_weight_vertex_cover(scaled, eps=0.1, seed=33)
        assert np.array_equal(a.in_cover, b.in_cover)

    def test_isolated_vertices_noop(self):
        g = gnp_average_degree(300, 12.0, seed=34)
        res_a = minimum_weight_vertex_cover(g, eps=0.1, seed=35)
        # append isolated vertices
        g2 = WeightedGraph(
            g.n + 50,
            g.edges_u,
            g.edges_v,
            np.concatenate([g.weights, np.ones(50)]),
        )
        res_b = minimum_weight_vertex_cover(g2, eps=0.1, seed=35)
        assert not res_b.in_cover[g.n :].any()
        assert res_b.cover_weight == pytest.approx(res_b.cover_weight)
        assert res_b.verify(g2)

    def test_star_with_cheap_hub(self):
        g = star(100)
        w = np.full(100, 50.0)
        w[0] = 1.0
        res = minimum_weight_vertex_cover(g.with_weights(w), eps=0.05, seed=36)
        assert res.verify(g)
        # OPT = 1 (hub); guarantee allows ≤ (2+30ε)·1 = 3.5 — so the cover
        # must be the hub alone (any leaf would cost 50).
        assert res.cover_weight <= 3.5
