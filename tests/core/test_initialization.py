"""Tests for the dual initializations (validity + formulas)."""

import numpy as np
import pytest

from repro.core.initialization import (
    INIT_SCHEMES,
    degree_scaled_init,
    make_init,
    max_degree_scaled_init,
    uniform_init,
)
from repro.graphs.generators import gnp_average_degree, star
from repro.graphs.weights import uniform_weights


@pytest.fixture
def wg():
    g = gnp_average_degree(200, 10.0, seed=0)
    return g.with_weights(uniform_weights(g.n, 1.0, 100.0, seed=1))


class TestValidity:
    """Observation 3.1 base case: every scheme yields Σ_{e∋v} x_e ≤ w(v)."""

    @pytest.mark.parametrize("scheme", sorted(INIT_SCHEMES))
    def test_valid_fractional_matching(self, wg, scheme):
        x0 = make_init(scheme, wg)
        loads = wg.incident_sums(x0)
        assert (loads <= wg.weights * (1 + 1e-12)).all()

    @pytest.mark.parametrize("scheme", sorted(INIT_SCHEMES))
    def test_strictly_positive(self, wg, scheme):
        x0 = make_init(scheme, wg)
        assert (x0 > 0).all()

    @pytest.mark.parametrize("scheme", sorted(INIT_SCHEMES))
    def test_structured_graphs(self, named_graph, scheme):
        x0 = make_init(scheme, named_graph)
        loads = named_graph.incident_sums(x0)
        assert (loads <= named_graph.weights * (1 + 1e-12)).all()


class TestFormulas:
    def test_degree_scaled_on_star(self):
        g = star(5).with_weights(np.array([8.0, 1.0, 1.0, 1.0, 1.0]))
        x0 = degree_scaled_init(g)
        # hub ratio 8/4 = 2; leaf ratio 1/1 = 1 -> min = 1 per edge
        assert np.allclose(x0, 1.0)

    def test_degree_scaled_tight_on_regular(self):
        from repro.graphs.generators import cycle

        g = cycle(6)
        x0 = degree_scaled_init(g)
        loads = g.incident_sums(x0)
        assert np.allclose(loads, g.weights)  # d(v) * (w/d) = w exactly

    def test_uniform_value(self, wg):
        x0 = uniform_init(wg)
        assert np.allclose(x0, wg.weights.min() / wg.n)

    def test_max_degree_scaled_value(self):
        g = star(4).with_weights(np.array([9.0, 3.0, 6.0, 12.0]))
        x0 = max_degree_scaled_init(g)
        assert x0.tolist() == [1.0, 2.0, 3.0]  # min(w)/Δ with Δ=3

    def test_injected_residual_degrees(self):
        g = star(4)
        resid = np.array([5, 1, 1, 1])  # pretend hub has extra nonfrozen edges
        x0 = degree_scaled_init(g, degrees=resid)
        assert np.allclose(x0, np.minimum(1.0 / 5, 1.0))

    def test_injected_weights(self):
        g = star(4)
        w = np.array([30.0, 1.0, 1.0, 1.0])
        x0 = degree_scaled_init(g, weights=w)
        assert np.allclose(x0, 1.0)

    def test_empty_graph(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph.empty(3)
        for scheme in INIT_SCHEMES:
            assert make_init(scheme, g).size == 0

    def test_unknown_scheme(self, wg):
        with pytest.raises(ValueError, match="unknown init scheme"):
            make_init("nope", wg)

    def test_shape_validation(self, wg):
        with pytest.raises(ValueError):
            degree_scaled_init(wg, weights=np.ones(3))
        with pytest.raises(ValueError):
            degree_scaled_init(wg, degrees=np.ones(3, dtype=np.int64))
