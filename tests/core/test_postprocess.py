"""Tests for cover pruning."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.postprocess import is_minimal_cover, prune_redundant_vertices
from repro.graphs.generators import complete_graph, gnp_average_degree, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestPruneRedundant:
    def test_full_cover_shrinks(self, triangle):
        pruned = prune_redundant_vertices(triangle, np.ones(3, dtype=bool))
        assert triangle.is_vertex_cover(pruned)
        assert pruned.sum() == 2  # triangle needs exactly 2

    def test_star_all_vertices(self):
        g = star(6)
        pruned = prune_redundant_vertices(g, np.ones(6, dtype=bool))
        assert g.is_vertex_cover(pruned)
        assert pruned.sum() == 1 and pruned[0]  # hub survives

    def test_drops_least_effective_first(self):
        g = complete_graph(3).with_weights(np.array([1.0, 2.0, 100.0]))
        pruned = prune_redundant_vertices(g, np.ones(3, dtype=bool))
        assert not pruned[2]  # worst weight-per-edge goes first

    def test_isolated_cover_vertices_dropped(self):
        g = WeightedGraph.from_edge_list(4, [(0, 1)])
        mask = np.array([True, False, True, True])
        pruned = prune_redundant_vertices(g, mask)
        assert pruned.tolist() == [True, False, False, False]

    def test_never_heavier(self, medium_random):
        res = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=1)
        pruned = prune_redundant_vertices(medium_random, res.in_cover)
        assert medium_random.is_vertex_cover(pruned)
        assert (
            medium_random.cover_weight(pruned)
            <= medium_random.cover_weight(res.in_cover) + 1e-12
        )

    def test_result_minimal(self, medium_random):
        res = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=2)
        pruned = prune_redundant_vertices(medium_random, res.in_cover)
        assert is_minimal_cover(medium_random, pruned)

    def test_non_cover_rejected(self, triangle):
        with pytest.raises(ValueError, match="not a vertex cover"):
            prune_redundant_vertices(triangle, np.zeros(3, dtype=bool))

    def test_input_unchanged(self, triangle):
        mask = np.ones(3, dtype=bool)
        prune_redundant_vertices(triangle, mask)
        assert mask.all()

    def test_improves_mpc_covers_measurably(self):
        """On random graphs the primal–dual cover carries real slack."""
        g = gnp_average_degree(800, 20.0, seed=3)
        g = g.with_weights(uniform_weights(g.n, seed=4))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=5)
        pruned = prune_redundant_vertices(g, res.in_cover)
        assert g.cover_weight(pruned) < res.cover_weight

    def test_preserves_optimality(self):
        """Pruning an optimal cover keeps it optimal (never below OPT)."""
        for seed in range(3):
            g = gnp_average_degree(24, 4.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 5.0, seed=seed + 7))
            opt = exact_mwvc(g)
            pruned = prune_redundant_vertices(g, opt.in_cover)
            assert g.cover_weight(pruned) == pytest.approx(opt.opt_weight)


class TestIsMinimal:
    def test_non_cover_not_minimal(self, triangle):
        assert not is_minimal_cover(triangle, np.zeros(3, dtype=bool))

    def test_full_triangle_not_minimal(self, triangle):
        assert not is_minimal_cover(triangle, np.ones(3, dtype=bool))

    def test_two_of_three_minimal(self, triangle):
        assert is_minimal_cover(triangle, np.array([True, True, False]))


class TestWeightedTies:
    """Tie-breaking is by vertex id, so pruning is fully deterministic."""

    def test_equal_weight_tie_drops_lowest_id(self):
        # Triangle, all weights equal: every vertex is droppable first;
        # the id tie-break must pick vertex 0.
        g = complete_graph(3).with_weights(np.array([2.0, 2.0, 2.0]))
        pruned = prune_redundant_vertices(g, np.ones(3, dtype=bool))
        assert pruned.tolist() == [False, True, True]

    def test_tied_effectiveness_different_degrees(self):
        # Path 0-1-2-3 (+ extra edge 1-3): w/deg ties between several
        # vertices; result must still be a minimal cover and deterministic.
        g = WeightedGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3), (1, 3)],
                                         np.array([1.0, 2.0, 2.0, 2.0]))
        pruned = prune_redundant_vertices(g, np.ones(4, dtype=bool))
        repeat = prune_redundant_vertices(g, np.ones(4, dtype=bool))
        assert (pruned == repeat).all()
        assert is_minimal_cover(g, pruned)

    def test_weighted_tie_prefers_heavier_per_edge(self):
        # Star with hub weight 3 (deg 3 → 1.0 each) and leaves weight 1
        # (deg 1 → 1.0 each): all tie at w/deg = 1; id order drops the hub
        # first, then the leaves are locked in.
        g = star(4).with_weights(np.array([3.0, 1.0, 1.0, 1.0]))
        pruned = prune_redundant_vertices(g, np.ones(4, dtype=bool))
        assert pruned.tolist() == [False, True, True, True]


class TestIsolatedVertices:
    def test_only_isolated_vertices(self):
        g = WeightedGraph.empty(5)
        pruned = prune_redundant_vertices(g, np.ones(5, dtype=bool))
        assert not pruned.any()

    def test_isolated_lead_regardless_of_weight(self):
        # An isolated vertex with tiny weight still goes before any
        # connected vertex (it covers nothing at all).
        g = WeightedGraph.from_edge_list(3, [(0, 1)],
                                         np.array([5.0, 5.0, 0.001]))
        pruned = prune_redundant_vertices(g, np.ones(3, dtype=bool))
        assert not pruned[2]
        assert is_minimal_cover(g, pruned)

    def test_isolated_outside_cover_untouched(self):
        g = WeightedGraph.from_edge_list(3, [(0, 1)])
        mask = np.array([True, True, False])
        pruned = prune_redundant_vertices(g, mask)
        assert not pruned[2]


class TestCandidates:
    """The restricted sweep of the incremental hot path."""

    def test_non_candidates_keep_state(self):
        g = complete_graph(3)
        pruned = prune_redundant_vertices(
            g, np.ones(3, dtype=bool), candidates=np.array([2])
        )
        # Only vertex 2 may be dropped; 0 and 1 stay even though a full
        # sweep would drop one of them too.
        assert pruned.tolist() == [True, True, False]

    def test_full_candidates_match_unrestricted(self):
        g = gnp_average_degree(200, 8.0, seed=6)
        g = g.with_weights(uniform_weights(g.n, seed=7))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=8)
        full = prune_redundant_vertices(g, res.in_cover)
        restricted = prune_redundant_vertices(
            g, res.in_cover, candidates=np.ones(g.n, dtype=bool)
        )
        assert (full == restricted).all()

    def test_empty_candidates_is_identity(self, triangle):
        mask = np.ones(3, dtype=bool)
        pruned = prune_redundant_vertices(
            triangle, mask, candidates=np.empty(0, dtype=np.int64)
        )
        assert (pruned == mask).all()

    def test_boolean_mask_candidates(self):
        g = star(6)
        cand = np.zeros(6, dtype=bool)
        cand[3] = True
        pruned = prune_redundant_vertices(g, np.ones(6, dtype=bool), candidates=cand)
        assert pruned.tolist() == [True, True, True, False, True, True]

    def test_bad_candidate_ids(self, triangle):
        with pytest.raises(ValueError, match="candidate ids"):
            prune_redundant_vertices(
                triangle, np.ones(3, dtype=bool), candidates=np.array([7])
            )

    def test_bad_candidate_mask_shape(self, triangle):
        with pytest.raises(ValueError, match="candidates mask"):
            prune_redundant_vertices(
                triangle, np.ones(3, dtype=bool), candidates=np.ones(5, dtype=bool)
            )
