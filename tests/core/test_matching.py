"""Tests for matching extraction and matching-based lower bounds."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.core.matching import (
    combined_lower_bound,
    extract_matching,
    greedy_maximal_matching,
    is_matching,
    matching_lower_bound,
)
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import cycle, disjoint_edges, gnp_average_degree, star
from repro.graphs.weights import uniform_weights


class TestIsMatching:
    def test_disjoint_edges(self):
        g = disjoint_edges(3)
        assert is_matching(g, np.ones(3, dtype=bool))

    def test_star_overlap(self):
        g = star(4)
        mask = np.ones(3, dtype=bool)
        assert not is_matching(g, mask)
        mask = np.array([True, False, False])
        assert is_matching(g, mask)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            is_matching(star(4), np.ones(5, dtype=bool))


class TestExtractMatching:
    def test_result_is_matching(self, medium_random):
        x = np.random.default_rng(0).random(medium_random.m)
        mask = extract_matching(medium_random, x)
        assert is_matching(medium_random, mask)

    def test_maximality(self, medium_random):
        """No remaining edge has both endpoints unmatched."""
        x = np.random.default_rng(1).random(medium_random.m)
        mask = extract_matching(medium_random, x)
        matched = medium_random.incident_counts(mask) > 0
        mu, mv = medium_random.endpoint_values(matched)
        assert (mu | mv).all()

    def test_prefers_high_duals(self):
        g = star(4)
        x = np.array([0.1, 5.0, 0.2])
        mask = extract_matching(g, x)
        assert mask.tolist() == [False, True, False]

    def test_empty(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph.empty(3)
        assert extract_matching(g, np.empty(0)).size == 0


class TestGreedyMaximalMatching:
    def test_valid_and_maximal(self, medium_random):
        mask = greedy_maximal_matching(medium_random, seed=2)
        assert is_matching(medium_random, mask)
        matched = medium_random.incident_counts(mask) > 0
        mu, mv = medium_random.endpoint_values(matched)
        assert (mu | mv).all()

    def test_deterministic_per_seed(self, small_random):
        a = greedy_maximal_matching(small_random, seed=5)
        b = greedy_maximal_matching(small_random, seed=5)
        assert np.array_equal(a, b)


class TestMatchingLowerBound:
    def test_sound_vs_exact(self):
        for seed in range(4):
            g = gnp_average_degree(28, 5.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 9))
            mask = greedy_maximal_matching(g, seed=seed)
            lb = matching_lower_bound(g, mask)
            assert lb <= exact_mwvc(g).opt_weight + 1e-9

    def test_cycle_value(self):
        g = cycle(6)
        # canonical edge order: (0,1),(0,5),(1,2),(2,3),(3,4),(4,5);
        # pick the perfect matching {(0,1),(2,3),(4,5)}.
        mask = np.array([True, False, False, True, False, True])
        assert matching_lower_bound(g, mask) == pytest.approx(3.0)

    def test_non_matching_rejected(self):
        g = star(4)
        with pytest.raises(ValueError, match="not a matching"):
            matching_lower_bound(g, np.ones(3, dtype=bool))


class TestCombinedBound:
    def test_sound_and_at_least_dual(self, medium_random):
        res = minimum_weight_vertex_cover(medium_random, eps=0.1, seed=3)
        combined = combined_lower_bound(medium_random, res.x)
        assert combined >= res.certificate.opt_lower_bound - 1e-9
        assert combined <= res.cover_weight + 1e-9

    def test_sound_vs_exact_small(self):
        for seed in range(3):
            g = gnp_average_degree(26, 5.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 14))
            res = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
            assert combined_lower_bound(g, res.x) <= exact_mwvc(g).opt_weight + 1e-9
