"""Tests for the orientation diagnostics (Observation 4.3 / Lemma 4.4)."""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.orientation import orient_edges, orientation_report
from repro.core.params import MPCParameters
from repro.core.phase_kernel import GlobalState, apply_outcome
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights


@pytest.fixture
def traced_run():
    g = gnp_average_degree(1200, 48.0, seed=21)
    g = g.with_weights(uniform_weights(g.n, seed=22))
    params = MPCParameters(eps=0.1)
    res = minimum_weight_vertex_cover(g, params=params, seed=23, collect_trace=True)
    assert res.traces
    return g, params, res


class TestOrientEdges:
    def test_tail_ratio_is_x0(self, traced_run):
        """The tail's ratio w'/d equals the edge's initial dual."""
        g, params, res = traced_run
        state = GlobalState.initial(g, g.weights)
        plan, _ = res.traces[0]
        resid_high = state.resid_degree[plan.high_ids]
        tail_is_u = orient_edges(plan, resid_high)
        ratio = plan.wprime_high / np.maximum(resid_high, 1)
        tail_ratio = np.where(tail_is_u, ratio[plan.hu], ratio[plan.hv])
        assert np.allclose(tail_ratio, plan.x0)

    def test_empty_plan(self, traced_run):
        g, params, res = traced_run
        plan, _ = res.traces[0]
        import dataclasses

        empty = dataclasses.replace(
            plan,
            edges_high=np.empty(0, np.int64),
            hu=np.empty(0, np.int64),
            hv=np.empty(0, np.int64),
            x0=np.empty(0),
        )
        assert orient_edges(empty, np.empty(0)).size == 0


class TestOrientationReport:
    def test_observation_4_3_holds(self, traced_run):
        """Active out-degree ≤ d(v)·(1-ε)^I — deterministic, must hold
        exactly (ratio ≤ 1) every phase."""
        g, params, res = traced_run
        state = GlobalState.initial(g, g.weights)
        for plan, outcome in res.traces:
            resid_high = state.resid_degree[plan.high_ids]
            rep = orientation_report(plan, outcome, params, resid_degree_high=resid_high)
            assert rep.max_out_degree_bound_ratio <= 1.0 + 1e-9, (
                f"phase {plan.phase_index}: Observation 4.3 violated"
            )
            apply_outcome(g, g.weights, state, plan, outcome)

    def test_lemma_4_4_holds(self, traced_run):
        """Surviving edges ≤ 2·n·d̄·(1-ε)^I (w.h.p.); at these sizes the
        inactive-side slack makes it comfortably true."""
        g, params, res = traced_run
        state = GlobalState.initial(g, g.weights)
        for plan, outcome in res.traces:
            resid_high = state.resid_degree[plan.high_ids]
            rep = orientation_report(plan, outcome, params, resid_degree_high=resid_high)
            assert rep.lemma44_ratio <= 1.0
            apply_outcome(g, g.weights, state, plan, outcome)

    def test_report_shape(self, traced_run):
        g, params, res = traced_run
        state = GlobalState.initial(g, g.weights)
        plan, outcome = res.traces[0]
        rep = orientation_report(
            plan, outcome, params, resid_degree_high=state.resid_degree[plan.high_ids]
        )
        d = rep.as_dict()
        assert d["phase_index"] == 0
        assert d["num_high"] == plan.num_high
        assert d["surviving_edges"] >= 0

    def test_misaligned_degrees_rejected(self, traced_run):
        g, params, res = traced_run
        plan, outcome = res.traces[0]
        with pytest.raises(ValueError, match="align"):
            orientation_report(plan, outcome, params, resid_degree_high=np.ones(3))
