"""Tests for the symbolic evaluation of the paper's asymptotic formulas."""

import math

import pytest

from repro.core.asymptotics import (
    centralized_iteration_bound,
    paper_gamma,
    paper_phase_count_bound,
    paper_phase_recursion,
    predict,
)


class TestGamma:
    def test_formula(self):
        eps = 0.1
        expected = math.log(1 / 0.9) / (40 * math.log(15))
        assert paper_gamma(eps) == pytest.approx(expected)

    def test_in_unit_interval(self):
        for eps in (0.01, 0.1, 0.2):
            assert 0 < paper_gamma(eps) < 1

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            paper_gamma(0.3)


#: n = 10^(10^30): comfortably past the "sufficiently large n" threshold
#: n > 10^(10^10) at eps = 0.1 (the recursion's fixed point e^714 must sit
#: below the stop threshold 30·log log n).
_HUGE_LOG10_N = 1e30


class TestRecursion:
    def test_monotone_decreasing(self):
        log_n = _HUGE_LOG10_N * math.log(10)
        traj = paper_phase_recursion(3000.0 * math.log(10), log_n, eps=0.1)
        assert len(traj) > 2
        assert all(a > b for a, b in zip(traj, traj[1:]))

    def test_terminates_at_threshold(self):
        log_n = _HUGE_LOG10_N * math.log(10)
        traj = paper_phase_recursion(3000.0 * math.log(10), log_n, eps=0.1)
        stop = 30 * math.log(log_n)
        assert traj[-1] <= stop

    def test_already_below_threshold(self):
        # d small relative to log^30 n: zero phases.
        traj = paper_phase_recursion(math.log(10.0), math.log(1e9), eps=0.1)
        assert len(traj) == 1

    def test_sufficiently_large_n_is_gigantic(self):
        """The documented finding: at n = 10^10000 (already absurd) the
        recursion cannot reach log^30 n — the fixed point sits above it."""
        with pytest.raises(RuntimeError, match="converge"):
            paper_phase_recursion(5000.0 * math.log(10), 1e4 * math.log(10), eps=0.1)


class TestDoublyLogGrowth:
    def test_loglog_signature(self):
        """Phase counts grow linearly in log log d: multiplying log d by 10
        adds a constant number of phases."""
        eps = 0.1
        counts = [
            predict(_HUGE_LOG10_N, log10_d, eps).phases_recursion
            for log10_d in (3e3, 3e4, 3e5)
        ]
        d1 = counts[1] - counts[0]
        d2 = counts[2] - counts[1]
        assert d1 > 0 and d2 > 0
        assert abs(d2 - d1) <= 0.25 * d1

    def test_closed_form_tracks_recursion(self):
        eps = 0.1
        for log10_d in (3e3, 3e4):
            pred = predict(_HUGE_LOG10_N, log10_d, eps)
            # The closed form bounds the recursion count (up to the additive
            # slack of the final contraction steps near the threshold).
            assert pred.phases_closed_form >= 0.5 * pred.phases_recursion

    def test_baseline_grows_much_faster(self):
        pred = predict(_HUGE_LOG10_N, 3e4, eps=0.1)
        assert pred.local_iterations > 50 * pred.phases_recursion


class TestPredict:
    def test_degree_cannot_exceed_n(self):
        with pytest.raises(ValueError):
            predict(10.0, 20.0)

    def test_as_dict(self):
        d = predict(_HUGE_LOG10_N, 3e3).as_dict()
        assert d["log10_d"] == 3e3
        assert d["paper_phases (recursion)"] >= 1
