"""Tests for kernelization and the preprocessing pipeline."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.preprocess import (
    leaf_reduction,
    nemhauser_trotter_reduction,
    solve_with_preprocessing,
)
from repro.graphs.generators import gnp_average_degree, random_tree, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestLeafReduction:
    def test_star_collapses(self):
        """Unit-weight star: hub forced, all leaves removed, empty kernel."""
        red = leaf_reduction(star(8))
        assert red.forced_in[0]
        assert red.forced_in.sum() == 1
        assert red.removed[1:].all()
        assert not red.kernel_mask.any()

    def test_heavy_hub_not_forced(self):
        """Leaf rule requires w(u) <= w(leaf); an expensive hub with cheap
        leaves is NOT forced (taking it may be suboptimal)."""
        g = star(4).with_weights(np.array([100.0, 1.0, 1.0, 1.0]))
        red = leaf_reduction(g)
        assert not red.forced_in[0]
        assert red.kernel_mask.sum() == 4  # nothing decided

    def test_tree_solves_fully_unweighted(self):
        """On unit-weight trees the leaf rule alone often empties the
        kernel; where it does, the forced set is optimal."""
        g = random_tree(200, seed=1)
        red = leaf_reduction(g)
        if not red.kernel_mask.any():
            opt = exact_mwvc(g.induced_subgraph(np.arange(min(g.n, 40)))[0]) if False else None
            # forced set must be a cover of the tree
            assert g.is_vertex_cover(red.forced_in)

    def test_path_chain(self):
        """Path a-b-c-d with unit weights: leaf rule forces b (and then d's
        neighbor c), solving it exactly."""
        g = WeightedGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        red = leaf_reduction(g)
        assert g.is_vertex_cover(red.forced_in | red.kernel_mask * False) or red.kernel_mask.any()
        # with the kernel solved trivially, total cover is optimal (=2)
        forced_weight = float(g.weights[red.forced_in].sum())
        assert forced_weight <= 2.0

    def test_preserves_optimum(self):
        """forced_in extends to an optimal cover: OPT(G) equals
        w(forced) + OPT(kernel)."""
        for seed in range(4):
            g = gnp_average_degree(24, 2.5, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 5.0, seed=seed + 40))
            red = leaf_reduction(g)
            opt_full = exact_mwvc(g).opt_weight
            kernel, kids, _ = g.induced_subgraph(red.kernel_mask)
            opt_kernel = exact_mwvc(kernel).opt_weight if kernel.m else 0.0
            forced_weight = float(g.weights[red.forced_in].sum())
            assert forced_weight + opt_kernel == pytest.approx(opt_full)


class TestNTReduction:
    def test_preserves_optimum(self):
        for seed in range(4):
            g = gnp_average_degree(26, 4.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 5.0, seed=seed + 60))
            red = nemhauser_trotter_reduction(g)
            opt_full = exact_mwvc(g).opt_weight
            kernel, _, _ = g.induced_subgraph(red.kernel_mask)
            opt_kernel = exact_mwvc(kernel).opt_weight if kernel.m else 0.0
            forced_weight = float(g.weights[red.forced_in].sum())
            assert forced_weight + opt_kernel == pytest.approx(opt_full, rel=1e-5)

    def test_kernel_is_half_integral_region(self):
        g = gnp_average_degree(40, 5.0, seed=9)
        red = nemhauser_trotter_reduction(g)
        # removed vertices have no edges into other removed vertices
        ru, rv = g.endpoint_values(red.removed)
        assert not (ru & rv).any()

    def test_bipartite_fully_decided(self):
        """Kőnig: bipartite LPs have integral optima, so the kernel can be
        empty (HiGHS returns a vertex solution)."""
        from repro.graphs.generators import complete_bipartite

        red = nemhauser_trotter_reduction(complete_bipartite(3, 5))
        assert red.forced_in.sum() == 3
        assert not red.kernel_mask.any()


class TestPipeline:
    def _solver(self, sub):
        return minimum_weight_vertex_cover(sub, eps=0.1, seed=0).in_cover

    def test_produces_cover(self, medium_random):
        cover = solve_with_preprocessing(medium_random, self._solver)
        assert medium_random.is_vertex_cover(cover)

    def test_with_nt(self):
        g = gnp_average_degree(300, 6.0, seed=10)
        g = g.with_weights(uniform_weights(g.n, seed=11))
        cover = solve_with_preprocessing(g, self._solver, use_nt_reduction=True)
        assert g.is_vertex_cover(cover)

    def test_quality_not_worse_than_raw(self):
        """Preprocessing must not degrade quality beyond the raw run's
        certificate bound (it usually improves it)."""
        g = gnp_average_degree(400, 5.0, seed=12)
        g = g.with_weights(uniform_weights(g.n, seed=13))
        raw = minimum_weight_vertex_cover(g, eps=0.1, seed=14)
        pre = solve_with_preprocessing(
            g, lambda s: minimum_weight_vertex_cover(s, eps=0.1, seed=14).in_cover
        )
        assert float(g.weights[pre].sum()) <= 1.1 * raw.cover_weight

    def test_exact_through_pipeline_is_exact(self):
        """With an exact kernel solver, the pipeline must return OPT —
        certifying that the reductions are optimality-preserving."""
        for seed in range(3):
            g = gnp_average_degree(26, 3.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 5.0, seed=seed + 80))
            cover = solve_with_preprocessing(
                g,
                lambda s: exact_mwvc(s).in_cover,
                use_nt_reduction=True,
            )
            assert float(g.weights[cover].sum()) == pytest.approx(
                exact_mwvc(g).opt_weight, rel=1e-6
            )

    def test_empty_graph(self):
        cover = solve_with_preprocessing(WeightedGraph.empty(5), self._solver)
        assert not cover.any()

    def test_isolated_vertices_excluded(self):
        g = WeightedGraph.from_edge_list(5, [(0, 1)])
        cover = solve_with_preprocessing(g, self._solver)
        assert not cover[2:].any()
