"""Cross-engine tests: the cluster engine must reproduce the vectorized
engine decision-for-decision, and its measured rounds must equal the
vectorized engine's predictions (experiment E11 as a test)."""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.graphs.generators import gnp_average_degree, power_law
from repro.graphs.weights import adversarial_spread_weights, uniform_weights


def _pair(graph, seed, **kwargs):
    rv = minimum_weight_vertex_cover(graph, seed=seed, engine="vectorized", **kwargs)
    rc = minimum_weight_vertex_cover(graph, seed=seed, engine="cluster", **kwargs)
    return rv, rc


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_covers_random(self, seed):
        g = gnp_average_degree(300, 18.0, seed=seed)
        g = g.with_weights(uniform_weights(g.n, seed=seed + 100))
        rv, rc = _pair(g, seed=seed, eps=0.1)
        assert np.array_equal(rv.in_cover, rc.in_cover)
        assert np.allclose(rv.x, rc.x, rtol=1e-12, atol=1e-15)

    def test_identical_on_power_law(self):
        g = power_law(400, seed=5)
        g = g.with_weights(uniform_weights(g.n, seed=6))
        rv, rc = _pair(g, seed=7, eps=0.1)
        assert np.array_equal(rv.in_cover, rc.in_cover)

    def test_identical_with_adversarial_weights(self):
        g = gnp_average_degree(250, 20.0, seed=8)
        g = g.with_weights(adversarial_spread_weights(g.n, 6.0, seed=9))
        rv, rc = _pair(g, seed=10, eps=0.1)
        assert np.array_equal(rv.in_cover, rc.in_cover)

    def test_round_prediction_matches_measurement(self):
        for seed in (3, 4):
            g = gnp_average_degree(300, 24.0, seed=seed)
            rv, rc = _pair(g, seed=seed, eps=0.1)
            assert rv.mpc_rounds == rc.mpc_rounds
            assert rv.num_phases == rc.num_phases
            for pv, pc in zip(rv.phases, rc.phases):
                assert pv.rounds == pc.rounds
                assert pv.max_machine_edges == pc.max_machine_edges

    def test_phase_records_match(self):
        g = gnp_average_degree(300, 24.0, seed=11)
        rv, rc = _pair(g, seed=12, eps=0.1)
        for pv, pc in zip(rv.phases, rc.phases):
            assert pv.as_dict() == pc.as_dict()

    def test_cluster_respects_capacity(self):
        """A completed cluster run certifies the memory/communication
        constraints were never violated (they raise otherwise)."""
        g = gnp_average_degree(400, 30.0, seed=13)
        rc = minimum_weight_vertex_cover(g, seed=13, engine="cluster")
        assert rc.verify(g)

    def test_trace_equivalence(self):
        g = gnp_average_degree(300, 24.0, seed=14)
        rv = minimum_weight_vertex_cover(
            g, seed=15, engine="vectorized", collect_trace=True
        )
        rc = minimum_weight_vertex_cover(
            g, seed=15, engine="cluster", collect_trace=True
        )
        assert len(rv.traces) == len(rc.traces)
        for (pv, ov), (pc, oc) in zip(rv.traces, rc.traces):
            assert np.array_equal(ov.freeze_iter, oc.freeze_iter)
            assert np.allclose(ov.x_high, oc.x_high, rtol=1e-12)
            assert np.array_equal(ov.safety_frozen, oc.safety_frozen)
            for tv, tc in zip(ov.trace_ytilde, oc.trace_ytilde):
                assert np.allclose(tv, tc, rtol=1e-12)
