"""Tests for the duality certificates."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.core.certificates import (
    CoverCertificate,
    certify_cover,
    fractional_matching_violation,
)
from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestFractionalMatchingViolation:
    def test_feasible(self, triangle):
        x = np.full(3, 0.5)
        assert fractional_matching_violation(triangle, x) == pytest.approx(1.0)

    def test_infeasible(self, triangle):
        x = np.full(3, 0.6)
        assert fractional_matching_violation(triangle, x) == pytest.approx(1.2)

    def test_zero_duals(self, triangle):
        assert fractional_matching_violation(triangle, np.zeros(3)) == 0.0

    def test_negative_rejected(self, triangle):
        with pytest.raises(ValueError, match="nonnegative"):
            fractional_matching_violation(triangle, np.array([-0.1, 0, 0]))

    def test_shape_checked(self, triangle):
        with pytest.raises(ValueError):
            fractional_matching_violation(triangle, np.zeros(5))

    def test_weight_override(self, triangle):
        x = np.full(3, 0.5)
        v = fractional_matching_violation(triangle, x, weights=np.full(3, 2.0))
        assert v == pytest.approx(0.5)


class TestCertifyCover:
    def test_sound_lower_bound(self):
        """The certificate's OPT lower bound never exceeds the true OPT."""
        for seed in range(4):
            g = gnp_average_degree(30, 5.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 50))
            opt = exact_mwvc(g).opt_weight
            # Feasible duals from the pricing baseline:
            from repro.baselines.pricing import pricing_vertex_cover

            pr = pricing_vertex_cover(g)
            cert = certify_cover(g, pr.in_cover, pr.x)
            assert cert.opt_lower_bound <= opt + 1e-9
            assert cert.certified_ratio >= pr.cover_weight / opt - 1e-9

    def test_detects_non_cover(self, triangle):
        cert = certify_cover(triangle, np.array([True, False, False]), np.zeros(3))
        assert not cert.is_cover

    def test_infeasible_duals_discounted(self, triangle):
        """Overscaled duals inflate load_factor, deflating the bound."""
        feasible = certify_cover(triangle, np.ones(3, bool), np.full(3, 0.5))
        inflated = certify_cover(triangle, np.ones(3, bool), np.full(3, 1.0))
        assert inflated.load_factor == pytest.approx(2.0)
        assert inflated.opt_lower_bound == pytest.approx(feasible.opt_lower_bound)

    def test_zero_dual_edgeless(self):
        g = WeightedGraph.empty(3)
        cert = certify_cover(g, np.zeros(3, bool), np.empty(0))
        assert cert.is_cover
        assert cert.certified_ratio == 1.0

    def test_zero_dual_nonzero_cover(self, triangle):
        cert = certify_cover(triangle, np.ones(3, bool), np.zeros(3))
        assert cert.certified_ratio == float("inf")

    def test_summary_keys(self, triangle):
        cert = certify_cover(triangle, np.ones(3, bool), np.full(3, 0.5))
        s = cert.summary()
        assert set(s) == {
            "is_cover",
            "cover_weight",
            "dual_value",
            "load_factor",
            "opt_lower_bound",
            "certified_ratio",
        }


class TestCertificateWireFormat:
    """`to_dict`/`from_dict` — the schema shared with the WAL records."""

    def test_round_trip(self, triangle):
        cert = certify_cover(triangle, np.ones(3, bool), np.full(3, 0.5))
        assert CoverCertificate.from_dict(cert.to_dict()) == cert

    def test_round_trip_through_json(self, triangle):
        import json

        cert = certify_cover(triangle, np.ones(3, bool), np.zeros(3))
        assert cert.certified_ratio == float("inf")  # survives JSON
        wire = json.loads(json.dumps(cert.to_dict()))
        assert CoverCertificate.from_dict(wire) == cert

    def test_summary_is_the_wire_format(self, triangle):
        cert = certify_cover(triangle, np.ones(3, bool), np.full(3, 0.5))
        assert cert.summary() == cert.to_dict()

    def test_missing_key_rejected(self, triangle):
        cert = certify_cover(triangle, np.ones(3, bool), np.full(3, 0.5))
        wire = cert.to_dict()
        wire.pop("load_factor")
        with pytest.raises(ValueError, match="load_factor"):
            CoverCertificate.from_dict(wire)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="dict"):
            CoverCertificate.from_dict([1, 2, 3])
