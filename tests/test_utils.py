"""Tests for the utilities layer (rng streams, validation)."""

import numpy as np
import pytest

from repro.utils.rng import (
    PURPOSE_PARTITION,
    PURPOSE_THRESHOLDS,
    RngFactory,
    as_seed_sequence,
    spawn_rng,
)
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    ensure_float_array,
    ensure_int_array,
)


class TestSeedSequences:
    def test_int_seed(self):
        seq = as_seed_sequence(42)
        assert seq.entropy == 42

    def test_sequence_passthrough(self):
        seq = np.random.SeedSequence(7)
        assert as_seed_sequence(seq) is seq

    def test_none_gives_fresh(self):
        a = as_seed_sequence(None)
        b = as_seed_sequence(None)
        assert a.entropy != b.entropy

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            as_seed_sequence(-1)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_seed_sequence("seed")


class TestSpawnRng:
    def test_path_determinism(self):
        a = spawn_rng(5, 1, 2).random(4)
        b = spawn_rng(5, 1, 2).random(4)
        assert np.array_equal(a, b)

    def test_distinct_paths_distinct_streams(self):
        a = spawn_rng(5, 1, 2).random(4)
        b = spawn_rng(5, 1, 3).random(4)
        c = spawn_rng(5, 2, 2).random(4)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_empty_path(self):
        a = spawn_rng(9).random(3)
        b = spawn_rng(9).random(3)
        assert np.array_equal(a, b)


class TestRngFactory:
    def test_purpose_phase_scoping(self):
        f = RngFactory(3)
        a = f.for_purpose(PURPOSE_PARTITION, phase=0).integers(0, 100, 5)
        b = f.for_purpose(PURPOSE_PARTITION, phase=1).integers(0, 100, 5)
        c = f.for_purpose(PURPOSE_THRESHOLDS, phase=0).integers(0, 100, 5)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_reconstructible(self):
        a = RngFactory(3).for_purpose(2, 5).random(3)
        b = RngFactory(3).for_purpose(2, 5).random(3)
        assert np.array_equal(a, b)

    def test_child_namespaces(self):
        f = RngFactory(3)
        a = f.child(1).for_purpose(0).random(3)
        b = f.child(2).for_purpose(0).random(3)
        assert not np.array_equal(a, b)

    def test_root_property(self):
        f = RngFactory(11)
        assert f.root.entropy == 11


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_fraction(self):
        assert check_fraction("eps", 0.1) == 0.1
        with pytest.raises(ValueError):
            check_fraction("eps", 0.5)
        with pytest.raises(ValueError):
            check_fraction("eps", 0.0)

    def test_ensure_int_array(self):
        out = ensure_int_array("a", [1, 2, 3])
        assert out.dtype == np.int64
        with pytest.raises(ValueError):
            ensure_int_array("a", [[1], [2]])

    def test_ensure_float_array(self):
        out = ensure_float_array("a", [1.0, 2.0])
        assert out.dtype == np.float64
        with pytest.raises(ValueError):
            ensure_float_array("a", [1.0, float("nan")])
        # non-finite allowed when requested
        out = ensure_float_array("a", [1.0, float("inf")], require_finite=False)
        assert np.isinf(out[1])
