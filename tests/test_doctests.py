"""Docstring examples must stay executable."""

import doctest

import pytest

import repro
import repro.core.mpc_mwvc
import repro.paper_map
import repro.utils.rng

MODULES = [
    repro,
    repro.core.mpc_mwvc,
    repro.paper_map,
    repro.utils.rng,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
