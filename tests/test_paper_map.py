"""The paper-to-code map must reference only symbols that exist."""

import importlib

import pytest

from repro.paper_map import PAPER_MAP, where


def _resolve(path: str):
    """Import the longest importable module prefix, then getattr the rest."""
    parts = path.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(path)


class TestPaperMap:
    @pytest.mark.parametrize("statement", sorted(PAPER_MAP))
    def test_symbols_exist(self, statement):
        for path in PAPER_MAP[statement]:
            _resolve(path)  # raises on drift

    def test_where_lookup(self):
        assert "repro.core.centralized.run_centralized" in where(
            "Algorithm 1 (generic centralized MWVC)"
        )

    def test_where_unknown(self):
        with pytest.raises(KeyError, match="known statements"):
            where("Theorem 9.9")

    def test_coverage_of_algorithm_2_lines(self):
        lines = [s for s in PAPER_MAP if s.startswith("Algorithm 2 Line")]
        assert len(lines) >= 9  # 2a..2k and Line 3 coverage
