"""Tests for the BDH18 MPC-to-congested-clique adapter."""

import numpy as np
import pytest

from repro.congested.mwvc import LENZEN_ROUNDS, congested_clique_mwvc
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestCongestedCliqueMWVC:
    def test_cover_matches_mpc_run(self):
        g = gnp_average_degree(400, 16.0, seed=0)
        g = g.with_weights(uniform_weights(g.n, seed=1))
        cc = congested_clique_mwvc(g, eps=0.1, seed=2)
        mpc = minimum_weight_vertex_cover(g, eps=0.1, seed=2)
        assert np.array_equal(cc.in_cover, mpc.in_cover)
        assert cc.cover_weight == pytest.approx(mpc.cover_weight)

    def test_round_translation_formula(self):
        g = gnp_average_degree(400, 16.0, seed=3)
        params = MPCParameters(eps=0.1, memory_factor=16.0)
        res = congested_clique_mwvc(g, params=params, seed=4)
        assert res.cc_rounds_per_mpc_round == LENZEN_ROUNDS * 16
        assert res.cc_rounds == res.cc_rounds_per_mpc_round * res.mpc_result.mpc_rounds

    def test_rounds_charged_on_model(self):
        g = gnp_average_degree(200, 8.0, seed=5)
        res = congested_clique_mwvc(g, eps=0.1, seed=6)
        assert res.num_nodes == 200
        assert res.cc_rounds > 0

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            congested_clique_mwvc(WeightedGraph.empty(0), seed=0)
