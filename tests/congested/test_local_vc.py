"""Tests for the native congested-clique primal–dual protocol."""

import numpy as np
import pytest

from repro.congested.local_vc import congested_clique_local_vc
from repro.core.centralized import run_centralized
from repro.graphs.generators import gnp_average_degree, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestLocalCliqueVC:
    def test_returns_cover(self, small_random):
        res = congested_clique_local_vc(small_random, eps=0.1, seed=0)
        assert small_random.is_vertex_cover(res.in_cover)

    def test_matches_centralized_exactly(self):
        """The distributed protocol replays Algorithm 1 bit-for-bit when
        given the same threshold seed — the strongest cross-validation of
        both implementations."""
        for seed in range(3):
            g = gnp_average_degree(120, 8.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, seed=seed + 5))
            cc = congested_clique_local_vc(g, eps=0.1, seed=seed)
            ctr = run_centralized(g, eps=0.1, seed=seed)
            assert np.array_equal(cc.in_cover, ctr.in_cover)
            assert np.allclose(cc.x, ctr.x)
            assert cc.iterations == ctr.iterations

    def test_three_rounds_per_iteration(self, small_random):
        res = congested_clique_local_vc(small_random, eps=0.1, seed=1)
        # 2 rounds of convergence checking per iteration (+ the final check
        # that observes termination) plus 1 communication round per
        # iteration: 3·iters + 2.
        assert res.cc_rounds == 3 * res.iterations + 2

    def test_star_cover(self):
        g = star(20)
        res = congested_clique_local_vc(g, eps=0.1, seed=2)
        assert g.is_vertex_cover(res.in_cover)

    def test_empty_graph(self):
        res = congested_clique_local_vc(WeightedGraph.empty(0), seed=3)
        assert res.cc_rounds == 0

    def test_edgeless_graph(self):
        res = congested_clique_local_vc(WeightedGraph.empty(5), seed=4)
        assert not res.in_cover.any()
        assert res.iterations == 0

    def test_invalid_eps(self, small_random):
        with pytest.raises(ValueError):
            congested_clique_local_vc(small_random, eps=0.3)
