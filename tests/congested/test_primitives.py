"""Tests for congested-clique collectives."""

import numpy as np
import pytest

from repro.congested.clique import CongestedClique
from repro.congested.primitives import (
    aggregate_sum,
    allreduce_sum,
    broadcast_value,
    compute_degree_sum,
)


class TestPrimitives:
    def test_broadcast_one_round(self):
        cc = CongestedClique(6)
        out = broadcast_value(cc, 2, 3.5)
        assert cc.rounds == 1
        assert out == {i: 3.5 for i in range(6)}

    def test_aggregate_one_round(self):
        cc = CongestedClique(5)
        total = aggregate_sum(cc, {i: float(i) for i in range(5)})
        assert total == 10.0
        assert cc.rounds == 1

    def test_aggregate_missing_nodes(self):
        cc = CongestedClique(5)
        assert aggregate_sum(cc, {1: 2.0, 3: 3.0}) == 5.0

    def test_allreduce_two_rounds(self):
        cc = CongestedClique(4)
        out = allreduce_sum(cc, {i: 1.0 for i in range(4)})
        assert cc.rounds == 2
        assert out == {i: 4.0 for i in range(4)}

    def test_degree_sum(self):
        cc = CongestedClique(4)
        total = compute_degree_sum(cc, np.array([3, 1, 2, 0]))
        assert total == 6.0
        assert cc.rounds == 1

    def test_degree_shape_checked(self):
        cc = CongestedClique(4)
        with pytest.raises(ValueError):
            compute_degree_sum(cc, np.array([1, 2]))
