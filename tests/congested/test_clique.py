"""Tests for the congested clique model."""

import numpy as np
import pytest

from repro.congested.clique import CliqueMessage, CongestedClique, LinkCapacityExceeded


class TestCongestedClique:
    def test_delivery_and_rounds(self):
        cc = CongestedClique(4)
        inboxes = cc.exchange([CliqueMessage(0, 1, 7.0), CliqueMessage(2, 1, 8.0)])
        assert [m.payload for m in inboxes[1]] == [7.0, 8.0]
        assert cc.rounds == 1

    def test_link_capacity_enforced(self):
        cc = CongestedClique(3, words_per_link=1)
        with pytest.raises(LinkCapacityExceeded):
            cc.exchange([CliqueMessage(0, 1, 1.0), CliqueMessage(0, 1, 2.0)])

    def test_distinct_links_unconstrained(self):
        # A node may receive one word from everyone simultaneously.
        cc = CongestedClique(10)
        msgs = [CliqueMessage(i, 0, float(i)) for i in range(1, 10)]
        inboxes = cc.exchange(msgs)
        assert len(inboxes[0]) == 9
        assert cc.max_node_inflow == 9

    def test_oversized_payload_rejected(self):
        cc = CongestedClique(3, words_per_link=2)
        with pytest.raises(LinkCapacityExceeded):
            cc.exchange([CliqueMessage(0, 1, np.zeros(3))])

    def test_self_message_rejected(self):
        cc = CongestedClique(3)
        with pytest.raises(ValueError, match="self-message"):
            cc.exchange([CliqueMessage(1, 1, 1.0)])

    def test_bad_node_id(self):
        cc = CongestedClique(3)
        with pytest.raises(ValueError, match="out of range"):
            cc.exchange([CliqueMessage(0, 7, 1.0)])

    def test_idle_round(self):
        cc = CongestedClique(3)
        cc.idle_round()
        assert cc.rounds == 1
        assert cc.total_messages == 0

    def test_summary(self):
        cc = CongestedClique(3)
        cc.exchange([CliqueMessage(0, 1, 1.0)])
        s = cc.summary()
        assert s["rounds"] == 1 and s["total_words"] == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CongestedClique(0)
        with pytest.raises(ValueError):
            CongestedClique(3, words_per_link=0)
