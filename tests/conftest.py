"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle,
    disjoint_edges,
    double_star,
    gnp_average_degree,
    grid_2d,
    power_law,
    random_tree,
    star,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


@pytest.fixture
def triangle() -> WeightedGraph:
    """K_3 with unit weights; OPT = 2 (any two vertices)."""
    return WeightedGraph.from_edge_list(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def weighted_star() -> WeightedGraph:
    """Star with heavy hub (w=10) and 5 light leaves (w=1 each); OPT = 5
    (all leaves beat the hub)."""
    g = star(6)
    return g.with_weights(np.array([10.0, 1.0, 1.0, 1.0, 1.0, 1.0]))


@pytest.fixture
def cheap_hub_star() -> WeightedGraph:
    """Star with light hub (w=1) and 5 heavy leaves (w=10 each); OPT = 1."""
    g = star(6)
    return g.with_weights(np.array([1.0, 10.0, 10.0, 10.0, 10.0, 10.0]))


@pytest.fixture
def path4() -> WeightedGraph:
    """Path 0-1-2-3 with unit weights; OPT = 2 ({1, 2})."""
    return WeightedGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def small_random() -> WeightedGraph:
    """Seeded 60-vertex random graph with uniform random weights."""
    g = gnp_average_degree(60, 6.0, seed=42)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=43))


@pytest.fixture
def medium_random() -> WeightedGraph:
    """Seeded 800-vertex random graph with uniform random weights."""
    g = gnp_average_degree(800, 20.0, seed=7)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=8))


@pytest.fixture(
    params=["triangle", "star8", "bipartite", "grid", "cycle9", "matching", "tree", "double_star", "powerlaw"]
)
def named_graph(request) -> WeightedGraph:
    """A zoo of structured graphs for parametrized validity tests."""
    name = request.param
    if name == "triangle":
        return complete_graph(3)
    if name == "star8":
        return star(8)
    if name == "bipartite":
        return complete_bipartite(3, 5)
    if name == "grid":
        return grid_2d(4, 5)
    if name == "cycle9":
        return cycle(9)
    if name == "matching":
        return disjoint_edges(6)
    if name == "tree":
        return random_tree(30, seed=5)
    if name == "double_star":
        return double_star(6)
    if name == "powerlaw":
        return power_law(80, seed=11)
    raise AssertionError(name)
