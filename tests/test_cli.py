"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.generators import gnp_average_degree
from repro.graphs.io import load_npz, save_npz
from repro.graphs.weights import uniform_weights


class TestSolve:
    def test_solve_generated(self, capsys):
        rc = main(["solve", "--family", "gnp", "--n", "200", "--degree", "8",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cover_weight" in out

    def test_solve_json(self, capsys):
        rc = main(["solve", "--family", "gnp", "--n", "150", "--degree", "6",
                   "--seed", "2", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["algorithm"] == "mpc"
        assert data["cover_weight"] > 0
        assert data["n"] == 150

    @pytest.mark.parametrize("algo", ["centralized", "pricing", "greedy"])
    def test_other_algorithms(self, algo, capsys):
        rc = main(["solve", "--family", "gnp", "--n", "120", "--degree", "6",
                   "--seed", "3", "--algorithm", algo, "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["algorithm"] == algo

    def test_solve_from_file(self, tmp_path, capsys):
        g = gnp_average_degree(100, 5.0, seed=4)
        g = g.with_weights(uniform_weights(g.n, seed=5))
        path = tmp_path / "g.npz"
        save_npz(g, path)
        rc = main(["solve", "--input", str(path), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n"] == 100

    def test_cover_out(self, tmp_path, capsys):
        out = tmp_path / "cover.txt"
        rc = main(["solve", "--family", "gnp", "--n", "100", "--degree", "6",
                   "--seed", "6", "--cover-out", str(out)])
        assert rc == 0
        ids = np.loadtxt(out, dtype=np.int64)
        assert ids.size > 0

    def test_cluster_engine(self, capsys):
        rc = main(["solve", "--family", "gnp", "--n", "120", "--degree", "8",
                   "--seed", "7", "--engine", "cluster", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "cluster"

    @pytest.mark.parametrize("family", ["power_law", "grid", "tree", "sbm", "geometric", "ba"])
    def test_all_families(self, family, capsys):
        rc = main(["solve", "--family", family, "--n", "150", "--degree", "6",
                   "--seed", "8", "--json"])
        assert rc == 0

    def test_unit_weights(self, capsys):
        rc = main(["solve", "--family", "gnp", "--n", "100", "--degree", "6",
                   "--weights", "unit", "--seed", "9", "--json"])
        assert rc == 0


class TestGenerate:
    def test_npz_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "w.npz"
        rc = main(["generate", "--family", "gnp", "--n", "80", "--degree", "5",
                   "--seed", "10", "--out", str(path)])
        assert rc == 0
        g = load_npz(path)
        assert g.n == 80

    def test_edgelist_output(self, tmp_path, capsys):
        path = tmp_path / "w.txt"
        rc = main(["generate", "--family", "tree", "--n", "50", "--seed", "11",
                   "--out", str(path)])
        assert rc == 0
        assert path.read_text().startswith("# mwvc-edgelist v1")


class TestExperiment:
    def test_unknown_id(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])

    def test_e11_runs(self, capsys):
        rc = main(["experiment", "e11"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "E11" in out
        assert "rounds_equal" in out


class TestBatch:
    def _manifest(self, tmp_path, lines):
        path = tmp_path / "manifest.jsonl"
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        return str(path)

    def test_batch_manifest_to_jsonl(self, tmp_path, capsys):
        manifest = self._manifest(
            tmp_path,
            [
                {"id": "a", "family": "gnp", "n": 80, "degree": 5, "graph_seed": 1},
                {"id": "a2", "family": "gnp", "n": 80, "degree": 5, "graph_seed": 1},
                {"id": "b", "n": 3, "edges": [[0, 1], [1, 2]]},
            ],
        )
        rc = main(["batch", "--manifest", manifest, "--no-pool"])
        assert rc == 0
        rows = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [r["request_id"] for r in rows] == ["a", "a2", "b"]
        assert all(r["ok"] for r in rows)
        assert rows[1]["cache_hit"]  # identical instance deduplicated
        assert rows[0]["cache_key"] == rows[1]["cache_key"]
        assert rows[0]["cover_weight"] == rows[1]["cover_weight"]

    def test_batch_out_file_and_failure_exit_code(self, tmp_path, capsys):
        manifest = self._manifest(
            tmp_path,
            [
                {"id": "good", "family": "tree", "n": 30},
                {"id": "bad", "family": "tree", "n": 30, "eps": 0.4},
            ],
        )
        out = tmp_path / "results.jsonl"
        rc = main(["batch", "--manifest", manifest, "--no-pool", "--out", str(out)])
        assert rc == 1  # one failed request
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        by_id = {r["request_id"]: r for r in rows}
        assert by_id["good"]["ok"]
        assert not by_id["bad"]["ok"] and "eps" in by_id["bad"]["error"]

    def test_batch_bad_manifest(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(SystemExit, match="line 1"):
            main(["batch", "--manifest", str(path)])

    def test_batch_empty_manifest(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("# nothing here\n")
        with pytest.raises(SystemExit):
            main(["batch", "--manifest", str(path)])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            main(["solve", "--family", "moebius"])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()


class TestMissingInput:
    def test_solve_missing_file_is_clean_error(self, tmp_path):
        missing = tmp_path / "nope.npz"
        with pytest.raises(SystemExit, match="input file not found"):
            main(["solve", "--input", str(missing)])

    def test_solve_missing_edgelist(self, tmp_path):
        missing = tmp_path / "nope.txt"
        with pytest.raises(SystemExit, match="input file not found"):
            main(["solve", "--input", str(missing)])

    def test_corrupt_input_is_clean_error(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("junk\n")
        with pytest.raises(SystemExit, match="cannot read input file"):
            main(["solve", "--input", str(bad)])

    def test_stream_missing_updates_file(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(SystemExit, match="update stream not found"):
            main(["stream", "--family", "gnp", "--n", "60", "--degree", "4",
                  "--seed", "1", "--updates", str(missing)])


class TestStream:
    def test_generated_churn_stream(self, tmp_path, capsys):
        out = tmp_path / "records.jsonl"
        rc = main(["stream", "--family", "gnp", "--n", "150", "--degree", "6",
                   "--weights", "uniform", "--seed", "1", "--churn", "uniform",
                   "--num-updates", "120", "--batch-size", "30",
                   "--out", str(out)])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["final_is_cover"] is True
        assert summary["num_batches"] == 4
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 4
        assert all("certified_ratio" in r for r in rows)

    def test_updates_file_stream(self, tmp_path, capsys):
        from repro.dynamic import save_update_stream
        from repro.graphs.streams import uniform_churn_stream
        from repro.service.manifest import generate_graph

        g = generate_graph("gnp", n=100, degree=6.0, seed=2)
        stream_path = tmp_path / "stream.jsonl.gz"
        save_update_stream(uniform_churn_stream(g, 80, seed=3), stream_path)
        rc = main(["stream", "--family", "gnp", "--n", "100", "--degree", "6",
                   "--seed", "2", "--weights", "unit",
                   "--updates", str(stream_path), "--batch-size", "40"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["num_updates"] == 80
        assert summary["final_is_cover"] is True

    def test_resolve_every_batch_flag(self, capsys):
        rc = main(["stream", "--family", "gnp", "--n", "80", "--degree", "5",
                   "--seed", "4", "--churn", "sliding_window",
                   "--num-updates", "60", "--batch-size", "30",
                   "--resolve-every-batch"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["num_resolves"] == summary["num_batches"] + 1

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit, match="max_drift"):
            main(["stream", "--family", "gnp", "--n", "60", "--degree", "4",
                  "--seed", "5", "--num-updates", "10", "--max-drift", "-1"])
