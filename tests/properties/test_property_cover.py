"""Property-based tests: every algorithm returns a valid cover, and weak
duality holds between any algorithm's dual and any algorithm's cover."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_vertex_cover
from repro.baselines.local_ratio import local_ratio_vertex_cover
from repro.baselines.pricing import pricing_vertex_cover
from repro.core.centralized import run_centralized
from repro.core.mpc_mwvc import minimum_weight_vertex_cover

from tests.properties.strategies import seeds, weighted_graphs


class TestAlwaysACover:
    @given(weighted_graphs(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_centralized(self, g, seed):
        res = run_centralized(g, eps=0.1, seed=seed)
        assert g.is_vertex_cover(res.in_cover)

    @given(weighted_graphs(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_mpc(self, g, seed):
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        assert g.is_vertex_cover(res.in_cover)
        assert res.certificate.is_cover

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_pricing(self, g):
        assert g.is_vertex_cover(pricing_vertex_cover(g).in_cover)

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_greedy(self, g):
        assert g.is_vertex_cover(greedy_vertex_cover(g).in_cover)

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_local_ratio(self, g):
        assert g.is_vertex_cover(local_ratio_vertex_cover(g).in_cover)


class TestWeakDuality:
    @given(weighted_graphs(), seeds)
    @settings(max_examples=30, deadline=None)
    def test_any_dual_below_any_cover(self, g, seed):
        """Lemma 3.2 in executable form: a feasible dual from one algorithm
        lower-bounds the cover weight of a *different* algorithm."""
        dual = pricing_vertex_cover(g).dual_value
        for cover_fn in (
            lambda: greedy_vertex_cover(g).in_cover,
            lambda: run_centralized(g, eps=0.1, seed=seed).in_cover,
        ):
            cover_weight = g.cover_weight(cover_fn())
            assert dual <= cover_weight + 1e-9

    @given(weighted_graphs(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_certificate_sound_for_mpc(self, g, seed):
        """The MPC certificate's lower bound is below every cover we can
        produce, including its own."""
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        lb = res.certificate.opt_lower_bound
        assert lb <= res.cover_weight + 1e-9
        assert lb <= pricing_vertex_cover(g).cover_weight + 1e-9

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_pricing_factor_two(self, g):
        res = pricing_vertex_cover(g)
        assert res.cover_weight <= 2.0 * res.dual_value + 1e-9


class TestDeterminismProperties:
    @given(weighted_graphs(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_mpc_seed_determinism(self, g, seed):
        a = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        b = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        assert np.array_equal(a.in_cover, b.in_cover)
        assert a.mpc_rounds == b.mpc_rounds

    @given(weighted_graphs(), seeds, st.floats(1e-3, 1e3))
    @settings(max_examples=20, deadline=None)
    def test_weight_scale_invariance(self, g, seed, scale):
        """Cover decisions are invariant under w -> scale·w."""
        a = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        scaled = g.with_weights(g.weights * scale)
        b = minimum_weight_vertex_cover(scaled, eps=0.1, seed=seed)
        assert np.array_equal(a.in_cover, b.in_cover)
