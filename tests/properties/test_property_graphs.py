"""Property-based tests of the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.checks import validate_graph
from repro.graphs.graph import WeightedGraph

from tests.properties.strategies import weighted_graphs


class TestStructuralInvariants:
    @given(weighted_graphs())
    def test_all_invariants_hold(self, g):
        validate_graph(g)

    @given(weighted_graphs())
    def test_degree_sum_is_twice_edges(self, g):
        assert g.degrees.sum() == 2 * g.m

    @given(weighted_graphs())
    def test_average_degree_formula(self, g):
        if g.n:
            assert g.average_degree == 2 * g.m / g.n

    @given(weighted_graphs())
    def test_construction_idempotent(self, g):
        rebuilt = WeightedGraph(g.n, g.edges_u, g.edges_v, g.weights)
        assert rebuilt == g


class TestIncidentSumsProperties:
    @given(weighted_graphs(), st.integers(0, 10**6))
    def test_linearity(self, g, seed):
        rng = np.random.default_rng(seed)
        x = rng.random(g.m)
        y = rng.random(g.m)
        lhs = g.incident_sums(2.0 * x + y)
        rhs = 2.0 * g.incident_sums(x) + g.incident_sums(y)
        assert np.allclose(lhs, rhs)

    @given(weighted_graphs())
    def test_total_is_twice_edge_sum(self, g):
        x = np.ones(g.m)
        assert g.incident_sums(x).sum() == 2 * g.m

    @given(weighted_graphs())
    def test_counts_match_sums_for_binary(self, g):
        if g.m == 0:
            return
        mask = np.zeros(g.m, dtype=bool)
        mask[:: max(1, g.m // 3)] = True
        counts = g.incident_counts(mask)
        sums = g.incident_sums(mask.astype(np.float64))
        assert np.array_equal(counts, sums.astype(np.int64))


class TestSubgraphProperties:
    @given(weighted_graphs(), st.integers(0, 10**6))
    @settings(max_examples=50)
    def test_induced_subgraph_edge_mapping(self, g, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(g.n) < 0.5
        sub, vids, eids = g.induced_subgraph(mask)
        validate_graph(sub)
        assert sub.n == int(mask.sum())
        # every parent edge with both endpoints selected appears exactly once
        fu, fv = g.endpoint_values(mask)
        assert eids.size == int((fu & fv).sum())

    @given(weighted_graphs())
    def test_full_mask_identity(self, g):
        sub, _, _ = g.induced_subgraph(np.ones(g.n, dtype=bool))
        assert sub == g

    @given(weighted_graphs())
    def test_empty_mask(self, g):
        sub, vids, eids = g.induced_subgraph(np.zeros(g.n, dtype=bool))
        assert sub.n == 0 and sub.m == 0


class TestSerializationProperties:
    @given(weighted_graphs())
    @settings(max_examples=30)
    def test_npz_roundtrip(self, g):
        import os
        import tempfile

        from repro.graphs.io import load_npz, save_npz

        fd, path = tempfile.mkstemp(suffix=".npz")
        os.close(fd)
        try:
            save_npz(g, path)
            assert load_npz(path) == g
        finally:
            os.unlink(path)
