"""Property-based cross-engine equivalence on arbitrary graphs.

The deterministic coupling between the vectorized and cluster engines must
hold for *any* input, not just the benchmark families; hypothesis hunts for
structural corner cases (dangling vertices, near-cliques, duplicate-heavy
edge draws) that break the message protocol.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mpc_mwvc import minimum_weight_vertex_cover

from tests.properties.strategies import weighted_graphs


class TestEngineEquivalenceProperties:
    @given(weighted_graphs(min_n=2, max_n=40, max_edge_factor=6), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_engines_agree_on_arbitrary_graphs(self, g, seed):
        rv = minimum_weight_vertex_cover(g, eps=0.1, seed=seed, engine="vectorized")
        rc = minimum_weight_vertex_cover(g, eps=0.1, seed=seed, engine="cluster")
        assert np.array_equal(rv.in_cover, rc.in_cover)
        assert np.allclose(rv.x, rc.x, rtol=1e-12, atol=1e-15)
        assert rv.mpc_rounds == rc.mpc_rounds
        assert rv.verify(g) and rc.verify(g)
