"""Hypothesis strategies for random weighted graphs."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graphs.graph import WeightedGraph


@st.composite
def weighted_graphs(
    draw,
    min_n: int = 1,
    max_n: int = 24,
    max_edge_factor: int = 4,
    min_weight: float = 0.1,
    max_weight: float = 100.0,
):
    """A random simple weighted graph.

    Edges are drawn as endpoint pairs (duplicates and reversals collapse in
    canonicalization, so the realized edge count may be below the drawn
    one — that's fine, it broadens the distribution toward sparse cases).
    """
    n = draw(st.integers(min_n, max_n))
    max_m = min(max_edge_factor * n, n * (n - 1) // 2)
    m = draw(st.integers(0, max_m))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda p: p[0] != p[1]
            ),
            min_size=m,
            max_size=m,
        )
    )
    weights = draw(
        st.lists(
            st.floats(
                min_weight, max_weight, allow_nan=False, allow_infinity=False
            ),
            min_size=n,
            max_size=n,
        )
    )
    return WeightedGraph.from_edge_list(n, pairs, np.asarray(weights))


seeds = st.integers(0, 2**32 - 1)
