"""Property-based tests for the extension modules: preprocessing, matching,
pruning, components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pricing import pricing_vertex_cover
from repro.core.matching import (
    extract_matching,
    greedy_maximal_matching,
    is_matching,
    matching_lower_bound,
)
from repro.core.postprocess import is_minimal_cover, prune_redundant_vertices
from repro.core.preprocess import leaf_reduction, solve_with_preprocessing
from repro.graphs.components import component_labels, split_components

from tests.properties.strategies import seeds, weighted_graphs


class TestComponentProperties:
    @given(weighted_graphs())
    @settings(max_examples=40)
    def test_labels_partition_vertices(self, g):
        count, labels = component_labels(g)
        if g.n:
            assert labels.min() >= 0 and labels.max() < count
        # endpoints of every edge share a label
        lu, lv = g.endpoint_values(labels) if g.m else (np.empty(0), np.empty(0))
        assert (lu == lv).all()

    @given(weighted_graphs())
    @settings(max_examples=40)
    def test_split_preserves_edges_and_weights(self, g):
        parts = split_components(g, skip_isolated=False)
        assert sum(s.m for s, _, _ in parts) == g.m
        assert sum(s.n for s, _, _ in parts) == g.n
        total_weight = sum(float(s.weights.sum()) for s, _, _ in parts)
        assert np.isclose(total_weight, g.total_weight)


class TestLeafReductionProperties:
    @given(weighted_graphs())
    @settings(max_examples=40)
    def test_kernel_and_forced_disjoint(self, g):
        red = leaf_reduction(g)
        assert not (red.forced_in & red.kernel_mask).any()
        assert not (red.forced_in & red.removed).any()

    @given(weighted_graphs())
    @settings(max_examples=40)
    def test_forced_plus_kernel_covers(self, g):
        """Edges not inside the kernel must be covered by forced vertices."""
        red = leaf_reduction(g)
        ku, kv = g.endpoint_values(red.kernel_mask)
        fu, fv = g.endpoint_values(red.forced_in)
        outside_kernel = ~(ku & kv)
        assert ((fu | fv) | ~outside_kernel).all()


class TestPipelineProperties:
    @given(weighted_graphs(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_pipeline_always_covers(self, g, seed):
        cover = solve_with_preprocessing(
            g, lambda s: pricing_vertex_cover(s).in_cover
        )
        assert g.is_vertex_cover(cover)


class TestMatchingProperties:
    @given(weighted_graphs(), seeds)
    @settings(max_examples=40)
    def test_extracted_is_matching(self, g, seed):
        x = np.random.default_rng(seed).random(g.m)
        assert is_matching(g, extract_matching(g, x))

    @given(weighted_graphs(), seeds)
    @settings(max_examples=40)
    def test_matching_bound_below_any_cover(self, g, seed):
        mask = greedy_maximal_matching(g, seed=seed)
        lb = matching_lower_bound(g, mask)
        cover = pricing_vertex_cover(g)
        assert lb <= cover.cover_weight + 1e-9


class TestPruningProperties:
    @given(weighted_graphs(), seeds)
    @settings(max_examples=40)
    def test_pruning_preserves_cover_and_weight(self, g, seed):
        base = pricing_vertex_cover(g).in_cover
        pruned = prune_redundant_vertices(g, base)
        assert g.is_vertex_cover(pruned)
        assert g.cover_weight(pruned) <= g.cover_weight(base) + 1e-12
        assert (pruned <= base).all()  # subset

    @given(weighted_graphs(), seeds)
    @settings(max_examples=40)
    def test_pruned_is_minimal(self, g, seed):
        base = pricing_vertex_cover(g).in_cover
        pruned = prune_redundant_vertices(g, base)
        assert is_minimal_cover(g, pruned)
