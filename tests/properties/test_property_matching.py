"""Property-based tests of fractional-matching feasibility (Observation 3.1)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pricing import pricing_vertex_cover
from repro.core.centralized import run_centralized
from repro.core.certificates import fractional_matching_violation
from repro.core.initialization import INIT_SCHEMES, make_init
from repro.core.mpc_mwvc import minimum_weight_vertex_cover

from tests.properties.strategies import seeds, weighted_graphs


class TestObservation31:
    @given(weighted_graphs(), st.sampled_from(sorted(INIT_SCHEMES)))
    @settings(max_examples=60, deadline=None)
    def test_initializations_feasible(self, g, scheme):
        x0 = make_init(scheme, g)
        assert fractional_matching_violation(g, x0) <= 1.0 + 1e-9

    @given(weighted_graphs(), seeds)
    @settings(max_examples=40, deadline=None)
    def test_centralized_final_duals_feasible(self, g, seed):
        res = run_centralized(g, eps=0.1, seed=seed)
        assert fractional_matching_violation(g, res.x) <= 1.0 + 1e-9

    @given(weighted_graphs())
    @settings(max_examples=40, deadline=None)
    def test_pricing_duals_feasible(self, g):
        res = pricing_vertex_cover(g)
        assert fractional_matching_violation(g, res.x) <= 1.0 + 1e-12

    @given(weighted_graphs(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_mpc_duals_near_feasible(self, g, seed):
        """MPC duals may overshoot by the estimator error, but the overshoot
        is bounded (Theorem 4.7's (1+6ε) at scale; generous slack here for
        the tiny-graph regime where the final centralized phase dominates)."""
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        assert res.certificate.load_factor <= 2.0

    @given(weighted_graphs(), seeds)
    @settings(max_examples=25, deadline=None)
    def test_mpc_duals_nonnegative(self, g, seed):
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=seed)
        assert (res.x >= 0).all()
