"""Property-based tests of the MPC substrate and phase kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import MPCParameters
from repro.core.phase_kernel import (
    GlobalState,
    apply_outcome,
    plan_phase,
    simulate_phase_vectorized,
)
from repro.mpc.message import payload_words
from repro.mpc.partition import assignment_counts, random_assignment

from tests.properties.strategies import seeds, weighted_graphs


class TestPartitionProperties:
    @given(seeds, st.integers(0, 500), st.integers(1, 20))
    def test_assignment_is_partition(self, seed, items, machines):
        a = random_assignment(np.random.default_rng(seed), items, machines)
        counts = assignment_counts(a, machines)
        assert counts.sum() == items
        assert (counts >= 0).all()


class TestPayloadWordsProperties:
    @given(st.integers(0, 200))
    def test_array_size(self, k):
        assert payload_words(np.zeros(k)) == k

    @given(st.lists(st.integers(-5, 5), max_size=20))
    def test_list_additive(self, xs):
        assert payload_words(xs) == len(xs)


class TestPhaseKernelProperties:
    @given(weighted_graphs(min_n=2, max_n=30), seeds)
    @settings(max_examples=30, deadline=None)
    def test_phase_preserves_invariants(self, g, seed):
        """One phase on an arbitrary graph keeps all GlobalState invariants
        (validated inside apply_outcome) and never un-freezes a vertex."""
        params = MPCParameters(eps=0.1)
        state = GlobalState.initial(g, g.weights)
        plan = plan_phase(
            g, state, params, phase_index=0, partition_seed=seed, threshold_seed=seed + 1
        )
        outcome = simulate_phase_vectorized(plan, params)
        apply_outcome(g, g.weights, state, plan, outcome, validate=True)
        assert (state.wprime >= 0).all()
        live = state.nonfrozen_edge_mask(g)
        assert np.array_equal(state.resid_degree, g.incident_counts(live))

    @given(weighted_graphs(min_n=2, max_n=30), seeds)
    @settings(max_examples=30, deadline=None)
    def test_freeze_iters_bounded(self, g, seed):
        params = MPCParameters(eps=0.1)
        state = GlobalState.initial(g, g.weights)
        plan = plan_phase(
            g, state, params, phase_index=0, partition_seed=seed, threshold_seed=seed + 1
        )
        outcome = simulate_phase_vectorized(plan, params)
        assert (outcome.freeze_iter >= 0).all()
        assert (outcome.freeze_iter <= plan.iterations).all()
        assert (outcome.x_high >= 0).all()

    @given(weighted_graphs(min_n=2, max_n=30), seeds)
    @settings(max_examples=30, deadline=None)
    def test_x_high_growth_bounded(self, g, seed):
        """Line (2h) duals never exceed x0 / (1-ε)^I."""
        params = MPCParameters(eps=0.1)
        state = GlobalState.initial(g, g.weights)
        plan = plan_phase(
            g, state, params, phase_index=0, partition_seed=seed, threshold_seed=seed + 1
        )
        outcome = simulate_phase_vectorized(plan, params)
        cap = plan.x0 / (1 - params.eps) ** plan.iterations
        assert (outcome.x_high <= cap * (1 + 1e-12)).all()
        assert (outcome.x_high >= plan.x0 * (1 - 1e-12)).all()
