"""Property: vectorized repair/prune kernels ≡ the ``_reference_*`` specs.

The PR that vectorized the dynamic hot path (CSR-delta adjacency,
array-backed duals, batched pricing/prune kernels) promises *bit-identical*
covers, duals, and certificates.  Hypothesis drives random graphs and
random churn sequences through two maintainers — one on
``kernels="vectorized"``, one on ``kernels="reference"`` — and through the
bare kernel functions on synthetic states; every float in the resulting
state must match exactly, not approximately.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.dynamic import DualStore, DynamicGraph, IncrementalCoverMaintainer
from repro.dynamic.repair import (
    PruneView,
    _reference_greedy_prune_pass,
    _reference_pricing_repair_pass,
    greedy_prune_pass,
    pricing_repair_pass,
)
from repro.graphs.updates import EdgeDelete, EdgeInsert, WeightChange

from tests.properties.strategies import weighted_graphs

EPS = 0.1
SEED = 3


@st.composite
def update_sequences(draw, n: int, max_events: int = 50):
    """A random (not necessarily coherent) event sequence over ``n`` vertices."""
    events = []
    num = draw(st.integers(0, max_events))
    for _ in range(num):
        kind = draw(st.integers(0, 2))
        if kind == 2 or n < 2:
            v = draw(st.integers(0, n - 1))
            w = draw(st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False))
            events.append(WeightChange(v, w))
            continue
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1).filter(lambda x: x != u))
        if kind == 0:
            events.append(EdgeInsert(u, v))
        else:
            events.append(EdgeDelete(u, v))
    return events


def _assert_same_maintainer_state(a: IncrementalCoverMaintainer, b):
    assert np.array_equal(a.cover, b.cover), "cover masks differ"
    assert a.edge_duals() == b.edge_duals(), "duals differ"
    assert a.dual_value == b.dual_value, "dual totals differ"
    assert np.array_equal(a._loads, b._loads), "loads differ"


class TestMaintainerEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), graph=weighted_graphs(min_n=2, max_n=16))
    def test_vectorized_stream_equals_reference_stream(self, data, graph):
        updates = data.draw(update_sequences(graph.n))
        batch = data.draw(st.integers(1, 12))
        maintainers = []
        for kernels in ("vectorized", "reference"):
            dyn = DynamicGraph(graph, min_compact=4, compact_fraction=0.5)
            m = IncrementalCoverMaintainer(dyn, kernels=kernels)
            if graph.m:
                m.adopt(minimum_weight_vertex_cover(graph, eps=EPS, seed=SEED))
            reports = []
            for i in range(0, len(updates), batch):
                reports.append(m.apply_batch(updates[i : i + batch]))
            maintainers.append((m, reports))
        (vec, vec_reports), (ref, ref_reports) = maintainers
        _assert_same_maintainer_state(vec, ref)
        assert vec.verify() and ref.verify()
        for rv, rr in zip(vec_reports, ref_reports):
            assert rv == rr, "per-batch reports differ"


class TestBareKernels:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), graph=weighted_graphs(min_n=2, max_n=20))
    def test_pricing_repair_pass_matches_reference(self, data, graph):
        n = graph.n
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        cover = rng.random(n) < data.draw(st.floats(0.0, 0.9))
        loads = rng.random(n) * np.asarray(graph.weights)
        keys = sorted(
            {
                (int(u), int(v))
                for u, v in zip(graph.edges_u, graph.edges_v)
            }
        )
        args = dict(weights=np.asarray(graph.weights), dual_value=0.25)
        ref_cover, ref_loads, ref_duals = cover.copy(), loads.copy(), DualStore()
        ref = _reference_pricing_repair_pass(
            keys, cover=ref_cover, loads=ref_loads, duals=ref_duals, **args
        )
        vec_cover, vec_loads, vec_duals = cover.copy(), loads.copy(), DualStore()
        vec = pricing_repair_pass(
            keys, cover=vec_cover, loads=vec_loads, duals=vec_duals, **args
        )
        assert vec.repaired == ref.repaired
        assert vec.entered == ref.entered
        assert vec.events == ref.events
        assert vec.dual_value == ref.dual_value
        assert np.array_equal(vec_cover, ref_cover)
        assert np.array_equal(vec_loads, ref_loads)
        assert vec_duals == ref_duals

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), graph=weighted_graphs(min_n=1, max_n=20))
    def test_greedy_prune_pass_matches_reference(self, data, graph):
        n = graph.n
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        # Start from a valid cover so droppability is meaningful, then
        # prune a random candidate subset.
        cover = np.ones(n, dtype=bool)
        drop = rng.random(n) < 0.3
        for v in np.nonzero(drop)[0]:
            neigh = graph.neighbors(int(v))
            if cover[neigh].all():
                cover[v] = False
        candidates = sorted(
            int(v) for v in rng.choice(n, size=rng.integers(0, n + 1), replace=False)
        )
        view = PruneView(
            neighbors=graph.neighbors,
            degree=lambda v: int(graph.degrees[v]),
            neighbors_array=graph.neighbors,
            degrees_of=lambda ids: graph.degrees[ids],
        )
        weights = np.asarray(graph.weights)
        ref_cover = cover.copy()
        ref = _reference_greedy_prune_pass(
            candidates, weights=weights, cover=ref_cover, view=view
        )
        vec_cover = cover.copy()
        vec = greedy_prune_pass(
            candidates, weights=weights, cover=vec_cover, view=view
        )
        assert vec == ref
        assert np.array_equal(vec_cover, ref_cover)

    @settings(max_examples=30, deadline=None)
    @given(graph=weighted_graphs(min_n=1, max_n=16))
    def test_prune_callable_only_view_falls_back(self, graph):
        # A view without array accessors (shard adjacency dicts, shipped
        # neighbor lists) must route through the fromiter fallback and
        # still match the reference.
        adj = {v: set() for v in range(graph.n)}
        for u, v in zip(graph.edges_u.tolist(), graph.edges_v.tolist()):
            adj[u].add(v)
            adj[v].add(u)
        view = PruneView(
            neighbors=lambda v: adj[v], degree=lambda v: len(adj[v])
        )
        weights = np.asarray(graph.weights)
        cover = np.ones(graph.n, dtype=bool)
        candidates = list(range(graph.n))
        ref_cover = cover.copy()
        ref = _reference_greedy_prune_pass(
            candidates, weights=weights, cover=ref_cover, view=view
        )
        vec_cover = cover.copy()
        vec = greedy_prune_pass(
            candidates, weights=weights, cover=vec_cover, view=view
        )
        assert vec == ref
        assert np.array_equal(vec_cover, ref_cover)


class TestDualStore:
    @settings(max_examples=50, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 500), st.integers(501, 1000)),
            unique=True,
            max_size=40,
        ),
        data=st.data(),
    )
    def test_round_trip_and_order(self, pairs, data):
        values = [
            data.draw(st.floats(0.001, 100.0, allow_nan=False))
            for _ in pairs
        ]
        store = DualStore(dict(zip(pairs, values)))
        keys, vals = store.to_arrays()
        assert [tuple(k) for k in keys.tolist()] == sorted(pairs)
        again = DualStore.from_arrays(keys, vals)
        assert again == store
        assert again.as_dict() == dict(zip(pairs, values))
        codes, code_vals = store.sorted_codes()
        assert DualStore.from_codes(codes, code_vals) == store
