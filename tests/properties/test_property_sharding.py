"""Property: any partition of any update sequence merges to the unsharded result.

Hypothesis drives random graphs, random *coherent-or-not* update
sequences (no-op inserts/deletes are legal events), random shard counts
and partition schemes — and for every draw the sharded pipeline must
reproduce the monolithic engine's final cover, duals, and certificate
**bit for bit**.  This is the router/merge correctness property the
sharded design rests on: repairs and prunes only interact through shared
endpoints, so shard-local work plus the coordinator's merged frontier
composes back to the global sequential result exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamic.sharded import run_sharded_stream
from repro.dynamic.stream import run_stream
from repro.graphs.updates import EdgeDelete, EdgeInsert, WeightChange

from tests.properties.strategies import weighted_graphs

EPS = 0.1
SEED = 2


@st.composite
def update_sequences(draw, n: int, max_events: int = 40):
    """A random event sequence over ``n`` vertices.

    Events need not be coherent — inserting a present edge or deleting an
    absent one are valid no-ops — which broadens coverage to exactly the
    replay/idempotency paths production streams hit.
    """
    events = []
    num = draw(st.integers(0, max_events))
    for _ in range(num):
        kind = draw(st.integers(0, 2))
        if kind == 2 or n < 2:
            v = draw(st.integers(0, n - 1))
            w = draw(
                st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False)
            )
            events.append(WeightChange(v, w))
            continue
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1).filter(lambda x: x != u))
        events.append(EdgeInsert(u, v) if kind == 0 else EdgeDelete(u, v))
    return events


@st.composite
def sharded_cases(draw):
    graph = draw(weighted_graphs(min_n=1, max_n=20))
    updates = draw(update_sequences(graph.n))
    num_shards = draw(st.integers(1, 4))
    partition = draw(st.sampled_from(["hash", "range"]))
    batch_size = draw(st.integers(1, 12))
    return graph, updates, num_shards, partition, batch_size


class TestShardingProperty:
    @given(sharded_cases())
    @settings(max_examples=40, deadline=None)
    def test_any_partition_merges_to_unsharded_result(self, case):
        graph, updates, num_shards, partition, batch_size = case
        reference = run_stream(
            graph, updates, batch_size=batch_size, eps=EPS, seed=SEED
        )
        sharded = run_sharded_stream(
            graph,
            updates,
            num_shards=num_shards,
            partition=partition,
            batch_size=batch_size,
            eps=EPS,
            seed=SEED,
            use_processes=False,
        )
        assert np.array_equal(reference.final_cover, sharded.final_cover)
        assert reference.final_cover_weight == sharded.final_cover_weight
        assert reference.final_dual_value == sharded.final_dual_value
        assert reference.final_certified_ratio == sharded.final_certified_ratio
        assert sharded.final_is_cover
        for ref_rec, got_rec in zip(reference.records, sharded.records):
            assert ref_rec.report.to_dict() == got_rec.report.to_dict()
        # The certificate must stay sound: lower bound ≤ cover weight.
        if sharded.records and np.isfinite(sharded.final_certified_ratio):
            last = sharded.records[-1].report.certificate
            assert last.opt_lower_bound <= last.cover_weight + 1e-9
