"""Tests for the local-ratio baseline."""

import numpy as np
import pytest

from repro.baselines.local_ratio import local_ratio_vertex_cover
from repro.baselines.pricing import pricing_vertex_cover


class TestLocalRatio:
    def test_returns_cover(self, named_graph):
        res = local_ratio_vertex_cover(named_graph)
        assert named_graph.is_vertex_cover(res.in_cover)

    def test_factor_two_vs_lower_bound(self, medium_random):
        res = local_ratio_vertex_cover(medium_random)
        assert res.lower_bound > 0
        assert res.cover_weight <= 2.0 * res.lower_bound + 1e-9

    def test_equivalent_to_pricing_in_same_order(self, medium_random):
        """Local-ratio and pricing are the same dual ascent; identical edge
        order must give identical covers and matching bounds."""
        lr = local_ratio_vertex_cover(medium_random)
        pr = pricing_vertex_cover(medium_random, order="input")
        assert np.array_equal(lr.in_cover, pr.in_cover)
        assert lr.lower_bound == pytest.approx(pr.dual_value)

    def test_reduction_edges_distinct(self, medium_random):
        res = local_ratio_vertex_cover(medium_random)
        edges = [e for e, _ in res.reductions]
        assert len(edges) == len(set(edges))
        assert all(d > 0 for _, d in res.reductions)

    def test_empty_graph(self):
        from repro.graphs.graph import WeightedGraph

        res = local_ratio_vertex_cover(WeightedGraph.empty(3))
        assert res.num_reductions == 0
        assert res.cover_weight == 0.0
