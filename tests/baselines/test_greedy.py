"""Tests for the greedy heuristic."""

import pytest

from repro.baselines.greedy import greedy_vertex_cover
from repro.graphs.generators import star
from repro.graphs.graph import WeightedGraph


class TestGreedy:
    def test_returns_cover(self, named_graph):
        res = greedy_vertex_cover(named_graph)
        assert named_graph.is_vertex_cover(res.in_cover)

    def test_unweighted_star_takes_hub(self):
        res = greedy_vertex_cover(star(10))
        assert res.in_cover[0]
        assert res.cover_weight == 1.0
        assert res.picks == 1

    def test_cheap_hub_preferred(self, cheap_hub_star):
        res = greedy_vertex_cover(cheap_hub_star)
        assert res.in_cover[0]
        assert res.cover_weight == pytest.approx(1.0)

    def test_expensive_hub_still_taken_when_effective(self, weighted_star):
        # hub ratio 10/5=2 vs leaf ratio 1/1=1: greedy takes leaves.
        res = greedy_vertex_cover(weighted_star)
        assert res.cover_weight == pytest.approx(5.0)

    def test_empty_graph(self):
        res = greedy_vertex_cover(WeightedGraph.empty(3))
        assert not res.in_cover.any()
        assert res.picks == 0

    def test_isolated_vertices_skipped(self):
        g = WeightedGraph.from_edge_list(4, [(0, 1)])
        res = greedy_vertex_cover(g)
        assert not res.in_cover[2] and not res.in_cover[3]

    def test_medium_random_reasonable(self, medium_random):
        from repro.baselines.lp import lp_relaxation

        res = greedy_vertex_cover(medium_random)
        lp = lp_relaxation(medium_random).lp_value
        # no 2-approx guarantee, but it should not be catastrophically bad
        assert res.cover_weight <= 4.0 * lp
