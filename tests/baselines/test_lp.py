"""Tests for the LP relaxation and rounding."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.baselines.lp import lp_relaxation, lp_rounded_cover
from repro.graphs.generators import complete_bipartite, cycle, gnp_average_degree, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestLPRelaxation:
    def test_lower_bounds_opt(self):
        for seed in range(4):
            g = gnp_average_degree(25, 5.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 2))
            lp = lp_relaxation(g)
            assert lp.ok
            assert lp.lp_value <= exact_mwvc(g).opt_weight + 1e-6

    def test_star_lp(self):
        # unweighted star: z_hub = 1 is optimal (or all leaves at 1/2 when
        # leaves are fewer... for star with k leaves LP = min(1, k/2)).
        lp = lp_relaxation(star(6))
        assert lp.lp_value == pytest.approx(1.0, abs=1e-6)

    def test_odd_cycle_half_integral(self):
        lp = lp_relaxation(cycle(5))
        assert lp.lp_value == pytest.approx(2.5, abs=1e-6)
        assert np.allclose(lp.z, 0.5, atol=1e-6)

    def test_bipartite_integral(self):
        # Kőnig: bipartite LP optimum equals integral optimum (= min(a,b)).
        lp = lp_relaxation(complete_bipartite(3, 7))
        assert lp.lp_value == pytest.approx(3.0, abs=1e-6)

    def test_empty(self):
        lp = lp_relaxation(WeightedGraph.empty(4))
        assert lp.lp_value == 0.0


class TestRounding:
    def test_rounded_is_cover_within_2lp(self):
        for seed in range(3):
            g = gnp_average_degree(80, 8.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 5))
            in_cover, weight, lp_value = lp_rounded_cover(g)
            assert g.is_vertex_cover(in_cover)
            assert weight <= 2.0 * lp_value + 1e-6

    def test_weighted_star_rounding(self, cheap_hub_star):
        in_cover, weight, lp_value = lp_rounded_cover(cheap_hub_star)
        assert cheap_hub_star.is_vertex_cover(in_cover)
        assert weight <= 2.0 * lp_value + 1e-6
