"""Tests for the O(log n)-round LOCAL baseline."""

import math

import pytest

from repro.baselines.local_baseline import local_round_by_round
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import adversarial_spread_weights, uniform_weights


class TestLocalBaseline:
    def test_returns_cover(self, medium_random):
        res = local_round_by_round(medium_random, eps=0.1, seed=0)
        assert medium_random.is_vertex_cover(res.in_cover)

    def test_rounds_equal_iterations_plus_one(self, medium_random):
        res = local_round_by_round(medium_random, eps=0.1, seed=1)
        assert res.mpc_rounds == res.iterations + 1

    def test_log_delta_rounds(self):
        g = gnp_average_degree(2000, 40.0, seed=2)
        g = g.with_weights(uniform_weights(g.n, seed=3))
        res = local_round_by_round(g, eps=0.1, seed=4)
        bound = math.log(g.max_degree) / math.log(1 / 0.9) + 3
        assert res.mpc_rounds <= bound

    def test_compression_wins_at_scale(self):
        """The headline comparison.  Two forms, both measured:

        * *structurally*, each compressed phase simulates many LOCAL
          iterations, so the phase count is far below the baseline's round
          count at any ε;
        * *in absolute rounds*, the compressed algorithm wins once ε is
          small (the baseline pays Θ(log Δ / ε) rounds while the phase
          count stays O(log log d̄)); at laptop scale the crossover sits
          near ε ≈ 0.05 because each phase costs ~11 rounds of collectives.
        """
        g = gnp_average_degree(8000, 128.0, seed=5)
        g = g.with_weights(uniform_weights(g.n, seed=6))
        ours_01 = minimum_weight_vertex_cover(g, eps=0.1, seed=7)
        base_01 = local_round_by_round(g, eps=0.1, seed=7)
        assert ours_01.num_phases * 4 < base_01.mpc_rounds

        ours_005 = minimum_weight_vertex_cover(g, eps=0.05, seed=7)
        base_005 = local_round_by_round(g, eps=0.05, seed=7)
        assert ours_005.mpc_rounds < base_005.mpc_rounds

    def test_uniform_init_much_slower_with_spread(self):
        g = gnp_average_degree(1000, 20.0, seed=8)
        g = g.with_weights(adversarial_spread_weights(g.n, 9.0, seed=9))
        fast = local_round_by_round(g, eps=0.1, init="degree_scaled", seed=10)
        slow = local_round_by_round(g, eps=0.1, init="uniform", seed=10)
        assert slow.mpc_rounds > 2 * fast.mpc_rounds
