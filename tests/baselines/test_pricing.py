"""Tests for the Bar-Yehuda–Even pricing baseline."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.baselines.pricing import pricing_vertex_cover
from repro.core.certificates import fractional_matching_violation
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights


class TestPricing:
    def test_returns_cover(self, named_graph):
        res = pricing_vertex_cover(named_graph)
        assert named_graph.is_vertex_cover(res.in_cover)

    def test_duals_feasible(self, named_graph):
        res = pricing_vertex_cover(named_graph)
        assert fractional_matching_violation(named_graph, res.x) <= 1.0 + 1e-12

    def test_factor_two_vs_dual(self, medium_random):
        res = pricing_vertex_cover(medium_random)
        assert res.cover_weight <= 2.0 * res.dual_value + 1e-9

    def test_factor_two_vs_exact(self):
        for seed in range(5):
            g = gnp_average_degree(30, 5.0, seed=seed)
            g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 1))
            res = pricing_vertex_cover(g)
            opt = exact_mwvc(g).opt_weight
            assert res.cover_weight <= 2.0 * opt + 1e-9

    def test_single_edge_takes_cheaper(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph.from_edge_list(2, [(0, 1)], weights=[2.0, 7.0])
        res = pricing_vertex_cover(g)
        assert res.in_cover[0] and not res.in_cover[1]
        assert res.dual_value == pytest.approx(2.0)

    def test_cheap_hub_star(self, cheap_hub_star):
        res = pricing_vertex_cover(cheap_hub_star)
        assert res.in_cover[0]
        assert res.cover_weight <= 2.0  # just the hub (w=1), maybe + nothing

    def test_empty_graph(self):
        from repro.graphs.graph import WeightedGraph

        res = pricing_vertex_cover(WeightedGraph.empty(4))
        assert not res.in_cover.any()
        assert res.dual_value == 0.0

    def test_orders_all_valid(self, medium_random):
        for order in ("input", "random", "heavy_first"):
            res = pricing_vertex_cover(medium_random, order=order, seed=3)
            assert medium_random.is_vertex_cover(res.in_cover)
            assert res.cover_weight <= 2.0 * res.dual_value + 1e-9

    def test_random_order_deterministic_per_seed(self, small_random):
        a = pricing_vertex_cover(small_random, order="random", seed=5)
        b = pricing_vertex_cover(small_random, order="random", seed=5)
        assert np.array_equal(a.in_cover, b.in_cover)

    def test_unknown_order(self, triangle):
        with pytest.raises(ValueError, match="unknown order"):
            pricing_vertex_cover(triangle, order="sideways")

    def test_weight_override(self, triangle):
        res = pricing_vertex_cover(triangle, weights=np.array([1.0, 5.0, 5.0]))
        assert triangle.is_vertex_cover(res.in_cover)
