"""Tests for the unweighted (GGK-style) baseline."""

import numpy as np
import pytest

from repro.baselines.ggk_unweighted import unweighted_mpc_vertex_cover
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import gnp_average_degree, star
from repro.graphs.weights import uniform_weights


class TestUnweightedBaseline:
    def test_returns_cover(self, medium_random):
        res = unweighted_mpc_vertex_cover(medium_random, eps=0.1, seed=0)
        assert medium_random.is_vertex_cover(res.in_cover)

    def test_true_weight_uses_real_weights(self, medium_random):
        res = unweighted_mpc_vertex_cover(medium_random, eps=0.1, seed=1)
        assert res.true_weight == pytest.approx(
            float(medium_random.weights[res.in_cover].sum())
        )

    def test_ignores_weights(self):
        """Same topology, different weights => same cover (it cannot see
        them)."""
        g1 = gnp_average_degree(300, 12.0, seed=2)
        g1 = g1.with_weights(uniform_weights(g1.n, seed=3))
        g2 = g1.with_weights(uniform_weights(g1.n, seed=4))
        a = unweighted_mpc_vertex_cover(g1, eps=0.1, seed=5)
        b = unweighted_mpc_vertex_cover(g2, eps=0.1, seed=5)
        assert np.array_equal(a.in_cover, b.in_cover)

    def test_weighted_algorithm_beats_it_on_heavy_hub(self):
        """The motivating separation: a star whose hub is expensive.  The
        cardinality algorithm buys the hub (cover size 1); the weighted
        algorithm buys the leaves."""
        g = star(50)
        w = np.ones(50)
        w[0] = 1000.0
        g = g.with_weights(w)
        ggk = unweighted_mpc_vertex_cover(g, eps=0.05, seed=6)
        ours = minimum_weight_vertex_cover(g, eps=0.05, seed=6)
        assert ggk.true_weight >= 1000.0  # bought the hub
        assert ours.cover_weight < 200.0  # bought (most of) the leaves
        assert ggk.true_weight / ours.cover_weight > 5.0
