"""Tests for the exact solvers (cross-validated against each other)."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc, exact_mwvc_bruteforce
from repro.baselines.lp import lp_relaxation
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle,
    gnp_average_degree,
    star,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


class TestKnownOptima:
    def test_triangle(self, triangle):
        assert exact_mwvc(triangle).opt_weight == pytest.approx(2.0)

    def test_star_unweighted(self):
        assert exact_mwvc(star(9)).opt_weight == pytest.approx(1.0)

    def test_weighted_star(self, weighted_star):
        assert exact_mwvc(weighted_star).opt_weight == pytest.approx(5.0)

    def test_cheap_hub_star(self, cheap_hub_star):
        assert exact_mwvc(cheap_hub_star).opt_weight == pytest.approx(1.0)

    def test_clique(self):
        assert exact_mwvc(complete_graph(6)).opt_weight == pytest.approx(5.0)

    def test_bipartite(self):
        assert exact_mwvc(complete_bipartite(3, 8)).opt_weight == pytest.approx(3.0)

    def test_odd_cycle(self):
        assert exact_mwvc(cycle(7)).opt_weight == pytest.approx(4.0)

    def test_path(self, path4):
        assert exact_mwvc(path4).opt_weight == pytest.approx(2.0)

    def test_empty(self):
        assert exact_mwvc(WeightedGraph.empty(5)).opt_weight == 0.0

    def test_result_is_cover(self, small_random):
        res = exact_mwvc(small_random)
        assert small_random.is_vertex_cover(res.in_cover)
        assert res.opt_weight == pytest.approx(
            small_random.cover_weight(res.in_cover)
        )


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(6))
    def test_bnb_matches_bruteforce(self, seed):
        g = gnp_average_degree(12, 4.0, seed=seed)
        g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 100))
        bnb = exact_mwvc(g)
        bf = exact_mwvc_bruteforce(g)
        assert bnb.opt_weight == pytest.approx(bf.opt_weight)

    @pytest.mark.parametrize("seed", range(4))
    def test_bnb_above_lp(self, seed):
        g = gnp_average_degree(30, 6.0, seed=seed)
        g = g.with_weights(uniform_weights(g.n, 1.0, 9.0, seed=seed + 7))
        assert exact_mwvc(g).opt_weight >= lp_relaxation(g).lp_value - 1e-6


class TestLimits:
    def test_bruteforce_size_cap(self):
        with pytest.raises(ValueError):
            exact_mwvc_bruteforce(WeightedGraph.empty(23))

    def test_node_limit(self):
        g = gnp_average_degree(40, 8.0, seed=0)
        with pytest.raises(RuntimeError, match="node limit"):
            exact_mwvc(g, node_limit=3)
