"""Tests for the collective primitives and their round counts."""

import numpy as np
import pytest

from repro.core.accounting import broadcast_round_count, fanin_round_count
from repro.mpc.cluster import Cluster
from repro.mpc.exceptions import CommunicationLimitExceeded
from repro.mpc.primitives import aggregate_sum, broadcast, gather_concat, tree_fanout


class TestTreeFanout:
    def test_capacity_bound(self):
        c = Cluster(4, 100)
        assert tree_fanout(c, 10) == 10
        assert tree_fanout(c, 60) == 2  # max(2, 100//60)

    def test_unbounded(self):
        c = Cluster(4, None)
        assert tree_fanout(c, 10) >= 4

    def test_zero_item(self):
        c = Cluster(4, 100)
        assert tree_fanout(c, 0) >= 4


class TestBroadcast:
    def test_all_receive(self):
        c = Cluster(5, 1000)
        out = broadcast(c, 0, "t", np.arange(3))
        assert set(out.keys()) == {0, 1, 2, 3, 4}
        for v in out.values():
            assert np.array_equal(v, np.arange(3))

    def test_subset(self):
        c = Cluster(6, 1000)
        out = broadcast(c, 2, "t", 42, dst_ids=[1, 3])
        assert set(out.keys()) == {1, 3}

    def test_round_count_matches_accounting(self):
        for num_machines in (2, 3, 8, 17, 64):
            for fanout in (2, 3, 8):
                c = Cluster(num_machines, None)
                broadcast(c, 0, "t", 1.0, fanout=fanout)
                expected = broadcast_round_count(num_machines - 1, fanout)
                assert c.metrics.rounds == expected, (num_machines, fanout)

    def test_respects_capacity(self):
        # payload of 40 words, capacity 100 -> fanout 2; never exceeds S.
        c = Cluster(9, 100)
        broadcast(c, 0, "t", np.zeros(40))
        assert c.metrics.max_sent_words <= 100

    def test_oversized_payload_raises(self):
        c = Cluster(3, 10)
        with pytest.raises(CommunicationLimitExceeded):
            broadcast(c, 0, "t", np.zeros(50))

    def test_single_machine_no_rounds(self):
        c = Cluster(1, 10)
        out = broadcast(c, 0, "t", 5)
        assert out == {0: 5}
        assert c.metrics.rounds == 0


class TestAggregateSum:
    def test_total_correct(self):
        c = Cluster(6, 1000)
        partials = {i: np.full(4, float(i)) for i in range(6)}
        total = aggregate_sum(c, "t", partials)
        assert np.allclose(total, np.full(4, 15.0))

    def test_missing_machines_contribute_zero(self):
        c = Cluster(5, 1000)
        total = aggregate_sum(c, "t", {3: np.array([2.0]), 4: np.array([5.0])})
        assert total.tolist() == [7.0]

    def test_round_count_matches_accounting(self):
        for participants in (2, 5, 9, 17):
            for fanout in (2, 4):
                c = Cluster(participants, None)
                partials = {i: np.ones(2) for i in range(participants)}
                aggregate_sum(c, "t", partials, fanout=fanout)
                assert c.metrics.rounds == fanin_round_count(participants, fanout)

    def test_shape_mismatch_rejected(self):
        c = Cluster(3, 1000)
        with pytest.raises(ValueError, match="shape"):
            aggregate_sum(c, "t", {0: np.ones(2), 1: np.ones(3)})

    def test_empty_rejected(self):
        c = Cluster(3, 1000)
        with pytest.raises(ValueError):
            aggregate_sum(c, "t", {})


class TestGatherConcat:
    def test_ordered_by_source(self):
        c = Cluster(4, 1000)
        parts = {
            2: np.array([20, 21]),
            1: np.array([10]),
            3: np.array([30]),
        }
        out = gather_concat(c, "t", parts, root=0)
        assert out.tolist() == [10, 20, 21, 30]

    def test_empty_parts_ok(self):
        c = Cluster(3, 1000)
        out = gather_concat(c, "t", {1: np.empty(0, np.int64), 2: np.array([5])})
        assert out.tolist() == [5]

    def test_root_part_included(self):
        c = Cluster(3, 1000)
        out = gather_concat(c, "t", {0: np.array([1]), 2: np.array([9])})
        assert out.tolist() == [1, 9]

    def test_round_count(self):
        c = Cluster(9, None)
        parts = {i: np.array([i]) for i in range(1, 9)}
        gather_concat(c, "t", parts, root=0, fanout=3)
        assert c.metrics.rounds == fanin_round_count(9, 3)
