"""Tests for bounded-memory machines."""

import numpy as np
import pytest

from repro.mpc.exceptions import MemoryLimitExceeded
from repro.mpc.machine import Machine


class TestMachineStorage:
    def test_store_load_free(self):
        m = Machine(0, 100)
        m.store("a", np.zeros(10))
        assert m.used_words == 10
        assert m.load("a").shape == (10,)
        m.free("a")
        assert m.used_words == 0
        assert not m.has("a")

    def test_replace_updates_usage(self):
        m = Machine(0, 100)
        m.store("a", np.zeros(40))
        m.store("a", np.zeros(10))
        assert m.used_words == 10

    def test_capacity_enforced(self):
        m = Machine(0, 100)
        with pytest.raises(MemoryLimitExceeded) as ei:
            m.store("big", np.zeros(101))
        assert ei.value.machine_id == 0
        assert ei.value.key == "big"

    def test_rollback_on_failure(self):
        m = Machine(0, 100)
        m.store("a", np.zeros(50))
        with pytest.raises(MemoryLimitExceeded):
            m.store("b", np.zeros(60))
        assert m.used_words == 50
        assert not m.has("b")

    def test_replace_may_free_room(self):
        m = Machine(0, 100)
        m.store("a", np.zeros(90))
        m.store("a", np.zeros(30))  # replacement computed against new total
        m.store("b", np.zeros(60))
        assert m.used_words == 90

    def test_high_water_tracks_peak(self):
        m = Machine(0, 100)
        m.store("a", np.zeros(80))
        m.free("a")
        m.store("b", np.zeros(10))
        assert m.high_water == 80
        assert m.used_words == 10

    def test_unbounded_machine(self):
        m = Machine(1, None)
        m.store("huge", np.zeros(10**6))
        assert m.used_words == 10**6

    def test_free_missing_is_noop(self):
        m = Machine(0, 10)
        m.free("nope")

    def test_load_missing_raises(self):
        m = Machine(0, 10)
        with pytest.raises(KeyError):
            m.load("nope")

    def test_clear(self):
        m = Machine(0, 100)
        m.store("a", np.zeros(10))
        m.clear()
        assert m.used_words == 0
        assert list(m.keys()) == []
        assert m.high_water == 10  # peak survives clears
