"""Tests for message word accounting."""

import numpy as np
import pytest

from repro.mpc.message import Message, payload_words


class TestPayloadWords:
    def test_none_is_free(self):
        assert payload_words(None) == 0

    def test_scalars_cost_one(self):
        assert payload_words(5) == 1
        assert payload_words(3.14) == 1
        assert payload_words(True) == 1
        assert payload_words(np.int64(7)) == 1
        assert payload_words(np.float64(1.5)) == 1

    def test_array_costs_size(self):
        assert payload_words(np.zeros(17)) == 17
        assert payload_words(np.zeros((3, 4))) == 12
        assert payload_words(np.empty(0)) == 0

    def test_string_packing(self):
        assert payload_words("") == 0
        assert payload_words("abcdefgh") == 1
        assert payload_words("abcdefghi") == 2

    def test_containers_sum(self):
        assert payload_words([1, 2.0, np.zeros(3)]) == 5
        assert payload_words((np.zeros(2), np.zeros(2))) == 4

    def test_dict_counts_keys_and_values(self):
        assert payload_words({"abc": np.zeros(4)}) == 1 + 4

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_words(object())


class TestMessage:
    def test_words_cached(self):
        msg = Message(0, 1, "t", np.zeros(9))
        assert msg.words == 9

    def test_frozen(self):
        msg = Message(0, 1, "t", 5)
        with pytest.raises(Exception):
            msg.src = 2  # type: ignore[misc]

    def test_empty_payload(self):
        assert Message(0, 1, "ping").words == 0
