"""Tests for random vertex partitioning."""

import numpy as np
import pytest

from repro.mpc.partition import assignment_counts, local_edge_mask, random_assignment


class TestRandomAssignment:
    def test_range_and_shape(self):
        rng = np.random.default_rng(0)
        a = random_assignment(rng, 1000, 7)
        assert a.shape == (1000,)
        assert a.min() >= 0 and a.max() < 7

    def test_deterministic_per_seed(self):
        a = random_assignment(np.random.default_rng(5), 100, 4)
        b = random_assignment(np.random.default_rng(5), 100, 4)
        assert np.array_equal(a, b)

    def test_roughly_balanced(self):
        a = random_assignment(np.random.default_rng(1), 70000, 7)
        counts = assignment_counts(a, 7)
        assert counts.sum() == 70000
        assert counts.min() > 9000 and counts.max() < 11000

    def test_zero_items(self):
        a = random_assignment(np.random.default_rng(0), 0, 3)
        assert a.size == 0
        assert assignment_counts(a, 3).tolist() == [0, 0, 0]

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_assignment(rng, 5, 0)
        with pytest.raises(ValueError):
            random_assignment(rng, -1, 2)


class TestLocalEdgeMask:
    def test_local_detection(self):
        au = np.array([0, 1, 2, -1])
        av = np.array([0, 2, 2, -1])
        is_local, owner = local_edge_mask(au, av)
        assert is_local.tolist() == [True, False, True, False]
        assert owner.tolist() == [0, -1, 2, -1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            local_edge_mask(np.zeros(3), np.zeros(4))
