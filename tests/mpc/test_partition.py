"""Tests for random vertex partitioning."""

import numpy as np
import pytest

from repro.mpc.partition import assignment_counts, local_edge_mask, random_assignment


class TestRandomAssignment:
    def test_range_and_shape(self):
        rng = np.random.default_rng(0)
        a = random_assignment(rng, 1000, 7)
        assert a.shape == (1000,)
        assert a.min() >= 0 and a.max() < 7

    def test_deterministic_per_seed(self):
        a = random_assignment(np.random.default_rng(5), 100, 4)
        b = random_assignment(np.random.default_rng(5), 100, 4)
        assert np.array_equal(a, b)

    def test_roughly_balanced(self):
        a = random_assignment(np.random.default_rng(1), 70000, 7)
        counts = assignment_counts(a, 7)
        assert counts.sum() == 70000
        assert counts.min() > 9000 and counts.max() < 11000

    def test_zero_items(self):
        a = random_assignment(np.random.default_rng(0), 0, 3)
        assert a.size == 0
        assert assignment_counts(a, 3).tolist() == [0, 0, 0]

    def test_invalid_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_assignment(rng, 5, 0)
        with pytest.raises(ValueError):
            random_assignment(rng, -1, 2)


class TestLocalEdgeMask:
    def test_local_detection(self):
        au = np.array([0, 1, 2, -1])
        av = np.array([0, 2, 2, -1])
        is_local, owner = local_edge_mask(au, av)
        assert is_local.tolist() == [True, False, True, False]
        assert owner.tolist() == [0, -1, 2, -1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            local_edge_mask(np.zeros(3), np.zeros(4))


class TestDeterministicPartitions:
    def test_hash_partition_deterministic_and_in_range(self):
        from repro.mpc.partition import hash_partition

        a = hash_partition(5000, 4, seed=7)
        b = hash_partition(5000, 4, seed=7)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 4
        # a different seed reshuffles
        c = hash_partition(5000, 4, seed=8)
        assert not np.array_equal(a, c)

    def test_hash_partition_roughly_balanced(self):
        from repro.mpc.partition import hash_partition

        a = hash_partition(40000, 5)
        counts = assignment_counts(a, 5)
        assert counts.sum() == 40000
        assert counts.min() > 7000 and counts.max() < 9000

    def test_range_partition_contiguous_and_balanced(self):
        from repro.mpc.partition import range_partition

        a = range_partition(11, 3)
        assert a.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
        counts = assignment_counts(a, 3)
        assert counts.max() - counts.min() <= 1

    def test_single_shard_owns_everything(self):
        from repro.mpc.partition import hash_partition, range_partition

        assert hash_partition(50, 1).tolist() == [0] * 50
        assert range_partition(50, 1).tolist() == [0] * 50

    def test_make_partition_dispatch_and_errors(self):
        from repro.mpc.partition import make_partition

        assert make_partition("range", 6, 2).tolist() == [0, 0, 0, 1, 1, 1]
        with pytest.raises(ValueError, match="unknown partition scheme"):
            make_partition("striped", 6, 2)
        with pytest.raises(ValueError):
            make_partition("hash", 6, 0)

    def test_cut_edge_fraction(self):
        from repro.mpc.partition import cut_edge_fraction, range_partition

        assignment = range_partition(4, 2)  # {0,1} vs {2,3}
        u = np.array([0, 0, 2], dtype=np.int64)
        v = np.array([1, 2, 3], dtype=np.int64)
        assert cut_edge_fraction(u, v, assignment) == pytest.approx(1 / 3)
        assert cut_edge_fraction(np.empty(0), np.empty(0), assignment) == 0.0
