"""Tests for the synchronous cluster and its constraint enforcement."""

import numpy as np
import pytest

from repro.mpc.cluster import Cluster
from repro.mpc.exceptions import (
    CommunicationLimitExceeded,
    DeadMachineError,
    ProtocolError,
)
from repro.mpc.message import Message


class TestExchange:
    def test_delivery(self):
        c = Cluster(3, 100)
        inboxes = c.exchange([Message(0, 1, "a", 7), Message(2, 1, "b", 8)])
        payloads = [m.payload for m in inboxes[1]]
        assert payloads == [7, 8]
        assert c.metrics.rounds == 1

    def test_round_counting(self):
        c = Cluster(2, 100)
        c.exchange([])
        c.local_round()
        assert c.metrics.rounds == 2

    def test_deterministic_inbox_order(self):
        c = Cluster(4, 100)
        msgs = [Message(2, 0, "x", 1), Message(1, 0, "x", 2), Message(3, 0, "x", 3)]
        inboxes = c.exchange(msgs)
        assert [m.src for m in inboxes[0]] == [1, 2, 3]

    def test_send_limit_enforced(self):
        c = Cluster(3, 10)
        msgs = [Message(0, 1, "a", np.zeros(6)), Message(0, 2, "a", np.zeros(6))]
        with pytest.raises(CommunicationLimitExceeded) as ei:
            c.exchange(msgs)
        assert ei.value.direction == "sent"

    def test_receive_limit_enforced(self):
        c = Cluster(3, 10)
        msgs = [Message(0, 2, "a", np.zeros(6)), Message(1, 2, "a", np.zeros(6))]
        with pytest.raises(CommunicationLimitExceeded) as ei:
            c.exchange(msgs)
        assert ei.value.direction == "received"

    def test_limit_is_per_round(self):
        c = Cluster(2, 10)
        for _ in range(5):
            c.exchange([Message(0, 1, "a", np.zeros(10))])
        assert c.metrics.total_words == 50

    def test_unknown_machine_rejected(self):
        c = Cluster(2, 10)
        with pytest.raises(ProtocolError):
            c.exchange([Message(0, 5, "a", 1)])
        with pytest.raises(ProtocolError):
            c.machine(9)

    def test_metrics_aggregation(self):
        c = Cluster(3, 100)
        c.exchange([Message(0, 1, "a", np.zeros(7))])
        c.exchange([Message(1, 2, "a", np.zeros(3)), Message(0, 2, "b", np.zeros(4))])
        s = c.metrics.summary()
        assert s["rounds"] == 2
        assert s["total_messages"] == 3
        assert s["total_words"] == 14
        assert s["max_received_words"] == 7
        assert len(c.metrics.per_round) == 2

    def test_single_machine_cluster(self):
        c = Cluster(1, 10)
        c.local_round()
        assert c.metrics.rounds == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(0, 10)


class TestFailureInjection:
    def test_dead_machine_send_raises(self):
        c = Cluster(3, 100, kill_schedule={1: [2]})
        c.exchange([Message(0, 2, "a", 1)])  # round 0: still alive
        with pytest.raises(DeadMachineError):
            c.exchange([Message(0, 2, "a", 1)])  # round 1: dead

    def test_dead_machine_source_raises(self):
        c = Cluster(3, 100, kill_schedule={0: [1]})
        with pytest.raises(DeadMachineError):
            c.exchange([Message(1, 0, "a", 1)])

    def test_dead_machine_cleared(self):
        c = Cluster(2, 100, kill_schedule={0: [1]})
        c.machine(1).store("x", 42)
        c.exchange([])
        assert not c.machine(1).alive
        assert not c.machine(1).has("x")

    def test_alive_ids(self):
        c = Cluster(3, 100, kill_schedule={0: [2]})
        c.exchange([])
        assert c.alive_ids() == [0, 1]

    def test_memory_high_water_observed(self):
        c = Cluster(2, 100)
        c.machine(1).store("x", np.zeros(60))
        c.exchange([])
        assert c.metrics.memory_high_water == 60
        assert c.memory_high_water() == 60
