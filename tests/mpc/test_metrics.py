"""Direct tests for the metrics records."""

from repro.mpc.metrics import ClusterMetrics, RoundRecord


class TestClusterMetrics:
    def test_record_round_aggregates(self):
        m = ClusterMetrics()
        m.record_round(RoundRecord(0, messages=3, total_words=30, max_sent_words=20, max_received_words=15))
        m.record_round(RoundRecord(1, messages=1, total_words=5, max_sent_words=5, max_received_words=5))
        assert m.rounds == 2
        assert m.total_messages == 4
        assert m.total_words == 35
        assert m.max_sent_words == 20
        assert m.max_received_words == 15
        assert len(m.per_round) == 2

    def test_observe_memory_monotone(self):
        m = ClusterMetrics()
        m.observe_memory(10)
        m.observe_memory(5)
        m.observe_memory(25)
        assert m.memory_high_water == 25

    def test_summary_keys(self):
        m = ClusterMetrics()
        s = m.summary()
        assert set(s) == {
            "rounds",
            "total_messages",
            "total_words",
            "max_sent_words",
            "max_received_words",
            "memory_high_water",
        }

    def test_empty_metrics(self):
        m = ClusterMetrics()
        assert m.rounds == 0
        assert m.summary()["total_words"] == 0
