"""Crash recovery of sharded streams: per-shard snapshots + WAL replay.

Mirrors the monolithic recovery suite: a crashed sharded run, resumed,
must reproduce the uninterrupted run's cover **bit for bit** — and the
uninterrupted monolithic run's too, since the sharded engine is exactly
equivalent.  Includes a real SIGKILL subprocess test (``-m slow``).
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.dynamic import (
    CheckpointConfig,
    CheckpointError,
    ResolvePolicy,
    run_stream,
)
from repro.dynamic.sharded import (
    _ShardedEngine,
    resume_sharded_stream,
    run_sharded_stream,
)
from repro.dynamic.shard_checkpoint import (
    list_sharded_snapshots,
    load_sharded_snapshot,
)

from tests.recovery.harness import make_batches, make_workload

BATCH_SIZE = 20
EPS = 0.1
SEED = 4
NUM_SHARDS = 3


class CrashAfterBatches:
    """Raise inside the sharded engine after N completed batches."""

    class Crash(Exception):
        pass

    def __init__(self, monkeypatch, batches: int):
        self.monkeypatch = monkeypatch
        self.remaining = batches

    def __enter__(self):
        original = _ShardedEngine.process_batch
        injector = self

        def crashing(self_, index, batch, **kwargs):
            if injector.remaining <= 0:
                raise CrashAfterBatches.Crash()
            injector.remaining -= 1
            return original(self_, index, batch, **kwargs)

        self.monkeypatch.setattr(_ShardedEngine, "process_batch", crashing)
        return self

    def __exit__(self, *exc_info):
        self.monkeypatch.undo()
        return False


def _workload(batches=8, churn="uniform"):
    graph = make_workload(n=120, seed=91)
    all_batches = make_batches(graph, churn, batches, BATCH_SIZE, seed=93)
    return graph, [u for b in all_batches for u in b]


def _run_kwargs():
    return dict(
        num_shards=NUM_SHARDS,
        batch_size=BATCH_SIZE,
        policy=ResolvePolicy(max_drift=0.15),
        eps=EPS,
        seed=SEED,
        use_processes=False,
    )


class TestShardedCrashResume:
    @pytest.mark.parametrize("crash_after", [0, 1, 3, 5, 7])
    def test_resume_matches_uninterrupted_run(
        self, tmp_path, monkeypatch, crash_after
    ):
        graph, updates = _workload()
        reference = run_sharded_stream(graph, updates, **_run_kwargs())
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=2, keep_snapshots=2
        )
        with CrashAfterBatches(monkeypatch, crash_after):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **_run_kwargs()
                )
        resumed = resume_sharded_stream(
            checkpoint.directory, use_processes=False
        )
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.final_cover_weight == reference.final_cover_weight
        assert resumed.final_dual_value == reference.final_dual_value
        assert resumed.final_is_cover

    def test_resume_matches_monolithic_reference(self, tmp_path, monkeypatch):
        """Crash + resume of a sharded run equals a plain `run_stream`."""
        graph, updates = _workload(churn="hub")
        mono = run_stream(
            graph,
            updates,
            batch_size=BATCH_SIZE,
            policy=ResolvePolicy(max_drift=0.15),
            eps=EPS,
            seed=SEED,
        )
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=3
        )
        with CrashAfterBatches(monkeypatch, 4):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **_run_kwargs()
                )
        resumed = resume_sharded_stream(
            checkpoint.directory, use_processes=False
        )
        assert np.array_equal(resumed.final_cover, mono.final_cover)

    def test_cold_start_when_no_snapshot_survived(self, tmp_path, monkeypatch):
        import shutil

        graph, updates = _workload()
        reference = run_sharded_stream(graph, updates, **_run_kwargs())
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=2
        )
        with CrashAfterBatches(monkeypatch, 5):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **_run_kwargs()
                )
        for _, path in list_sharded_snapshots(checkpoint.directory):
            shutil.rmtree(path)
        resumed = resume_sharded_stream(
            checkpoint.directory, use_processes=False
        )
        assert resumed.resumed_from_batch == 0
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_corrupt_generation_falls_back_to_older(
        self, tmp_path, monkeypatch
    ):
        graph, updates = _workload()
        reference = run_sharded_stream(graph, updates, **_run_kwargs())
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=2, keep_snapshots=3
        )
        with CrashAfterBatches(monkeypatch, 7):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **_run_kwargs()
                )
        newest_idx, newest = list_sharded_snapshots(checkpoint.directory)[0]
        shard_file = os.path.join(newest, "shard-0001.npz")
        with open(shard_file, "r+b") as fh:
            fh.seek(16)
            fh.write(b"\xff" * 16)
        resumed = resume_sharded_stream(
            checkpoint.directory, use_processes=False
        )
        assert resumed.resumed_from_batch < newest_idx
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_resume_in_process_mode(self, tmp_path, monkeypatch):
        graph, updates = _workload(batches=4)
        reference = run_sharded_stream(graph, updates, **_run_kwargs())
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=2
        )
        with CrashAfterBatches(monkeypatch, 2):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **_run_kwargs()
                )
        resumed = resume_sharded_stream(
            checkpoint.directory, use_processes=True
        )
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_monolithic_resume_rejects_sharded_checkpoint(
        self, tmp_path, monkeypatch
    ):
        from repro.dynamic import resume_stream

        graph, updates = _workload(batches=3)
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=2
        )
        with CrashAfterBatches(monkeypatch, 1):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **_run_kwargs()
                )
        with pytest.raises(CheckpointError, match="sharded"):
            resume_stream(checkpoint.directory)
        with pytest.raises(CheckpointError, match="monolithic"):
            # And the sharded resume rejects monolithic checkpoints.
            mono_dir = tmp_path / "mono"
            run_stream(
                graph,
                updates,
                batch_size=BATCH_SIZE,
                eps=EPS,
                seed=SEED,
                checkpoint=CheckpointConfig(directory=mono_dir),
            )
            resume_sharded_stream(mono_dir, use_processes=False)

    def test_single_shard_checkpoint_resumes(self, tmp_path, monkeypatch):
        """num_shards=1 writes sharded-format checkpoints; resume must
        route them to the sharded engine (regression: they used to be
        rejected by both resume paths)."""
        graph, updates = _workload(batches=4)
        kwargs = dict(_run_kwargs(), num_shards=1)
        reference = run_sharded_stream(graph, updates, **kwargs)
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=2
        )
        with CrashAfterBatches(monkeypatch, 2):
            with pytest.raises(CrashAfterBatches.Crash):
                run_sharded_stream(
                    graph, updates, checkpoint=checkpoint, **kwargs
                )
        resumed = resume_sharded_stream(
            checkpoint.directory, use_processes=False
        )
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        # The CLI dispatchers must pick the sharded engine for it too.
        from repro.cli import main

        rc = main(
            [
                "resume",
                "--checkpoint-dir",
                os.fspath(checkpoint.directory),
                "--inline-shards",
            ]
        )
        assert rc == 0
        rc = main(
            ["wal-compact", "--checkpoint-dir", os.fspath(checkpoint.directory)]
        )
        assert rc == 0

    def test_snapshot_generation_roundtrip(self, tmp_path, monkeypatch):
        """A written generation loads back digest-verified and complete."""
        graph, updates = _workload(batches=3)
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt", snapshot_every=1
        )
        run_sharded_stream(
            graph, updates, checkpoint=checkpoint, **_run_kwargs()
        )
        generations = list_sharded_snapshots(checkpoint.directory)
        assert generations, "no snapshot generations written"
        restored = load_sharded_snapshot(generations[0][1])
        assert restored.manifest["num_shards"] == NUM_SHARDS
        assert restored.cover.shape == (graph.n,)
        assert restored.edges_u.shape == restored.edges_v.shape
        # Every edge appears exactly once across shard files.
        pairs = list(zip(restored.edges_u.tolist(), restored.edges_v.tolist()))
        assert len(pairs) == len(set(pairs))


@pytest.mark.slow
class TestShardedSigkill:
    """A real ``kill -9`` mid-flight on a sharded run, then resume."""

    def test_sigkill_and_resume_matches_reference(self, tmp_path):
        directory = tmp_path / "ckpt"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "stream",
                "--family", "gnp", "--n", "2500", "--degree", "10",
                "--weights", "uniform", "--seed", "1",
                "--churn", "hub", "--num-updates", "2000",
                "--batch-size", "25", "--resolve-every-batch",
                "--shards", "4",
                "--checkpoint-dir", str(directory), "--snapshot-every", "3",
                "--keep-snapshots", "2",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Let it commit some batches, then kill the whole process tree dead.
        deadline = time.time() + 60
        wal = directory / "wal.jsonl"
        while time.time() < deadline:
            if wal.exists() and wal.stat().st_size > 0:
                break
            time.sleep(0.05)
        time.sleep(0.5)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert wal.exists(), "stream never committed a batch"

        resumed = resume_sharded_stream(directory, use_processes=False)
        assert resumed.final_is_cover

        from repro.graphs.io import load_npz
        from repro.graphs.updates import load_update_stream

        graph = load_npz(directory / "graph.npz")
        updates = load_update_stream(directory / "updates.jsonl")
        reference = run_stream(
            graph,
            updates,
            batch_size=25,
            policy=ResolvePolicy(every_batch=True),
            eps=0.1,
            seed=1,
        )
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.final_certified_ratio == pytest.approx(
            reference.final_certified_ratio, abs=1e-9
        )
