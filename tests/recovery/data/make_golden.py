"""Regenerate the golden checkpoint fixtures (run from the repo root).

The fixtures pin the on-disk formats: if either file stops loading, or
loads to different state, a format change slipped in without a version
bump.  Regenerate *only* alongside an intentional, versioned format
change::

    PYTHONPATH=src python tests/recovery/data/make_golden.py
"""

import os

import numpy as np

from repro.dynamic import DynamicGraph, IncrementalCoverMaintainer, WriteAheadLog
from repro.dynamic.checkpoint import save_snapshot
from repro.graphs.graph import WeightedGraph
from repro.graphs.updates import EdgeDelete, EdgeInsert, WeightChange

HERE = os.path.dirname(os.path.abspath(__file__))

#: The fixture's weights and updates, batch by batch (also in the WAL).
WEIGHTS = [4.0, 1.0, 3.0, 1.0, 2.0]
BATCHES = [
    [EdgeInsert(0, 1), EdgeInsert(1, 2), EdgeInsert(2, 3), EdgeInsert(0, 4)],
    [EdgeInsert(2, 4), EdgeDelete(1, 2), WeightChange(3, 2.5)],
]


def build_maintainer():
    """A tiny, fully deterministic mid-stream maintainer (no solver).

    Starts from an edgeless graph — the documented bootstrap path where
    the pricing repairs build cover and duals from zero, so the fixture
    state depends only on the maintainer's own deterministic logic.
    """
    graph = WeightedGraph.empty(5, weights=WEIGHTS)
    maintainer = IncrementalCoverMaintainer(DynamicGraph(graph))
    for batch in BATCHES:
        maintainer.apply_batch(batch)
    return maintainer


def main():
    maintainer = build_maintainer()
    digest = save_snapshot(
        os.path.join(HERE, "golden_snapshot.npz"),
        maintainer,
        extra={"next_batch_index": 2, "updates_applied": 7},
        fsync=False,
    )
    # Recompute pre-apply digests the way run_stream stamps them.
    pre_digests = {}
    m2 = IncrementalCoverMaintainer(
        DynamicGraph(WeightedGraph.empty(5, weights=WEIGHTS))
    )
    wal_path = os.path.join(HERE, "golden_wal.jsonl")
    if os.path.exists(wal_path):
        os.unlink(wal_path)
    with WriteAheadLog(wal_path, fsync=False) as wal:
        for i, batch in enumerate(BATCHES):
            pre_digests[i] = m2.dyn.content_digest()
            wal.append(i, batch, state_digest=pre_digests[i])
            m2.apply_batch(batch)
    print("snapshot digest:", digest)
    print("cover:", np.nonzero(maintainer.cover)[0].tolist())
    print("dual_value:", maintainer.dual_value)
    print("cover_weight:", maintainer.cover_weight)


if __name__ == "__main__":
    main()
