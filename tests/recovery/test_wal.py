"""Write-ahead log: round-trips, crash injection, corruption gates."""

import json
import zlib

import pytest

from repro.dynamic import (
    EdgeDelete,
    EdgeInsert,
    WALCorruptionError,
    WALError,
    WeightChange,
    WriteAheadLog,
    read_wal,
    repair_wal,
)
from repro.dynamic.wal import _canonical, _crc

BATCH0 = [EdgeInsert(0, 1), EdgeDelete(2, 3), WeightChange(4, 2.5)]
BATCH1 = [EdgeInsert(5, 6)]


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal.jsonl"


def _write(path, *batches, digests=None):
    with WriteAheadLog(path, fsync=False) as wal:
        for i, batch in enumerate(batches):
            wal.append(i, batch, state_digest=(digests or {}).get(i, ""))


class TestRoundTrip:
    def test_records_round_trip(self, wal_path):
        _write(wal_path, BATCH0, BATCH1)
        records, torn = read_wal(wal_path)
        assert not torn
        assert [r.batch_index for r in records] == [0, 1]
        assert list(records[0].updates) == BATCH0
        assert list(records[1].updates) == BATCH1

    def test_state_digest_round_trips(self, wal_path):
        _write(wal_path, BATCH0, digests={0: "feedface"})
        records, _ = read_wal(wal_path)
        assert records[0].state_digest == "feedface"

    def test_missing_file_is_empty_untorn(self, tmp_path):
        records, torn = read_wal(tmp_path / "absent.jsonl")
        assert records == [] and not torn

    def test_append_after_close_raises(self, wal_path):
        wal = WriteAheadLog(wal_path, fsync=False)
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append(0, BATCH0)

    def test_reopen_appends(self, wal_path):
        _write(wal_path, BATCH0)
        with WriteAheadLog(wal_path, fsync=False) as wal:
            wal.append(1, BATCH1)
        records, torn = read_wal(wal_path)
        assert not torn and [r.batch_index for r in records] == [0, 1]

    def test_fsync_commit_path(self, wal_path):
        # Exercise the fsync branch (the default durability mode).
        with WriteAheadLog(wal_path, fsync=True) as wal:
            wal.append(0, BATCH0)
        records, torn = read_wal(wal_path)
        assert not torn and len(records) == 1


class TestCrashInjection:
    def test_truncation_mid_record_is_a_torn_tail(self, wal_path):
        _write(wal_path, BATCH0, BATCH1)
        raw = wal_path.read_bytes()
        # Cut inside the *second* record: the first stays committed.
        first_end = raw.index(b"\n") + 1
        wal_path.write_bytes(raw[: first_end + (len(raw) - first_end) // 2])
        records, torn = read_wal(wal_path)
        assert torn
        assert [r.batch_index for r in records] == [0]
        assert list(records[0].updates) == BATCH0

    def test_partial_json_tail_is_torn(self, wal_path):
        _write(wal_path, BATCH0)
        with open(wal_path, "ab") as fh:
            fh.write(b'{"v": 1, "batch_ind')
        records, torn = read_wal(wal_path)
        assert torn and len(records) == 1

    def test_unterminated_but_parseable_tail_is_still_torn(self, wal_path):
        # A record missing only its newline was never committed — even if
        # the bytes happen to parse, it must be dropped, not trusted.
        _write(wal_path, BATCH0, BATCH1)
        raw = wal_path.read_bytes()
        wal_path.write_bytes(raw.rstrip(b"\n"))
        records, torn = read_wal(wal_path)
        assert torn and [r.batch_index for r in records] == [0]

    def test_checksum_flip_raises(self, wal_path):
        _write(wal_path, BATCH0, BATCH1)
        raw = bytearray(wal_path.read_bytes())
        # Flip one digit inside the first record's "u": 0 -> 9.
        pos = raw.index(b'"u":0')
        raw[pos + 4] = ord("9")
        wal_path.write_bytes(bytes(raw))
        with pytest.raises(WALCorruptionError, match="checksum mismatch"):
            read_wal(wal_path)

    def test_garbage_committed_line_raises(self, wal_path):
        _write(wal_path, BATCH0)
        with open(wal_path, "ab") as fh:
            fh.write(b"not json at all\n")
        with pytest.raises(WALCorruptionError, match="unparseable"):
            read_wal(wal_path)

    def test_repair_truncates_torn_tail(self, wal_path):
        _write(wal_path, BATCH0)
        with open(wal_path, "ab") as fh:
            fh.write(b'{"v": 1, "torn')
        assert repair_wal(wal_path)
        records, torn = read_wal(wal_path)
        assert not torn and len(records) == 1
        # Appending after repair yields a clean two-record log.
        with WriteAheadLog(wal_path, fsync=False) as wal:
            wal.append(1, BATCH1)
        records, torn = read_wal(wal_path)
        assert not torn and [r.batch_index for r in records] == [0, 1]

    def test_repair_is_a_noop_on_clean_or_missing_logs(self, wal_path, tmp_path):
        _write(wal_path, BATCH0)
        before = wal_path.read_bytes()
        assert not repair_wal(wal_path)
        assert wal_path.read_bytes() == before
        assert not repair_wal(tmp_path / "absent.jsonl")

    def test_repair_of_torn_only_log_empties_it(self, wal_path):
        wal_path.write_bytes(b'{"v": 1, "never finished')
        assert repair_wal(wal_path)
        assert wal_path.read_bytes() == b""
        assert read_wal(wal_path) == ([], False)


def _forge_line(payload: dict) -> bytes:
    payload = dict(payload)
    payload["crc"] = _crc(payload)
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode()


class TestFormatGates:
    def test_missing_checksum_field_raises(self, wal_path):
        line = json.dumps({"v": 1, "batch_index": 0, "updates": []}) + "\n"
        wal_path.write_bytes(line.encode())
        with pytest.raises(WALCorruptionError, match="no checksum"):
            read_wal(wal_path)

    def test_future_record_version_rejected(self, wal_path):
        wal_path.write_bytes(
            _forge_line({"v": 99, "batch_index": 0, "updates": []})
        )
        with pytest.raises(WALCorruptionError, match="version 99"):
            read_wal(wal_path)

    def test_malformed_update_body_rejected(self, wal_path):
        wal_path.write_bytes(
            _forge_line(
                {"v": 1, "batch_index": 0, "updates": [{"op": "explode"}]}
            )
        )
        with pytest.raises(WALCorruptionError, match="malformed"):
            read_wal(wal_path)

    def test_non_increasing_indices_rejected(self, wal_path):
        data = _forge_line(
            {"v": 1, "batch_index": 1, "updates": []}
        ) + _forge_line({"v": 1, "batch_index": 1, "updates": []})
        wal_path.write_bytes(data)
        with pytest.raises(WALCorruptionError, match="does not increase"):
            read_wal(wal_path)

    def test_crc_is_over_canonical_json(self):
        # Key order must not matter: the checksum is computed over the
        # sorted-keys serialization on both sides.
        a = {"v": 1, "batch_index": 3, "updates": []}
        b = {"updates": [], "batch_index": 3, "v": 1}
        assert _canonical(a) == _canonical(b)
        assert zlib.crc32(_canonical(a).encode()) == _crc(b)
