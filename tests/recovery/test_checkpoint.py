"""Snapshot format: round-trips, integrity gates, atomicity."""

import io
import json
import os

import numpy as np
import pytest

from repro.dynamic import IncrementalCoverMaintainer
from repro.dynamic.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointVersionError,
    _digest,
    load_snapshot,
    save_snapshot,
    snapshot_digest,
)
from repro.graphs.graph import WeightedGraph

from tests.recovery.harness import (
    assert_same_state,
    make_batches,
    make_workload,
    seeded_maintainer,
)


@pytest.fixture
def streamed_maintainer():
    """A maintainer mid-stream: adopted solve + a few applied batches."""
    graph = make_workload(n=100, seed=5)
    maintainer = seeded_maintainer(graph)
    for batch in make_batches(graph, "uniform", 3, 20, seed=7):
        maintainer.apply_batch(batch)
    return maintainer


class TestRoundTrip:
    def test_restore_is_bit_exact(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        restored = load_snapshot(path).maintainer
        assert_same_state(streamed_maintainer, restored)

    def test_restored_maintainer_evolves_identically(
        self, streamed_maintainer, tmp_path
    ):
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        restored = load_snapshot(path).maintainer
        graph = make_workload(n=100, seed=5)
        for batch in make_batches(graph, "uniform", 4, 25, seed=11):
            r1 = streamed_maintainer.apply_batch(batch)
            r2 = restored.apply_batch(batch)
            assert r1.certificate == r2.certificate
            assert_same_state(streamed_maintainer, restored)

    def test_gzip_container(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz.gz"
        save_snapshot(path, streamed_maintainer)
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"  # really gzip on disk
        restored = load_snapshot(path).maintainer
        assert_same_state(streamed_maintainer, restored)

    def test_extra_metadata_round_trips(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz"
        extra = {"next_batch_index": 7, "note": "hello"}
        save_snapshot(path, streamed_maintainer, extra=extra)
        assert load_snapshot(path).meta["extra"] == extra

    def test_digest_is_returned_and_stored(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz"
        digest = save_snapshot(path, streamed_maintainer)
        assert snapshot_digest(path) == digest
        assert load_snapshot(path).meta["content_digest"] == digest

    def test_snapshot_of_edgeless_maintainer(self, tmp_path):
        graph = WeightedGraph.empty(6)
        from repro.dynamic import DynamicGraph

        maintainer = IncrementalCoverMaintainer(DynamicGraph(graph))
        path = tmp_path / "snap.npz"
        save_snapshot(path, maintainer)
        restored = load_snapshot(path).maintainer
        assert restored.dyn.n == 6 and restored.dyn.m == 0
        assert not restored.cover.any()

    def test_overwrite_leaves_no_temp_files(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        save_snapshot(path, streamed_maintainer)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["snap.npz"]


class TestIntegrityGates:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_snapshot(tmp_path / "nope.npz")

    def test_truncated_file(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptionError):
            load_snapshot(path)

    def test_flipped_bytes(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        for i in range(mid, mid + 8):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptionError):
            load_snapshot(path)

    def test_damaged_gzip_layer(self, streamed_maintainer, tmp_path):
        path = tmp_path / "snap.npz.gz"
        save_snapshot(path, streamed_maintainer)
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        for i in range(mid, mid + 4):
            data[i] ^= 0xFF  # damage the deflate body, not just the header
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptionError):
            load_snapshot(path)

    def test_not_a_snapshot_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, stuff=np.arange(4))
        with pytest.raises(CheckpointCorruptionError, match="metadata"):
            load_snapshot(path)

    def test_tampered_array_fails_digest(self, streamed_maintainer, tmp_path):
        # Rewrite the archive with one array modified but the original
        # header kept: the zip layer is self-consistent, only the content
        # digest can catch it.
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        with np.load(path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        members["weights"] = members["weights"] + 1.0
        buf = io.BytesIO()
        np.savez_compressed(buf, **members)
        path.write_bytes(buf.getvalue())
        with pytest.raises(CheckpointCorruptionError, match="digest mismatch"):
            load_snapshot(path)

    def test_future_format_version_rejected(self, streamed_maintainer, tmp_path):
        # A version bump must be rejected with a clear message even when
        # the file is otherwise internally consistent (digest recomputed).
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        with np.load(path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(members["meta_json"]).decode("utf-8"))
        meta["format_version"] = 999
        meta.pop("content_digest")
        arrays = {k: v for k, v in members.items() if k != "meta_json"}
        meta["content_digest"] = _digest(meta, arrays)
        members["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(buf, **members)
        path.write_bytes(buf.getvalue())
        with pytest.raises(CheckpointVersionError, match="version 999"):
            load_snapshot(path)

    def test_inconsistent_dual_key_rejected(self, streamed_maintainer, tmp_path):
        # A dual on a non-edge means snapshot and graph disagree; the
        # restore must refuse rather than fabricate a certificate.
        path = tmp_path / "snap.npz"
        save_snapshot(path, streamed_maintainer)
        with np.load(path, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        codes = members["dual_codes"].copy()
        assert codes.size, "fixture must carry duals"
        dyn = streamed_maintainer.dyn
        # Find a non-edge pair to point the first dual at.
        u = 0
        v = next(x for x in range(1, dyn.n) if not dyn.has_edge(u, x))
        codes[0] = (u << 32) | v
        members["dual_codes"] = codes
        meta = json.loads(bytes(members["meta_json"]).decode("utf-8"))
        meta.pop("content_digest")
        arrays = {k: v for k, v in members.items() if k != "meta_json"}
        meta["content_digest"] = _digest(meta, arrays)
        members["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(buf, **members)
        path.write_bytes(buf.getvalue())
        with pytest.raises(CheckpointCorruptionError, match="not an edge"):
            load_snapshot(path)


class TestStateExport:
    def test_export_is_deterministic(self, streamed_maintainer):
        a = streamed_maintainer.export_state()
        b = streamed_maintainer.export_state()
        assert np.array_equal(a["dual_keys"], b["dual_keys"])
        assert np.array_equal(a["dual_values"], b["dual_values"])

    def test_from_state_validates_shapes(self, streamed_maintainer):
        state = streamed_maintainer.export_state()
        bad = dict(state)
        bad["cover"] = state["cover"][:-1]
        with pytest.raises(ValueError, match="cover mask"):
            IncrementalCoverMaintainer.from_state(streamed_maintainer.dyn, bad)

    def test_from_state_rejects_mismatched_dual_arrays(self, streamed_maintainer):
        state = streamed_maintainer.export_state()
        bad = dict(state)
        bad["dual_values"] = state["dual_values"][:-1]
        with pytest.raises(ValueError, match="dual arrays"):
            IncrementalCoverMaintainer.from_state(streamed_maintainer.dyn, bad)
