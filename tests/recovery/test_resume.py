"""Recovery scenarios end-to-end: resume paths, clean failures, CLI, SIGKILL."""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import main
from repro.dynamic import (
    CheckpointConfig,
    CheckpointCorruptionError,
    CheckpointError,
    ResolvePolicy,
    resume_stream,
    run_stream,
)
from repro.graphs.io import save_npz
from repro.graphs.updates import save_update_stream

from tests.recovery.harness import CrashAfter, make_batches, make_workload

BATCH_SIZE = 20
EPS = 0.1
SEED = 4


def _setup(tmp_path, monkeypatch, *, crash_after=3, batches=8, churn="uniform"):
    """A reference run + a crashed checkpointed run over the same stream."""
    graph = make_workload(n=120, seed=81)
    all_batches = make_batches(graph, churn, batches, BATCH_SIZE, seed=83)
    updates = [u for batch in all_batches for u in batch]
    policy = ResolvePolicy(max_drift=0.15)
    reference = run_stream(
        graph, updates, batch_size=BATCH_SIZE, policy=policy, eps=EPS, seed=SEED
    )
    directory = tmp_path / "ckpt"
    checkpoint = CheckpointConfig(directory=directory, snapshot_every=2, fsync=False)
    with CrashAfter(monkeypatch, crash_after):
        with pytest.raises(CrashAfter.Crash):
            run_stream(
                graph,
                updates,
                batch_size=BATCH_SIZE,
                policy=policy,
                eps=EPS,
                seed=SEED,
                checkpoint=checkpoint,
            )
    return graph, updates, reference, checkpoint


class TestResumeScenarios:
    def test_resume_of_completed_run_is_a_noop(self, tmp_path):
        graph = make_workload(n=80, seed=91)
        updates = [u for b in make_batches(graph, "uniform", 4, 20, seed=93) for u in b]
        directory = tmp_path / "ckpt"
        done = run_stream(
            graph,
            updates,
            batch_size=20,
            eps=EPS,
            seed=SEED,
            checkpoint=CheckpointConfig(directory=directory, fsync=False),
        )
        resumed = resume_stream(directory)
        assert resumed.num_batches == 0 and resumed.num_updates == 0
        assert np.array_equal(resumed.final_cover, done.final_cover)

    def test_deleted_snapshot_recovers_from_wal(self, tmp_path, monkeypatch):
        _, _, reference, checkpoint = _setup(tmp_path, monkeypatch)
        os.unlink(checkpoint.snapshot_path)
        resumed = resume_stream(checkpoint.directory)
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        # The cold start replays from batch 0.
        assert resumed.resumed_from_batch == 0

    def test_corrupt_snapshot_fails_cleanly(self, tmp_path, monkeypatch):
        _, _, _, checkpoint = _setup(tmp_path, monkeypatch)
        data = bytearray(open(checkpoint.snapshot_path, "rb").read())
        mid = len(data) // 2
        for i in range(mid, mid + 8):
            data[i] ^= 0xFF
        with open(checkpoint.snapshot_path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(CheckpointCorruptionError):
            resume_stream(checkpoint.directory)

    def test_torn_wal_tail_recovers_to_last_committed_batch(
        self, tmp_path, monkeypatch
    ):
        _, _, reference, checkpoint = _setup(tmp_path, monkeypatch)
        with open(checkpoint.wal_path, "ab") as fh:
            fh.write(b'{"v": 1, "batch_index": 99, "upd')  # torn mid-append
        resumed = resume_stream(checkpoint.directory)
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_wal_gap_fails_cleanly(self, tmp_path, monkeypatch):
        _, _, _, checkpoint = _setup(tmp_path, monkeypatch, crash_after=5)
        os.unlink(checkpoint.snapshot_path)  # force replay from batch 0
        lines = open(checkpoint.wal_path, "rb").read().splitlines(keepends=True)
        with open(checkpoint.wal_path, "wb") as fh:
            fh.writelines(lines[:2] + lines[3:])  # drop a middle record
        with pytest.raises(CheckpointError, match="WAL gap"):
            resume_stream(checkpoint.directory)

    def test_missing_config_fails_cleanly(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing config.json"):
            resume_stream(tmp_path)

    def test_future_config_version_fails_cleanly(self, tmp_path, monkeypatch):
        _, _, _, checkpoint = _setup(tmp_path, monkeypatch)
        config = json.load(open(checkpoint.config_path))
        config["format_version"] = 99
        with open(checkpoint.config_path, "w") as fh:
            json.dump(config, fh)
        with pytest.raises(CheckpointError, match="version 99"):
            resume_stream(checkpoint.directory)

    def test_wrong_stream_length_fails_cleanly(self, tmp_path, monkeypatch):
        _, updates, _, checkpoint = _setup(tmp_path, monkeypatch)
        with pytest.raises(CheckpointError, match="does not match"):
            resume_stream(checkpoint.directory, updates=updates[:-5])

    def test_explicit_updates_override(self, tmp_path, monkeypatch):
        _, updates, reference, checkpoint = _setup(tmp_path, monkeypatch)
        os.unlink(checkpoint.updates_path)
        with pytest.raises(CheckpointError, match="no stored update"):
            resume_stream(checkpoint.directory)
        resumed = resume_stream(checkpoint.directory, updates=updates)
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_reusing_a_checkpoint_dir_is_refused(self, tmp_path, monkeypatch):
        graph, updates, _, checkpoint = _setup(tmp_path, monkeypatch)
        with pytest.raises(CheckpointError, match="already holds a stream"):
            run_stream(
                graph,
                updates,
                batch_size=BATCH_SIZE,
                eps=EPS,
                seed=SEED,
                checkpoint=checkpoint,
            )

    def test_mismatched_graph_file_fails_cleanly(self, tmp_path, monkeypatch):
        _, _, _, checkpoint = _setup(tmp_path, monkeypatch)
        os.unlink(checkpoint.snapshot_path)
        save_npz(make_workload(n=120, seed=999), checkpoint.graph_path)
        with pytest.raises(CheckpointError, match="graph digest"):
            resume_stream(checkpoint.directory)

    def test_corrupt_graph_file_fails_cleanly(self, tmp_path, monkeypatch):
        # Snapshot gone AND graph.npz damaged: the cold start must raise
        # a CheckpointError, not leak a zipfile traceback.
        _, _, _, checkpoint = _setup(tmp_path, monkeypatch)
        os.unlink(checkpoint.snapshot_path)
        data = open(checkpoint.graph_path, "rb").read()
        with open(checkpoint.graph_path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="unreadable"):
            resume_stream(checkpoint.directory)

    def test_swapped_stream_still_yields_valid_cover(self, tmp_path, monkeypatch):
        # Rewrite updates.jsonl with a different (same-length) stream.
        # WAL replay is unaffected — records are self-contained — and the
        # continuation silently follows the swapped remainder, so the
        # final cover may differ from the reference; the guarantee under
        # operator error is *safety*: no crash, never an invalid cover.
        graph, updates, _, checkpoint = _setup(tmp_path, monkeypatch)
        other = [
            u
            for b in make_batches(graph, "uniform", 8, BATCH_SIZE, seed=4242)
            for u in b
        ]
        save_update_stream(other, checkpoint.updates_path)
        resumed = resume_stream(checkpoint.directory)
        assert resumed.final_is_cover

    def test_digest_stamps_catch_foreign_wal(self, tmp_path, monkeypatch):
        # Pair checkpoint A's snapshot with checkpoint B's WAL: the
        # stamped pre-apply digests must expose the mismatch instead of
        # replaying a foreign history into A's state.
        _, _, _, ckpt_a = _setup(tmp_path, monkeypatch, crash_after=5)
        graph_b = make_workload(n=120, seed=4000)
        updates_b = [
            u for b in make_batches(graph_b, "uniform", 8, BATCH_SIZE, seed=4001)
            for u in b
        ]
        dir_b = tmp_path / "ckpt-b"
        with CrashAfter(monkeypatch, 5):
            with pytest.raises(CrashAfter.Crash):
                run_stream(
                    graph_b,
                    updates_b,
                    batch_size=BATCH_SIZE,
                    eps=EPS,
                    seed=SEED,
                    checkpoint=CheckpointConfig(
                        directory=dir_b, snapshot_every=2, fsync=False
                    ),
                )
        wal_b = open(os.path.join(dir_b, "wal.jsonl"), "rb").read()
        with open(ckpt_a.wal_path, "wb") as fh:
            fh.write(wal_b)
        with pytest.raises(CheckpointError, match="mismatch"):
            resume_stream(ckpt_a.directory)


class TestResumeCLI:
    def _stream_args(self, directory, cover_out):
        return [
            "stream",
            "--family", "gnp", "--n", "150", "--degree", "8",
            "--weights", "uniform", "--seed", "1",
            "--churn", "uniform", "--num-updates", "200",
            "--batch-size", "25", "--checkpoint-dir", str(directory),
            "--snapshot-every", "2", "--no-fsync",
            "--cover-out", str(cover_out),
        ]

    def test_stream_then_resume_cli(self, tmp_path, capsys):
        directory = tmp_path / "ckpt"
        ref_cover = tmp_path / "ref.txt"
        assert main(self._stream_args(directory, ref_cover)) == 0
        capsys.readouterr()
        resumed_cover = tmp_path / "resumed.txt"
        code = main(
            [
                "resume",
                "--checkpoint-dir", str(directory),
                "--cover-out", str(resumed_cover),
                "--out", str(tmp_path / "records.jsonl"),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        footer = json.loads(captured.out)
        assert footer["final_is_cover"] is True
        assert footer["resumed_from_batch"] == 8
        assert ref_cover.read_text() == resumed_cover.read_text()

    def test_resume_cli_missing_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="missing config.json"):
            main(["resume", "--checkpoint-dir", str(tmp_path / "nope")])

    def test_resume_cli_wal_corruption_fails_cleanly(self, tmp_path):
        directory = tmp_path / "ckpt"
        assert main(self._stream_args(directory, tmp_path / "c.txt")) == 0
        os.unlink(directory / "snapshot.npz")  # force a WAL read on resume
        raw = bytearray((directory / "wal.jsonl").read_bytes())
        pos = raw.index(b'"op":"')
        raw[pos + 6] = ord("X")
        (directory / "wal.jsonl").write_bytes(bytes(raw))
        with pytest.raises(SystemExit, match="checksum mismatch"):
            main(["resume", "--checkpoint-dir", str(directory)])

    def test_stream_cli_bad_out_fails_before_running(self, tmp_path):
        # --out is opened up front: a typo'd path must not cost a full run.
        args = self._stream_args(tmp_path / "ckpt", tmp_path / "c.txt")
        args += ["--out", str(tmp_path / "no_such_dir" / "records.jsonl")]
        with pytest.raises(SystemExit, match="cannot write --out"):
            main(args)
        assert not (tmp_path / "ckpt" / "wal.jsonl").exists(), (
            "the stream ran despite an unwritable --out"
        )

    def test_no_fsync_choice_is_persisted(self, tmp_path):
        directory = tmp_path / "ckpt"
        assert main(self._stream_args(directory, tmp_path / "c.txt")) == 0
        config = json.loads((directory / "config.json").read_text())
        assert config["fsync"] is False  # _stream_args passes --no-fsync

    def test_stream_cli_rejects_reused_dir(self, tmp_path, capsys):
        directory = tmp_path / "ckpt"
        assert main(self._stream_args(directory, tmp_path / "c1.txt")) == 0
        with pytest.raises(SystemExit, match="already holds a stream"):
            main(self._stream_args(directory, tmp_path / "c2.txt"))


@pytest.mark.slow
class TestSigkill:
    """A real ``kill -9`` mid-flight, then an in-process resume."""

    def test_sigkill_and_resume_matches_reference(self, tmp_path):
        directory = tmp_path / "ckpt"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "stream",
                "--family", "gnp", "--n", "2500", "--degree", "10",
                "--weights", "uniform", "--seed", "1",
                "--churn", "uniform", "--num-updates", "2000",
                "--batch-size", "25", "--resolve-every-batch",
                "--checkpoint-dir", str(directory), "--snapshot-every", "3",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Let it commit some batches, then kill it dead.
        deadline = time.time() + 30
        wal = directory / "wal.jsonl"
        while time.time() < deadline:
            if wal.exists() and wal.stat().st_size > 0:
                break
            time.sleep(0.05)
        time.sleep(0.5)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        assert wal.exists(), "stream never committed a batch"

        resumed = resume_stream(directory)
        assert resumed.final_is_cover

        from repro.graphs.io import load_npz
        from repro.graphs.updates import load_update_stream

        graph = load_npz(directory / "graph.npz")
        updates = load_update_stream(directory / "updates.jsonl")
        reference = run_stream(
            graph,
            updates,
            batch_size=25,
            policy=ResolvePolicy(every_batch=True),
            eps=0.1,
            seed=1,
        )
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.final_certified_ratio == pytest.approx(
            reference.final_certified_ratio, abs=1e-9
        )
