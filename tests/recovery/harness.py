"""Shared machinery of the crash-recovery test harness.

Workload builders, a crash injector, and the *exact-state* comparator the
differential tests are built on: two maintainers are considered equivalent
only if their cover masks, duals, loads, and counters are bit-identical —
recovery that is merely "close" is a silent-corruption bug.
"""

from __future__ import annotations

import numpy as np

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.dynamic import DynamicGraph, IncrementalCoverMaintainer
from repro.graphs.generators import gnp_average_degree
from repro.graphs.streams import make_update_stream
from repro.graphs.weights import uniform_weights

EPS = 0.1
SOLVE_SEED = 2


def make_workload(n=120, degree=6.0, seed=1):
    """A seeded random weighted graph."""
    g = gnp_average_degree(n, degree, seed=seed)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=seed + 1))


def make_batches(graph, churn, num_batches, batch_size, seed=3):
    """``num_batches`` coherent update batches from a named churn model."""
    stream = make_update_stream(churn, graph, num_batches * batch_size, seed=seed)
    return [
        stream[i * batch_size : (i + 1) * batch_size] for i in range(num_batches)
    ]


def seeded_maintainer(graph):
    """A maintainer with an adopted MPC solve (the streaming start state)."""
    dyn = DynamicGraph(graph)
    maintainer = IncrementalCoverMaintainer(dyn)
    if graph.m:
        maintainer.adopt(
            minimum_weight_vertex_cover(graph, eps=EPS, seed=SOLVE_SEED)
        )
    return maintainer


def assert_same_state(a: IncrementalCoverMaintainer, b: IncrementalCoverMaintainer):
    """Bit-exact equality of every piece of maintained state."""
    assert np.array_equal(a.cover, b.cover), "cover masks differ"
    assert a.cover_weight == b.cover_weight, "cover weights differ"
    assert a.edge_duals() == b.edge_duals(), "pair-keyed duals differ"
    assert a.dual_value == b.dual_value, "dual totals differ"
    assert a.load_factor() == b.load_factor(), "load factors differ"
    assert a.base_ratio == b.base_ratio, "drift baselines differ"
    assert a.batches_applied == b.batches_applied, "batch counters differ"
    assert a.dyn.content_digest() == b.dyn.content_digest(), "graphs differ"


class CrashAfter:
    """Injects a crash after N successful ``apply_batch`` calls.

    Used as a context manager around a checkpointed ``run_stream``: the
    raise fires *after* the batch's WAL record was committed but before
    its effects reach any snapshot — the worst-timed process death a
    batch boundary allows.
    """

    class Crash(Exception):
        pass

    def __init__(self, monkeypatch, batches: int):
        self.monkeypatch = monkeypatch
        self.remaining = batches

    def __enter__(self):
        original = IncrementalCoverMaintainer.apply_batch
        injector = self

        def crashing(self_, updates):
            if injector.remaining <= 0:
                raise CrashAfter.Crash()
            injector.remaining -= 1
            return original(self_, updates)

        self.monkeypatch.setattr(IncrementalCoverMaintainer, "apply_batch", crashing)
        return self

    def __exit__(self, *exc_info):
        self.monkeypatch.undo()
        return False
