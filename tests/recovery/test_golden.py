"""Golden-file format tests: the checked-in fixtures must keep loading.

The fixtures under ``tests/recovery/data/`` were written by
``make_golden.py`` with format version 1.  These tests pin the wire
formats: they fail if a change to the snapshot or WAL layout slips in
without a version bump, and they exercise the rejection paths a reader
must keep forever (future version, digest mismatch) plus the version-1 →
version-2 migration (v2 stores ``dual_codes``; v1 files with two-column
``dual_keys`` must keep loading bit-exactly).
"""

import io
import json
import os
import shutil

import numpy as np
import pytest

from repro.dynamic import (
    EdgeDelete,
    EdgeInsert,
    WeightChange,
    read_wal,
)
from repro.dynamic.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointCorruptionError,
    CheckpointVersionError,
    _ARRAY_FIELDS_V1,
    _digest,
    load_snapshot,
    save_snapshot,
)

from tests.recovery.harness import assert_same_state

DATA = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_SNAPSHOT = os.path.join(DATA, "golden_snapshot.npz")
GOLDEN_WAL = os.path.join(DATA, "golden_wal.jsonl")


class TestGoldenSnapshot:
    def test_restores_to_known_state(self):
        restored = load_snapshot(GOLDEN_SNAPSHOT)
        maintainer = restored.maintainer
        assert restored.meta["format_version"] == 1
        assert restored.meta["n"] == 5 and restored.meta["m"] == 4
        assert restored.meta["extra"] == {
            "next_batch_index": 2,
            "updates_applied": 7,
        }
        assert np.nonzero(maintainer.cover)[0].tolist() == [1, 3, 4]
        assert maintainer.cover_weight == 5.5
        assert maintainer.dual_value == 4.0
        assert maintainer.edge_duals() == {
            (0, 1): 1.0,
            (0, 4): 2.0,
            (2, 3): 1.0,
        }
        assert maintainer.verify()

    def test_round_trips_through_a_fresh_file(self, tmp_path):
        original = load_snapshot(GOLDEN_SNAPSHOT)
        path = tmp_path / "again.npz"
        save_snapshot(path, original.maintainer, extra=original.meta["extra"])
        again = load_snapshot(path)
        assert_same_state(original.maintainer, again.maintainer)
        assert again.meta["extra"] == original.meta["extra"]
        assert again.meta["graph_digest"] == original.meta["graph_digest"]

    def test_v1_fixture_migrates_to_current_dual_codes_layout(self, tmp_path):
        # The golden fixture is format 1 (two-column dual_keys); loading
        # it and re-saving must produce the current format (flat encoded
        # dual_codes) with bit-identical maintainer state.
        original = load_snapshot(GOLDEN_SNAPSHOT)
        assert original.meta["format_version"] == 1
        path = tmp_path / "migrated.npz"
        save_snapshot(path, original.maintainer, extra=original.meta["extra"])
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
            assert meta["format_version"] == CHECKPOINT_FORMAT_VERSION
            assert "dual_codes" in archive.files
            assert "dual_keys" not in archive.files
            codes = archive["dual_codes"]
        assert [((c >> 32), c & 0xFFFFFFFF) for c in codes.tolist()] == sorted(
            original.maintainer.edge_duals()
        )
        migrated = load_snapshot(path)
        assert_same_state(original.maintainer, migrated.maintainer)

    def test_bumped_format_version_is_rejected(self, tmp_path):
        # A *future* version (one past everything this build reads) must
        # be rejected even when the file is otherwise self-consistent.
        future = CHECKPOINT_FORMAT_VERSION + 1
        path = tmp_path / "bumped.npz"
        with np.load(GOLDEN_SNAPSHOT, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(members["meta_json"]).decode("utf-8"))
        meta["format_version"] = future
        meta.pop("content_digest")
        arrays = {k: v for k, v in members.items() if k != "meta_json"}
        meta["content_digest"] = _digest(meta, arrays, _ARRAY_FIELDS_V1)
        members["meta_json"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(buf, **members)
        path.write_bytes(buf.getvalue())
        with pytest.raises(CheckpointVersionError, match=f"version {future}"):
            load_snapshot(path)

    def test_embedded_digest_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "tampered.npz"
        with np.load(GOLDEN_SNAPSHOT, allow_pickle=False) as archive:
            members = {name: archive[name] for name in archive.files}
        members["loads"] = members["loads"] * 2.0
        buf = io.BytesIO()
        np.savez_compressed(buf, **members)
        path.write_bytes(buf.getvalue())
        with pytest.raises(CheckpointCorruptionError, match="digest mismatch"):
            load_snapshot(path)

    def test_bitflip_on_disk_is_rejected(self, tmp_path):
        path = tmp_path / "flipped.npz"
        shutil.copyfile(GOLDEN_SNAPSHOT, path)
        data = bytearray(path.read_bytes())
        mid = len(data) // 2
        for i in range(mid, mid + 4):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptionError):
            load_snapshot(path)


class TestGoldenWAL:
    def test_reads_to_known_records(self):
        records, torn = read_wal(GOLDEN_WAL)
        assert not torn
        assert [r.batch_index for r in records] == [0, 1]
        assert list(records[0].updates) == [
            EdgeInsert(0, 1),
            EdgeInsert(1, 2),
            EdgeInsert(2, 3),
            EdgeInsert(0, 4),
        ]
        assert list(records[1].updates) == [
            EdgeInsert(2, 4),
            EdgeDelete(1, 2),
            WeightChange(3, 2.5),
        ]
        assert all(len(r.state_digest) == 64 for r in records)

    def test_wal_replays_onto_golden_base(self):
        # Applying the golden WAL to the documented base graph lands on
        # the snapshot's stamped graph digest.
        from repro.dynamic import DynamicGraph, IncrementalCoverMaintainer
        from repro.graphs.graph import WeightedGraph

        records, _ = read_wal(GOLDEN_WAL)
        maintainer = IncrementalCoverMaintainer(
            DynamicGraph(
                WeightedGraph.empty(5, weights=[4.0, 1.0, 3.0, 1.0, 2.0])
            )
        )
        for record in records:
            assert maintainer.dyn.content_digest() == record.state_digest
            maintainer.apply_batch(list(record.updates))
        golden = load_snapshot(GOLDEN_SNAPSHOT)
        assert maintainer.dyn.content_digest() == golden.meta["graph_digest"]
        assert_same_state(maintainer, golden.maintainer)

    def test_golden_wal_checksum_damage_detected(self, tmp_path):
        from repro.dynamic import WALCorruptionError

        path = tmp_path / "wal.jsonl"
        raw = bytearray(open(GOLDEN_WAL, "rb").read())
        pos = raw.index(b'"op":"insert"')
        raw[pos + 6 : pos + 12] = b"remove"  # same length, different bytes
        path.write_bytes(bytes(raw))
        with pytest.raises(WALCorruptionError, match="checksum mismatch"):
            read_wal(path)
