"""Differential property tests: restored state ≡ uninterrupted state.

Two independent layers:

* **Maintainer level** — run two maintainers over identical batches; one
  is serialized + deserialized at every k-th batch boundary.  Every piece
  of state (cover mask, weight, duals, load factor) must stay bit-exact
  at every boundary, for every churn model.
* **Stream level** — a checkpointed :func:`run_stream` is crashed at a
  batch boundary (after the WAL commit — the worst allowed moment) and
  picked up by :func:`resume_stream`; the resumed run's final cover and
  certificate must equal the uninterrupted run's.

Plus soundness: a *restored* certificate still lower-bounds the true
optimum on instances small enough to solve exactly / via LP.
"""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.baselines.lp import lp_relaxation
from repro.dynamic import CheckpointConfig, ResolvePolicy, resume_stream, run_stream
from repro.dynamic.checkpoint import load_snapshot, save_snapshot
from repro.graphs.streams import CHURN_MODELS

from tests.recovery.harness import (
    CrashAfter,
    assert_same_state,
    make_batches,
    make_workload,
    seeded_maintainer,
)

BATCHES = 12
BATCH_SIZE = 20


@pytest.mark.parametrize("churn", CHURN_MODELS)
@pytest.mark.parametrize("every_k", [1, 3, 5])
def test_snapshot_restore_at_every_kth_boundary_is_exact(
    churn, every_k, tmp_path
):
    graph = make_workload(n=120, seed=17)
    batches = make_batches(graph, churn, BATCHES, BATCH_SIZE, seed=23)
    live = seeded_maintainer(graph)
    cycled = seeded_maintainer(graph)
    path = tmp_path / "snap.npz"
    for i, batch in enumerate(batches):
        live.apply_batch(batch)
        cycled.apply_batch(batch)
        if (i + 1) % every_k == 0:
            save_snapshot(path, cycled)
            cycled = load_snapshot(path).maintainer
        assert_same_state(live, cycled)
        assert cycled.verify()


@pytest.mark.parametrize("churn", CHURN_MODELS)
def test_restored_certificate_lower_bounds_exact_opt(churn, tmp_path):
    graph = make_workload(n=24, degree=4.0, seed=31)
    maintainer = seeded_maintainer(graph)
    path = tmp_path / "snap.npz"
    for batch in make_batches(graph, churn, 6, 10, seed=37):
        maintainer.apply_batch(batch)
        save_snapshot(path, maintainer)
        maintainer = load_snapshot(path).maintainer
        cert = maintainer.certificate()
        current = maintainer.dyn.materialize()
        if not current.m:
            continue
        opt = exact_mwvc(current).opt_weight
        assert cert.opt_lower_bound <= opt + 1e-9, (
            f"restored certificate claims lower bound {cert.opt_lower_bound} "
            f"above OPT {opt}"
        )
        assert cert.cover_weight >= opt - 1e-9


def test_restored_certificate_lower_bounds_lp_value(tmp_path):
    graph = make_workload(n=80, degree=6.0, seed=41)
    maintainer = seeded_maintainer(graph)
    path = tmp_path / "snap.npz"
    for batch in make_batches(graph, "uniform", 5, 20, seed=43):
        maintainer.apply_batch(batch)
    save_snapshot(path, maintainer)
    restored = load_snapshot(path).maintainer
    cert = restored.certificate()
    current = restored.dyn.materialize()
    if current.m:
        lp = lp_relaxation(current)
        if lp.ok:
            # The LP optimum sits between the dual lower bound and OPT.
            assert cert.opt_lower_bound <= lp.lp_value + 1e-9


class TestCrashResumeEquivalence:
    """Kill a checkpointed run at randomized batch boundaries; resume must
    reproduce the uninterrupted run bit-for-bit."""

    EPS = 0.1
    SEED = 4

    def _reference(self, graph, updates, policy):
        return run_stream(
            graph,
            updates,
            batch_size=BATCH_SIZE,
            policy=policy,
            eps=self.EPS,
            seed=self.SEED,
        )

    @pytest.mark.parametrize("churn", CHURN_MODELS)
    def test_randomized_crash_points(self, churn, tmp_path, monkeypatch):
        graph = make_workload(n=150, seed=47)
        batches = make_batches(graph, churn, BATCHES, BATCH_SIZE, seed=53)
        updates = [u for batch in batches for u in batch]
        policy = ResolvePolicy(max_drift=0.15)
        reference = self._reference(graph, updates, policy)
        assert reference.final_is_cover

        rng = np.random.default_rng(59)
        crash_points = sorted(
            int(x) for x in rng.choice(np.arange(1, BATCHES), size=4, replace=False)
        )
        for crash_after in crash_points:
            directory = tmp_path / f"{churn}-{crash_after}"
            checkpoint = CheckpointConfig(
                directory=directory, snapshot_every=3, fsync=False
            )
            with CrashAfter(monkeypatch, crash_after):
                with pytest.raises(CrashAfter.Crash):
                    run_stream(
                        graph,
                        updates,
                        batch_size=BATCH_SIZE,
                        policy=policy,
                        eps=self.EPS,
                        seed=self.SEED,
                        checkpoint=checkpoint,
                    )
            resumed = resume_stream(directory)
            assert resumed.final_is_cover
            assert np.array_equal(resumed.final_cover, reference.final_cover), (
                f"{churn}: cover mismatch after crash at batch {crash_after}"
            )
            assert resumed.final_cover_weight == reference.final_cover_weight
            assert resumed.final_certified_ratio == pytest.approx(
                reference.final_certified_ratio, abs=1e-9
            )
            assert resumed.final_dual_value == pytest.approx(
                reference.final_dual_value, abs=1e-9
            )

    def test_crash_before_first_batch(self, tmp_path, monkeypatch):
        graph = make_workload(n=100, seed=61)
        batches = make_batches(graph, "uniform", 6, BATCH_SIZE, seed=67)
        updates = [u for batch in batches for u in batch]
        policy = ResolvePolicy(max_drift=0.15)
        reference = self._reference(graph, updates, policy)
        directory = tmp_path / "ckpt"
        with CrashAfter(monkeypatch, 0):
            with pytest.raises(CrashAfter.Crash):
                run_stream(
                    graph,
                    updates,
                    batch_size=BATCH_SIZE,
                    policy=policy,
                    eps=self.EPS,
                    seed=self.SEED,
                    checkpoint=CheckpointConfig(directory=directory, fsync=False),
                )
        resumed = resume_stream(directory)
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.num_batches == 6

    def test_double_crash_then_resume(self, tmp_path, monkeypatch):
        # Crash the original run, then crash the *resume* too; the second
        # resume must still land on the uninterrupted result.
        graph = make_workload(n=120, seed=71)
        batches = make_batches(graph, "hub", 10, BATCH_SIZE, seed=73)
        updates = [u for batch in batches for u in batch]
        policy = ResolvePolicy(max_drift=0.15)
        reference = self._reference(graph, updates, policy)
        directory = tmp_path / "ckpt"
        with CrashAfter(monkeypatch, 3):
            with pytest.raises(CrashAfter.Crash):
                run_stream(
                    graph,
                    updates,
                    batch_size=BATCH_SIZE,
                    policy=policy,
                    eps=self.EPS,
                    seed=self.SEED,
                    checkpoint=CheckpointConfig(
                        directory=directory, snapshot_every=2, fsync=False
                    ),
                )
        with CrashAfter(monkeypatch, 4):
            with pytest.raises(CrashAfter.Crash):
                resume_stream(directory)
        resumed = resume_stream(directory)
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.final_certified_ratio == pytest.approx(
            reference.final_certified_ratio, abs=1e-9
        )
