"""Snapshot rotation (``keep_snapshots``) and WAL compaction."""

import os

import numpy as np
import pytest

from repro.dynamic import (
    CheckpointConfig,
    CheckpointCorruptionError,
    ResolvePolicy,
    compact_wal,
    read_wal,
    resume_stream,
    run_stream,
)
from repro.dynamic.checkpoint import snapshot_meta

from tests.recovery.harness import make_batches, make_workload

BATCH_SIZE = 20
EPS = 0.1
SEED = 4


def _run(tmp_path, **checkpoint_kwargs):
    graph = make_workload(n=100, seed=17)
    batches = make_batches(graph, "uniform", 10, BATCH_SIZE, seed=19)
    updates = [u for b in batches for u in b]
    checkpoint = CheckpointConfig(
        directory=tmp_path / "ckpt", snapshot_every=2, **checkpoint_kwargs
    )
    summary = run_stream(
        graph,
        updates,
        batch_size=BATCH_SIZE,
        policy=ResolvePolicy(max_drift=0.2),
        eps=EPS,
        seed=SEED,
        checkpoint=checkpoint,
    )
    return graph, updates, summary, checkpoint


def _snapshot_files(checkpoint):
    return sorted(
        name
        for name in os.listdir(checkpoint.directory)
        if name.startswith("snapshot")
    )


class TestRotation:
    def test_keep_one_is_the_legacy_single_file(self, tmp_path):
        _, _, _, checkpoint = _run(tmp_path)  # default keep_snapshots=1
        assert _snapshot_files(checkpoint) == ["snapshot.npz"]

    def test_keep_k_retains_last_k_numbered(self, tmp_path):
        _, _, _, checkpoint = _run(tmp_path, keep_snapshots=3)
        files = _snapshot_files(checkpoint)
        assert len(files) == 3
        # Snapshots at batches 0,2,4,6,8,10 → the last three survive.
        assert files == [
            "snapshot-00000006.npz",
            "snapshot-00000008.npz",
            "snapshot-00000010.npz",
        ]

    def test_resume_uses_newest_snapshot(self, tmp_path):
        _, _, reference, checkpoint = _run(tmp_path, keep_snapshots=3)
        resumed = resume_stream(checkpoint.directory)
        assert resumed.resumed_from_batch == 10
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        _, _, reference, checkpoint = _run(tmp_path, keep_snapshots=3)
        newest = os.path.join(
            os.fspath(checkpoint.directory), "snapshot-00000010.npz"
        )
        data = bytearray(open(newest, "rb").read())
        mid = len(data) // 2
        for i in range(mid, mid + 8):
            data[i] ^= 0xFF
        with open(newest, "wb") as fh:
            fh.write(bytes(data))
        resumed = resume_stream(checkpoint.directory)
        # Fell back to the batch-8 snapshot and replayed the WAL tail.
        assert resumed.resumed_from_batch == 8
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_all_corrupt_raises(self, tmp_path):
        _, _, _, checkpoint = _run(tmp_path, keep_snapshots=2)
        for name in _snapshot_files(checkpoint):
            path = os.path.join(os.fspath(checkpoint.directory), name)
            with open(path, "r+b") as fh:
                fh.seek(20)
                fh.write(b"\xff" * 16)
        with pytest.raises(CheckpointCorruptionError, match="failed integrity"):
            resume_stream(checkpoint.directory)

    def test_keep_snapshots_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep_snapshots"):
            CheckpointConfig(directory=tmp_path, keep_snapshots=0)


class TestWalCompaction:
    def test_compact_drops_only_covered_records(self, tmp_path):
        _, _, _, checkpoint = _run(tmp_path)
        records, _ = read_wal(checkpoint.wal_path)
        assert len(records) == 10
        removed = compact_wal(checkpoint.wal_path, 6)
        assert removed == 6
        remaining, torn = read_wal(checkpoint.wal_path)
        assert not torn
        assert [r.batch_index for r in remaining] == [6, 7, 8, 9]
        # Idempotent: nothing more to drop.
        assert compact_wal(checkpoint.wal_path, 6) == 0

    def test_resume_after_offline_compaction_is_exact(self, tmp_path):
        _, _, reference, checkpoint = _run(tmp_path)
        # The single snapshot sits at batch 10 (stream end); everything
        # below it is dead weight.
        floor = int(
            snapshot_meta(checkpoint.snapshot_path)["extra"]["next_batch_index"]
        )
        compact_wal(checkpoint.wal_path, floor)
        resumed = resume_stream(checkpoint.directory)
        assert np.array_equal(resumed.final_cover, reference.final_cover)

    def test_auto_compaction_bounds_the_log(self, tmp_path):
        _, _, _, checkpoint = _run(
            tmp_path, keep_snapshots=2, compact_wal=True
        )
        records, _ = read_wal(checkpoint.wal_path)
        # Retained snapshots are batches 8 and 10 → only batches >= 8 stay.
        assert [r.batch_index for r in records] == [8, 9]

    def test_auto_compaction_resume_is_exact(self, tmp_path):
        graph, updates, reference, checkpoint = _run(
            tmp_path, keep_snapshots=2, compact_wal=True
        )
        resumed = resume_stream(checkpoint.directory)
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.final_certified_ratio == reference.final_certified_ratio

    def test_missing_wal_is_noop(self, tmp_path):
        assert compact_wal(tmp_path / "absent.jsonl", 5) == 0
        assert not os.path.exists(tmp_path / "absent.jsonl")


class TestWalCompactCLI:
    def test_cli_verb(self, tmp_path):
        from repro.cli import main

        _, _, _, checkpoint = _run(tmp_path, keep_snapshots=2)
        records, _ = read_wal(checkpoint.wal_path)
        assert len(records) == 10
        rc = main(
            ["wal-compact", "--checkpoint-dir", os.fspath(checkpoint.directory)]
        )
        assert rc == 0
        remaining, _ = read_wal(checkpoint.wal_path)
        assert [r.batch_index for r in remaining] == [8, 9]

    def test_cli_verb_without_snapshot_refuses(self, tmp_path):
        from repro.cli import main

        _, _, _, checkpoint = _run(tmp_path)
        os.remove(checkpoint.snapshot_path)
        with pytest.raises(SystemExit, match="no snapshot"):
            main(
                [
                    "wal-compact",
                    "--checkpoint-dir",
                    os.fspath(checkpoint.directory),
                ]
            )
