"""Failure injection: model violations must surface, never corrupt results."""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.params import MPCParameters
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights
from repro.mpc.exceptions import DeadMachineError, MPCError


@pytest.fixture
def workload():
    g = gnp_average_degree(300, 20.0, seed=70)
    return g.with_weights(uniform_weights(g.n, seed=71))


class TestFailureInjection:
    def test_machine_death_surfaces(self, workload):
        """Killing a worker mid-run raises DeadMachineError — the algorithm
        has no fault tolerance (neither does the paper) and must say so."""
        with pytest.raises(DeadMachineError):
            minimum_weight_vertex_cover(
                workload, eps=0.1, seed=72, engine="cluster", kill_schedule={3: [1]}
            )

    def test_coordinator_death_surfaces(self, workload):
        with pytest.raises(DeadMachineError):
            minimum_weight_vertex_cover(
                workload, eps=0.1, seed=72, engine="cluster", kill_schedule={2: [0]}
            )

    def test_death_after_completion_harmless(self, workload):
        """A kill scheduled after the run's last round never fires."""
        res = minimum_weight_vertex_cover(
            workload, eps=0.1, seed=73, engine="cluster", kill_schedule={10**6: [1]}
        )
        assert res.verify(workload)

    def test_capacity_squeeze_raises_mpc_error(self, workload):
        """An unreasonably small memory factor must produce a model
        violation, not a wrong answer."""
        params = MPCParameters(eps=0.1, memory_factor=0.05)
        with pytest.raises(MPCError):
            minimum_weight_vertex_cover(
                workload, params=params, seed=74, engine="cluster"
            )

    def test_vectorized_rejects_kill_schedule(self, workload):
        with pytest.raises(ValueError):
            minimum_weight_vertex_cover(
                workload, eps=0.1, seed=75, engine="vectorized", kill_schedule={0: [1]}
            )
