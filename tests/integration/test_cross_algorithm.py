"""Cross-algorithm consistency matrix.

Every cover algorithm in the package runs on every graph family × weight
model combination; all covers must be valid, and the mutual weak-duality
web must hold: every dual-producing algorithm's (discounted) dual value
lower-bounds every algorithm's cover weight.
"""

import numpy as np
import pytest

from repro.baselines.greedy import greedy_vertex_cover
from repro.baselines.local_ratio import local_ratio_vertex_cover
from repro.baselines.lp import lp_rounded_cover
from repro.baselines.pricing import pricing_vertex_cover
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.core.postprocess import prune_redundant_vertices
from repro.core.preprocess import solve_with_preprocessing
from repro.graphs.generators import gnp_average_degree, power_law, random_tree
from repro.graphs.generators_extra import preferential_attachment, random_geometric
from repro.graphs.weights import make_weights

FAMILIES = {
    "gnp": lambda seed: gnp_average_degree(250, 10.0, seed=seed),
    "power_law": lambda seed: power_law(250, seed=seed),
    "tree": lambda seed: random_tree(250, seed=seed),
    "ba": lambda seed: preferential_attachment(250, 2, seed=seed),
    "geometric": lambda seed: random_geometric(250, 0.12, seed=seed),
}

SOLVERS = {
    "mpc": lambda g: minimum_weight_vertex_cover(g, eps=0.1, seed=5).in_cover,
    "mpc_pruned": lambda g: prune_redundant_vertices(
        g, minimum_weight_vertex_cover(g, eps=0.1, seed=5).in_cover
    ),
    "pricing": lambda g: pricing_vertex_cover(g).in_cover,
    "local_ratio": lambda g: local_ratio_vertex_cover(g).in_cover,
    "greedy": lambda g: greedy_vertex_cover(g).in_cover,
    "lp_rounded": lambda g: lp_rounded_cover(g)[0],
    "pipeline": lambda g: solve_with_preprocessing(
        g, lambda s: minimum_weight_vertex_cover(s, eps=0.1, seed=5).in_cover
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("model", ["uniform", "adversarial"])
def test_all_solvers_cover_all_families(family, model):
    g = FAMILIES[family](seed=3)
    g = g.with_weights(make_weights(model, g, seed=4))
    dual = pricing_vertex_cover(g).dual_value
    for name, solver in SOLVERS.items():
        cover = solver(g)
        assert g.is_vertex_cover(cover), f"{name} failed on {family}/{model}"
        assert dual <= g.cover_weight(cover) + 1e-9, (
            f"weak duality violated by {name} on {family}/{model}"
        )


def test_large_scale_smoke():
    """A million-edge instance completes in seconds and stays certified."""
    g = gnp_average_degree(50_000, 40.0, seed=8)
    g = g.with_weights(make_weights("exponential", g, seed=9))
    assert g.m > 900_000
    res = minimum_weight_vertex_cover(g, eps=0.1, seed=10)
    assert res.verify(g)
    assert res.certificate.certified_ratio < 3.0
    assert res.num_phases <= 4
