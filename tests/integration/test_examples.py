"""Every example script must run to completion as a subprocess."""

import os
import pathlib
import subprocess
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((_REPO_ROOT / "examples").glob("*.py"))


def _env_with_src():
    """Subprocess environment with ``src/`` importable regardless of caller."""
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_present():
    """The repo promises at least a quickstart plus domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
