"""Every example script must run to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{script.name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_present():
    """The repo promises at least a quickstart plus domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
