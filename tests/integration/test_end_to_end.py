"""End-to-end integration: the full algorithm across graph families, weight
models, and both engines, checked against exact and LP references."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.baselines.lp import lp_relaxation
from repro.baselines.pricing import pricing_vertex_cover
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.graphs.generators import (
    complete_bipartite,
    gnp_average_degree,
    grid_2d,
    planted_cover,
    power_law,
    random_tree,
)
from repro.graphs.weights import (
    WEIGHT_MODELS,
    make_weights,
    planted_cover_weights,
)


class TestFamilies:
    @pytest.mark.parametrize("model", sorted(WEIGHT_MODELS))
    def test_gnp_all_weight_models(self, model):
        g = gnp_average_degree(600, 18.0, seed=1)
        g = g.with_weights(make_weights(model, g, seed=2))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=3)
        assert res.verify(g)
        lp = lp_relaxation(g).lp_value
        assert res.cover_weight <= 2.6 * lp  # 2+30ε = 5 bound; observed ≤ ~2.6

    def test_power_law_heavy_tail(self):
        g = power_law(2500, exponent=2.1, seed=4)
        g = g.with_weights(make_weights("exponential", g, seed=5))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=6)
        assert res.verify(g)

    def test_grid(self):
        g = grid_2d(40, 40)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=7)
        assert res.verify(g)
        # grid is bipartite: LP = OPT; ratio should be ≤ 2+30ε easily
        lp = lp_relaxation(g).lp_value
        assert res.cover_weight <= 5.0 * lp

    def test_tree(self):
        g = random_tree(3000, seed=8)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=9)
        assert res.verify(g)

    def test_bipartite_weighted(self):
        g = complete_bipartite(40, 200)
        w = np.ones(240)
        w[:40] = 100.0  # left side expensive; OPT buys the right side? no —
        # covering K_{40,200} needs one full side: right side costs 200,
        # left costs 4000 -> OPT = 200.
        g = g.with_weights(w)
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=10)
        assert res.verify(g)
        assert res.cover_weight <= 5.0 * 200.0

    def test_planted_cover_recovered_approximately(self):
        g = planted_cover(2000, 100, 10.0, seed=11)
        g = g.with_weights(planted_cover_weights(2000, 100, seed=12))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=13)
        assert res.verify(g)
        planted_weight = float(g.weights[:100].sum())
        # the planted cover is near-optimal; we must land within the bound
        assert res.cover_weight <= 5.0 * planted_weight


class TestAgainstReferences:
    @pytest.mark.parametrize("seed", range(5))
    def test_ratio_vs_exact_small(self, seed):
        eps = 0.1
        g = gnp_average_degree(36, 7.0, seed=seed)
        g = g.with_weights(make_weights("uniform", g, seed=seed + 20))
        res = minimum_weight_vertex_cover(g, eps=eps, seed=seed)
        opt = exact_mwvc(g).opt_weight
        if opt > 0:
            assert res.cover_weight / opt <= 2.0 + 30.0 * eps

    @pytest.mark.parametrize("seed", range(3))
    def test_ratio_vs_lp_medium(self, seed):
        eps = 0.1
        g = gnp_average_degree(900, 22.0, seed=seed)
        g = g.with_weights(make_weights("exponential", g, seed=seed + 30))
        res = minimum_weight_vertex_cover(g, eps=eps, seed=seed)
        lp = lp_relaxation(g).lp_value
        assert res.cover_weight / lp <= 2.0 + 30.0 * eps

    def test_comparable_to_pricing(self):
        """The MPC cover should be in the same quality class as the
        sequential 2-approximation (within 50% on random graphs)."""
        g = gnp_average_degree(1500, 30.0, seed=40)
        g = g.with_weights(make_weights("uniform", g, seed=41))
        ours = minimum_weight_vertex_cover(g, eps=0.1, seed=42)
        seq = pricing_vertex_cover(g)
        assert ours.cover_weight <= 1.5 * seq.cover_weight

    def test_dual_consistency_chain(self):
        """dual certificate ≤ LP ≤ OPT on one instance where all three are
        computable."""
        g = gnp_average_degree(40, 6.0, seed=50)
        g = g.with_weights(make_weights("uniform", g, seed=51))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=52)
        lp = lp_relaxation(g).lp_value
        opt = exact_mwvc(g).opt_weight
        assert res.certificate.opt_lower_bound <= lp + 1e-6
        assert lp <= opt + 1e-6


class TestBothEnginesEndToEnd:
    def test_cluster_engine_full_pipeline(self):
        g = gnp_average_degree(350, 20.0, seed=60)
        g = g.with_weights(make_weights("adversarial", g, seed=61))
        res = minimum_weight_vertex_cover(g, eps=0.1, seed=62, engine="cluster")
        assert res.verify(g)
        assert res.engine == "cluster"
        assert res.mpc_rounds > 0
