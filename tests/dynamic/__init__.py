"""Tests for the dynamic-graph subsystem."""
