"""Tests for update events and the JSON-lines stream format."""

import gzip
import json

import pytest

from repro.dynamic.updates import (
    EdgeDelete,
    EdgeInsert,
    WeightChange,
    load_update_stream,
    save_update_stream,
    update_from_json,
    update_to_json,
)

SAMPLE = [
    EdgeInsert(0, 5),
    EdgeDelete(2, 3),
    WeightChange(4, 2.5),
    EdgeInsert(7, 1),
]


class TestJsonRoundtrip:
    @pytest.mark.parametrize("upd", SAMPLE)
    def test_roundtrip(self, upd):
        assert update_from_json(update_to_json(upd)) == upd

    def test_insert_wire_shape(self):
        assert update_to_json(EdgeInsert(3, 7)) == {"op": "insert", "u": 3, "v": 7}

    def test_reweight_wire_shape(self):
        assert update_to_json(WeightChange(3, 2.5)) == {
            "op": "reweight", "v": 3, "weight": 2.5,
        }

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            update_from_json({"op": "explode", "u": 0, "v": 1})

    def test_missing_endpoint(self):
        with pytest.raises(ValueError, match="needs keys"):
            update_from_json({"op": "insert", "u": 0})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            update_from_json({"op": "delete", "u": 0, "v": 1, "w": 2})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="> 0"):
            update_from_json({"op": "reweight", "v": 0, "weight": 0.0})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            update_from_json([1, 2, 3])

    def test_not_an_update(self):
        with pytest.raises(TypeError, match="not a graph update"):
            update_to_json(("insert", 0, 1))


class TestStreamIO:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        save_update_stream(SAMPLE, path)
        assert load_update_stream(path) == SAMPLE

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "stream.jsonl.gz"
        save_update_stream(SAMPLE, path)
        # Really compressed, not just renamed.
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert load_update_stream(path) == SAMPLE

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            "# a comment\n\n"
            + json.dumps({"op": "insert", "u": 1, "v": 2})
            + "\n\n"
        )
        assert load_update_stream(path) == [EdgeInsert(1, 2)]

    def test_iterable_source(self):
        lines = [json.dumps(update_to_json(u)) for u in SAMPLE]
        assert load_update_stream(lines) == SAMPLE

    def test_bad_line_names_line_number(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            json.dumps({"op": "insert", "u": 1, "v": 2})
            + "\n"
            + json.dumps({"op": "nope"})
            + "\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            load_update_stream(path)

    def test_gzip_content_loadable_by_stdlib(self, tmp_path):
        path = tmp_path / "stream.jsonl.gz"
        save_update_stream(SAMPLE, path)
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            rows = [json.loads(line) for line in fh]
        assert rows[0] == {"op": "insert", "u": 0, "v": 5}
