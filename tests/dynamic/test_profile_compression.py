"""Stream-level tests for the ``--profile`` breakdown and
``--snapshot-compression`` knob."""

import json
import os

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.dynamic import (
    KERNEL_PROFILE_KEYS,
    CheckpointConfig,
    DynamicGraph,
    IncrementalCoverMaintainer,
    load_snapshot,
    resume_stream,
    run_stream,
    save_snapshot,
)
from repro.dynamic.sharded import run_sharded_stream
from repro.graphs.generators import gnp_average_degree
from repro.graphs.streams import make_update_stream
from repro.graphs.weights import uniform_weights


@pytest.fixture(scope="module")
def workload():
    g = gnp_average_degree(150, 6.0, seed=1)
    g = g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=2))
    updates = make_update_stream("uniform", g, 240, seed=3)
    return g, updates


class TestKernelProfile:
    def test_run_stream_profile_emits_breakdown(self, workload):
        graph, updates = workload
        summary = run_stream(graph, updates, batch_size=40, profile=True)
        assert summary.kernel_profile is not None
        assert set(summary.kernel_profile) == set(KERNEL_PROFILE_KEYS)
        assert all(v >= 0.0 for v in summary.kernel_profile.values())
        row = summary.summary()
        assert set(row["kernel_profile"]) == set(KERNEL_PROFILE_KEYS)
        for record in summary.records:
            assert record.kernel_profile is not None
            assert set(record.summary()["kernel_profile"]) == set(
                KERNEL_PROFILE_KEYS
            )
        # The cumulative split is the sum of the per-batch deltas.
        for key in KERNEL_PROFILE_KEYS:
            total = sum(r.kernel_profile[key] for r in summary.records)
            assert summary.kernel_profile[key] == pytest.approx(total)

    def test_profile_off_by_default(self, workload):
        graph, updates = workload
        summary = run_stream(graph, updates, batch_size=40)
        assert summary.kernel_profile is None
        assert "kernel_profile" not in summary.summary()
        assert all(r.kernel_profile is None for r in summary.records)

    def test_profile_does_not_change_results(self, workload):
        graph, updates = workload
        plain = run_stream(graph, updates, batch_size=40)
        profiled = run_stream(graph, updates, batch_size=40, profile=True)
        assert np.array_equal(plain.final_cover, profiled.final_cover)
        assert plain.final_cover_weight == profiled.final_cover_weight
        assert plain.final_dual_value == profiled.final_dual_value

    def test_sharded_profile_emits_breakdown(self, workload):
        graph, updates = workload
        summary = run_sharded_stream(
            graph,
            updates,
            num_shards=2,
            batch_size=40,
            use_processes=False,
            profile=True,
        )
        assert summary.kernel_profile is not None
        assert set(summary.kernel_profile) == set(KERNEL_PROFILE_KEYS)
        assert all(r.kernel_profile is not None for r in summary.records)


class TestSnapshotCompression:
    def _maintainer(self, workload):
        graph, updates = workload
        dyn = DynamicGraph(graph)
        m = IncrementalCoverMaintainer(dyn)
        m.adopt(minimum_weight_vertex_cover(graph, eps=0.1, seed=2))
        m.apply_batch(updates[:60])
        return m

    def test_uncompressed_snapshot_round_trips(self, workload, tmp_path):
        m = self._maintainer(workload)
        plain = tmp_path / "plain.npz"
        packed = tmp_path / "packed.npz"
        save_snapshot(plain, m, compress_arrays=False)
        save_snapshot(packed, m, compress_arrays=True)
        assert os.path.getsize(plain) >= os.path.getsize(packed)
        a = load_snapshot(plain)
        b = load_snapshot(packed)
        assert np.array_equal(a.maintainer.cover, b.maintainer.cover)
        assert a.maintainer.edge_duals() == b.maintainer.edge_duals()
        # Integrity digests cover the array payloads in both modes.
        assert a.meta["content_digest"] == b.meta["content_digest"]

    def test_config_rejects_unknown_compression(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_compression"):
            CheckpointConfig(directory=tmp_path, snapshot_compression="lz4")

    def test_compression_choice_survives_resume(self, workload, tmp_path):
        graph, updates = workload
        checkpoint = CheckpointConfig(
            directory=tmp_path / "ckpt",
            snapshot_every=2,
            fsync=False,
            snapshot_compression="none",
        )
        reference = run_stream(graph, updates, batch_size=40)
        durable = run_stream(
            graph, updates, batch_size=40, checkpoint=checkpoint
        )
        config = json.load(open(checkpoint.config_path))
        assert config["snapshot_compression"] == "none"
        resumed = resume_stream(checkpoint.directory)
        assert np.array_equal(durable.final_cover, reference.final_cover)
        assert np.array_equal(resumed.final_cover, reference.final_cover)
        assert resumed.final_cover_weight == reference.final_cover_weight
