"""Tests for the ingestion layer: update sources and the partition router."""

import gzip
import os

import numpy as np
import pytest

from repro.dynamic.ingest import (
    DirectorySource,
    FileSource,
    IterableSource,
    MemorySource,
    UpdateRouter,
    iter_update_batches,
    open_update_source,
)
from repro.graphs.updates import (
    EdgeDelete,
    EdgeInsert,
    WeightChange,
    save_update_stream,
    save_update_stream_segments,
)
from repro.mpc.partition import range_partition

UPDATES = [
    EdgeInsert(0, 1),
    WeightChange(2, 5.0),
    EdgeDelete(1, 3),
    EdgeInsert(3, 2),
    EdgeDelete(0, 1),
]


class TestSources:
    def test_memory_source(self):
        src = MemorySource(UPDATES)
        assert src.count() == 5
        assert list(src) == UPDATES
        assert src.collect() == UPDATES

    def test_file_source_plain_and_gz(self, tmp_path):
        plain = tmp_path / "u.jsonl"
        gz = tmp_path / "u.jsonl.gz"
        save_update_stream(UPDATES, plain)
        save_update_stream(UPDATES, gz)
        assert list(FileSource(plain)) == UPDATES
        assert list(FileSource(gz)) == UPDATES

    def test_directory_source_reads_segments_in_order(self, tmp_path):
        paths = save_update_stream_segments(UPDATES, tmp_path, segment_size=2)
        assert [os.path.basename(p) for p in paths] == [
            "part-00000.jsonl",
            "part-00001.jsonl",
            "part-00002.jsonl",
        ]
        assert list(DirectorySource(tmp_path)) == UPDATES

    def test_directory_source_gz_segments(self, tmp_path):
        save_update_stream_segments(
            UPDATES, tmp_path, segment_size=3, compress=True
        )
        assert list(DirectorySource(tmp_path)) == UPDATES

    def test_directory_source_sorts_segments_numerically(self, tmp_path):
        """Unpadded (or padding-overflowed) segment numbers must replay in
        numeric order, not lexicographic (part-10 after part-2)."""
        save_update_stream(UPDATES[:2], tmp_path / "part-2.jsonl")
        save_update_stream(UPDATES[2:], tmp_path / "part-10.jsonl")
        assert list(DirectorySource(tmp_path)) == UPDATES

    def test_directory_with_no_matching_segments_raises(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        with pytest.raises(ValueError, match="no segments"):
            list(DirectorySource(tmp_path))

    def test_empty_directory_is_empty_stream(self, tmp_path):
        assert list(DirectorySource(tmp_path)) == []

    def test_open_update_source_coercions(self, tmp_path):
        path = tmp_path / "u.jsonl"
        save_update_stream(UPDATES, path)
        assert isinstance(open_update_source(UPDATES), MemorySource)
        assert isinstance(open_update_source(str(path)), FileSource)
        assert isinstance(open_update_source(tmp_path), DirectorySource)
        assert isinstance(open_update_source(iter(UPDATES)), IterableSource)
        src = MemorySource(UPDATES)
        assert open_update_source(src) is src
        with pytest.raises(TypeError):
            open_update_source(42)

    def test_iter_update_batches(self):
        batches = list(iter_update_batches(UPDATES, 2))
        assert [len(b) for b in batches] == [2, 2, 1]
        assert [u for b in batches for u in b] == UPDATES
        with pytest.raises(ValueError):
            list(iter_update_batches(UPDATES, 0))


class TestRouter:
    def setup_method(self):
        # 6 vertices, shard 0 owns {0,1,2}, shard 1 owns {3,4,5}.
        self.router = UpdateRouter(range_partition(6, 2), 2)

    def test_internal_edge_goes_to_one_shard(self):
        routed = self.router.route([EdgeInsert(0, 2)])
        assert routed.slices[0] == [(0, "i", 0, 2)]
        assert routed.slices[1] == []

    def test_cut_edge_goes_to_both_owners(self):
        routed = self.router.route([EdgeDelete(4, 1)])
        # endpoints canonicalized to (1, 4)
        assert routed.slices[0] == [(0, "d", 1, 4)]
        assert routed.slices[1] == [(0, "d", 1, 4)]

    def test_reweight_broadcast_to_all_shards(self):
        routed = self.router.route([WeightChange(5, 2.5)])
        assert routed.slices[0] == [(0, "w", 5, 2.5)]
        assert routed.slices[1] == [(0, "w", 5, 2.5)]

    def test_slices_preserve_stream_order_with_global_seq(self):
        routed = self.router.route(
            [EdgeInsert(0, 1), EdgeInsert(3, 4), EdgeInsert(2, 5)],
            base_seq=10,
        )
        assert routed.slices[0] == [(10, "i", 0, 1), (12, "i", 2, 5)]
        assert routed.slices[1] == [(11, "i", 3, 4), (12, "i", 2, 5)]
        assert routed.num_events == 3

    def test_out_of_range_endpoints_raise(self):
        with pytest.raises(ValueError, match="out of range"):
            self.router.route([EdgeInsert(0, 6)])
        with pytest.raises(ValueError, match="out of range"):
            self.router.route([WeightChange(-1, 1.0)])

    def test_owner_and_home(self):
        assert self.router.owner(2) == 0
        assert self.router.owner(3) == 1
        assert self.router.home(4, 1) == 0  # min endpoint 1 is shard 0's

    def test_bad_assignment_rejected(self):
        with pytest.raises(ValueError):
            UpdateRouter(np.array([0, 5]), 2)
        with pytest.raises(ValueError):
            UpdateRouter(np.array([0, 1]), 0)
