"""Tests for the drift-bounded re-solve policy."""

import pytest

from repro.dynamic import ResolvePolicy


class TestValidation:
    def test_negative_drift_rejected(self):
        with pytest.raises(ValueError, match="max_drift"):
            ResolvePolicy(max_drift=-0.1)

    def test_bad_ceiling_rejected(self):
        with pytest.raises(ValueError, match="ratio_ceiling"):
            ResolvePolicy(ratio_ceiling=1.0)

    def test_bad_cooldown_rejected(self):
        with pytest.raises(ValueError, match="min_batches_between"):
            ResolvePolicy(min_batches_between=-1)

    def test_max_below_min_rejected(self):
        with pytest.raises(ValueError, match="max_batches_between"):
            ResolvePolicy(min_batches_between=5, max_batches_between=3)


class TestDecisions:
    def test_no_baseline_always_resolves(self):
        d = ResolvePolicy().should_resolve(
            certified_ratio=2.0, base_ratio=None, batches_since_resolve=0
        )
        assert d and "no adopted solution" in d.reason

    def test_within_budget_holds(self):
        d = ResolvePolicy(max_drift=0.25).should_resolve(
            certified_ratio=2.2, base_ratio=2.0, batches_since_resolve=3
        )
        assert not d

    def test_drift_bound_trips(self):
        d = ResolvePolicy(max_drift=0.25).should_resolve(
            certified_ratio=2.6, base_ratio=2.0, batches_since_resolve=3
        )
        assert d and "drift bound" in d.reason

    def test_ceiling_trips_before_drift(self):
        d = ResolvePolicy(max_drift=10.0, ratio_ceiling=2.5).should_resolve(
            certified_ratio=2.6, base_ratio=2.0, batches_since_resolve=3
        )
        assert d and "ceiling" in d.reason

    def test_cooldown_suppresses_drift(self):
        d = ResolvePolicy(max_drift=0.1, min_batches_between=5).should_resolve(
            certified_ratio=9.9, base_ratio=2.0, batches_since_resolve=2
        )
        assert not d and "cooldown" in d.reason

    def test_unbounded_overrides_cooldown(self):
        d = ResolvePolicy(min_batches_between=100).should_resolve(
            certified_ratio=float("inf"), base_ratio=2.0, batches_since_resolve=1
        )
        assert d and "unbounded" in d.reason

    def test_unbounded_can_be_disabled(self):
        d = ResolvePolicy(min_batches_between=100, resolve_unbounded=False).should_resolve(
            certified_ratio=float("inf"), base_ratio=2.0, batches_since_resolve=1
        )
        assert not d

    def test_periodic_refresh(self):
        policy = ResolvePolicy(max_drift=100.0, max_batches_between=4)
        assert not policy.should_resolve(
            certified_ratio=2.0, base_ratio=2.0, batches_since_resolve=3
        )
        d = policy.should_resolve(
            certified_ratio=2.0, base_ratio=2.0, batches_since_resolve=4
        )
        assert d and "periodic refresh" in d.reason

    def test_every_batch(self):
        d = ResolvePolicy(every_batch=True).should_resolve(
            certified_ratio=1.0, base_ratio=1.0, batches_since_resolve=1
        )
        assert d and "every-batch" in d.reason

    def test_decision_is_truthy_wrapper(self):
        assert bool(
            ResolvePolicy(every_batch=True).should_resolve(
                certified_ratio=1.0, base_ratio=1.0, batches_since_resolve=1
            )
        )
