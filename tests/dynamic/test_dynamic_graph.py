"""Tests for the delta-log graph wrapper."""

import numpy as np
import pytest

from repro.dynamic.dynamic_graph import DynamicGraph
from repro.dynamic.updates import EdgeDelete, EdgeInsert, WeightChange
from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


@pytest.fixture
def dyn_path4():
    """Path 0-1-2-3 wrapped in a DynamicGraph."""
    return DynamicGraph(WeightedGraph.from_edge_list(4, [(0, 1), (1, 2), (2, 3)]))


class TestApply:
    def test_insert_new_edge(self, dyn_path4):
        assert dyn_path4.apply(EdgeInsert(0, 3))
        assert dyn_path4.has_edge(0, 3)
        assert dyn_path4.m == 4

    def test_insert_existing_is_noop(self, dyn_path4):
        assert not dyn_path4.apply(EdgeInsert(0, 1))
        assert not dyn_path4.apply(EdgeInsert(1, 0))  # orientation-free
        assert dyn_path4.m == 3

    def test_delete_existing(self, dyn_path4):
        assert dyn_path4.apply(EdgeDelete(1, 2))
        assert not dyn_path4.has_edge(1, 2)
        assert dyn_path4.m == 2

    def test_delete_absent_is_noop(self, dyn_path4):
        assert not dyn_path4.apply(EdgeDelete(0, 3))
        assert dyn_path4.m == 3

    def test_reinsert_deleted_base_edge(self, dyn_path4):
        dyn_path4.apply(EdgeDelete(0, 1))
        assert dyn_path4.apply(EdgeInsert(0, 1))
        assert dyn_path4.has_edge(0, 1)
        assert dyn_path4.m == 3
        assert dyn_path4.delta_size == 0  # cancelled out

    def test_delete_freshly_added_edge(self, dyn_path4):
        dyn_path4.apply(EdgeInsert(0, 2))
        assert dyn_path4.apply(EdgeDelete(0, 2))
        assert dyn_path4.delta_size == 0

    def test_reweight(self, dyn_path4):
        assert dyn_path4.apply(WeightChange(1, 4.0))
        assert dyn_path4.weights[1] == 4.0

    def test_reweight_same_value_is_noop(self, dyn_path4):
        assert not dyn_path4.apply(WeightChange(1, 1.0))

    def test_self_loop_rejected(self, dyn_path4):
        with pytest.raises(ValueError, match="self-loop"):
            dyn_path4.apply(EdgeInsert(2, 2))

    def test_out_of_range_rejected(self, dyn_path4):
        with pytest.raises(ValueError, match="out of range"):
            dyn_path4.apply(EdgeInsert(0, 9))

    def test_bad_weight_rejected(self, dyn_path4):
        with pytest.raises(ValueError, match="> 0"):
            dyn_path4.apply(WeightChange(0, -1.0))

    def test_generation_counts_effective_updates(self, dyn_path4):
        g0 = dyn_path4.generation
        dyn_path4.apply(EdgeInsert(0, 1))  # no-op
        assert dyn_path4.generation == g0
        dyn_path4.apply(EdgeInsert(0, 2))
        assert dyn_path4.generation == g0 + 1


class TestQueries:
    def test_neighbors_reflect_delta(self, dyn_path4):
        dyn_path4.apply(EdgeDelete(1, 2))
        dyn_path4.apply(EdgeInsert(1, 3))
        assert set(dyn_path4.neighbors(1).tolist()) == {0, 3}

    def test_neighbors_is_a_flat_int_array(self, dyn_path4):
        neigh = dyn_path4.neighbors(1)
        assert isinstance(neigh, np.ndarray)
        assert neigh.dtype == np.int64
        assert set(neigh.tolist()) == {0, 2}

    def test_degree_reflects_delta(self, dyn_path4):
        assert dyn_path4.degree(1) == 2
        dyn_path4.apply(EdgeInsert(1, 3))
        assert dyn_path4.degree(1) == 3
        dyn_path4.apply(EdgeDelete(0, 1))
        assert dyn_path4.degree(1) == 2

    def test_degrees_of_matches_degree(self, dyn_path4):
        dyn_path4.apply(EdgeInsert(0, 3))
        ids = np.arange(4)
        expect = [dyn_path4.degree(v) for v in range(4)]
        assert dyn_path4.degrees_of(ids).tolist() == expect

    def test_has_edges_matches_has_edge(self, dyn_path4):
        dyn_path4.apply(EdgeDelete(1, 2))
        dyn_path4.apply(EdgeInsert(0, 3))
        pairs = [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]
        arr = np.asarray(pairs, dtype=np.int64)
        got = dyn_path4.has_edges(arr[:, 0], arr[:, 1])
        assert got.tolist() == [dyn_path4.has_edge(u, v) for u, v in pairs]

    def test_neighbors_match_materialized(self):
        base = gnp_average_degree(60, 5.0, seed=0)
        dyn = DynamicGraph(base)
        rng = np.random.default_rng(1)
        for _ in range(120):
            u, v = rng.integers(0, 60, size=2)
            if u == v:
                continue
            if rng.random() < 0.5:
                dyn.apply(EdgeInsert(int(u), int(v)))
            else:
                dyn.apply(EdgeDelete(int(u), int(v)))
        mat = dyn.materialize()
        for v in range(60):
            assert set(dyn.neighbors(v).tolist()) == set(
                int(x) for x in mat.neighbors(v)
            )
            assert dyn.degree(v) == int(mat.degrees[v])
        eu, ev = mat.edges_u, mat.edges_v
        assert dyn.has_edges(eu, ev).all()
        assert dyn.degrees_of(np.arange(60)).tolist() == mat.degrees.tolist()


class TestMaterializeCompact:
    def test_materialize_empty_delta_is_base(self, dyn_path4):
        assert dyn_path4.materialize() is dyn_path4.base

    def test_materialize_is_memoized(self, dyn_path4):
        dyn_path4.apply(EdgeInsert(0, 3))
        assert dyn_path4.materialize() is dyn_path4.materialize()

    def test_materialize_reflects_all_update_kinds(self, dyn_path4):
        dyn_path4.apply(EdgeInsert(0, 2))
        dyn_path4.apply(EdgeDelete(2, 3))
        dyn_path4.apply(WeightChange(3, 9.0))
        mat = dyn_path4.materialize()
        expect = WeightedGraph.from_edge_list(
            4, [(0, 1), (1, 2), (0, 2)], np.array([1.0, 1.0, 1.0, 9.0])
        )
        assert mat == expect

    def test_compact_folds_delta(self, dyn_path4):
        dyn_path4.apply(EdgeInsert(0, 2))
        dyn_path4.apply(EdgeDelete(2, 3))
        before = dyn_path4.materialize()
        snapshot = dyn_path4.compact()
        assert dyn_path4.delta_size == 0
        assert snapshot == before
        assert dyn_path4.base is snapshot
        assert dyn_path4.compactions == 1

    def test_compact_without_changes_is_noop(self, dyn_path4):
        dyn_path4.compact()
        assert dyn_path4.compactions == 0

    def test_queries_survive_compaction(self, dyn_path4):
        dyn_path4.apply(EdgeInsert(0, 3))
        dyn_path4.compact()
        assert dyn_path4.has_edge(0, 3)
        assert dyn_path4.apply(EdgeDelete(0, 3))
        assert not dyn_path4.has_edge(0, 3)

    def test_maybe_compact_threshold(self):
        base = gnp_average_degree(100, 6.0, seed=2)
        dyn = DynamicGraph(base, min_compact=4, compact_fraction=0.01)
        rng = np.random.default_rng(3)
        compacted = False
        for _ in range(30):
            u, v = rng.integers(0, 100, size=2)
            if u != v:
                dyn.apply(EdgeInsert(int(u), int(v)))
            compacted |= dyn.maybe_compact()
        assert compacted
        assert dyn.compactions >= 1
        assert dyn.delta_size <= 5

    def test_equivalence_with_scratch_rebuild(self):
        """A long random update run matches building the graph from scratch."""
        base = gnp_average_degree(80, 5.0, seed=4).with_weights(
            uniform_weights(80, 1.0, 5.0, seed=5)
        )
        dyn = DynamicGraph(base, min_compact=8, compact_fraction=0.05)
        edges = {(int(u), int(v)) for u, v in zip(base.edges_u, base.edges_v)}
        weights = np.array(base.weights)
        rng = np.random.default_rng(6)
        for _ in range(400):
            r = rng.random()
            u, v = sorted(int(x) for x in rng.integers(0, 80, size=2))
            if r < 0.4 and u != v:
                dyn.apply(EdgeInsert(u, v))
                edges.add((u, v))
            elif r < 0.8 and u != v:
                dyn.apply(EdgeDelete(u, v))
                edges.discard((u, v))
            else:
                w = float(rng.uniform(0.5, 9.0))
                dyn.apply(WeightChange(u, w))
                weights[u] = w
            dyn.maybe_compact()
        expect = WeightedGraph.from_edge_list(80, sorted(edges), weights)
        assert dyn.materialize() == expect
        assert dyn.compactions >= 1
