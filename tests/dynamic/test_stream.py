"""End-to-end stream tests, including the randomized 500-update run."""

import numpy as np
import pytest

from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.dynamic import (
    DynamicGraph,
    EdgeDelete,
    EdgeInsert,
    IncrementalCoverMaintainer,
    ResolvePolicy,
    WeightChange,
    run_stream,
)
from repro.graphs.generators import gnp_average_degree
from repro.graphs.weights import uniform_weights
from repro.service.batch import BatchSolver

EPS = 0.1


def _workload(n=250, seed=1):
    g = gnp_average_degree(n, 8.0, seed=seed)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=seed + 1))


def _mixed_updates(n, count, seed):
    rng = np.random.default_rng(seed)
    out = []
    while len(out) < count:
        r = rng.random()
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if r < 0.35 and u != v:
            out.append(EdgeInsert(u, v))
        elif r < 0.7 and u != v:
            out.append(EdgeDelete(u, v))
        elif r >= 0.7:
            out.append(WeightChange(u, float(rng.uniform(0.5, 15.0))))
    return out


class TestRandomizedStream:
    """The acceptance run: ≥500 mixed updates, validity at every step."""

    def test_validity_every_step_and_resolve_restores_ratio(self):
        graph = _workload()
        updates = _mixed_updates(graph.n, 500, seed=5)
        assert len(updates) >= 500
        kinds = {type(u) for u in updates}
        assert kinds == {EdgeInsert, EdgeDelete, WeightChange}

        dyn = DynamicGraph(graph)
        maintainer = IncrementalCoverMaintainer(dyn)
        maintainer.adopt(minimum_weight_vertex_cover(graph, eps=EPS, seed=2))
        policy = ResolvePolicy(max_drift=0.15)
        resolves = 0
        for step, upd in enumerate(updates):
            report = maintainer.apply_batch([upd])
            # Validity after *every* update, checked exactly against the
            # materialized graph.
            assert maintainer.verify(), f"invalid cover after update {step}"
            decision = policy.should_resolve(
                certified_ratio=report.certificate.certified_ratio,
                base_ratio=maintainer.base_ratio,
                batches_since_resolve=1,
            )
            if decision:
                res = minimum_weight_vertex_cover(
                    dyn.compact(), eps=EPS, seed=2
                )
                cert = maintainer.adopt(res)
                resolves += 1
                # A triggered re-solve restores a (2+ε)-grade certificate.
                assert cert.certified_ratio <= 2.0 + EPS, (
                    f"re-solve at step {step} left ratio {cert.certified_ratio}"
                )
                assert maintainer.verify()
        # The churn above is drastic enough that at least one re-solve fires.
        assert resolves >= 1
        assert maintainer.certified_ratio() <= (2.0 + EPS) * (1.0 + policy.max_drift)

    def test_run_stream_drift_policy(self):
        graph = _workload(seed=3)
        updates = _mixed_updates(graph.n, 500, seed=7)
        summary = run_stream(
            graph,
            updates,
            batch_size=25,
            policy=ResolvePolicy(max_drift=0.15),
            eps=EPS,
            seed=4,
            verify_every=1,
        )
        assert summary.final_is_cover
        assert summary.num_batches == 20
        assert summary.num_updates == 500
        # Strictly fewer re-solves than the every-batch baseline would use.
        assert summary.num_resolves < summary.num_batches + 1
        for record in summary.records:
            if record.resolved:
                assert record.certified_ratio_after <= 2.0 + EPS
        # The exposed cover is never worse-certified than the policy bound
        # plus one batch of damage; after the final batch it is within it.
        assert summary.final_certified_ratio <= (2.0 + EPS) * 1.15 + 1e-9


class TestRunStream:
    def test_every_batch_policy_resolves_each_batch(self):
        graph = _workload(n=120, seed=9)
        updates = _mixed_updates(graph.n, 60, seed=11)
        summary = run_stream(
            graph,
            updates,
            batch_size=20,
            policy=ResolvePolicy(every_batch=True),
            eps=EPS,
            seed=5,
        )
        assert summary.num_batches == 3
        assert summary.num_resolves == 4  # initial + one per batch
        assert all(r.resolved for r in summary.records)

    def test_replay_hits_result_cache(self):
        graph = _workload(n=120, seed=9)
        updates = _mixed_updates(graph.n, 60, seed=11)
        with BatchSolver(use_processes=False, cache=64) as solver:
            first = run_stream(
                graph, updates, batch_size=20, solver=solver,
                policy=ResolvePolicy(every_batch=True), eps=EPS, seed=5,
            )
            second = run_stream(
                graph, updates, batch_size=20, solver=solver,
                policy=ResolvePolicy(every_batch=True), eps=EPS, seed=5,
            )
        assert first.num_resolve_cache_hits == 0
        # The replay revisits identical graph states with identical solve
        # parameters — every re-solve is answered from the cache.
        assert second.num_resolve_cache_hits == second.num_resolves
        assert second.final_cover_weight == pytest.approx(first.final_cover_weight)

    def test_record_summaries_are_json_friendly(self):
        import json

        graph = _workload(n=100, seed=13)
        updates = _mixed_updates(graph.n, 40, seed=13)
        summary = run_stream(graph, updates, batch_size=10, eps=EPS, seed=6)
        json.dumps(summary.summary())
        for record in summary.records:
            json.dumps(record.summary())

    def test_edgeless_initial_graph(self):
        from repro.graphs.graph import WeightedGraph

        graph = WeightedGraph.empty(10)
        updates = [EdgeInsert(0, 1), EdgeInsert(2, 3), EdgeDelete(0, 1)]
        summary = run_stream(graph, updates, batch_size=2, eps=EPS, seed=7)
        assert summary.final_is_cover
        # No initial solve on an edgeless graph; repairs bootstrap covers.
        assert summary.num_resolves <= 1

    def test_bad_batch_size(self):
        graph = _workload(n=50, seed=15)
        with pytest.raises(ValueError, match="batch_size"):
            run_stream(graph, [], batch_size=0)
