"""Differential equivalence of the sharded pipeline vs the monolithic engine.

The contract under test: for *any* update stream, shard count, and
partition scheme, ``run_sharded_stream`` produces bit-identical covers,
duals, certificates, and per-batch reports to ``run_stream`` — not merely
statistically similar ones.  ``--shards 1`` is the degenerate case the
acceptance criteria call out explicitly.
"""

import numpy as np
import pytest

from repro.dynamic.policy import ResolvePolicy
from repro.dynamic.sharded import run_sharded_stream
from repro.dynamic.stream import run_stream
from repro.graphs.generators import gnp_average_degree
from repro.graphs.graph import WeightedGraph
from repro.graphs.streams import CHURN_MODELS, make_update_stream
from repro.graphs.updates import EdgeDelete, EdgeInsert, WeightChange
from repro.graphs.weights import uniform_weights

EPS = 0.1
SEED = 4


def _workload(n=160, degree=6.0, seed=11):
    g = gnp_average_degree(n, degree, seed=seed)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=seed + 1))


def _assert_equivalent(reference, sharded):
    """Bit-exact equality of everything observable."""
    assert np.array_equal(reference.final_cover, sharded.final_cover)
    assert reference.final_cover_weight == sharded.final_cover_weight
    assert reference.final_dual_value == sharded.final_dual_value
    assert reference.final_certified_ratio == sharded.final_certified_ratio
    assert sharded.final_is_cover
    assert reference.num_batches == sharded.num_batches
    assert reference.num_resolves == sharded.num_resolves
    for ref_rec, got_rec in zip(reference.records, sharded.records):
        assert ref_rec.report.to_dict() == got_rec.report.to_dict()
        assert ref_rec.resolved == got_rec.resolved
        assert ref_rec.resolve_reason == got_rec.resolve_reason


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("churn", CHURN_MODELS)
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_every_churn_model_every_shard_count(self, churn, num_shards):
        graph = _workload()
        updates = make_update_stream(churn, graph, 500, seed=21)
        reference = run_stream(graph, updates, batch_size=50, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph,
            updates,
            num_shards=num_shards,
            batch_size=50,
            eps=EPS,
            seed=SEED,
            use_processes=False,
        )
        _assert_equivalent(reference, sharded)
        # Acceptance criterion: valid duality certificate.
        assert (
            sharded.records[-1].report.certificate.opt_lower_bound
            <= sharded.final_cover_weight + 1e-9
        )

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_partition_schemes(self, partition):
        graph = _workload(n=120, seed=31)
        updates = make_update_stream("uniform", graph, 300, seed=32)
        reference = run_stream(graph, updates, batch_size=30, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph,
            updates,
            num_shards=3,
            partition=partition,
            batch_size=30,
            eps=EPS,
            seed=SEED,
            use_processes=False,
        )
        _assert_equivalent(reference, sharded)

    def test_with_resolves_and_warm_cache(self):
        """Every-batch re-solves route through the shared service path."""
        graph = _workload(n=100, seed=41)
        updates = make_update_stream("sliding_window", graph, 200, seed=42)
        policy = ResolvePolicy(every_batch=True)
        reference = run_stream(
            graph, updates, batch_size=25, policy=policy, eps=EPS, seed=SEED
        )
        sharded = run_sharded_stream(
            graph,
            updates,
            num_shards=2,
            batch_size=25,
            policy=policy,
            eps=EPS,
            seed=SEED,
            use_processes=False,
        )
        _assert_equivalent(reference, sharded)
        assert sharded.num_resolves == reference.num_resolves

    def test_process_mode_matches_inline(self):
        """One process per shard computes the same covers as inline mode."""
        graph = _workload(n=80, seed=51)
        updates = make_update_stream("hub", graph, 150, seed=52)
        inline = run_sharded_stream(
            graph, updates, num_shards=2, batch_size=30,
            eps=EPS, seed=SEED, use_processes=False,
        )
        pooled = run_sharded_stream(
            graph, updates, num_shards=2, batch_size=30,
            eps=EPS, seed=SEED, use_processes=True,
        )
        _assert_equivalent(inline, pooled)

    def test_more_shards_than_vertices(self):
        graph = WeightedGraph(3, [0, 1], [1, 2], [1.0, 2.0, 3.0])
        updates = [EdgeInsert(0, 2), EdgeDelete(0, 1), WeightChange(1, 0.5)]
        reference = run_stream(graph, updates, batch_size=2, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph, updates, num_shards=8, batch_size=2,
            eps=EPS, seed=SEED, use_processes=False,
        )
        _assert_equivalent(reference, sharded)


class TestEdgeCases:
    def test_edgeless_graph(self):
        graph = WeightedGraph(5, [], [], np.ones(5))
        updates = [EdgeInsert(0, 1), EdgeInsert(2, 3), EdgeDelete(0, 1)]
        reference = run_stream(graph, updates, batch_size=2, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph, updates, num_shards=2, batch_size=2,
            eps=EPS, seed=SEED, use_processes=False,
        )
        _assert_equivalent(reference, sharded)

    def test_empty_update_stream(self):
        graph = _workload(n=40, seed=61)
        reference = run_stream(graph, [], batch_size=4, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph, [], num_shards=2, batch_size=4,
            eps=EPS, seed=SEED, use_processes=False,
        )
        assert np.array_equal(reference.final_cover, sharded.final_cover)
        assert sharded.num_batches == 0

    def test_duplicate_and_noop_events_in_one_batch(self):
        """Insert/delete/insert of one edge within a batch, plus no-ops."""
        graph = WeightedGraph(4, [0, 1], [1, 2], [1.0, 5.0, 1.0, 2.0])
        updates = [
            EdgeInsert(2, 3),
            EdgeDelete(2, 3),
            EdgeInsert(2, 3),
            EdgeInsert(0, 1),  # no-op: already present
            EdgeDelete(0, 3),  # no-op: absent
            WeightChange(1, 5.0),  # no-op: unchanged value
        ]
        reference = run_stream(graph, updates, batch_size=6, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph, updates, num_shards=2, partition="range", batch_size=6,
            eps=EPS, seed=SEED, use_processes=False,
        )
        _assert_equivalent(reference, sharded)
        report = sharded.records[0].report
        assert report.applied == 3  # insert, delete, re-insert; rest no-op
        assert report.inserts == 2 and report.deletes == 1

    def test_self_loop_insert_raises(self):
        graph = _workload(n=20, seed=71)
        with pytest.raises(ValueError, match="self-loop"):
            run_sharded_stream(
                graph, [EdgeInsert(3, 3)], num_shards=2, batch_size=1,
                eps=EPS, seed=SEED, use_processes=False,
            )

    def test_invalid_weight_raises(self):
        graph = _workload(n=20, seed=72)
        with pytest.raises(ValueError, match="finite and > 0"):
            run_sharded_stream(
                graph, [WeightChange(0, -1.0)], num_shards=2, batch_size=1,
                eps=EPS, seed=SEED, use_processes=False,
            )

    def test_out_of_range_vertex_raises(self):
        graph = _workload(n=20, seed=73)
        with pytest.raises(ValueError, match="out of range"):
            run_sharded_stream(
                graph, [EdgeInsert(0, 99)], num_shards=2, batch_size=1,
                eps=EPS, seed=SEED, use_processes=False,
            )

    def test_shards_must_be_positive(self):
        graph = _workload(n=20, seed=74)
        with pytest.raises(ValueError, match="num_shards"):
            run_sharded_stream(
                graph, [], num_shards=0, batch_size=1,
                eps=EPS, seed=SEED, use_processes=False,
            )

    def test_directory_source_accepted(self, tmp_path):
        from repro.graphs.updates import save_update_stream_segments

        graph = _workload(n=60, seed=75)
        updates = make_update_stream("uniform", graph, 120, seed=76)
        save_update_stream_segments(updates, tmp_path, segment_size=50)
        reference = run_stream(graph, updates, batch_size=40, eps=EPS, seed=SEED)
        sharded = run_sharded_stream(
            graph, tmp_path, num_shards=2, batch_size=40,
            eps=EPS, seed=SEED, use_processes=False,
        )
        _assert_equivalent(reference, sharded)

    def test_timing_split_reported(self):
        graph = _workload(n=60, seed=77)
        updates = make_update_stream("uniform", graph, 100, seed=78)
        summary = run_sharded_stream(
            graph, updates, num_shards=2, batch_size=25,
            eps=EPS, seed=SEED, use_processes=False,
        )
        row = summary.summary()
        assert {"ingest_s", "repair_s", "resolve_s"} <= set(row)
        assert row["repair_s"] >= 0.0 and row["resolve_s"] > 0.0
