"""Unit tests for the array-backed :class:`DualStore`."""

import numpy as np
import pytest

from repro.dynamic.duals import DualStore, decode_edge_codes, encode_edge_codes


class TestMappingProtocol:
    def test_tuple_keyed_get_set_pop(self):
        store = DualStore()
        store[(1, 5)] = 0.5
        assert (1, 5) in store
        assert store[(1, 5)] == 0.5
        assert store.get((1, 5)) == 0.5
        assert store.get((0, 2)) == 0.0
        assert store.pop((1, 5)) == 0.5
        assert (1, 5) not in store
        assert store.pop((1, 5), 0.0) == 0.0

    def test_missing_key_raises_with_tuple(self):
        store = DualStore()
        with pytest.raises(KeyError):
            store[(3, 4)]
        with pytest.raises(KeyError):
            del store[(3, 4)]

    def test_iteration_yields_tuples(self):
        pairs = {(0, 1): 1.0, (2, 7): 0.25}
        store = DualStore(pairs)
        assert dict(store.items()) == pairs
        assert set(store) == set(pairs)
        assert len(store) == 2

    def test_add_pay_accumulates(self):
        store = DualStore()
        store.add_pay(2, 9, 0.5)
        store.add_pay(2, 9, 0.25)
        assert store[(2, 9)] == 0.75

    def test_equality_with_dict_and_store(self):
        pairs = {(0, 3): 2.0}
        assert DualStore(pairs) == pairs
        assert DualStore(pairs) == DualStore(pairs)
        assert DualStore(pairs) != {(0, 3): 2.5}

    def test_copy_is_independent(self):
        store = DualStore({(1, 2): 1.0})
        clone = store.copy()
        clone[(1, 2)] = 9.0
        assert store[(1, 2)] == 1.0


class TestArrayIO:
    def test_to_arrays_sorted_canonical(self):
        store = DualStore({(5, 9): 3.0, (0, 1): 1.0, (0, 7): 2.0})
        keys, vals = store.to_arrays()
        assert [tuple(k) for k in keys.tolist()] == [(0, 1), (0, 7), (5, 9)]
        assert vals.tolist() == [1.0, 2.0, 3.0]

    def test_empty_store_arrays(self):
        keys, vals = DualStore().to_arrays()
        assert keys.shape == (0, 2) and vals.shape == (0,)
        codes, cvals = DualStore().sorted_codes()
        assert codes.size == 0 and cvals.size == 0

    def test_round_trip_from_arrays(self):
        store = DualStore({(3, 11): 0.5, (2, 4): 1.5})
        again = DualStore.from_arrays(*store.to_arrays())
        assert again == store

    def test_encode_decode_inverse(self):
        u = np.array([0, 17, 2**31 - 2], dtype=np.int64)
        v = np.array([1, 99, 2**31 - 1], dtype=np.int64)
        du, dv = decode_edge_codes(encode_edge_codes(u, v))
        assert du.tolist() == u.tolist()
        assert dv.tolist() == v.tolist()

    def test_code_order_equals_lexicographic_key_order(self):
        pairs = [(0, 5), (0, 2), (3, 4), (1, 100), (1, 2)]
        codes = encode_edge_codes(
            np.array([p[0] for p in pairs]), np.array([p[1] for p in pairs])
        )
        by_code = [pairs[i] for i in np.argsort(codes)]
        assert by_code == sorted(pairs)

    def test_total(self):
        assert DualStore({(0, 1): 1.5, (2, 3): 0.5}).total() == 2.0
