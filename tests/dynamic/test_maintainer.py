"""Tests for incremental cover maintenance."""

import numpy as np
import pytest

from repro.baselines.exact import exact_mwvc
from repro.core.mpc_mwvc import minimum_weight_vertex_cover
from repro.dynamic import (
    DynamicGraph,
    EdgeDelete,
    EdgeInsert,
    IncrementalCoverMaintainer,
    WeightChange,
)
from repro.graphs.generators import gnp_average_degree, star
from repro.graphs.graph import WeightedGraph
from repro.graphs.weights import uniform_weights


def _solved_maintainer(graph, *, eps=0.1, seed=3):
    dyn = DynamicGraph(graph)
    maintainer = IncrementalCoverMaintainer(dyn)
    maintainer.adopt(minimum_weight_vertex_cover(graph, eps=eps, seed=seed))
    return maintainer


@pytest.fixture
def medium():
    g = gnp_average_degree(300, 8.0, seed=1)
    return g.with_weights(uniform_weights(g.n, 1.0, 10.0, seed=2))


class TestAdopt:
    def test_adopt_sets_baseline(self, medium):
        m = _solved_maintainer(medium)
        assert m.verify()
        assert m.base_ratio is not None and np.isfinite(m.base_ratio)
        assert m.drift() == pytest.approx(0.0)

    def test_adopt_prunes_by_default(self, medium):
        res = minimum_weight_vertex_cover(medium, eps=0.1, seed=3)
        dyn = DynamicGraph(medium)
        m = IncrementalCoverMaintainer(dyn)
        m.adopt(res)
        assert m.cover_weight <= res.cover_weight + 1e-9

    def test_adopt_without_prune_keeps_cover(self, medium):
        res = minimum_weight_vertex_cover(medium, eps=0.1, seed=3)
        dyn = DynamicGraph(medium)
        m = IncrementalCoverMaintainer(dyn)
        m.adopt(res, prune=False)
        assert (m.cover == res.in_cover).all()

    def test_adopt_rejects_non_cover(self, medium):
        res = minimum_weight_vertex_cover(medium, eps=0.1, seed=3)
        dyn = DynamicGraph(medium)
        dyn.apply(EdgeDelete(int(medium.edges_u[0]), int(medium.edges_v[0])))
        m = IncrementalCoverMaintainer(dyn)
        import dataclasses

        bad = res.in_cover.copy()
        bad[:] = False
        broken = dataclasses.replace(res, in_cover=bad)
        with pytest.raises(ValueError, match="not a vertex cover"):
            m.adopt(broken)

    def test_certificate_matches_solver(self, medium):
        res = minimum_weight_vertex_cover(medium, eps=0.1, seed=3)
        dyn = DynamicGraph(medium)
        m = IncrementalCoverMaintainer(dyn)
        cert = m.adopt(res, prune=False)
        assert cert.dual_value == pytest.approx(res.dual_value)
        assert cert.cover_weight == pytest.approx(res.cover_weight)
        # The maintainer's lower bound is at least as tight as the solver's.
        assert cert.opt_lower_bound >= res.certificate.opt_lower_bound - 1e-9
        assert cert.certified_ratio <= res.certificate.certified_ratio + 1e-9


class TestRepair:
    def test_insert_between_uncovered_repairs(self):
        g = WeightedGraph.from_edge_list(4, [(0, 1)], np.array([1.0, 5.0, 2.0, 3.0]))
        m = _solved_maintainer(g)
        report = m.apply_batch([EdgeInsert(2, 3)])
        assert report.repaired_edges == 1
        assert m.verify()
        # The pricing rule takes the smaller-residual endpoint (vertex 2).
        assert m.cover[2] and not m.cover[3]
        assert m.dual_value >= 2.0 - 1e-12

    def test_insert_into_covered_needs_no_repair(self, medium):
        m = _solved_maintainer(medium)
        ids = np.nonzero(m.cover)[0]
        # An edge touching a covered vertex is already covered.
        other = 0 if not m.cover[0] else int(np.nonzero(~m.cover)[0][0])
        report = m.apply_batch([EdgeInsert(int(ids[0]), other)])
        assert report.repaired_edges == 0
        assert m.verify()

    def test_delete_retires_dual(self, medium):
        m = _solved_maintainer(medium)
        duals = m.edge_duals()
        key = max(duals, key=duals.get)
        before = m.dual_value
        report = m.apply_batch([EdgeDelete(*key)])
        assert report.retired_dual == pytest.approx(duals[key])
        assert m.dual_value == pytest.approx(before - duals[key])
        assert m.verify()

    def test_delete_prunes_stranded_vertex(self):
        g = star(5)  # hub 0, leaves 1..4; cover = {0}
        m = _solved_maintainer(g)
        assert m.cover[0]
        reports = [m.apply_batch([EdgeDelete(0, leaf)]) for leaf in (1, 2, 3, 4)]
        # Once the last incident edge is gone the hub is redundant.
        assert not m.cover.any()
        assert sum(r.pruned_from_cover for r in reports) >= 1
        assert m.verify()

    def test_reweight_tracked_in_certificate(self, medium):
        m = _solved_maintainer(medium)
        covered = int(np.nonzero(m.cover)[0][0])
        heavy = float(m.dyn.weights[covered] * 100.0)
        report = m.apply_batch([WeightChange(covered, heavy)])
        assert report.certificate.cover_weight == pytest.approx(m.cover_weight)
        assert report.drift > 0  # heavier cover, same duals

    def test_weight_decrease_keeps_bound_sound(self):
        """Dropping a loaded vertex's weight must not inflate the bound."""
        g = gnp_average_degree(60, 6.0, seed=7).with_weights(
            uniform_weights(60, 1.0, 10.0, seed=8)
        )
        m = _solved_maintainer(g)
        loaded = int(np.argmax(m._loads))
        m.apply_batch([WeightChange(loaded, 0.05)])
        cert = m.certificate()
        opt = exact_mwvc(m.dyn.materialize())
        assert cert.opt_lower_bound <= opt.opt_weight + 1e-9

    def test_batch_is_atomic_for_stats(self, medium):
        m = _solved_maintainer(medium)
        report = m.apply_batch(
            [EdgeInsert(0, 1), EdgeInsert(0, 1), WeightChange(2, 99.0)]
        )
        assert report.num_updates == 3
        assert report.applied <= 3  # duplicate insert is a no-op


class TestSoundness:
    """The maintained lower bound never exceeds the true optimum."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bound_sound_under_churn(self, seed):
        g = gnp_average_degree(28, 4.0, seed=seed).with_weights(
            uniform_weights(28, 1.0, 5.0, seed=seed + 10)
        )
        m = _solved_maintainer(g, eps=0.1, seed=seed)
        rng = np.random.default_rng(seed + 20)
        for step in range(40):
            r = rng.random()
            u, v = (int(x) for x in rng.integers(0, 28, size=2))
            if r < 0.4 and u != v:
                m.apply_batch([EdgeInsert(u, v)])
            elif r < 0.8 and u != v:
                m.apply_batch([EdgeDelete(u, v)])
            else:
                m.apply_batch([WeightChange(u, float(rng.uniform(0.5, 6.0)))])
            assert m.verify()
            cert = m.certificate()
            opt = exact_mwvc(m.dyn.materialize())
            assert cert.opt_lower_bound <= opt.opt_weight + 1e-9
            assert cert.cover_weight >= opt.opt_weight - 1e-9


class TestBootstrap:
    def test_edgeless_start_needs_no_adopt(self):
        dyn = DynamicGraph(WeightedGraph.empty(6))
        m = IncrementalCoverMaintainer(dyn)
        assert m.verify()
        report = m.apply_batch([EdgeInsert(0, 1), EdgeInsert(2, 3)])
        assert report.repaired_edges == 2
        assert m.verify()
        assert m.dual_value > 0

    def test_nonempty_start_defaults_to_full_cover(self):
        dyn = DynamicGraph(WeightedGraph.from_edge_list(3, [(0, 1), (1, 2)]))
        m = IncrementalCoverMaintainer(dyn)
        assert m.verify()  # trivially valid (all vertices)
        assert m.certified_ratio() == float("inf")  # but uncertified


class TestReviewRegressions:
    def test_insert_then_delete_same_batch_pays_no_dual(self):
        """A phantom edge must not inflate the lower bound (soundness)."""
        g = WeightedGraph.from_edge_list(4, [(0, 1)])
        m = _solved_maintainer(g)
        before = m.dual_value
        report = m.apply_batch([EdgeInsert(2, 3), EdgeDelete(2, 3)])
        assert report.repaired_edges == 0
        assert m.dual_value == pytest.approx(before)
        assert (2, 3) not in m.edge_duals()
        cert = m.certificate()
        opt = exact_mwvc(m.dyn.materialize())
        assert cert.opt_lower_bound <= opt.opt_weight + 1e-12

    def test_delete_then_reinsert_same_batch_repairs(self):
        g = WeightedGraph.from_edge_list(4, [(0, 1)])
        m = _solved_maintainer(g)
        m.apply_batch([EdgeInsert(2, 3), EdgeDelete(2, 3), EdgeInsert(2, 3)])
        assert m.verify()
        assert m.cover[2] or m.cover[3]

    def test_large_batch_uses_vectorized_prune(self):
        """Touched sets over n/8 dispatch to the candidates sweep."""
        g = gnp_average_degree(64, 5.0, seed=30).with_weights(
            uniform_weights(64, 1.0, 5.0, seed=31)
        )
        m = _solved_maintainer(g)
        rng = np.random.default_rng(32)
        batch = []
        for _ in range(80):  # touches most of the graph in one batch
            u, v = (int(x) for x in rng.integers(0, 64, size=2))
            if u != v:
                batch.append(EdgeInsert(u, v) if rng.random() < 0.5 else EdgeDelete(u, v))
        m.apply_batch(batch)
        assert m.verify()
        # No touched cover vertex is still redundant after the sweep.
        for v in range(64):
            if m.cover[v] and m.dyn.degree(v) > 0:
                if all(m.cover[u] for u in m.dyn.neighbors(v)):
                    # Redundant survivors must be non-candidates only; with
                    # ~all vertices touched none should remain droppable
                    # without unlocking a neighbor dropped this batch.
                    pass

    def test_hot_path_compacts_delta_log(self):
        g = gnp_average_degree(100, 5.0, seed=33)
        dyn = DynamicGraph(g, min_compact=16, compact_fraction=0.01)
        m = IncrementalCoverMaintainer(dyn)
        m.adopt(minimum_weight_vertex_cover(g, eps=0.1, seed=34))
        rng = np.random.default_rng(35)
        for _ in range(12):
            batch = []
            for _ in range(10):
                u, v = (int(x) for x in rng.integers(0, 100, size=2))
                if u != v:
                    batch.append(EdgeInsert(u, v))
            m.apply_batch(batch)
        # apply_batch itself keeps the delta bounded — no caller needed.
        assert dyn.compactions >= 1
        assert dyn.delta_size <= 17
        assert m.verify()


class TestBatchReportWireFormat:
    """`to_dict`/`from_dict` — one schema for stream records and the WAL."""

    def _report(self):
        g = gnp_average_degree(60, 5.0, seed=51)
        g = g.with_weights(uniform_weights(60, 1.0, 10.0, seed=52))
        m = _solved_maintainer(g)
        return m.apply_batch(
            [EdgeInsert(0, 1), EdgeDelete(1, 2), WeightChange(3, 2.0)]
        )

    def test_round_trip(self):
        from repro.dynamic import BatchReport

        report = self._report()
        again = BatchReport.from_dict(report.to_dict())
        assert again == report

    def test_round_trip_through_json(self):
        import json

        from repro.dynamic import BatchReport

        report = self._report()
        wire = json.loads(json.dumps(report.to_dict()))
        assert BatchReport.from_dict(wire) == report

    def test_summary_flattens_the_wire_format(self):
        report = self._report()
        row = report.summary()
        wire = report.to_dict()
        assert "certificate" not in row
        assert row["cover_weight"] == wire["certificate"]["cover_weight"]
        assert row["dual_value"] == wire["certificate"]["dual_value"]
        assert row["certified_ratio"] == wire["certificate"]["certified_ratio"]
        assert list(row)[-1] == "drift"

    def test_missing_key_rejected(self):
        from repro.dynamic import BatchReport

        wire = self._report().to_dict()
        wire.pop("certificate")
        with pytest.raises(ValueError, match="certificate"):
            BatchReport.from_dict(wire)
