"""Unit tests for vertex-weight models."""

import numpy as np
import pytest

from repro.graphs.generators import gnp_average_degree, star
from repro.graphs.weights import (
    WEIGHT_MODELS,
    adversarial_spread_weights,
    constant_weights,
    degree_correlated_weights,
    exponential_weights,
    make_weights,
    planted_cover_weights,
    uniform_weights,
)


class TestBasicModels:
    def test_constant(self):
        w = constant_weights(5, 3.0)
        assert w.tolist() == [3.0] * 5

    def test_constant_requires_positive(self):
        with pytest.raises(ValueError):
            constant_weights(5, 0.0)

    def test_uniform_range(self):
        w = uniform_weights(1000, 2.0, 4.0, seed=0)
        assert w.min() >= 2.0 and w.max() <= 4.0

    def test_uniform_invalid_range(self):
        with pytest.raises(ValueError):
            uniform_weights(10, 5.0, 1.0, seed=0)

    def test_exponential_positive(self):
        w = exponential_weights(1000, 2.0, seed=1)
        assert (w >= 1.0).all()

    def test_adversarial_spread(self):
        w = adversarial_spread_weights(5000, orders_of_magnitude=6.0, seed=2)
        assert (w > 0).all()
        assert w.max() / w.min() > 1e4  # realized spread is wide

    def test_deterministic(self):
        a = uniform_weights(100, seed=7)
        b = uniform_weights(100, seed=7)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, uniform_weights(100, seed=8))


class TestDegreeCorrelated:
    def test_hub_is_heaviest(self):
        g = star(10)
        w = degree_correlated_weights(g, alpha=1.0, noise=0.0, seed=0)
        assert w[0] == w.max()
        assert w[0] == pytest.approx(10.0)  # (1 + deg 9)^1

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            degree_correlated_weights(star(4), noise=-0.1, seed=0)


class TestPlantedCoverWeights:
    def test_planted_cheap(self):
        w = planted_cover_weights(100, 10, cheap=1.0, expensive=50.0, seed=3)
        assert w[:10].max() < w[10:].min()

    def test_bad_cover_size(self):
        with pytest.raises(ValueError):
            planted_cover_weights(10, 11, seed=0)


class TestRegistry:
    @pytest.mark.parametrize("model", sorted(WEIGHT_MODELS))
    def test_all_models_positive(self, model):
        g = gnp_average_degree(200, 8.0, seed=4)
        w = make_weights(model, g, seed=5)
        assert w.shape == (200,)
        assert (w > 0).all()

    def test_unknown_model(self):
        g = star(4)
        with pytest.raises(ValueError, match="unknown weight model"):
            make_weights("nope", g)
