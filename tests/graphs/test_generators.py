"""Unit tests for the graph generators."""

import numpy as np
import pytest

from repro.graphs.checks import validate_graph
from repro.graphs.generators import (
    complete_bipartite,
    complete_graph,
    cycle,
    disjoint_edges,
    double_star,
    gnm,
    gnp,
    gnp_average_degree,
    grid_2d,
    planted_cover,
    power_law,
    random_tree,
    star,
)


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm(50, 100, seed=0)
        assert g.n == 50 and g.m == 100
        validate_graph(g)

    def test_deterministic(self):
        a, b = gnm(40, 60, seed=5), gnm(40, 60, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert gnm(40, 60, seed=5) != gnm(40, 60, seed=6)

    def test_dense_regime(self):
        g = gnm(10, 40, seed=1)  # max is 45, uses dense path
        assert g.m == 40
        validate_graph(g)

    def test_complete(self):
        g = gnm(8, 28, seed=2)
        assert g.m == 28
        assert g.max_degree == 7

    def test_zero_edges(self):
        assert gnm(5, 0, seed=0).m == 0

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="m must lie"):
            gnm(4, 7, seed=0)

    def test_no_duplicates_or_loops(self):
        g = gnm(30, 200, seed=3)
        validate_graph(g)
        assert g.m == 200


class TestGnp:
    def test_expected_density(self):
        g = gnp(400, 0.05, seed=1)
        expected = 0.05 * 400 * 399 / 2
        assert abs(g.m - expected) < 5 * np.sqrt(expected)

    def test_p_zero_and_one(self):
        assert gnp(20, 0.0, seed=0).m == 0
        assert gnp(10, 1.0, seed=0).m == 45

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp(10, 1.5, seed=0)

    def test_deterministic(self):
        assert gnp(100, 0.1, seed=9) == gnp(100, 0.1, seed=9)


class TestGnpAverageDegree:
    def test_hits_target(self):
        g = gnp_average_degree(2000, 20.0, seed=4)
        assert abs(g.average_degree - 20.0) < 2.0

    def test_trivial_sizes(self):
        assert gnp_average_degree(1, 0.0, seed=0).n == 1
        assert gnp_average_degree(0, 0.0, seed=0).n == 0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            gnp_average_degree(10, 100.0, seed=0)


class TestPowerLaw:
    def test_valid_and_heavy_tailed(self):
        g = power_law(2000, exponent=2.2, seed=7)
        validate_graph(g)
        assert g.max_degree > 4 * g.average_degree  # heavy tail signature

    def test_deterministic(self):
        assert power_law(200, seed=3) == power_law(200, seed=3)

    def test_min_degree_respected_approximately(self):
        g = power_law(500, min_degree=3, seed=1)
        # erased configuration model loses a few stubs; median holds
        assert np.median(g.degrees) >= 2

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            power_law(100, exponent=0.5, seed=0)

    def test_invalid_degree_bounds(self):
        with pytest.raises(ValueError):
            power_law(100, min_degree=10, max_degree=5, seed=0)

    def test_tiny_n(self):
        assert power_law(1, seed=0).n == 1


class TestStructured:
    def test_star(self):
        g = star(6)
        validate_graph(g)
        assert g.degrees[0] == 5
        assert g.m == 5

    def test_star_minimum(self):
        assert star(1).m == 0
        with pytest.raises(ValueError):
            star(0)

    def test_double_star(self):
        g = double_star(4)
        validate_graph(g)
        assert g.n == 10 and g.m == 9
        assert g.degrees[0] == 5 and g.degrees[1] == 5

    def test_complete_graph(self):
        g = complete_graph(6)
        validate_graph(g)
        assert g.m == 15
        assert (g.degrees == 5).all()

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        validate_graph(g)
        assert g.n == 7 and g.m == 12
        assert g.degrees[:3].tolist() == [4, 4, 4]
        assert g.degrees[3:].tolist() == [3, 3, 3, 3]

    def test_grid(self):
        g = grid_2d(3, 4)
        validate_graph(g)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_single(self):
        assert grid_2d(1, 1).m == 0

    def test_cycle(self):
        g = cycle(7)
        validate_graph(g)
        assert g.m == 7
        assert (g.degrees == 2).all()

    def test_cycle_minimum(self):
        with pytest.raises(ValueError):
            cycle(2)

    def test_random_tree(self):
        g = random_tree(50, seed=2)
        validate_graph(g)
        assert g.m == 49  # tree edge count

    def test_disjoint_edges(self):
        g = disjoint_edges(5)
        validate_graph(g)
        assert g.n == 10 and g.m == 5
        assert (g.degrees == 1).all()


class TestPlantedCover:
    def test_planted_set_is_cover(self):
        g = planted_cover(200, 20, 8.0, seed=6)
        validate_graph(g)
        mask = np.zeros(200, dtype=bool)
        mask[:20] = True
        assert g.is_vertex_cover(mask)

    def test_invalid_cover_size(self):
        with pytest.raises(ValueError):
            planted_cover(10, 0, 2.0, seed=0)

    def test_deterministic(self):
        assert planted_cover(100, 10, 4.0, seed=1) == planted_cover(100, 10, 4.0, seed=1)
