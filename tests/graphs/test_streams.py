"""Tests for the churn-stream generators."""

import numpy as np
import pytest

from repro.dynamic import DynamicGraph, EdgeDelete, EdgeInsert, WeightChange
from repro.graphs.generators import complete_graph, gnp_average_degree, star
from repro.graphs.streams import (
    CHURN_MODELS,
    hub_churn_stream,
    make_update_stream,
    sliding_window_stream,
    uniform_churn_stream,
)
from repro.graphs.weights import uniform_weights


@pytest.fixture
def base():
    g = gnp_average_degree(150, 6.0, seed=0)
    return g.with_weights(uniform_weights(g.n, 1.0, 5.0, seed=1))


class TestCoherence:
    """Every emitted event must be effective when replayed in order."""

    @pytest.mark.parametrize("model", CHURN_MODELS)
    def test_all_events_effective(self, base, model):
        updates = make_update_stream(model, base, 400, seed=3)
        assert len(updates) == 400
        dyn = DynamicGraph(base)
        for i, upd in enumerate(updates):
            assert dyn.apply(upd), f"{model} event {i} was a no-op: {upd}"

    @pytest.mark.parametrize("model", CHURN_MODELS)
    def test_deterministic_under_seed(self, base, model):
        a = make_update_stream(model, base, 100, seed=5)
        b = make_update_stream(model, base, 100, seed=5)
        c = make_update_stream(model, base, 100, seed=6)
        assert a == b
        assert a != c

    def test_unknown_model(self, base):
        with pytest.raises(ValueError, match="unknown churn model"):
            make_update_stream("surprise", base, 10)


class TestUniformChurn:
    def test_mixes_all_kinds(self, base):
        updates = uniform_churn_stream(base, 600, seed=7)
        kinds = {type(u) for u in updates}
        assert kinds == {EdgeInsert, EdgeDelete, WeightChange}

    def test_probabilities_must_sum_to_one(self, base):
        with pytest.raises(ValueError, match="sum to 1"):
            uniform_churn_stream(base, 10, p_insert=0.9, p_delete=0.9, p_reweight=0.9)

    def test_bad_weight_scale(self, base):
        with pytest.raises(ValueError, match="weight_scale"):
            uniform_churn_stream(base, 10, weight_scale=0.5)

    def test_reweights_stay_positive(self, base):
        updates = uniform_churn_stream(base, 500, seed=9, p_insert=0.1,
                                       p_delete=0.1, p_reweight=0.8)
        for upd in updates:
            if isinstance(upd, WeightChange):
                assert upd.weight > 0

    def test_delete_on_edgeless_degrades_to_insert(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph.empty(10)
        updates = uniform_churn_stream(g, 20, seed=11, p_insert=0.0,
                                       p_delete=1.0, p_reweight=0.0)
        # The first event can't be a delete — there is nothing to delete.
        assert isinstance(updates[0], EdgeInsert)

    def test_dense_graph_raises_cleanly(self):
        g = complete_graph(4)
        with pytest.raises(ValueError, match="too dense"):
            uniform_churn_stream(g, 50, seed=13, p_insert=1.0,
                                 p_delete=0.0, p_reweight=0.0)


class TestHubChurn:
    def test_bias_toward_hubs(self):
        # A star: vertex 0 has degree n-1, leaves degree 1.  Hub-biased
        # endpoints should touch vertex 0 far more often than any leaf.
        g = star(200)
        updates = hub_churn_stream(g, 400, seed=15, p_insert=0.5,
                                   p_delete=0.5, p_reweight=0.0)
        touches = np.zeros(g.n, dtype=int)
        for upd in updates:
            touches[upd.u] += 1
            touches[upd.v] += 1
        assert touches[0] > 10 * touches[1:].mean()


class TestSlidingWindow:
    def test_window_bounds_live_insertions(self, base):
        window = 10
        updates = sliding_window_stream(base, 300, seed=17, window=window)
        live = 0
        peak = 0
        for upd in updates:
            if isinstance(upd, EdgeInsert):
                live += 1
            elif isinstance(upd, EdgeDelete):
                live -= 1
            peak = max(peak, live)
        assert peak <= window

    def test_expiry_is_fifo(self, base):
        updates = sliding_window_stream(base, 100, seed=19, window=5)
        inserted = [u for u in updates if isinstance(u, EdgeInsert)]
        deleted = [u for u in updates if isinstance(u, EdgeDelete)]
        for ins, del_ in zip(inserted, deleted):
            assert (ins.u, ins.v) == (del_.u, del_.v)

    def test_initial_edges_never_expire(self, base):
        updates = sliding_window_stream(base, 200, seed=21, window=8)
        initial = {
            (int(u), int(v)) for u, v in zip(base.edges_u, base.edges_v)
        }
        for upd in updates:
            if isinstance(upd, EdgeDelete):
                key = (upd.u, upd.v) if upd.u < upd.v else (upd.v, upd.u)
                assert key not in initial

    def test_reweight_interleaving(self, base):
        updates = sliding_window_stream(base, 200, seed=23, p_reweight=0.3)
        assert any(isinstance(u, WeightChange) for u in updates)

    def test_bad_window(self, base):
        with pytest.raises(ValueError, match="window"):
            sliding_window_stream(base, 10, window=0)


def test_graphs_package_does_not_import_dynamic_or_service():
    """Layering: no graph-substrate module references the top layers.

    (A runtime sys.modules check can't express this — importing any
    repro submodule executes the umbrella ``repro/__init__``, which
    legitimately exposes the whole public API — so the guarantee is
    enforced on the package's own sources.)
    """
    import pathlib
    import re

    import repro.graphs

    pkg = pathlib.Path(repro.graphs.__file__).parent
    pattern = re.compile(r"^\s*(from|import)\s+repro\.(dynamic|service)\b", re.M)
    offenders = [p.name for p in pkg.glob("*.py") if pattern.search(p.read_text())]
    assert not offenders, f"graphs modules importing upper layers: {offenders}"
